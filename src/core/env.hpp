// Environment-variable configuration shared by the bench binaries, so a
// single knob set scales every figure harness between CI speed and
// paper-fidelity runs:
//   GPUPOWER_N        matrix dimension (default 512; paper 2048)
//   GPUPOWER_SEEDS    seeds per configuration (default 2; paper 10)
//   GPUPOWER_TILES    sampled warp tiles, 0 = exact walk (default 12)
//   GPUPOWER_KFRAC    fraction of K-slices walked (default 0.5)
//   GPUPOWER_WORKERS  engine worker threads, 0 = hardware (default 0)
//   GPUPOWER_CSV      when set, benches also print CSV blocks
//
// The persistent result store (core/store/) has its own knobs, shared by
// gpowerctl's run and serve verbs:
//   GPUPOWER_STORE_DIR        store directory; unset = store off
//   GPUPOWER_STORE            'on' | 'off' override (default on when a dir
//                             is set)
//   GPUPOWER_STORE_MAX_BYTES  LRU size cap: opening a store sweeps
//                             oldest-mtime entries until the directory
//                             fits (0 / unset = unlimited)
//
// The observability layer (core/obs/) reads:
//   GPUPOWER_TRACE    Chrome-trace output path; setting it turns tracing
//                     (and metrics) on, and the trace is written at exit
//   GPUPOWER_METRICS  'on' | 'off' — metric/timing accumulation without a
//                     trace (default off, or on when GPUPOWER_TRACE is set)
//
// Malformed or out-of-range values are rejected with a one-line error on
// stderr and exit code 2 — a typo'd knob must never silently misconfigure
// a run.
#pragma once

#include <cstddef>
#include <string>

#include "core/experiment.hpp"

namespace gpupower::core {

struct BenchEnv {
  std::size_t n = 512;
  int seeds = 2;
  std::size_t tiles = 12;
  double k_fraction = 0.5;
  int workers = 0;  ///< ExperimentEngine pool size; 0 = hardware concurrency
  bool csv = false;

  /// Applies the environment knobs onto an ExperimentConfig.
  void apply(ExperimentConfig& config) const {
    config.n = n;
    config.seeds = seeds;
    config.sampling.max_tiles = tiles;
    config.sampling.k_fraction = k_fraction;
  }
};

/// Reads the GPUPOWER_* variables.  Unset variables keep their defaults;
/// invalid values print `gpupower: invalid GPUPOWER_X='...' (expected ...)`
/// and exit(2).
[[nodiscard]] BenchEnv read_bench_env();

/// Persistent-result-store knobs (core/store/result_store.hpp).
struct StoreEnv {
  std::string dir;       ///< GPUPOWER_STORE_DIR; empty = no store
  bool enabled = false;  ///< dir set and not overridden by GPUPOWER_STORE=off
  /// GPUPOWER_STORE_MAX_BYTES: entry-size budget enforced by LRU eviction
  /// when a store opens; 0 = unlimited.
  std::size_t max_bytes = 0;
};

/// Reads GPUPOWER_STORE_DIR / GPUPOWER_STORE with the same strictness as
/// read_bench_env: GPUPOWER_STORE must be 'on' or 'off' (exit 2 otherwise),
/// and 'on' without a directory is rejected rather than silently ignored.
[[nodiscard]] StoreEnv read_store_env();

/// Observability knobs (core/obs/obs.hpp).  obs::init_from_env() applies
/// them; they are read here so validation stays centralised.
struct ObsEnv {
  std::string trace_path;    ///< GPUPOWER_TRACE; empty = tracing off
  bool metrics = false;      ///< GPUPOWER_METRICS value when set
  bool metrics_set = false;  ///< GPUPOWER_METRICS present (non-empty)
};

/// Reads GPUPOWER_TRACE / GPUPOWER_METRICS.  GPUPOWER_METRICS must be
/// 'on' or 'off' (exit 2 otherwise); GPUPOWER_TRACE is a path and any
/// non-empty value is accepted.
[[nodiscard]] ObsEnv read_obs_env();

/// True when the variable is set to a non-empty value.  The one sanctioned
/// presence check outside this module's readers — callers that need the
/// value itself go through read_bench_env/read_store_env so validation
/// stays centralised (and tools/lint_project.py enforces exactly that).
[[nodiscard]] bool env_is_set(const char* name);

}  // namespace gpupower::core
