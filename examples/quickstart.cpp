// Quickstart: simulate the paper's baseline experiment — a 2048x2048 GEMM
// with Gaussian random inputs on an A100 — for all four datatype setups, and
// print the DCGM-style reported power, runtime, and the per-rail breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart            # fast sampled run at N=512
//   GPUPOWER_N=2048 GPUPOWER_SEEDS=10 ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  std::printf("gpupower quickstart: %zux%zu GEMM, %d seed(s), A100 PCIe\n\n",
              env.n, env.n, env.seeds);

  analysis::Table table({"datatype", "power (W)", "std (W)", "iter (ms)",
                         "energy/iter (J)", "fetch W", "operand W", "multiply W",
                         "accum W", "issue W"});

  for (const auto dtype : numeric::kAllDTypes) {
    core::ExperimentConfig config;
    config.dtype = dtype;
    config.pattern = core::baseline_gaussian_spec();
    env.apply(config);
    const core::ExperimentResult r = core::run_experiment(config);
    table.add_row(std::string(numeric::name(dtype)),
                  {r.power_w, r.power_std_w, r.iteration_s * 1e3,
                   r.energy_per_iter_j, r.rails.fetch_w, r.rails.operand_w,
                   r.rails.multiply_w, r.rails.accum_w, r.rails.issue_w},
                  3);
  }

  table.print(std::cout);
  std::printf(
      "\nPower varies with *input data*, not just shape: try the fig*_ benches\n"
      "in build/bench/ to sweep the paper's input patterns.\n");
  return 0;
}
