// The measurement loop: replays a steady-state PowerReport as a timed
// experiment (launch kernel back-to-back for `iterations`) and samples it
// the way `dcgmi dmon` at 100 ms would, including the thermal ramp from
// idle at kernel start and DCGM's quantisation/measurement noise.  The
// paper's pipeline — 100 ms samples, first 500 ms trimmed — then reduces
// the trace to the reported average power.
#pragma once

#include <cstdint>

#include "gpusim/power.hpp"
#include "telemetry/trace.hpp"

namespace gpupower::telemetry {

struct SamplerConfig {
  double period_s = 0.100;     ///< DCGM sampling period (paper: 100 ms)
  double warmup_trim_s = 0.500;///< samples discarded at the front (paper: 500 ms)
  double ramp_tau_s = 0.150;   ///< exponential approach from idle to steady power
  double noise_sigma_w = 1.2;  ///< sensor noise per sample
  std::uint64_t seed = 0xD0C6;
};

/// Minimum wall-clock duration the experiment loop must run so that the
/// trimmed trace still holds enough samples for a stable average.
[[nodiscard]] double min_duration_s(const SamplerConfig& cfg,
                                    std::size_t min_samples = 10);

/// Produces the sampled power trace for a run of `iterations` back-to-back
/// kernel launches in the steady state described by `report`.
[[nodiscard]] PowerTrace sample_run(const gpupower::gpusim::PowerReport& report,
                                    std::size_t iterations,
                                    const SamplerConfig& cfg = {});

/// The paper's reduction: trim the warmup, average what remains.
[[nodiscard]] double reported_power_w(const PowerTrace& trace,
                                      const SamplerConfig& cfg = {});

}  // namespace gpupower::telemetry
