// Fleet power-capping sweep (new-scenario figure): a 4-GPU fleet serving
// phase-shifted bursty GEMM timelines, replayed under a grid of shared
// power caps x allocation policies, with the RC thermal model threaded
// across slices.  The figure the single-device pipeline cannot produce:
// energy / backlog / temperature trade-offs of datacenter power capping —
// how much does a smarter allocator buy at a given site envelope?
//
// The cap axis is expressed in *dynamic headroom*: cap = idle_floor +
// frac x (uncapped_peak - idle_floor), with both anchors measured first on
// the environment's shape (the floor from an idle fixed-deepest fleet, the
// peak from the uncapped replay).  A fraction of raw peak would land below
// the fleet's idle floor at small GPUPOWER_N — four ~50 W idle floors are
// most of a small-problem fleet's draw — degenerating every allocator to
// "everyone clamps to the deepest state".
//
// The (allocator x cap) grid is a campaign spec (core/spec.hpp): the bench
// assembles the campaign document — fleet base scenario, allocator axis,
// cap_w axis carrying the measured watt values — expands it, and fans every
// cell through the ExperimentEngine as one deduplicated batch.
// `--emit-spec FILE` writes the document; the committed
// examples/specs/fleet_capping.json is exactly this output at the default
// protocol shape, so `gpowerctl run examples/specs/fleet_capping.json
// --bench-out fresh.json` reproduces the committed BENCH_fleet.json.
//
// Emits BENCH_fleet.json (tools/bench_export): deterministic model outputs
// (energy_j per cell), committed as a trajectory file and gated by
// `bench_export --compare` in CI — a model change must regenerate the
// committed document (and the committed spec's cap anchors with it).
//
// Environment knobs as every figure bench: GPUPOWER_N, GPUPOWER_SEEDS,
// GPUPOWER_TILES, GPUPOWER_KFRAC, GPUPOWER_WORKERS, GPUPOWER_CSV.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/fleet_experiment.hpp"
#include "core/spec.hpp"
#include "core/store/result_store.hpp"
#include "fig_harness.hpp"
#include "tools/bench_export.hpp"

namespace {

using namespace gpupower;
using analysis::JsonValue;
namespace fleet = gpusim::fleet;

constexpr int kDevices = 4;
constexpr double kStaggerS = 0.1;
const char* kTimeline =
    "burst(period=0.4, duty=35%, high=100%, low=15%, dur=2)";

core::FleetConfigBuilder base_fleet(const core::ExperimentConfig& experiment) {
  core::FleetConfigBuilder builder;
  builder.experiment(experiment).slice(0.01).pstates(5);
  // Staggered bursts: devices peak at different times, which is the
  // regime where demand-aware allocation beats a uniform split.
  builder.add_staggered_devices(
      gpusim::dvfs::parse_timeline(kTimeline).timeline, kDevices, kStaggerS,
      gpusim::GpuModel::kA100PCIe,
      "utilization(up=70%, down=30%, up_hold=0.01, down_hold=0.02)");
  fleet::ThermalConfig thermal;
  thermal.enabled = true;
  builder.thermal(thermal);
  return builder;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet.json";
  std::string emit_spec_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-spec") == 0 && i + 1 < argc) {
      emit_spec_path = argv[++i];
    }
  }

  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(
      env, "Fleet power capping — 4 staggered-burst GPUs, shared cap");

  const core::ExperimentConfig experiment =
      core::ExperimentConfigBuilder().dtype("fp16t").env(env).build();
  core::ExperimentEngine engine = bench::make_engine(env);

  // Phase 1: the uncapped fleet and the idle fixed-deepest fleet fix the
  // sweep's power scale (peak and floor).
  const auto uncapped_builder = base_fleet(experiment);
  if (!uncapped_builder.valid()) {
    std::fprintf(stderr, "fig_fleet_capping: %s\n",
                 uncapped_builder.error().c_str());
    return 2;
  }
  const core::FleetConfig uncapped_config = uncapped_builder.build();
  const core::FleetHandle uncapped_handle =
      engine.submit_fleet(uncapped_config);

  core::FleetConfigBuilder floor_builder;
  floor_builder.experiment(experiment).slice(0.01).pstates(5);
  floor_builder.add_timeline("idle(dur=0.05)");
  for (int i = 0; i < kDevices; ++i) {
    floor_builder.add_device(gpusim::GpuModel::kA100PCIe, "fixed(4)");
  }
  const core::FleetResult floor_result =
      engine.submit_fleet(floor_builder.build()).get();
  const double floor_w = floor_result.avg_power_w;

  const core::FleetResult& uncapped = uncapped_handle.get();
  std::printf(
      "uncapped fleet: %.1f W peak, %.2f J, completion %.3f s; idle floor "
      "%.1f W\n\n",
      uncapped.peak_power_w, uncapped.energy_j, uncapped.completion_s,
      floor_w);

  // Phase 2: the (allocator x cap-fraction) grid as a campaign document —
  // the same shape a user writes by hand for `gpowerctl run`, with the
  // measured cap anchors baked into the cap_w axis values.
  char protocol[200];
  std::snprintf(protocol, sizeof protocol,
                "N=%zu seeds=%d sampled(tiles=%zu, kfrac=%.2f), %d x A100 "
                "staggered burst, slice 10 ms, thermal on, cap x uncapped "
                "peak",
                env.n, env.seeds, env.tiles, env.k_fraction, kDevices);

  const char* kAllocators[] = {"uniform", "proportional", "priority",
                               "greedy"};
  const double kCapFractions[] = {0.5, 0.65, 0.8};

  JsonValue allocator_values = JsonValue::array();
  for (const char* allocator : kAllocators) {
    allocator_values.push(JsonValue::string(allocator));
  }
  JsonValue cap_values = JsonValue::array();
  for (const double frac : kCapFractions) {
    char label[16];
    std::snprintf(label, sizeof label, "%.2f", frac);
    JsonValue entry = JsonValue::object();
    entry
        .set("value", JsonValue::number(
                          floor_w + frac * (uncapped.peak_power_w - floor_w)))
        .set("label", JsonValue::string(label));
    cap_values.push(std::move(entry));
  }
  JsonValue allocator_axis = JsonValue::object();
  allocator_axis.set("field", JsonValue::string("allocator"))
      .set("values", std::move(allocator_values));
  JsonValue cap_axis = JsonValue::object();
  cap_axis.set("field", JsonValue::string("cap_w"))
      .set("values", std::move(cap_values));
  JsonValue axes = JsonValue::array();
  axes.push(std::move(allocator_axis));
  axes.push(std::move(cap_axis));
  JsonValue doc = JsonValue::object();
  doc.set("scenario", JsonValue::string("campaign"))
      .set("name", JsonValue::string("fleet_capping"))
      .set("protocol", JsonValue::string(protocol))
      .set("base", core::spec_to_json(core::ScenarioConfig(uncapped_config)))
      .set("axes", std::move(axes));

  if (!emit_spec_path.empty()) {
    if (!core::atomic_write_text(emit_spec_path,
                                 doc.dump(/*pretty=*/true) + "\n")) {
      std::fprintf(stderr, "fig_fleet_capping: cannot write %s\n",
                   emit_spec_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", emit_spec_path.c_str());
  }

  const core::SpecParseResult spec = core::parse_scenario_spec(doc);
  if (!spec.ok) {
    std::fprintf(stderr, "fig_fleet_capping: %s\n", spec.error.c_str());
    return 2;
  }
  core::CampaignRun run;
  std::string error;
  if (!core::submit_campaign(engine, spec.spec, run, error)) {
    std::fprintf(stderr, "fig_fleet_capping: %s\n", error.c_str());
    return 2;
  }
  auto& points = run.points;
  auto& handles = run.handles;
  engine.wait_all();

  analysis::Table table({"allocator@cap", "energy (J)", "vs uncapped (%)",
                         "completion (s)", "mean backlog (ms)",
                         "max backlog (ms)", "peak T (C)", "over-cap"});
  std::vector<tools::BenchCase> cases;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::FleetResult& r = handles[i].get().fleet();
    double peak_temp_c = 0.0;
    for (const core::FleetDeviceSummary& device : r.devices) {
      peak_temp_c = std::max(peak_temp_c, device.peak_temperature_c);
    }
    table.add_row(points[i].label,
                  {r.energy_j,
                   uncapped.energy_j > 0.0
                       ? (r.energy_j / uncapped.energy_j - 1.0) * 100.0
                       : 0.0,
                   r.completion_s, r.mean_backlog_s * 1e3,
                   r.backlog_max_s * 1e3, peak_temp_c, r.over_cap_slices},
                  2);
    tools::BenchCase bench_case;
    bench_case.name = points[i].label;
    bench_case.metrics = {{"energy_j", r.energy_j},
                          {"completion_s", r.completion_s},
                          {"backlog_mean_s", r.mean_backlog_s},
                          {"backlog_max_s", r.backlog_max_s}};
    cases.push_back(std::move(bench_case));
  }
  table.print(std::cout);
  if (env.csv) {
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  }

  // The acceptance comparison: at each cap level, does the proportional
  // allocator dominate the uniform split on energy at equal-or-better
  // backlog?
  for (std::size_t c = 0; c < std::size(kCapFractions); ++c) {
    const core::FleetResult* uniform = nullptr;
    const core::FleetResult* proportional = nullptr;
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Row-major grid: allocator axis first, cap axis second.
      if (i % std::size(kCapFractions) != c) continue;
      const std::string& allocator = points[i].coords[0].second;
      if (allocator == "uniform") uniform = &handles[i].get().fleet();
      if (allocator == "proportional") {
        proportional = &handles[i].get().fleet();
      }
    }
    if (uniform == nullptr || proportional == nullptr) continue;
    const bool dominates =
        proportional->energy_j <= uniform->energy_j &&
        proportional->backlog_max_s <= uniform->backlog_max_s &&
        (proportional->energy_j < uniform->energy_j ||
         proportional->backlog_max_s < uniform->backlog_max_s);
    std::printf(
        "cap %.2f: proportional %s uniform (energy %+.2f J, max backlog "
        "%+.1f ms)\n",
        kCapFractions[c], dominates ? "dominates" : "does not dominate",
        proportional->energy_j - uniform->energy_j,
        (proportional->backlog_max_s - uniform->backlog_max_s) * 1e3);
  }
  bench::print_engine_stats(engine);

  // Non-gated observability context: --compare walks only the committed
  // baseline's cases, so the extra top-level block never gates and the
  // committed BENCH_fleet.json needs no regeneration to stay comparable.
  const JsonValue engine_stats =
      core::engine_stats_json(engine.stats(), engine.workers());
  const auto bench_doc = tools::bench_document("fleet_capping", protocol,
                                               cases, &engine_stats);
  if (!tools::write_bench_json(out_path, bench_doc)) {
    std::fprintf(stderr, "fig_fleet_capping: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
