// Structured JSON export for micro-benchmark results: builds one
// BENCH_<name>.json document per run in a stable, diff-friendly shape meant
// to be committed at the repo root.  The file holds the *current* trajectory
// point; git history of the committed file is the perf trajectory, and CI
// uploads the freshly measured document as an artifact on every run.
//
// Document shape (see README "Activity fast path" for the field glossary):
//
//   {
//     "bench": "activity_kernel",
//     "schema": 1,
//     "protocol": "N=1024 sampled(tiles=12, kfrac=0.50) ...",
//     "cases": [
//       {"name": "fp16", "metrics": {"observer_ms": ..., "batched_ms": ...,
//                                    "speedup": ...}},
//       ...
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "analysis/json.hpp"

namespace gpupower::tools {

struct BenchMetric {
  std::string name;
  double value = 0.0;
};

struct BenchCase {
  std::string name;
  std::vector<BenchMetric> metrics;
};

/// Assembles the document above.  Metrics keep insertion order so committed
/// output diffs cleanly between runs.  A non-null `engine_stats` (e.g.
/// core::engine_stats_json) is embedded verbatim as a top-level
/// "engine_stats" block — machine-dependent observability context, NOT a
/// gated trajectory metric: compare_bench_documents walks only the
/// baseline's cases, so the block never participates in the perf gate and
/// committed baselines need no regeneration to stay comparable.
[[nodiscard]] analysis::JsonValue bench_document(
    const std::string& bench, const std::string& protocol,
    const std::vector<BenchCase>& cases,
    const analysis::JsonValue* engine_stats = nullptr);

/// Pretty-prints `doc` to `path` (with a trailing newline).  Returns false
/// when the file cannot be written.
bool write_bench_json(const std::string& path, const analysis::JsonValue& doc);

/// Reads and parses a bench document.  Returns false (with a message in
/// `error`) when the file is unreadable, malformed JSON, or not a bench
/// document (missing bench/cases).
bool read_bench_json(const std::string& path, analysis::JsonValue& doc,
                     std::string& error);

// --- trajectory comparison (the CI perf gate) -----------------------------

/// One metric compared between a fresh run and the committed baseline.
struct MetricDelta {
  std::string case_name;
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 1.0;      ///< fresh / baseline (1.0 when baseline is 0)
  bool regressed = false;  ///< worsened beyond the tolerance
};

struct CompareOptions {
  /// Allowed relative movement before a gated metric fails: 0.25 passes a
  /// speedup up to 25% lower (or a gated wall time up to 25% slower) than
  /// the committed baseline.  Timer noise on shared CI runners is the
  /// reason this is generous.
  double tolerance = 0.25;
  /// Also gate "*_ms" wall times.  Off by default: absolute times only
  /// mean something between runs on the same machine, which the documents
  /// cannot prove — enable for local like-for-like comparisons.
  bool gate_walltime = false;
  /// Gate "*_j" energies (e.g. the fig_fleet_capping summary).  On by
  /// default: energies are deterministic model outputs, not timings, so on
  /// a matching protocol they gate *symmetrically* — movement in either
  /// direction beyond the tolerance means the model changed and the
  /// committed trajectory document must be regenerated with it.
  bool gate_energy = true;
  /// When the baseline contains a case with this name, only its speedup
  /// gates and per-case speedups stay informational — an aggregate damps
  /// the per-dtype noise a shared CI runner adds (one dtype's ratio can
  /// legitimately move 15%+ between runner generations).  Set empty to
  /// gate every case's speedup.
  std::string speedup_gate_case = "geomean";
};

struct CompareResult {
  bool ok = false;          ///< documents comparable (same bench, cases)
  bool regressed = false;   ///< any gated metric beyond tolerance
  /// Nothing gates unless the two documents ran the same protocol (shape,
  /// plan); speedups at different shapes are different quantities.
  bool protocols_match = false;
  std::string error;        ///< set when !ok
  std::vector<MetricDelta> deltas;
};

/// Diffs a freshly measured bench document against the committed baseline.
/// Gating requires matching protocol strings; then:
///  - "speedup" (machine-relative: both backends timed on the same host,
///    so it transfers across machines) gates — smaller than baseline
///    beyond tolerance fails;
///  - "*_ms" wall times (machine-absolute) additionally gate when
///    options.gate_walltime is set — bigger beyond tolerance fails;
///  - "*_j" energies (deterministic model outputs) gate symmetrically
///    unless options.gate_energy is cleared — any move beyond tolerance
///    fails.
/// Everything else (macs, ...) is reported but never gates.  Cases present
/// in the baseline but missing from the fresh run make the documents
/// incomparable.
[[nodiscard]] CompareResult compare_bench_documents(
    const analysis::JsonValue& baseline, const analysis::JsonValue& fresh,
    const CompareOptions& options = {});

}  // namespace gpupower::tools
