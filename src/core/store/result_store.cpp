#include "core/store/result_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/json.hpp"
#include "core/obs/obs.hpp"

namespace gpupower::core {
namespace {

namespace fs = std::filesystem;

/// Entry schema version; bump on any incompatible change to the entry
/// envelope or the result codecs — old entries then read as misses and are
/// rewritten on the next compute.
constexpr long long kStoreSchema = 1;

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// fsync a file descriptor's directory so the rename itself is durable.
/// Best-effort: some filesystems refuse to fsync directories; the entry
/// write is still atomic without it.
void sync_parent_dir(const fs::path& path) {
  const fs::path parent =
      path.has_parent_path() ? path.parent_path() : fs::path(".");
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}

bool read_file_text(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

bool atomic_write_text(const std::string& path, std::string_view text,
                       std::string* error) {
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      set_error(error, "create_directories(" + target.parent_path().string() +
                           "): " + ec.message());
      return false;
    }
  }
  // Unique sibling temp name: same directory (rename must not cross
  // filesystems), distinct per process and per concurrent writer.
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    set_error(error, "open(" + tmp + "): " + std::strerror(errno));
    return false;
  }
  bool ok = text.empty() ||
            std::fwrite(text.data(), 1, text.size(), file) == text.size();
  ok = ok && std::fflush(file) == 0;
  ok = ok && ::fsync(fileno(file)) == 0;
  const int saved_errno = errno;
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    set_error(error, "write(" + tmp + "): " + std::strerror(saved_errno));
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename(" + tmp + " -> " + path +
                         "): " + std::strerror(errno));
    (void)std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(target);
  return true;
}

ResultStore::ResultStore(StoreOptions options) : options_(std::move(options)) {
  // Opening a store adopts its directory, orphans and all: sweep temp
  // files from writers that died mid-save so the litter cannot accumulate
  // across crashed runs.  Age-gated, so concurrent writers are safe.
  if (enabled()) {
    (void)compact();
    if (options_.max_bytes > 0) (void)evict(options_.max_bytes);
  }
}

std::size_t ResultStore::evict(std::size_t max_bytes) const {
  if (!enabled()) return 0;
  obs::Span span("store.evict");
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec);
  if (ec) return 0;  // no directory yet — nothing to evict
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t size = 0;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    // Only our entry files count against the budget; writer temp litter
    // belongs to compact(), and foreign files are not ours to delete.
    const std::string file_name = entry.path().filename().string();
    if (file_name.size() <= 5 ||
        file_name.compare(file_name.size() - 5, 5, ".json") != 0) {
      continue;
    }
    Entry candidate;
    candidate.path = entry.path();
    candidate.mtime = entry.last_write_time(ec);
    if (ec) continue;
    candidate.size = entry.file_size(ec);
    if (ec) continue;
    total += candidate.size;
    entries.push_back(std::move(candidate));
  }
  if (total <= max_bytes) return 0;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.filename().string() < b.path.filename().string();
  });
  std::size_t removed = 0;
  for (const Entry& entry : entries) {
    if (total <= max_bytes) break;
    if (fs::remove(entry.path, ec) && !ec) {
      total -= entry.size;
      ++removed;
    }
  }
  static obs::Counter& evictions = obs::counter("store.evictions");
  evictions.add(removed);
  return removed;
}

std::size_t ResultStore::compact(std::chrono::seconds min_age) const {
  if (!enabled()) return 0;
  obs::Span span("store.compact");
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec);
  if (ec) return 0;  // no directory yet — nothing to sweep
  const auto cutoff = fs::file_time_type::clock::now() - min_age;
  std::size_t removed = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    // Writer temp names are `<entry>.json.tmp.<pid>.<counter>`; anything
    // else in the directory is not ours to delete.
    const std::string file_name = entry.path().filename().string();
    if (file_name.find(".json.tmp.") == std::string::npos) continue;
    const fs::file_time_type mtime = entry.last_write_time(ec);
    if (ec || mtime > cutoff) continue;  // young enough to be in flight
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

std::string ResultStore::entry_path(std::string_view canonical_key) const {
  char name[17];
  std::snprintf(name, sizeof(name), "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical_key)));
  return options_.dir + "/" + name + ".json";
}

bool ResultStore::load(std::string_view canonical_key, ScenarioKind kind,
                       ScenarioResult& out) const {
  if (!enabled()) return false;
  obs::Span span("store.read");
  if (obs::tracing_enabled()) {
    span.args(obs::SpanArgs().arg("key", obs::intern(canonical_key)));
  }
  const bool hit = [&]() -> bool {
    std::string text;
    if (!read_file_text(entry_path(canonical_key), text)) return false;
    const analysis::JsonParseResult parsed = analysis::json_parse(text);
    if (!parsed.ok || !parsed.value.is_object()) return false;
    const analysis::JsonValue& doc = parsed.value;
    const analysis::JsonValue* schema = doc.find("gpupower_store");
    if (schema == nullptr || !schema->is_number() ||
        schema->as_number() != static_cast<double>(kStoreSchema)) {
      return false;
    }
    // The entry carries its full canonical key; verifying it turns a
    // filename-hash collision (and any cross-kind mixup) into a miss.
    const analysis::JsonValue* key = doc.find("key");
    if (key == nullptr || !key->is_string() ||
        key->as_string() != canonical_key) {
      return false;
    }
    const analysis::JsonValue* kind_name = doc.find("kind");
    if (kind_name == nullptr || !kind_name->is_string() ||
        kind_name->as_string() != name(kind)) {
      return false;
    }
    const analysis::JsonValue* result = doc.find("result");
    if (result == nullptr) return false;
    std::string error;
    ScenarioResult loaded;
    try {
      if (!scenario_result_from_json(kind, *result, loaded, error)) {
        return false;
      }
    } catch (...) {
      return false;  // a bad entry is a miss, never a crash
    }
    out = std::move(loaded);
    return true;
  }();
  // Store-level hit/miss counters cover every consumer of the store, not
  // just the engine's submit path (obs metrics; no-ops when off).
  static obs::Counter& hits = obs::counter("store.read.hit");
  static obs::Counter& misses = obs::counter("store.read.miss");
  (hit ? hits : misses).add();
  return hit;
}

bool ResultStore::save(std::string_view canonical_key,
                       const ScenarioResult& result) const {
  if (!enabled() || !result.valid()) return false;
  obs::Span span("store.write");
  if (obs::tracing_enabled()) {
    span.args(obs::SpanArgs().arg("key", obs::intern(canonical_key)));
  }
  static obs::Counter& writes = obs::counter("store.write.count");
  writes.add();
  analysis::JsonValue doc = analysis::JsonValue::object();
  doc.set("gpupower_store", analysis::JsonValue::integer(kStoreSchema))
      .set("kind", analysis::JsonValue::string(name(result.kind())))
      .set("key", analysis::JsonValue::string(canonical_key))
      .set("result", scenario_result_to_json(result));
  std::string text = doc.dump();
  text += '\n';
  return atomic_write_text(entry_path(canonical_key), text, nullptr);
}

}  // namespace gpupower::core
