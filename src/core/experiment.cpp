#include "core/experiment.hpp"

#include "analysis/stats.hpp"
#include "patterns/rng.hpp"

namespace gpupower::core {
namespace {

template <typename T>
ExperimentResult run_typed(const ExperimentConfig& config) {
  using gpupower::gpusim::GpuSimulator;
  using gpupower::gpusim::SimOptions;

  SimOptions options;
  options.sampling = config.sampling;
  options.variation = config.variation;
  const GpuSimulator sim(config.gpu, options);

  const gemm::GemmProblem problem{config.n, config.n, config.n, 1.0f, 0.0f,
                                  config.pattern.transpose_b};

  analysis::RunningStats power;
  analysis::RunningStats alignment;
  analysis::RunningStats weight;
  analysis::RunningStats fetch_w, operand_w, multiply_w, accum_w, issue_w;
  ExperimentResult result;

  for (int s = 0; s < config.seeds; ++s) {
    const std::uint64_t replica_seed =
        patterns::derive_seed(config.base_seed, static_cast<std::uint64_t>(s));
    const ExperimentInputs<T> inputs =
        build_inputs<T>(config.pattern, config.dtype, config.n, replica_seed);
    const gpupower::gpusim::PowerReport report =
        sim.run_gemm(problem, config.dtype, inputs.a, inputs.b);

    telemetry::SamplerConfig sampler = config.sampler;
    sampler.seed = patterns::derive_seed(replica_seed, 0xD0C6);
    const telemetry::PowerTrace trace = telemetry::sample_run(
        report, config.effective_iterations(), sampler);
    power.add(telemetry::reported_power_w(trace, sampler));

    alignment.add(inputs.alignment);
    weight.add(inputs.weight_fraction);
    fetch_w.add(report.rails.fetch_w);
    operand_w.add(report.rails.operand_w);
    multiply_w.add(report.rails.multiply_w);
    accum_w.add(report.rails.accum_w);
    issue_w.add(report.rails.issue_w);
    result.iteration_s = report.realized_iteration_s;
    result.energy_per_iter_j = report.energy_j;
    result.throttled = result.throttled || report.throttled;
    result.clock_frac = report.effective_clock_frac;
  }

  result.power_w = power.mean();
  result.power_std_w = power.stddev();
  result.alignment = alignment.mean();
  result.weight_fraction = weight.mean();
  result.rails.fetch_w = fetch_w.mean();
  result.rails.operand_w = operand_w.mean();
  result.rails.multiply_w = multiply_w.mean();
  result.rails.accum_w = accum_w.mean();
  result.rails.issue_w = issue_w.mean();
  result.seeds = config.seeds;
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  using gpupower::numeric::DType;
  switch (config.dtype) {
    case DType::kFP32:
      return run_typed<float>(config);
    case DType::kFP16:
    case DType::kFP16T:
      return run_typed<gpupower::numeric::float16_t>(config);
    case DType::kINT8:
      return run_typed<gpupower::numeric::int8_value_t>(config);
  }
  return run_typed<float>(config);
}

}  // namespace gpupower::core
