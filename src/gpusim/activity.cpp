#include "gpusim/activity.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "core/obs/obs.hpp"
#include "patterns/rng.hpp"

namespace gpupower::gpusim {
namespace {

/// K-slice ranges to walk: evenly strided coverage of `fraction` of the
/// slices, deterministic phase from the seed so different experiments sample
/// the same way.
std::vector<std::pair<std::size_t, std::size_t>> select_k_ranges(
    std::size_t k_total, std::size_t k_step, double fraction,
    std::uint64_t seed) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const std::size_t slices = (k_total + k_step - 1) / k_step;
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto wanted = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(slices)));
  wanted = std::clamp<std::size_t>(wanted, 1, slices);
  if (wanted == slices) {
    ranges.emplace_back(0, k_total);
    return ranges;
  }
  const double stride = static_cast<double>(slices) / static_cast<double>(wanted);
  patterns::Xoshiro256 rng(seed);
  const double phase = rng.uniform() * stride;
  for (std::size_t i = 0; i < wanted; ++i) {
    const auto slice = std::min<std::size_t>(
        slices - 1, static_cast<std::size_t>(phase + stride * static_cast<double>(i)));
    const std::size_t begin = slice * k_step;
    ranges.emplace_back(begin, std::min(begin + k_step, k_total));
  }
  // De-duplicate in case rounding produced repeats.
  ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
  return ranges;
}

/// Reference walker: the per-element observer walk through
/// gemm::process_tile (one ActivityCounters callback per wire event).
template <typename T>
class ObserverWalker {
 public:
  ObserverWalker(const gemm::GemmProblem& problem, const gemm::Matrix<T>& a,
                 const gemm::Matrix<T>& b_storage,
                 const gemm::TileConfig& config)
      : problem_(problem), a_(a), b_(b_storage), config_(config) {}

  void process_tile(const gemm::TileCoord& tile,
                    std::vector<gpupower::numeric::accumulator_t<T>>& acc,
                    std::size_t k_begin, std::size_t k_end) {
    gemm::process_tile(problem_, a_, b_, tile, config_, acc, counters_,
                       k_begin, k_end);
  }

  [[nodiscard]] const ActivityTotals& totals() const noexcept {
    return counters_.totals();
  }

 private:
  const gemm::GemmProblem& problem_;
  const gemm::Matrix<T>& a_;
  const gemm::Matrix<T>& b_;
  const gemm::TileConfig& config_;
  ActivityCounters counters_;
};

/// Batched bit-plane walker: gathers each tile's A-row / B-column operand
/// words into contiguous per-stream buffers once per K-range (all the
/// range's K-slices share one gather/derive pass), then counts toggles
/// (XOR with the one-word-shifted stream), Hamming weights, multiplier
/// partial-product activity, and accumulator switching with bulk
/// std::popcount loops over sub-ranges of the packed streams.
///
/// Bit-identicality with the observer walk rests on two facts: every
/// counter is an order-independent sum, and every per-stream chain (the
/// last word on each bus, the multiplier's previously held significands)
/// threads through the packed segments in exactly the order the observer
/// would have visited them.  The accumulator chain re-runs the identical
/// arithmetic (same operations, same order), so acc bit patterns match too.
template <typename T>
class BitPlaneKernel {
  using traits = gpupower::numeric::scalar_traits<T>;
  using Acc = gpupower::numeric::accumulator_t<T>;
  static constexpr int kWidth = traits::kBits;
  static constexpr bool kHasExponent = kWidth != 8;

 public:
  BitPlaneKernel(const gemm::GemmProblem& problem, const gemm::Matrix<T>& a,
                 const gemm::Matrix<T>& b_storage,
                 const gemm::TileConfig& config)
      : problem_(problem),
        a_(a),
        b_(b_storage),
        config_(config),
        ws_(workspace()) {}

  /// Panels are packed once per K-range (not once per K-slice): one gather
  /// and one derive pass cover every slice of the range, and the per-slice
  /// counting loops index sub-ranges of the shared buffers.  Ranges are
  /// capped at kMaxChunkSlices threadblock slices so panel memory stays
  /// bounded for huge K; port state threads across chunks like it threads
  /// across tiles, so chunking never changes the counted stream.
  void process_tile(const gemm::TileCoord& tile, std::vector<Acc>& acc,
                    std::size_t k_begin, std::size_t k_end) {
    const std::size_t k_total = std::min(k_end, problem_.k);
    const std::size_t k_step = config_.threadblock.k;
    const std::size_t chunk = k_step * kMaxChunkSlices;
    for (std::size_t c0 = k_begin; c0 < k_total; c0 += chunk) {
      const std::size_t c1 = std::min(c0 + chunk, k_total);
      pack_range(tile, c0, c1);
      for (const SliceInfo& slice : slices_) {
        process_slice(tile, acc, c1 - c0, slice);
      }
    }
  }

  [[nodiscard]] const ActivityTotals& totals() const noexcept {
    return totals_;
  }

 private:
  /// Upper bound on threadblock K-slices packed per gather, bounding panel
  /// memory at lanes x (kMaxChunkSlices x threadblock.k) entries.
  static constexpr std::size_t kMaxChunkSlices = 64;

  /// One threadblock K-slice of the packed range: element sub-range
  /// [t0, t1) and the global indices of its operand segments.
  struct SliceInfo {
    std::size_t t0 = 0;
    std::size_t t1 = 0;
    std::size_t seg_begin = 0;
    std::size_t seg_end = 0;
  };

  static std::uint32_t exponent_popcount(std::uint32_t bits) noexcept {
    if constexpr (kWidth == 16) {
      return static_cast<std::uint32_t>(std::popcount((bits >> 10) & 0x1Fu));
    } else if constexpr (kWidth == 32) {
      return static_cast<std::uint32_t>(std::popcount((bits >> 23) & 0xFFu));
    } else {
      return 0;
    }
  }

  /// Packed toggle/weight counting over one lane-contiguous word stream:
  /// XOR-with-previous toggles and Hamming weight of w[t0, t1) chained off
  /// `prev`, multiple words per 64-bit popcount.  INT8 words (8 significant
  /// bits) pack four per lane in 16-bit slots; FP16/FP32 words pack two in
  /// 32-bit slots.  XOR and popcount are bitwise, so disjoint slots never
  /// interact and the packed sums equal the word-at-a-time sums exactly —
  /// the parity tests pin this against the observer walk.
  static void count_stream(const std::uint32_t* w, std::size_t t0,
                           std::size_t t1, std::uint32_t& prev,
                           std::uint64_t& toggles,
                           std::uint64_t& weight) noexcept {
    std::uint64_t tog = 0;
    std::uint64_t wt = 0;
    std::uint32_t p = prev;
    std::size_t t = t0;
    if constexpr (kWidth == 8) {
      for (; t + 4 <= t1; t += 4) {
        const std::uint64_t pack =
            static_cast<std::uint64_t>(w[t]) |
            (static_cast<std::uint64_t>(w[t + 1]) << 16) |
            (static_cast<std::uint64_t>(w[t + 2]) << 32) |
            (static_cast<std::uint64_t>(w[t + 3]) << 48);
        const std::uint64_t shifted =
            static_cast<std::uint64_t>(p) |
            (static_cast<std::uint64_t>(w[t]) << 16) |
            (static_cast<std::uint64_t>(w[t + 1]) << 32) |
            (static_cast<std::uint64_t>(w[t + 2]) << 48);
        tog += static_cast<std::uint64_t>(std::popcount(pack ^ shifted));
        wt += static_cast<std::uint64_t>(std::popcount(pack));
        p = w[t + 3];
      }
    } else {
      for (; t + 2 <= t1; t += 2) {
        const std::uint64_t pack =
            static_cast<std::uint64_t>(w[t]) |
            (static_cast<std::uint64_t>(w[t + 1]) << 32);
        const std::uint64_t shifted =
            static_cast<std::uint64_t>(p) |
            (static_cast<std::uint64_t>(w[t]) << 32);
        tog += static_cast<std::uint64_t>(std::popcount(pack ^ shifted));
        wt += static_cast<std::uint64_t>(std::popcount(pack));
        p = w[t + 1];
      }
    }
    for (; t < t1; ++t) {
      tog += static_cast<std::uint64_t>(std::popcount(p ^ w[t]));
      wt += static_cast<std::uint64_t>(std::popcount(w[t]));
      p = w[t];
    }
    prev = p;
    toggles += tog;
    weight += wt;
  }

  /// Extracts one operand panel (element bits, accumulator-domain values,
  /// significands + popcounts, exponent popcounts) into packed lane-major
  /// buffers: lane * ks + t, where a lane is an A row or a B column of the
  /// tile and t indexes the K-slice.
  struct Panel {
    std::vector<std::uint32_t> bits;
    std::vector<Acc> vals;
    std::vector<std::uint32_t> sig;
    std::vector<std::uint8_t> sig_pop;
    std::vector<std::uint8_t> sig_hd;    ///< HD(sig[t], sig[t-1]) within the lane
    std::vector<std::uint8_t> exp_pop;   ///< popcount of the exponent field
    std::vector<std::uint8_t> nonzero;   ///< significand != 0 (zero gating)
    std::vector<std::uint64_t> seg_tog;  ///< per (lane, segment) internal toggles
    std::vector<std::uint64_t> seg_wt;   ///< per (lane, segment) Hamming weight

    void resize(std::size_t lanes, std::size_t ks, std::size_t nseg,
                bool exponent) {
      bits.resize(lanes * ks);
      vals.resize(lanes * ks);
      sig.resize(lanes * ks);
      sig_pop.resize(lanes * ks);
      sig_hd.resize(lanes * ks);
      if (exponent) {
        exp_pop.resize(lanes * ks);
        nonzero.resize(lanes * ks);
      }
      seg_tog.resize(lanes * nseg);
      seg_wt.resize(lanes * nseg);
    }
  };

  void derive_lane(Panel& panel, std::size_t lane, std::size_t ks,
                   std::span<const std::pair<std::size_t, std::size_t>> segs) {
    const std::size_t base = lane * ks;
    for (std::size_t t = 0; t < ks; ++t) {
      const std::uint32_t w = panel.bits[base + t];
      const std::uint32_t sig = significand(w, kWidth);
      panel.sig[base + t] = sig;
      panel.sig_pop[base + t] =
          static_cast<std::uint8_t>(std::popcount(sig));
      // Interior of the lane's multiplier chain: every MAC pairing streams
      // the lane k-contiguously, so HD(sig[t], sig[t-1]) is pairing-
      // independent for t >= 1 — only the chain's first element toggles
      // against carried state.
      panel.sig_hd[base + t] =
          t == 0 ? 0
                 : static_cast<std::uint8_t>(
                       std::popcount(sig ^ panel.sig[base + t - 1]));
      if constexpr (kHasExponent) {
        panel.exp_pop[base + t] =
            static_cast<std::uint8_t>(exponent_popcount(w));
        panel.nonzero[base + t] = sig != 0 ? 1 : 0;
      }
    }
    for (std::size_t s = 0; s < segs.size(); ++s) {
      const auto [t0, t1] = segs[s];
      // The segment's first word contributes only weight (its toggle is
      // the per-pairing boundary against the carried bus state); the
      // interior is the packed XOR stream.
      std::uint64_t tog = 0, wt = 0;
      std::uint32_t prev = panel.bits[base + t0];
      wt += static_cast<std::uint64_t>(std::popcount(prev));
      count_stream(panel.bits.data() + base, t0 + 1, t1, prev, tog, wt);
      panel.seg_tog[lane * segs.size() + s] = tog;
      panel.seg_wt[lane * segs.size() + s] = wt;
    }
  }

  void pack_range(const gemm::TileCoord& tile, std::size_t k0,
                  std::size_t k1) {
    const std::size_t rows = tile.rows;
    const std::size_t cols = tile.cols;
    const std::size_t ks = k1 - k0;
    const std::size_t k_step = config_.threadblock.k;

    // Slice table + operand segments over the whole range: the whole slice
    // for SIMT threads, one per MMA fragment K-depth for tensor cores.
    slices_.clear();
    segs_.clear();
    for (std::size_t s0 = 0; s0 < ks; s0 += k_step) {
      SliceInfo slice;
      slice.t0 = s0;
      slice.t1 = std::min(s0 + k_step, ks);
      slice.seg_begin = segs_.size();
      if (config_.tensor_core) {
        for (std::size_t t0 = slice.t0; t0 < slice.t1; t0 += config_.mma.k) {
          segs_.emplace_back(t0, std::min(t0 + config_.mma.k, slice.t1));
        }
      } else {
        segs_.emplace_back(slice.t0, slice.t1);
      }
      slice.seg_end = segs_.size();
      slices_.push_back(slice);
    }

    a_panel_.resize(rows, ks, segs_.size(), kHasExponent);
    b_panel_.resize(cols, ks, segs_.size(), kHasExponent);

    for (std::size_t i = 0; i < rows; ++i) {
      const T* src = a_.data() + (tile.row + i) * a_.cols() + k0;
      for (std::size_t t = 0; t < ks; ++t) {
        a_panel_.bits[i * ks + t] =
            static_cast<std::uint32_t>(traits::to_bits(src[t]));
        a_panel_.vals[i * ks + t] = static_cast<Acc>(traits::to_float(src[t]));
      }
      derive_lane(a_panel_, i, ks, segs_);
    }
    for (std::size_t j = 0; j < cols; ++j) {
      if (problem_.transpose_b) {
        const T* src = b_.data() + (tile.col + j) * b_.cols() + k0;
        for (std::size_t t = 0; t < ks; ++t) {
          b_panel_.bits[j * ks + t] =
              static_cast<std::uint32_t>(traits::to_bits(src[t]));
          b_panel_.vals[j * ks + t] =
              static_cast<Acc>(traits::to_float(src[t]));
        }
      } else {
        const T* src = b_.data() + k0 * b_.cols() + tile.col + j;
        const std::size_t stride = b_.cols();
        for (std::size_t t = 0; t < ks; ++t) {
          const T v = src[t * stride];
          b_panel_.bits[j * ks + t] =
              static_cast<std::uint32_t>(traits::to_bits(v));
          b_panel_.vals[j * ks + t] = static_cast<Acc>(traits::to_float(v));
        }
      }
      derive_lane(b_panel_, j, ks, segs_);
    }
  }

  /// Bulk fetch-bus count: a lane-by-lane pass over one slice's sub-range
  /// of the packed panel, which is exactly the stream order the memory
  /// hierarchy drives (A rows row-major, then the B slice in storage
  /// order).
  void count_fetch(const Panel& panel, std::size_t lanes, std::size_t ks,
                   std::size_t t0, std::size_t t1, std::uint32_t& last) {
    std::uint64_t tog = 0, wt = 0;
    std::uint32_t prev = last;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      count_stream(panel.bits.data() + lane * ks, t0, t1, prev, tog, wt);
    }
    totals_.fetch_toggles += tog;
    totals_.fetch_weight += wt;
    totals_.fetch_words += lanes * (t1 - t0);
    last = prev;
  }

  void process_slice(const gemm::TileCoord& tile, std::vector<Acc>& acc,
                     std::size_t ks, const SliceInfo& slice) {
    const std::size_t rows = tile.rows;
    const std::size_t cols = tile.cols;

    count_fetch(a_panel_, rows, ks, slice.t0, slice.t1, port_.last_fetch_a);
    count_fetch(b_panel_, cols, ks, slice.t0, slice.t1, port_.last_fetch_b);

    if (!config_.tensor_core) {
      simt_slice(rows, cols, ks, slice, acc);
    } else {
      tensor_core_slice(rows, cols, ks, slice, acc);
    }
  }

  /// One MAC chain over [t0, t1) of lane row i x lane column j: multiplier
  /// switching + exponent activity against the carried significands, plus
  /// the accumulator arithmetic.  Returns the chain's accumulator result.
  struct MacSums {
    std::uint64_t pp = 0;
    std::uint64_t exp = 0;
    std::uint64_t acc_tog = 0;
  };

  Acc mac_chain(std::size_t i, std::size_t j, std::size_t ks, std::size_t t0,
                std::size_t t1, Acc start, bool single_acc_write,
                MacSums& sums) {
    const std::uint32_t* sa = a_panel_.sig.data() + i * ks;
    const std::uint32_t* sb = b_panel_.sig.data() + j * ks;
    const std::uint8_t* pa = a_panel_.sig_pop.data() + i * ks;
    const std::uint8_t* pb = b_panel_.sig_pop.data() + j * ks;
    const Acc* fa = a_panel_.vals.data() + i * ks;
    const Acc* fb = b_panel_.vals.data() + j * ks;
    const std::uint8_t* ea = nullptr;
    const std::uint8_t* eb = nullptr;
    const std::uint8_t* za = nullptr;
    const std::uint8_t* zb = nullptr;
    if constexpr (kHasExponent) {
      ea = a_panel_.exp_pop.data() + i * ks;
      eb = b_panel_.exp_pop.data() + j * ks;
      za = a_panel_.nonzero.data() + i * ks;
      zb = b_panel_.nonzero.data() + j * ks;
    }

    const std::uint8_t* ha = a_panel_.sig_hd.data() + i * ks;
    const std::uint8_t* hb = b_panel_.sig_hd.data() + j * ks;

    // Multiplier chain: the first MAC toggles against the carried
    // significands; the interior is a dot product of the lanes'
    // precomputed HD and popcount planes (vectorizable, no dependency).
    std::uint32_t pp32 =
        static_cast<std::uint32_t>(std::popcount(sa[t0] ^ port_.prev_sig_a)) *
            static_cast<std::uint32_t>(pb[t0]) +
        static_cast<std::uint32_t>(std::popcount(sb[t0] ^ port_.prev_sig_b)) *
            static_cast<std::uint32_t>(pa[t0]);
    for (std::size_t t = t0 + 1; t < t1; ++t) {
      pp32 += static_cast<std::uint32_t>(ha[t]) *
                  static_cast<std::uint32_t>(pb[t]) +
              static_cast<std::uint32_t>(hb[t]) *
                  static_cast<std::uint32_t>(pa[t]);
    }
    port_.prev_sig_a = sa[t1 - 1];
    port_.prev_sig_b = sb[t1 - 1];
    sums.pp += pp32;

    if constexpr (kHasExponent) {
      // A zero operand gates both exponent adders; a value's own exponent
      // popcount is already zero when the value is zero, so gating only
      // needs the other operand's nonzero flag.
      std::uint32_t exp32 = 0;
      for (std::size_t t = t0; t < t1; ++t) {
        exp32 += static_cast<std::uint32_t>(zb[t]) *
                     static_cast<std::uint32_t>(ea[t]) +
                 static_cast<std::uint32_t>(za[t]) *
                     static_cast<std::uint32_t>(eb[t]);
      }
      sums.exp += exp32;
    }

    // Accumulator chain: the carried dependency is the arithmetic itself,
    // re-run exactly as the compute path would.
    std::uint64_t acc_tog = 0;
    Acc sum = start;
    if (single_acc_write) {
      for (std::size_t t = t0; t < t1; ++t) sum += fa[t] * fb[t];
    } else {
      for (std::size_t t = t0; t < t1; ++t) {
        const Acc next = sum + fa[t] * fb[t];
        acc_tog += static_cast<std::uint64_t>(std::popcount(
            gemm::detail::acc_bits(sum) ^ gemm::detail::acc_bits(next)));
        sum = next;
      }
      sums.acc_tog += acc_tog;
    }
    return sum;
  }

  void simt_slice(std::size_t rows, std::size_t cols, std::size_t ks,
                  const SliceInfo& slice, std::vector<Acc>& acc) {
    // Per-thread streams: each (i, j) output streams row i of A and column
    // j of B k-contiguously.  The interior of every operand chain is the
    // lane's packed segment — identical for every pairing — so only the
    // boundary toggle against the bus's previous word is per-pair work.
    const std::size_t t0 = slice.t0;
    const std::size_t t1 = slice.t1;
    const std::size_t st = t1 - t0;
    const std::size_t nseg = segs_.size();
    const std::size_t seg = slice.seg_begin;  // SIMT: one segment per slice
    std::uint64_t op_tog = 0, op_wt = 0;
    std::uint32_t last_a = port_.last_operand_a;
    std::uint32_t last_b = port_.last_operand_b;
    MacSums sums;
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint32_t a_first = a_panel_.bits[i * ks + t0];
      const std::uint32_t a_last = a_panel_.bits[i * ks + t1 - 1];
      const std::uint64_t a_tog = a_panel_.seg_tog[i * nseg + seg];
      const std::uint64_t a_wt = a_panel_.seg_wt[i * nseg + seg];
      for (std::size_t j = 0; j < cols; ++j) {
        op_tog += static_cast<std::uint64_t>(std::popcount(last_a ^ a_first)) +
                  a_tog;
        op_wt += a_wt;
        last_a = a_last;
        op_tog += static_cast<std::uint64_t>(
                      std::popcount(last_b ^ b_panel_.bits[j * ks + t0])) +
                  b_panel_.seg_tog[j * nseg + seg];
        op_wt += b_panel_.seg_wt[j * nseg + seg];
        last_b = b_panel_.bits[j * ks + t1 - 1];

        acc[i * cols + j] =
            mac_chain(i, j, ks, t0, t1, acc[i * cols + j], false, sums);
      }
    }
    port_.last_operand_a = last_a;
    port_.last_operand_b = last_b;
    const std::uint64_t mac_count = rows * cols * st;
    totals_.operand_words += 2 * mac_count;
    totals_.operand_toggles += op_tog;
    totals_.operand_weight += op_wt;
    totals_.mult_pp += sums.pp;
    totals_.exponent_bits += sums.exp;
    totals_.macs += mac_count;
    totals_.acc_updates += mac_count;
    totals_.acc_toggles += sums.acc_tog;
  }

  void tensor_core_slice(std::size_t rows, std::size_t cols, std::size_t ks,
                         const SliceInfo& slice, std::vector<Acc>& acc) {
    const std::size_t fm = config_.mma.m;
    const std::size_t fn = config_.mma.n;
    const std::size_t nseg = segs_.size();
    std::uint64_t op_tog = 0, op_wt = 0, op_words = 0;
    std::uint64_t acc_tog = 0, acc_ups = 0, mac_count = 0;
    std::uint32_t last_a = port_.last_operand_a;
    std::uint32_t last_b = port_.last_operand_b;
    MacSums sums;
    for (std::size_t s = slice.seg_begin; s < slice.seg_end; ++s) {
      const auto [t0, t1] = segs_[s];
      const std::size_t st = t1 - t0;
      for (std::size_t i0 = 0; i0 < rows; i0 += fm) {
        const std::size_t iend = std::min(i0 + fm, rows);
        for (std::size_t j0 = 0; j0 < cols; j0 += fn) {
          const std::size_t jend = std::min(j0 + fn, cols);
          // Fragment operand issue: the A rows then the B columns of the
          // fragment, each a packed segment with a boundary toggle.
          for (std::size_t i = i0; i < iend; ++i) {
            op_tog += static_cast<std::uint64_t>(
                          std::popcount(last_a ^ a_panel_.bits[i * ks + t0])) +
                      a_panel_.seg_tog[i * nseg + s];
            op_wt += a_panel_.seg_wt[i * nseg + s];
            last_a = a_panel_.bits[i * ks + t1 - 1];
          }
          op_words += (iend - i0) * st;
          for (std::size_t j = j0; j < jend; ++j) {
            op_tog += static_cast<std::uint64_t>(
                          std::popcount(last_b ^ b_panel_.bits[j * ks + t0])) +
                      b_panel_.seg_tog[j * nseg + s];
            op_wt += b_panel_.seg_wt[j * nseg + s];
            last_b = b_panel_.bits[j * ks + t1 - 1];
          }
          op_words += (jend - j0) * st;
          // Dot-product array + single accumulator write per output.
          for (std::size_t i = i0; i < iend; ++i) {
            for (std::size_t j = j0; j < jend; ++j) {
              const Acc dot = mac_chain(i, j, ks, t0, t1, Acc{}, true, sums);
              Acc& slot = acc[i * cols + j];
              const Acc next = slot + dot;
              acc_tog += static_cast<std::uint64_t>(std::popcount(
                  gemm::detail::acc_bits(slot) ^ gemm::detail::acc_bits(next)));
              slot = next;
              ++acc_ups;
              mac_count += st;
            }
          }
        }
      }
    }
    port_.last_operand_a = last_a;
    port_.last_operand_b = last_b;
    totals_.operand_words += op_words;
    totals_.operand_toggles += op_tog;
    totals_.operand_weight += op_wt;
    totals_.mult_pp += sums.pp;
    totals_.exponent_bits += sums.exp;
    totals_.macs += mac_count;
    totals_.acc_updates += acc_ups;
    totals_.acc_toggles += acc_tog;
  }

  /// Panel buffers and slice/segment tables, shared across every kernel
  /// instance a worker thread constructs.  Seed replicas of one experiment
  /// share their A/B shapes, so after the first replica every resize() is
  /// a no-op and the multi-megabyte panels stop churning the allocator —
  /// the "reuse packed panels across seed replicas" item from the PR 3
  /// note.  Safe because a kernel walks tiles strictly serially within one
  /// estimate_activity call and every pack_range rewrites the full index
  /// range it later reads (parity-pinned); distinct threads get distinct
  /// workspaces.
  struct Workspace {
    Panel a_panel;
    Panel b_panel;
    std::vector<SliceInfo> slices;
    std::vector<std::pair<std::size_t, std::size_t>> segs;
  };

  static Workspace& workspace() {
    thread_local Workspace ws;
    return ws;
  }

  const gemm::GemmProblem& problem_;
  const gemm::Matrix<T>& a_;
  const gemm::Matrix<T>& b_;
  const gemm::TileConfig& config_;
  Workspace& ws_;

  ActivityTotals totals_;
  PortState port_;
  Panel& a_panel_ = ws_.a_panel;
  Panel& b_panel_ = ws_.b_panel;
  std::vector<SliceInfo>& slices_ = ws_.slices;
  std::vector<std::pair<std::size_t, std::size_t>>& segs_ = ws_.segs;
};

template <typename T, typename Walker>
ActivityEstimate estimate_with(const gemm::GemmProblem& problem,
                               const gemm::TileConfig& config,
                               const SamplingPlan& plan, Walker& walker) {
  using Acc = gpupower::numeric::accumulator_t<T>;
  ActivityEstimate est;
  std::vector<Acc> acc;

  if (plan.max_tiles == 0) {
    // Exact: full threadblock walk.
    const auto tiles =
        gemm::enumerate_tiles(problem.n, problem.m, config.threadblock);
    for (const auto& tile : tiles) {
      acc.assign(tile.rows * tile.cols, Acc{});
      walker.process_tile(tile, acc, 0, problem.k);
    }
    est.totals = walker.totals();
    est.tiles_walked = est.tiles_total = tiles.size();
    return est;
  }

  // Sampled: warp-tile quanta, stratified over the raster order.
  gemm::TileShape quantum = config.warp;
  quantum.k = config.threadblock.k;
  const auto tiles = gemm::enumerate_tiles(problem.n, problem.m, quantum);
  est.tiles_total = tiles.size();

  std::vector<std::size_t> chosen;
  if (tiles.size() <= plan.max_tiles) {
    chosen.resize(tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) chosen[i] = i;
  } else {
    patterns::Xoshiro256 rng(patterns::derive_seed(plan.seed, 1));
    const double stride =
        static_cast<double>(tiles.size()) / static_cast<double>(plan.max_tiles);
    for (std::size_t i = 0; i < plan.max_tiles; ++i) {
      const double lo = stride * static_cast<double>(i);
      const double hi = stride * static_cast<double>(i + 1);
      const auto idx = std::min<std::size_t>(
          tiles.size() - 1,
          static_cast<std::size_t>(lo + rng.uniform() * (hi - lo)));
      chosen.push_back(idx);
    }
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    est.sampled = true;
  }

  const auto k_ranges = select_k_ranges(problem.k, config.threadblock.k,
                                        plan.k_fraction, plan.seed);
  std::size_t k_walked = 0;
  for (const auto& [b, e] : k_ranges) k_walked += e - b;
  est.k_coverage =
      static_cast<double>(k_walked) / static_cast<double>(problem.k);
  if (est.k_coverage < 1.0) est.sampled = true;

  for (const std::size_t idx : chosen) {
    const auto& tile = tiles[idx];
    acc.assign(tile.rows * tile.cols, Acc{});
    for (const auto& [kb, ke] : k_ranges) {
      walker.process_tile(tile, acc, kb, ke);
    }
  }
  est.tiles_walked = chosen.size();

  est.totals = walker.totals();
  // Scale sampled counts to the full problem.  Output coverage scales by
  // tile count (quanta are equal-sized except at the ragged edge, which the
  // stratified pick samples proportionally); K coverage scales linearly.
  const double scale =
      (static_cast<double>(est.tiles_total) /
       static_cast<double>(std::max<std::size_t>(est.tiles_walked, 1))) /
      std::max(est.k_coverage, 1e-12);
  if (scale != 1.0) est.totals.scale_by(scale);
  return est;
}

}  // namespace

template <typename T>
ActivityEstimate estimate_activity(const gemm::GemmProblem& problem,
                                   const gemm::Matrix<T>& a,
                                   const gemm::Matrix<T>& b_storage,
                                   const gemm::TileConfig& config,
                                   const SamplingPlan& plan,
                                   ActivityBackend backend) {
  // One span per kernel call (per-tile would flood the rings); the walked
  // tile count rides along as an obs counter.
  core::obs::Span span("activity.estimate");
  ActivityEstimate est;
  if (backend == ActivityBackend::kObserver) {
    ObserverWalker<T> walker(problem, a, b_storage, config);
    est = estimate_with<T>(problem, config, plan, walker);
  } else {
    BitPlaneKernel<T> walker(problem, a, b_storage, config);
    est = estimate_with<T>(problem, config, plan, walker);
  }
  static core::obs::Counter& tiles_walked =
      core::obs::counter("activity.tiles_walked");
  tiles_walked.add(est.tiles_walked);
  return est;
}

template ActivityEstimate estimate_activity<float>(
    const gemm::GemmProblem&, const gemm::Matrix<float>&,
    const gemm::Matrix<float>&, const gemm::TileConfig&, const SamplingPlan&,
    ActivityBackend);
template ActivityEstimate estimate_activity<gpupower::numeric::float16_t>(
    const gemm::GemmProblem&, const gemm::Matrix<gpupower::numeric::float16_t>&,
    const gemm::Matrix<gpupower::numeric::float16_t>&, const gemm::TileConfig&,
    const SamplingPlan&, ActivityBackend);
template ActivityEstimate estimate_activity<gpupower::numeric::int8_value_t>(
    const gemm::GemmProblem&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::TileConfig&, const SamplingPlan&, ActivityBackend);

}  // namespace gpupower::gpusim
