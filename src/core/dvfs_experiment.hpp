// DVFS timeline experiments: the measurement protocol for the time-resolved
// P-state pipeline.  A DvfsConfig pairs a classic ExperimentConfig (GPU,
// datatype, problem size, input pattern, seeds) — which fixes the *active*
// power level via the activity walk — with a workload timeline, a governor
// policy, and the P-state table depth.  Each seed replica builds its own
// inputs, estimates activity, and replays the timeline; replicas reduce
// across seeds in seed order, exactly like run_experiment, so results are
// bit-identical no matter how many engine workers computed them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "gpusim/dvfs/governor.hpp"
#include "gpusim/dvfs/replay.hpp"
#include "gpusim/dvfs/timeline.hpp"

namespace gpupower::core {

struct DvfsConfig {
  /// The GEMM working point: gpu, dtype, n, pattern, seeds, base_seed,
  /// sampling, and (per-seed) variation all apply; the DCGM sampler fields
  /// are unused (the replayer produces its own time-resolved trace).
  ExperimentConfig experiment;
  gpupower::gpusim::dvfs::GovernorConfig governor;
  gpupower::gpusim::dvfs::WorkloadTimeline timeline;
  /// Input patterns a timeline phase can reference by index
  /// (TimelinePhase::pattern / the DSL's `pattern=K` key), so activity —
  /// not just offered load — varies over time.  Each referenced pattern
  /// costs one extra activity walk per seed replica.  Empty (and no phase
  /// referencing one) is bit-identical to the pre-phase-pattern replays.
  std::vector<PatternSpec> phase_patterns;
  double slice_s = 0.010;  ///< replay time step (10 ms, PowerMizer-ish)
  /// P-state table depth for the device; 1 = boost-only, the "DVFS
  /// disabled" degenerate case that reproduces the static model.
  int pstates = 5;
};

/// Across-seed reduction of the per-seed replays.
struct DvfsResult {
  double energy_j = 0.0;       ///< mean across seeds
  double energy_std_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;   ///< mean of per-seed peaks
  double completion_s = 0.0;
  double duration_s = 0.0;
  double backlog_max_s = 0.0;
  double mean_backlog_s = 0.0;
  double transitions = 0.0;    ///< mean P-state changes per replay
  /// Any replica hit the replay slice-cap backstop with backlog still
  /// queued — energy/completion under-count the unserved tail.
  bool truncated = false;
  int seeds = 0;
  /// Seed 0's full replay, as the representative time-resolved trace.
  /// Size scales with duration/slice_s (a 1 us slice over a long timeline
  /// is hundreds of MB); results cached inside an ExperimentEngine hold
  /// this until clear_cache() or engine destruction, so prefer coarser
  /// slices for sweep-scale work.
  gpupower::gpusim::dvfs::ReplayResult trace;
};

/// Validates everything a hand-assembled config can get wrong (seeds,
/// slice, empty timeline, pstates range, dangling phase-pattern
/// references).  Returns an empty string when valid, else the first
/// problem — shared by DvfsConfigBuilder, ExperimentEngine, and the
/// scenario registry.
[[nodiscard]] std::string validate_dvfs_config(const DvfsConfig& config);

/// Replays one seed replica's timeline.  Pure and thread-safe, like
/// run_seed_replica.  Throws std::invalid_argument on a non-positive slice
/// or an empty timeline.
[[nodiscard]] gpupower::gpusim::dvfs::ReplayResult run_dvfs_seed_replica(
    const DvfsConfig& config, int seed_index);

/// Folds per-seed replays (in seed order) into the reported result.
[[nodiscard]] DvfsResult reduce_dvfs_replicas(
    const DvfsConfig& config,
    std::span<const gpupower::gpusim::dvfs::ReplayResult> replicas);

/// Serial reference: all seed replicas in order.  Prefer
/// ExperimentEngine::submit_dvfs for anything sweep-shaped.
[[nodiscard]] DvfsResult run_dvfs(const DvfsConfig& config);

/// Cache key, same contract as canonical_config_key: equal keys produce
/// bit-identical DvfsResults.
[[nodiscard]] std::string canonical_dvfs_key(const DvfsConfig& config);

/// Cache-key fragments shared between the DVFS and fleet keys: raw fields
/// at full precision (the DSL display forms round to ~6 significant
/// digits and would collide distinct configs).
[[nodiscard]] std::string canonical_governor_key(
    const gpupower::gpusim::dvfs::GovernorConfig& governor);
/// Short timelines keep the readable phase list; long ones (a burst DSL
/// can legally realise ~2M phases) collapse to phase count + an FNV-1a
/// hash over the raw phase fields — no multi-megabyte serialisation is
/// ever materialised.
[[nodiscard]] std::string canonical_timeline_key(
    const gpupower::gpusim::dvfs::WorkloadTimeline& timeline);

/// Activity totals for every working point a timeline can reference:
/// element 0 is the experiment's base pattern, element k+1 is
/// phase_patterns[k] — the variant table the multi-variant
/// TimelineReplayer consumes.  Shared by the DVFS and fleet replica
/// runners (the fleet computes it once per seed and reuses it across
/// devices, since activity depends on inputs and sampling, not on the
/// device).  `sim` must be the replica's simulator
/// (replica_sim_options(experiment, seed_index)) — passed in so the
/// caller's descriptor and the activity walk cannot drift apart.  Throws
/// std::invalid_argument when a phase references a pattern index outside
/// `phase_patterns`.
[[nodiscard]] std::vector<gpupower::gpusim::ActivityTotals>
replica_activity_variants(
    const gpupower::gpusim::GpuSimulator& sim,
    const ExperimentConfig& experiment,
    std::span<const PatternSpec> phase_patterns,
    const gpupower::gpusim::dvfs::WorkloadTimeline& timeline,
    const gemm::GemmProblem& problem, int seed_index);

}  // namespace gpupower::core
