// Fleet power allocators: how a shared datacenter power cap is divided
// across the devices of a fleet every time slice.  Large installations
// provision hundreds of accelerators against a fixed site envelope; the
// allocator is the policy that decides which device gets to boost when the
// envelope is tight.
//
//  - uniform()       cap / N to every active device, demand-blind — the
//                    classic static power-capping baseline (nvidia-smi -pl
//                    on every box).
//  - proportional()  each device's share scales with its demanded power;
//                    when total demand fits the cap everyone gets what it
//                    asked for.
//  - priority()      strict priority order (ties broken by device index):
//                    high-priority devices take their full demand first,
//                    the remainder trickles down.
//  - greedy()        the oracle baseline: sees true queued work and fills
//                    devices in descending served-work-per-joule order —
//                    the upper bound a demand-signal allocator chases.
//
// Contract (pinned by the conservation tests): the sum of granted budgets
// never exceeds the cap, and a device never receives more than its demand
// (except uniform, which is demand-blind by definition and still sums to
// at most the cap).  Allocation is deterministic: same demands, same
// budgets, regardless of engine worker count.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace gpupower::gpusim::fleet {

/// What the allocator sees per device per slice.  `demand_w` is the
/// steady-state power of the state the device's governor wants; the
/// oracle fields are only read by greedy().
struct DeviceDemand {
  double demand_w = 0.0;      ///< unconstrained power wanted next slice
  double floor_w = 0.0;       ///< deepest-state idle floor (physical min)
  double pending_work_s = 0.0;  ///< queued + arriving work, boost-seconds
  double efficiency_s_per_j = 0.0;  ///< served work per joule at the wanted state
  int priority = 0;           ///< larger = served first (priority policy)
  bool active = true;         ///< device still replaying (else budget 0)
};

struct AllocatorConfig {
  enum class Policy { kUniform, kProportional, kPriority, kGreedyOracle };
  Policy policy = Policy::kProportional;
  /// Shared fleet power budget in watts; infinity = uncapped (every
  /// allocator degenerates to "grant everything", the equivalence case).
  double cap_w = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool capped() const noexcept {
    return cap_w < std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] bool operator==(const AllocatorConfig&) const noexcept =
      default;
};

class PowerAllocator {
 public:
  virtual ~PowerAllocator() = default;

  /// Fills `budgets` (same length as `demands`) so that the sum over
  /// active devices is at most `cap_w`.  Inactive devices get 0.
  virtual void allocate(std::span<const DeviceDemand> demands, double cap_w,
                        std::span<double> budgets) = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

[[nodiscard]] std::unique_ptr<PowerAllocator> make_allocator(
    const AllocatorConfig& config);

/// Parses "uniform" | "proportional" | "priority" | "greedy" (the CLI /
/// bench spelling).  Returns false on an unknown name.
[[nodiscard]] bool parse_allocator_policy(std::string_view name,
                                          AllocatorConfig::Policy& policy);

/// Canonical lower-case policy name (round-trips through the parser).
[[nodiscard]] std::string_view name(AllocatorConfig::Policy policy) noexcept;

}  // namespace gpupower::gpusim::fleet
