// Google-benchmark microbenchmarks of the substrate itself: the tiled GEMM
// kernels against the reference oracle, the activity-instrumented walk, and
// the pattern generators.  These guard the simulator's own performance (the
// host machine is the "testbed" here).
#include <benchmark/benchmark.h>

#include "gemm/reference.hpp"
#include "gemm/tiled.hpp"
#include "gpusim/activity.hpp"
#include "patterns/distributions.hpp"

namespace {

using namespace gpupower;

template <typename T>
gemm::Matrix<T> random_matrix(std::size_t n, std::uint64_t seed) {
  return gemm::materialize<T>(patterns::gaussian_fill(n * n, 0.0, 210.0, seed),
                              n, n);
}

template <typename T>
void BM_ReferenceGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = gemm::GemmProblem::square(n);
  const auto a = random_matrix<T>(n, 1);
  const auto b = random_matrix<T>(n, 2);
  gemm::Matrix<numeric::accumulator_t<T>> c(n, n), d(n, n);
  for (auto _ : state) {
    gemm::reference_gemm(problem, a, b, c, d);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problem.mac_count()));
}

template <typename T>
void BM_TiledGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = gemm::GemmProblem::square(n);
  const auto config =
      gemm::TileConfig::for_dtype(numeric::scalar_traits<T>::kDType);
  const auto a = random_matrix<T>(n, 1);
  const auto b = random_matrix<T>(n, 2);
  gemm::Matrix<numeric::accumulator_t<T>> c(n, n), d(n, n);
  for (auto _ : state) {
    gemm::tiled_gemm(problem, a, b, c, d, config);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problem.mac_count()));
}

template <typename T>
void BM_ActivityWalk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto problem = gemm::GemmProblem::square(n);
  const auto config =
      gemm::TileConfig::for_dtype(numeric::scalar_traits<T>::kDType);
  const auto a = random_matrix<T>(n, 1);
  const auto b = random_matrix<T>(n, 2);
  for (auto _ : state) {
    const auto est = gpusim::estimate_activity(problem, a, b, config);
    benchmark::DoNotOptimize(est.totals.mult_pp);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(problem.mac_count()));
}

void BM_GaussianFill(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto v = patterns::gaussian_fill(count, 0.0, 210.0, 42);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(count));
}

BENCHMARK(BM_ReferenceGemm<float>)->Arg(128);
BENCHMARK(BM_ReferenceGemm<numeric::float16_t>)->Arg(128);
BENCHMARK(BM_TiledGemm<float>)->Arg(128)->Arg(256);
BENCHMARK(BM_TiledGemm<numeric::float16_t>)->Arg(128)->Arg(256);
BENCHMARK(BM_TiledGemm<numeric::int8_value_t>)->Arg(128)->Arg(256);
BENCHMARK(BM_ActivityWalk<float>)->Arg(128)->Arg(256);
BENCHMARK(BM_ActivityWalk<numeric::float16_t>)->Arg(128)->Arg(256);
BENCHMARK(BM_ActivityWalk<numeric::int8_value_t>)->Arg(128)->Arg(256);
BENCHMARK(BM_GaussianFill)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
