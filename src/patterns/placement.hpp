// Data-placement transforms for the experiments in Section IV-C.
//
// The paper's definition: "Sorting n percent means that the lowest n percent
// of values are sorted into the first n percent of indices (row-wise)".  The
// remaining values keep their original relative order in the remaining
// slots.  Column sorting applies the same rule along a column-major
// traversal; intra-row sorting applies it to every row independently.
#pragma once

#include <cstddef>
#include <vector>

namespace gpupower::patterns {

/// Partially sorts a flat buffer: the lowest `percent`% of values are placed
/// in ascending order at the front; everything else keeps relative order.
/// percent=100 yields a fully sorted buffer; percent=0 is the identity.
void partial_sort_flat(std::vector<float>& data, double percent);

/// Fig. 5a / 5b: partial sort over the row-major traversal of an
/// rows x cols matrix (identical to partial_sort_flat for row-major storage).
void partial_sort_rows(std::vector<float>& data, std::size_t rows,
                       std::size_t cols, double percent);

/// Fig. 5c: partial sort over the column-major traversal of a row-major
/// stored matrix — the lowest values fill the leftmost columns.
void partial_sort_columns(std::vector<float>& data, std::size_t rows,
                          std::size_t cols, double percent);

/// Fig. 5d: partial sort applied independently inside every row.
void partial_sort_within_rows(std::vector<float>& data, std::size_t rows,
                              std::size_t cols, double percent);

/// Fully sorts (ascending, row-major) — the Fig. 6b precondition.
void full_sort(std::vector<float>& data);

/// Permutation-invariant row shuffle used by the power-aware weight
/// transform tests: reorders whole rows by their mean value.
void sort_rows_by_mean(std::vector<float>& data, std::size_t rows,
                       std::size_t cols, bool ascending = true);

}  // namespace gpupower::patterns
