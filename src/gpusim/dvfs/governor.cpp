#include "gpusim/dvfs/governor.hpp"

#include "gpusim/dvfs/dsl_util.hpp"

namespace gpupower::gpusim::dvfs {
namespace {

class FixedGovernor final : public Governor {
 public:
  explicit FixedGovernor(int pstate) : pstate_(pstate) {}

  int decide(const GovernorInput& /*input*/,
             const PStateTable& table) override {
    return table.clamp_index(pstate_);
  }
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed";
  }

 private:
  int pstate_;
};

/// PowerMizer-style threshold governor: one state per decision, guarded by
/// accumulated hold time so a single spiky slice cannot flip the machine.
class UtilizationGovernor final : public Governor {
 public:
  explicit UtilizationGovernor(const GovernorConfig& config)
      : config_(config) {}

  int decide(const GovernorInput& input, const PStateTable& table) override {
    const int state = table.clamp_index(input.pstate);
    if (input.utilization >= config_.boost_util) {
      boost_held_s_ += input.slice_s;
      low_held_s_ = 0.0;
      if (state > 0 && boost_held_s_ >= config_.boost_hold_s) {
        boost_held_s_ = 0.0;
        return state - 1;
      }
    } else if (input.utilization <= config_.low_util) {
      low_held_s_ += input.slice_s;
      boost_held_s_ = 0.0;
      if (state + 1 < static_cast<int>(table.size()) &&
          low_held_s_ >= config_.low_hold_s) {
        low_held_s_ = 0.0;
        return state + 1;
      }
    } else {
      boost_held_s_ = 0.0;
      low_held_s_ = 0.0;
    }
    return state;
  }

  void reset() override {
    boost_held_s_ = 0.0;
    low_held_s_ = 0.0;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "utilization";
  }

 private:
  GovernorConfig config_;
  double boost_held_s_ = 0.0;
  double low_held_s_ = 0.0;
};

/// Clairvoyant reference: the deepest state whose clock still serves the
/// upcoming slice's offered load plus a full backlog drain.
class OracleGovernor final : public Governor {
 public:
  int decide(const GovernorInput& input, const PStateTable& table) override {
    const double drain =
        input.slice_s > 0.0 ? input.backlog_s / input.slice_s : 0.0;
    const double required = input.offered_next + drain;
    const auto serve_rate = [&](int i) {
      const auto idx = static_cast<std::size_t>(i);
      // Effective (post-throttle) rates when the caller provides them —
      // nominal clocks overstate a throttled state's throughput.
      return idx < input.effective_clock.size()
                 ? input.effective_clock[idx]
                 : table[idx].clock_frac;
    };
    for (int i = static_cast<int>(table.size()) - 1; i > 0; --i) {
      if (serve_rate(i) >= required) return i;
    }
    return 0;
  }
  void reset() override {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "oracle";
  }
};

// --- governor DSL ---------------------------------------------------------

using detail::Cursor;
using detail::format_compact;
using detail::read_ident;
using detail::read_number;

GovernorParseResult fail_at(const Cursor& cursor, std::string message) {
  GovernorParseResult result;
  result.error = std::move(message);
  result.error_pos = cursor.pos;
  return result;
}

}  // namespace

std::unique_ptr<Governor> make_governor(const GovernorConfig& config) {
  switch (config.policy) {
    case GovernorConfig::Policy::kFixed:
      return std::make_unique<FixedGovernor>(config.fixed_pstate);
    case GovernorConfig::Policy::kUtilization:
      return std::make_unique<UtilizationGovernor>(config);
    case GovernorConfig::Policy::kOracle:
      return std::make_unique<OracleGovernor>();
  }
  return std::make_unique<UtilizationGovernor>(config);
}

GovernorParseResult parse_governor(std::string_view text) {
  Cursor cursor{text};
  GovernorParseResult result;

  const std::string name = read_ident(cursor);
  if (name.empty()) return fail_at(cursor, "expected a governor name");
  if (!cursor.accept('(')) return fail_at(cursor, "expected '(' after name");

  GovernorConfig config;
  if (name == "fixed") {
    config.policy = GovernorConfig::Policy::kFixed;
    if (!cursor.accept(')')) {
      double value = 0.0;
      if (!read_number(cursor, value)) {
        return fail_at(cursor, "fixed() takes an optional P-state index");
      }
      // Range-check the double before casting — an unrepresentable value
      // makes the cast itself UB.
      if (!(value >= 0.0 && value <= 1e6)) {
        return fail_at(cursor, "P-state index must be in [0, 1e6]");
      }
      config.fixed_pstate = static_cast<int>(value);
      if (!cursor.accept(')')) return fail_at(cursor, "expected ')'");
    }
  } else if (name == "oracle") {
    config.policy = GovernorConfig::Policy::kOracle;
    if (!cursor.accept(')')) return fail_at(cursor, "oracle() takes no args");
  } else if (name == "utilization") {
    config.policy = GovernorConfig::Policy::kUtilization;
    if (!cursor.accept(')')) {
      for (;;) {
        const std::string key = read_ident(cursor);
        if (key.empty()) return fail_at(cursor, "expected key=value");
        if (!cursor.accept('=')) {
          return fail_at(cursor, "expected '=' after '" + key + "'");
        }
        double value = 0.0;
        if (!read_number(cursor, value)) {
          return fail_at(cursor, "expected a number for '" + key + "'");
        }
        if (key == "up") {
          config.boost_util = value;
        } else if (key == "down") {
          config.low_util = value;
        } else if (key == "up_hold") {
          config.boost_hold_s = value;
        } else if (key == "down_hold") {
          config.low_hold_s = value;
        } else {
          return fail_at(cursor, "unknown utilization() key '" + key +
                                     "' (up, down, up_hold, down_hold)");
        }
        if (cursor.accept(')')) break;
        if (!cursor.accept(',')) return fail_at(cursor, "expected ',' or ')'");
      }
      if (config.boost_util < config.low_util) {
        return fail_at(cursor, "utilization() needs up >= down");
      }
      if (config.boost_util > 1.0 || config.low_util < 0.0) {
        return fail_at(cursor, "utilization thresholds must lie in [0, 1]");
      }
      if (config.boost_hold_s < 0.0 || config.low_hold_s < 0.0) {
        return fail_at(cursor, "hold times must be non-negative");
      }
    }
  } else {
    return fail_at(cursor,
                   "unknown governor '" + name +
                       "' (expected fixed | utilization | oracle)");
  }

  if (!cursor.at_end()) {
    return fail_at(cursor, "trailing input after governor spec");
  }
  result.ok = true;
  result.config = config;
  return result;
}

std::string to_dsl(const GovernorConfig& config) {
  switch (config.policy) {
    case GovernorConfig::Policy::kFixed:
      return "fixed(" + std::to_string(config.fixed_pstate) + ")";
    case GovernorConfig::Policy::kOracle:
      return "oracle()";
    case GovernorConfig::Policy::kUtilization:
      break;
  }
  return "utilization(up=" + format_compact(config.boost_util) +
         ", down=" + format_compact(config.low_util) +
         ", up_hold=" + format_compact(config.boost_hold_s) +
         ", down_hold=" + format_compact(config.low_hold_s) + ")";
}

}  // namespace gpupower::gpusim::dvfs
