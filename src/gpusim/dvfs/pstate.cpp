#include "gpusim/dvfs/pstate.hpp"

#include <algorithm>

namespace gpupower::gpusim::dvfs {

PStateTable PStateTable::boost_only(const DeviceDescriptor& dev) {
  PStateTable table;
  table.states_.push_back(PState{0, dev.boost_clock_ghz, 1.0, 1.0});
  return table;
}

PStateTable PStateTable::for_device(const DeviceDescriptor& dev, int states,
                                    double min_clock_frac,
                                    double voltage_floor) {
  states = std::max(states, 1);
  min_clock_frac = std::clamp(min_clock_frac, 0.05, 1.0);
  voltage_floor = std::clamp(voltage_floor, 0.0, 1.0);

  PStateTable table;
  table.states_.reserve(static_cast<std::size_t>(states));
  for (int i = 0; i < states; ++i) {
    const double frac =
        states == 1 ? 1.0
                    : 1.0 - (1.0 - min_clock_frac) * static_cast<double>(i) /
                                static_cast<double>(states - 1);
    PState state;
    state.index = i;
    state.clock_frac = frac;
    state.clock_ghz = dev.boost_clock_ghz * frac;
    state.voltage_scale = voltage_floor + (1.0 - voltage_floor) * frac;
    table.states_.push_back(state);
  }
  // P0 is exactly the boost point so the one-state/boost replay path stays
  // bit-identical to the static model (no 1.0-epsilon rounding).
  table.states_.front().clock_frac = 1.0;
  table.states_.front().voltage_scale = 1.0;
  table.states_.front().clock_ghz = dev.boost_clock_ghz;
  return table;
}

int PStateTable::clamp_index(int index) const noexcept {
  return std::clamp(index, 0, static_cast<int>(states_.size()) - 1);
}

}  // namespace gpupower::gpusim::dvfs
