#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/config_builder.hpp"

namespace gpupower::core {
namespace detail {

/// Shared machinery of a multi-replica job: one result slot per seed
/// (disjoint writes), an atomic countdown that triggers the in-seed-order
/// reduction, and the done/error latch handles block on.  Config/Replica/
/// Result vary between the classic experiment and the DVFS pipeline.
template <typename Config, typename Replica, typename Result>
struct ReplicaJob {
  Config config;
  std::vector<Replica> replicas;
  std::atomic<int> remaining{0};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  Result result;
  std::exception_ptr error;

  void wait() const {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return done; });
  }
};

struct ExperimentJob
    : ReplicaJob<ExperimentConfig, SeedReplicaResult, ExperimentResult> {};

struct DvfsJob : ReplicaJob<DvfsConfig, gpupower::gpusim::dvfs::ReplayResult,
                            DvfsResult> {};

struct FleetJob : ReplicaJob<FleetConfig, gpupower::gpusim::fleet::FleetRun,
                             FleetResult> {};

struct EngineState {
  EngineOptions options;
  int worker_count = 1;
  std::vector<std::thread> threads;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::function<void()>> queue;  ///< one task per seed replica
  bool stop = false;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::uint64_t outstanding = 0;

  mutable std::mutex cache_mutex;
  std::unordered_map<std::string, std::shared_ptr<ExperimentJob>> cache;
  std::unordered_map<std::string, std::shared_ptr<DvfsJob>> dvfs_cache;
  std::unordered_map<std::string, std::shared_ptr<FleetJob>> fleet_cache;
  EngineStats stats;
  std::atomic<std::uint64_t> replicas_run{0};
};

namespace {

/// Reduces and publishes a finished job, then retires it from the
/// outstanding count.  `reduce` runs under the job lock exactly once.
template <typename Job, typename Reduce>
void finish_job(EngineState& state, const std::shared_ptr<Job>& job,
                Reduce reduce) {
  {
    std::lock_guard lock(job->mutex);
    if (!job->error) {
      try {
        job->result = reduce(job->config, job->replicas);
      } catch (...) {
        job->error = std::current_exception();
      }
    }
    // All writers are done (remaining hit zero) and the reduction has
    // consumed the replicas; release them now — cached DVFS jobs would
    // otherwise pin every seed's full per-slice trace for the engine's
    // lifetime.
    job->replicas.clear();
    job->replicas.shrink_to_fit();
    job->done = true;
  }
  job->cv.notify_all();
  {
    std::lock_guard lock(state.done_mutex);
    --state.outstanding;
    if (state.outstanding == 0) state.done_cv.notify_all();
  }
}

/// One seed replica of `job`: runs `compute`, stores into the seed's
/// disjoint slot, and finishes the job with `reduce` when the countdown
/// hits zero.  Shared by the experiment and DVFS paths.
template <typename Job, typename Compute, typename Reduce>
void run_replica_task(EngineState& state, const std::shared_ptr<Job>& job,
                      int seed_index, Compute compute, Reduce reduce) {
  try {
    // Disjoint slots: no lock needed for the write, the job's atomic
    // countdown orders it before the reduction.
    job->replicas[static_cast<std::size_t>(seed_index)] =
        compute(job->config, seed_index);
  } catch (...) {
    std::lock_guard lock(job->mutex);
    if (!job->error) job->error = std::current_exception();
  }
  state.replicas_run.fetch_add(1, std::memory_order_relaxed);

  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_job(state, job, reduce);
  }
}

void worker_loop(const std::shared_ptr<EngineState>& state) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(state->queue_mutex);
      state->queue_cv.wait(
          lock, [&] { return state->stop || !state->queue.empty(); });
      if (state->queue.empty()) {
        if (state->stop) return;
        continue;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }
    task();
  }
}

}  // namespace
}  // namespace detail

namespace {

[[noreturn]] void throw_invalid_handle(const char* cls,
                                         const char* method) {
  throw std::logic_error(std::string(cls) + "::" + method +
                         "() on a default-constructed (invalid) handle; "
                         "obtain handles from the ExperimentEngine submit "
                         "methods");
}

// Shared bodies for the two handle types (the public classes stay
// concrete; only the implementations are generic).
template <typename Job>
const auto& handle_get(const std::shared_ptr<Job>& job, const char* cls) {
  if (!job) throw_invalid_handle(cls, "get");
  job->wait();
  if (job->error) std::rethrow_exception(job->error);
  return job->result;
}

template <typename Job>
bool handle_ready(const std::shared_ptr<Job>& job, const char* cls) {
  if (!job) throw_invalid_handle(cls, "ready");
  std::lock_guard lock(job->mutex);
  return job->done;
}

template <typename Job>
const auto& handle_config(const std::shared_ptr<Job>& job, const char* cls) {
  if (!job) throw_invalid_handle(cls, "config");
  return job->config;
}

}  // namespace

const ExperimentResult& ExperimentHandle::get() const {
  return handle_get(job_, "ExperimentHandle");
}

bool ExperimentHandle::ready() const {
  return handle_ready(job_, "ExperimentHandle");
}

const ExperimentConfig& ExperimentHandle::config() const {
  return handle_config(job_, "ExperimentHandle");
}

const DvfsResult& DvfsHandle::get() const {
  return handle_get(job_, "DvfsHandle");
}

bool DvfsHandle::ready() const { return handle_ready(job_, "DvfsHandle"); }

const DvfsConfig& DvfsHandle::config() const {
  return handle_config(job_, "DvfsHandle");
}

const FleetResult& FleetHandle::get() const {
  return handle_get(job_, "FleetHandle");
}

bool FleetHandle::ready() const { return handle_ready(job_, "FleetHandle"); }

const FleetConfig& FleetHandle::config() const {
  return handle_config(job_, "FleetHandle");
}

std::vector<SweepEntry> SweepRun::collect() const {
  std::vector<SweepEntry> entries;
  entries.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    entries.push_back({points[i], handles[i].get()});
  }
  return entries;
}

analysis::JsonValue SweepRun::to_json() const {
  const std::vector<SweepEntry> entries = collect();
  return sweep_to_json(figure, base, entries);
}

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : state_(std::make_shared<detail::EngineState>()) {
  state_->options = options;
  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  state_->worker_count = std::clamp(workers, 1, 256);
  state_->threads.reserve(static_cast<std::size_t>(state_->worker_count));
  for (int i = 0; i < state_->worker_count; ++i) {
    state_->threads.emplace_back(detail::worker_loop, state_);
  }
}

ExperimentEngine::~ExperimentEngine() {
  wait_all();
  {
    std::lock_guard lock(state_->queue_mutex);
    state_->stop = true;
  }
  state_->queue_cv.notify_all();
  for (std::thread& thread : state_->threads) thread.join();
}

namespace {

/// Shared submit path: publish-to-cache (or attach to the in-flight
/// duplicate), then fan the seed replicas out as queue tasks.  `compute`
/// runs one replica, `reduce` folds them in seed order; `key_fn` produces
/// the canonical cache key and only runs when the cache is enabled (key
/// serialisation is not free — a DVFS key spells out every timeline
/// phase).
template <typename Job, typename Config, typename KeyFn, typename Compute,
          typename Reduce>
std::shared_ptr<Job> submit_replica_job(
    detail::EngineState& state,
    std::unordered_map<std::string, std::shared_ptr<Job>>& cache,
    const Config& config, KeyFn key_fn, int seeds, Compute compute,
    Reduce reduce) {
  // Fully initialise the job before publishing it to the cache, so a
  // concurrent duplicate submit sees a consistent object.
  auto job = std::make_shared<Job>();
  job->config = config;
  job->replicas.resize(static_cast<std::size_t>(seeds));
  job->remaining.store(seeds, std::memory_order_relaxed);

  {
    std::lock_guard lock(state.cache_mutex);
    ++state.stats.submitted;
    if (state.options.cache_enabled) {
      const auto [it, inserted] = cache.try_emplace(key_fn(config), job);
      if (!inserted) {
        ++state.stats.cache_hits;
        return it->second;
      }
    }
    ++state.stats.jobs_computed;
  }

  {
    std::lock_guard lock(state.done_mutex);
    ++state.outstanding;
  }
  {
    std::lock_guard lock(state.queue_mutex);
    for (int s = 0; s < seeds; ++s) {
      state.queue.push_back([&state, job, s, compute, reduce] {
        detail::run_replica_task(state, job, s, compute, reduce);
      });
    }
  }
  state.queue_cv.notify_all();
  return job;
}

}  // namespace

ExperimentHandle ExperimentEngine::submit(const ExperimentConfig& config) {
  if (config.seeds <= 0) {
    // A zero-seed job would "complete" with an all-zero result; reject it
    // loudly instead (ExperimentConfigBuilder enforces the same bound).
    throw std::invalid_argument(
        "ExperimentEngine::submit: config.seeds must be >= 1, got " +
        std::to_string(config.seeds));
  }
  return ExperimentHandle(submit_replica_job(
      *state_, state_->cache, config,
      [](const ExperimentConfig& c) { return canonical_config_key(c); },
      config.seeds,
      [](const ExperimentConfig& c, int s) { return run_seed_replica(c, s); },
      [](const ExperimentConfig& c,
         const std::vector<SeedReplicaResult>& replicas) {
        return reduce_replicas(c, replicas);
      }));
}

std::vector<ExperimentHandle> ExperimentEngine::submit_batch(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentHandle> handles;
  handles.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    handles.push_back(submit(config));
  }
  return handles;
}

SweepRun ExperimentEngine::submit_sweep(FigureId id,
                                        const ExperimentConfig& base) {
  SweepRun run;
  run.figure = id;
  run.base = base;
  run.points = figure_sweep(id);
  run.handles.reserve(run.points.size());
  for (const SweepPoint& point : run.points) {
    ExperimentConfig config = base;
    config.pattern = point.spec;
    run.handles.push_back(submit(config));
  }
  return run;
}

DvfsHandle ExperimentEngine::submit_dvfs(const DvfsConfig& config) {
  if (config.experiment.seeds <= 0) {
    throw std::invalid_argument(
        "ExperimentEngine::submit_dvfs: experiment.seeds must be >= 1, got " +
        std::to_string(config.experiment.seeds));
  }
  if (config.slice_s <= 0.0) {
    throw std::invalid_argument(
        "ExperimentEngine::submit_dvfs: slice_s must be > 0");
  }
  if (config.timeline.empty()) {
    throw std::invalid_argument(
        "ExperimentEngine::submit_dvfs: timeline has no phases");
  }
  if (config.pstates < 1 || config.pstates > 16) {
    // Matches DvfsConfigBuilder's bound; a hand-built config must not
    // request a million-entry P-state table.
    throw std::invalid_argument(
        "ExperimentEngine::submit_dvfs: pstates must be in [1, 16], got " +
        std::to_string(config.pstates));
  }
  const int max_pattern = config.timeline.max_pattern_index();
  if (max_pattern >= static_cast<int>(config.phase_patterns.size())) {
    // Reject the dangling cross-reference eagerly — a worker throwing
    // later would surface the same message, but only at get() time (and
    // cache the poisoned job).
    throw std::invalid_argument(
        "ExperimentEngine::submit_dvfs: timeline references phase "
        "pattern " + std::to_string(max_pattern) + " but only " +
        std::to_string(config.phase_patterns.size()) +
        " phase pattern(s) are configured");
  }
  return DvfsHandle(submit_replica_job(
      *state_, state_->dvfs_cache, config,
      [](const DvfsConfig& c) { return canonical_dvfs_key(c); },
      config.experiment.seeds,
      [](const DvfsConfig& c, int s) { return run_dvfs_seed_replica(c, s); },
      [](const DvfsConfig& c,
         const std::vector<gpupower::gpusim::dvfs::ReplayResult>& replicas) {
        return reduce_dvfs_replicas(c, replicas);
      }));
}

std::vector<DvfsHandle> ExperimentEngine::submit_dvfs_batch(
    const std::vector<DvfsConfig>& configs) {
  std::vector<DvfsHandle> handles;
  handles.reserve(configs.size());
  for (const DvfsConfig& config : configs) {
    handles.push_back(submit_dvfs(config));
  }
  return handles;
}

FleetHandle ExperimentEngine::submit_fleet(const FleetConfig& config) {
  if (config.experiment.seeds <= 0) {
    throw std::invalid_argument(
        "ExperimentEngine::submit_fleet: experiment.seeds must be >= 1, "
        "got " + std::to_string(config.experiment.seeds));
  }
  // Reject malformed cross-references before scheduling: a worker throwing
  // later would surface the same message, but only at get() time.
  const std::string problem = validate_fleet_config(config);
  if (!problem.empty()) {
    throw std::invalid_argument("ExperimentEngine::submit_fleet: " + problem);
  }
  return FleetHandle(submit_replica_job(
      *state_, state_->fleet_cache, config,
      [](const FleetConfig& c) { return canonical_fleet_key(c); },
      config.experiment.seeds,
      [](const FleetConfig& c, int s) { return run_fleet_seed_replica(c, s); },
      [](const FleetConfig& c,
         const std::vector<gpupower::gpusim::fleet::FleetRun>& replicas) {
        return reduce_fleet_replicas(c, replicas);
      }));
}

std::vector<FleetHandle> ExperimentEngine::submit_fleet_batch(
    const std::vector<FleetConfig>& configs) {
  std::vector<FleetHandle> handles;
  handles.reserve(configs.size());
  for (const FleetConfig& config : configs) {
    handles.push_back(submit_fleet(config));
  }
  return handles;
}

void ExperimentEngine::wait_all() {
  std::unique_lock lock(state_->done_mutex);
  state_->done_cv.wait(lock, [this] { return state_->outstanding == 0; });
}

EngineStats ExperimentEngine::stats() const {
  std::lock_guard lock(state_->cache_mutex);
  EngineStats stats = state_->stats;
  stats.replicas_run = state_->replicas_run.load(std::memory_order_relaxed);
  return stats;
}

int ExperimentEngine::workers() const noexcept { return state_->worker_count; }

void ExperimentEngine::clear_cache() {
  std::lock_guard lock(state_->cache_mutex);
  state_->cache.clear();
  state_->dvfs_cache.clear();
  state_->fleet_cache.clear();
}

}  // namespace gpupower::core
