#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/stats.hpp"
#include "core/figures.hpp"

namespace gpupower::core {
namespace {

ExperimentConfig small_config(gpupower::numeric::DType dtype) {
  ExperimentConfig config;
  config.dtype = dtype;
  config.n = 128;
  config.seeds = 2;
  config.pattern = baseline_gaussian_spec();
  return config;
}

TEST(Experiment, DefaultIterationsFollowPaper) {
  ExperimentConfig config;
  config.dtype = gpupower::numeric::DType::kFP16T;
  EXPECT_EQ(config.effective_iterations(), 20000u);
  config.dtype = gpupower::numeric::DType::kFP32;
  EXPECT_EQ(config.effective_iterations(), 10000u);
  config.iterations = 123;
  EXPECT_EQ(config.effective_iterations(), 123u);
}

TEST(Experiment, DeterministicForSameConfig) {
  const auto config = small_config(gpupower::numeric::DType::kFP16);
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.alignment, b.alignment);
}

TEST(Experiment, BaseSeedChangesInputsNotProtocol) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  const auto a = run_experiment(config);
  config.base_seed = 1234;
  const auto b = run_experiment(config);
  EXPECT_NE(a.power_w, b.power_w);        // different random inputs
  EXPECT_DOUBLE_EQ(a.iteration_s, b.iteration_s);  // runtime is shape-only
  // Same distribution: power within a few watts.
  EXPECT_NEAR(a.power_w, b.power_w, 5.0);
}

TEST(Experiment, ResultFieldsPopulated) {
  const auto result = run_experiment(small_config(gpupower::numeric::DType::kFP16));
  EXPECT_GT(result.power_w, 0.0);
  EXPECT_GT(result.iteration_s, 0.0);
  EXPECT_GT(result.energy_per_iter_j, 0.0);
  EXPECT_GT(result.weight_fraction, 0.0);
  EXPECT_LT(result.weight_fraction, 1.0);
  EXPECT_GE(result.alignment, 0.0);
  EXPECT_LE(result.alignment, 1.0);
  EXPECT_EQ(result.seeds, 2);
  EXPECT_GT(result.rails.total(), 0.0);
}

TEST(Experiment, EverySeedContributes) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  config.seeds = 6;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.seeds, 6);
  // With measurement noise and input variation, the across-seed standard
  // deviation is positive but small.
  EXPECT_GT(result.power_std_w, 0.0);
  EXPECT_LT(result.power_std_w, 5.0);
}

TEST(Experiment, AllDtypesRun) {
  for (const auto dtype : gpupower::numeric::kAllDTypes) {
    const auto result = run_experiment(small_config(dtype));
    EXPECT_GT(result.power_w, 0.0) << gpupower::numeric::name(dtype);
  }
}

TEST(Experiment, ProcessVariationShiftsPower) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  const auto base = run_experiment(config);
  config.variation = gpupower::gpusim::ProcessVariation{0.05, 7};
  const auto varied = run_experiment(config);
  EXPECT_NE(base.power_w, varied.power_w);
  // Section III: instance-to-instance shifts of up to ~10 W.
  EXPECT_NEAR(base.power_w, varied.power_w, 15.0);
  // Same instance is reproducible.
  const auto again = run_experiment(config);
  EXPECT_DOUBLE_EQ(varied.power_w, again.power_w);
}

TEST(Experiment, ReduceAveragesPerSeedScalars) {
  // Regression: reduce_replicas used to keep only the *last* replica's
  // iteration_s, energy_per_iter_j, and clock_frac, reporting an arbitrary
  // seed.  All per-seed scalars must fold into means.
  ExperimentConfig config;
  config.seeds = 3;
  std::vector<SeedReplicaResult> replicas(3);
  for (int s = 0; s < 3; ++s) {
    replicas[s].power_w = 100.0 + s;
    replicas[s].iteration_s = 0.010 + 0.001 * s;
    replicas[s].energy_per_iter_j = 2.0 + s;
    replicas[s].clock_frac = 1.0 - 0.1 * s;
    replicas[s].throttled = s == 1;
  }
  const ExperimentResult result = reduce_replicas(config, replicas);
  EXPECT_NEAR(result.iteration_s, (0.010 + 0.011 + 0.012) / 3.0, 1e-15);
  EXPECT_NEAR(result.energy_per_iter_j, 3.0, 1e-12);
  EXPECT_NEAR(result.clock_frac, (1.0 + 0.9 + 0.8) / 3.0, 1e-12);
  EXPECT_TRUE(result.throttled);
}

TEST(Experiment, VariationReportsSeedAveragesNotLastSeed) {
  // End-to-end: with device variation enabled the per-seed energies differ,
  // and the reduced result must equal the mean over run_seed_replica — not
  // whichever replica happened to finish last.
  auto config = small_config(gpupower::numeric::DType::kFP16);
  config.seeds = 3;
  config.variation = gpupower::gpusim::ProcessVariation{0.05, 7};

  // Fold through the same Welford accumulator the reduction uses so the
  // expected means match bit for bit.
  analysis::RunningStats energy, iter, clock;
  bool distinct_energy = false;
  const SeedReplicaResult first = run_seed_replica(config, 0);
  for (int s = 0; s < config.seeds; ++s) {
    const SeedReplicaResult replica = run_seed_replica(config, s);
    energy.add(replica.energy_per_iter_j);
    iter.add(replica.iteration_s);
    clock.add(replica.clock_frac);
    distinct_energy =
        distinct_energy || replica.energy_per_iter_j != first.energy_per_iter_j;
  }
  ASSERT_TRUE(distinct_energy)
      << "seeds should produce distinct per-iteration energies";

  const ExperimentResult result = run_experiment(config);
  EXPECT_DOUBLE_EQ(result.energy_per_iter_j, energy.mean());
  EXPECT_DOUBLE_EQ(result.iteration_s, iter.mean());
  EXPECT_DOUBLE_EQ(result.clock_frac, clock.mean());
}

TEST(Experiment, PerSeedVariationLandsSeedsOnDistinctGpus) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  config.seeds = 4;
  config.sampling = gpupower::gpusim::SamplingPlan::fast(6, 0.5);
  gpupower::gpusim::ProcessVariation variation;
  variation.instance = 7;

  // Flag off (default): every replica shares the configured instance —
  // bit-identical to the historical behaviour.
  config.variation = variation;
  for (int s = 0; s < config.seeds; ++s) {
    const auto options = replica_sim_options(config, s);
    ASSERT_TRUE(options.variation.has_value());
    EXPECT_EQ(options.variation->instance, variation.instance);
  }
  const ExperimentResult shared = run_experiment(config);

  // Flag on: each seed derives its own instance — distinct from the base
  // and from every other seed (the paper's VM-relanding study).
  variation.per_seed = true;
  config.variation = variation;
  std::vector<std::uint64_t> instances;
  for (int s = 0; s < config.seeds; ++s) {
    const auto options = replica_sim_options(config, s);
    ASSERT_TRUE(options.variation.has_value());
    EXPECT_NE(options.variation->instance, variation.instance);
    instances.push_back(options.variation->instance);
  }
  std::sort(instances.begin(), instances.end());
  EXPECT_EQ(std::unique(instances.begin(), instances.end()), instances.end())
      << "per-seed instances must be pairwise distinct";

  // Distinct simulated GPUs shift each replica's energy scale, so the
  // across-seed spread widens relative to the shared-instance run.
  const ExperimentResult per_seed = run_experiment(config);
  EXPECT_NE(per_seed.power_w, shared.power_w);
  EXPECT_GT(per_seed.power_std_w, shared.power_std_w);
}

TEST(Experiment, RejectsNonPositiveSeeds) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  config.seeds = 0;
  EXPECT_THROW((void)run_experiment(config), std::invalid_argument);
  config.seeds = -2;
  EXPECT_THROW((void)run_experiment(config), std::invalid_argument);
}

TEST(Experiment, SampledConfigTracksExact) {
  auto config = small_config(gpupower::numeric::DType::kFP16);
  config.n = 192;
  const auto exact = run_experiment(config);
  config.sampling = gpupower::gpusim::SamplingPlan::fast(8, 0.5);
  const auto sampled = run_experiment(config);
  EXPECT_NEAR(sampled.power_w, exact.power_w, 0.05 * exact.power_w);
}

}  // namespace
}  // namespace gpupower::core
