// Shared harness for the figure-regeneration benches: one bench binary per
// paper figure, each printing the figure's series (power in watts per sweep
// point, one column per datatype) exactly as the paper plots them.
//
// Environment knobs (see core/env.hpp): GPUPOWER_N, GPUPOWER_SEEDS,
// GPUPOWER_TILES, GPUPOWER_KFRAC, GPUPOWER_CSV.  Defaults favour CI speed;
// GPUPOWER_N=2048 GPUPOWER_SEEDS=10 reproduces the paper's protocol.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

namespace gpupower::bench {

inline void print_preamble(const core::BenchEnv& env, std::string_view title) {
  std::printf("%s\n", std::string(title).c_str());
  std::printf(
      "  protocol: %zux%zu GEMM on simulated A100 PCIe, %d seed(s), "
      "%zu sampled warp tiles, k-fraction %.2f\n",
      env.n, env.n, env.seeds, env.tiles, env.k_fraction);
  if (env.n < 2048) {
    std::printf(
        "  note: N<2048 leaves SMs idle (partial occupancy), deflating "
        "absolute watts;\n"
        "  run GPUPOWER_N=2048 GPUPOWER_SEEDS=10 for paper-protocol "
        "levels.\n");
  }
  std::printf("\n");
}

/// Runs a figure's sweep for all four datatypes and prints the series table.
inline void run_figure(core::FigureId id) {
  const core::BenchEnv env = core::read_bench_env();
  print_preamble(env, core::figure_name(id));

  const auto sweep = core::figure_sweep(id);
  std::vector<std::string> headers{std::string(core::figure_axis(id))};
  for (const auto dtype : numeric::kAllDTypes) {
    headers.push_back(std::string(numeric::name(dtype)) + " (W)");
  }
  analysis::Table table(std::move(headers));

  for (const auto& point : sweep) {
    std::vector<double> row;
    for (const auto dtype : numeric::kAllDTypes) {
      core::ExperimentConfig config;
      config.dtype = dtype;
      config.pattern = point.spec;
      env.apply(config);
      row.push_back(core::run_experiment(config).power_w);
    }
    table.add_row(point.label, row, 1);
  }

  table.print(std::cout);
  if (env.csv) {
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  }
}

}  // namespace gpupower::bench
