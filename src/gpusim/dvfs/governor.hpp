// Governor policies for the P-state machine: who decides which operating
// point the simulated driver locks for the next time slice.
//
//  - fixed(p)       pin one P-state (p=0 is "prefer maximum performance")
//  - utilization()  the PowerMizer-style threshold governor: step one state
//                   toward boost when utilization holds above the boost
//                   threshold for `boost_hold_s`, one state toward low power
//                   when it holds below the low threshold for `low_hold_s`.
//                   Time hysteresis prevents flapping on bursty load.
//  - oracle()       clairvoyant reference: sees the next slice's offered
//                   load and picks the cheapest state that still serves it
//                   (plus drains any backlog) — the lower bound governors
//                   are judged against.
//
// Governors are deterministic state machines: replaying the same timeline
// produces the same decision sequence, which the replay-determinism tests
// pin across engine worker counts.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "gpusim/dvfs/pstate.hpp"

namespace gpupower::gpusim::dvfs {

/// What a governor sees at each slice boundary.  `utilization` is the
/// realized busy fraction of the slice that just ended (what NVML would
/// report); `offered_next` is the upcoming slice's offered load, visible
/// only to the oracle.
struct GovernorInput {
  double t_s = 0.0;
  double slice_s = 0.0;
  double utilization = 0.0;   ///< realized busy fraction of the last slice
  double offered_next = 0.0;  ///< upcoming offered load (oracle only)
  double backlog_s = 0.0;     ///< queued work, in boost-clock seconds
  int pstate = 0;             ///< state the device currently runs in
  /// Per-state *effective* serve rate (post-TDP-throttle), index-aligned
  /// with the table; empty when the caller has no power evaluation.  The
  /// oracle provisions against this — on a throttled workload a state's
  /// nominal clock overstates what it can serve.
  std::span<const double> effective_clock{};
};

class Governor {
 public:
  virtual ~Governor() = default;

  /// Returns the P-state index for the next slice (clamped by the caller).
  [[nodiscard]] virtual int decide(const GovernorInput& input,
                                   const PStateTable& table) = 0;
  /// Forgets hysteresis timers; replays restart from a clean machine.
  virtual void reset() = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

struct GovernorConfig {
  enum class Policy { kFixed, kUtilization, kOracle };
  Policy policy = Policy::kUtilization;
  int fixed_pstate = 0;        ///< fixed: which state to pin
  double boost_util = 0.80;    ///< utilization: boost when util >= this...
  double boost_hold_s = 0.01;  ///< ...continuously for this long
  double low_util = 0.30;      ///< and step down when util <= this...
  double low_hold_s = 0.03;    ///< ...continuously for this long

  [[nodiscard]] bool operator==(const GovernorConfig&) const noexcept =
      default;
};

/// Instantiates the policy a config describes.
[[nodiscard]] std::unique_ptr<Governor> make_governor(
    const GovernorConfig& config);

struct GovernorParseResult {
  bool ok = false;
  GovernorConfig config;
  std::string error;          ///< empty when ok
  std::size_t error_pos = 0;  ///< byte offset of the error in the input
};

/// Parses the governor DSL (mirrors the pattern-DSL stage syntax):
///   fixed(2)
///   utilization(up=80%, down=30%, up_hold=0.02, down_hold=0.1)
///   oracle()
/// Omitted keys keep the GovernorConfig defaults.  Never throws.
[[nodiscard]] GovernorParseResult parse_governor(std::string_view text);

/// Canonical DSL form: parse_governor(to_dsl(c)).config == c for values
/// representable at %g (6 significant digit) precision — the display /
/// round-trip form, NOT a cache key (canonical_dvfs_key serialises the raw
/// fields at full precision).
[[nodiscard]] std::string to_dsl(const GovernorConfig& config);

}  // namespace gpupower::gpusim::dvfs
