// Registry of the paper's experiment sweeps: each figure maps to a list of
// sweep points (x value + PatternSpec).  Benches and integration tests
// iterate this registry so the definition of every experiment lives in
// exactly one place.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/pattern_spec.hpp"

namespace gpupower::core {

enum class FigureId {
  kFig3aDistributionStd,
  kFig3bDistributionMean,
  kFig3cValueSet,
  kFig4aRandomBitFlips,
  kFig4bLsbRandomized,
  kFig4cMsbRandomized,
  kFig5aSortedRows,
  kFig5bSortedAligned,
  kFig5cSortedColumns,
  kFig5dSortedWithinRows,
  kFig6aSparsity,
  kFig6bSparsityAfterSort,
  kFig6cLsbZeroed,
  kFig6dMsbZeroed,
};

inline constexpr FigureId kAllFigures[] = {
    FigureId::kFig3aDistributionStd,  FigureId::kFig3bDistributionMean,
    FigureId::kFig3cValueSet,         FigureId::kFig4aRandomBitFlips,
    FigureId::kFig4bLsbRandomized,    FigureId::kFig4cMsbRandomized,
    FigureId::kFig5aSortedRows,       FigureId::kFig5bSortedAligned,
    FigureId::kFig5cSortedColumns,    FigureId::kFig5dSortedWithinRows,
    FigureId::kFig6aSparsity,         FigureId::kFig6bSparsityAfterSort,
    FigureId::kFig6cLsbZeroed,        FigureId::kFig6dMsbZeroed,
};

struct SweepPoint {
  std::string label;  ///< x-axis tick label
  double x = 0.0;     ///< numeric x value
  PatternSpec spec;
};

/// Human-readable figure name ("Fig. 5a: sorted into rows").
[[nodiscard]] std::string_view figure_name(FigureId id) noexcept;

/// The x-axis label for a figure's sweep variable.
[[nodiscard]] std::string_view figure_axis(FigureId id) noexcept;

/// The paper's sweep for the figure.  `points` trades sweep resolution for
/// runtime (benches default to the paper's resolution).
[[nodiscard]] std::vector<SweepPoint> figure_sweep(FigureId id);

/// Parses "fig5a" / "Fig6b" / "3c" style identifiers; returns true on
/// success.
[[nodiscard]] bool parse_figure_id(std::string_view text, FigureId& out);

/// Short identifier ("fig5a") for a figure, the inverse of parse_figure_id.
[[nodiscard]] std::string_view figure_key(FigureId id) noexcept;

/// The baseline random-Gaussian spec of Fig. 2 (paper defaults).
[[nodiscard]] PatternSpec baseline_gaussian_spec();

}  // namespace gpupower::core
