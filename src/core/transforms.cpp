#include "core/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "patterns/distributions.hpp"
#include "patterns/placement.hpp"

namespace gpupower::core {

MeanShiftResult mean_shift(const std::vector<float>& weights,
                           double target_mean) {
  MeanShiftResult result;
  if (weights.empty()) return result;
  double mean = 0.0;
  double abs_sum = 0.0;
  for (const float w : weights) {
    mean += w;
    abs_sum += std::fabs(w);
  }
  mean /= static_cast<double>(weights.size());
  result.delta = target_mean - mean;
  result.shifted.reserve(weights.size());
  for (const float w : weights) {
    result.shifted.push_back(static_cast<float>(w + result.delta));
  }
  const double mean_abs = abs_sum / static_cast<double>(weights.size());
  result.relative_perturbation =
      mean_abs > 0.0 ? std::fabs(result.delta) / mean_abs : 0.0;
  return result;
}

RowSortResult sort_rows_permutation_invariant(const std::vector<float>& weights,
                                              std::size_t rows,
                                              std::size_t cols) {
  RowSortResult result;
  result.sorted.resize(weights.size());
  result.permutation.resize(rows);

  std::vector<double> means(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) sum += weights[r * cols + c];
    means[r] = sum / static_cast<double>(cols);
  }
  std::iota(result.permutation.begin(), result.permutation.end(),
            std::size_t{0});
  std::stable_sort(result.permutation.begin(), result.permutation.end(),
                   [&](std::size_t a, std::size_t b) {
                     return means[a] < means[b];
                   });
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src = result.permutation[r];
    std::copy(weights.begin() + static_cast<std::ptrdiff_t>(src * cols),
              weights.begin() + static_cast<std::ptrdiff_t>((src + 1) * cols),
              result.sorted.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  return result;
}

std::vector<float> unpermute_rows(const std::vector<float>& permuted,
                                  const std::vector<std::size_t>& permutation,
                                  std::size_t rows, std::size_t cols) {
  std::vector<float> out(permuted.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t original = permutation[r];
    std::copy(permuted.begin() + static_cast<std::ptrdiff_t>(r * cols),
              permuted.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols),
              out.begin() + static_cast<std::ptrdiff_t>(original * cols));
  }
  return out;
}

std::vector<float> magnitude_prune(const std::vector<float>& weights,
                                   double fraction) {
  std::vector<float> out = weights;
  const auto k = static_cast<std::size_t>(
      std::llround(std::clamp(fraction, 0.0, 1.0) *
                   static_cast<double>(weights.size())));
  if (k == 0) return out;
  std::vector<std::size_t> idx(weights.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   idx.end(), [&](std::size_t a, std::size_t b) {
                     return std::fabs(weights[a]) < std::fabs(weights[b]);
                   });
  for (std::size_t i = 0; i < k; ++i) out[idx[i]] = 0.0f;
  return out;
}

PowerAwareSparsifier::PowerAwareSparsifier(gpupower::gpusim::GpuModel gpu,
                                           gpupower::numeric::DType dtype,
                                           gpupower::gpusim::SamplingPlan sampling)
    : gpu_(gpu), dtype_(dtype), sampling_(sampling) {}

namespace {

template <typename T>
double simulate_power(gpupower::gpusim::GpuModel gpu,
                      gpupower::numeric::DType dtype,
                      const gpupower::gpusim::SamplingPlan& sampling,
                      const std::vector<float>& weights,
                      const std::vector<float>& activations, std::size_t rows) {
  gpupower::gpusim::SimOptions options;
  options.sampling = sampling;
  const gpupower::gpusim::GpuSimulator sim(gpu, options);
  const auto a = gemm::materialize<T>(weights, rows, rows);
  const auto b = gemm::materialize<T>(activations, rows, rows);
  const auto problem = gemm::GemmProblem::square(rows);
  return sim.run_gemm(problem, dtype, a, b).total_w;
}

}  // namespace

SparsityDesign PowerAwareSparsifier::design(const std::vector<float>& weights,
                                            std::size_t rows,
                                            double power_cap_w,
                                            const std::vector<double>& grid) const {
  SparsityDesign best;
  const std::vector<float> activations =
      patterns::gaussian_fill(rows * rows, 0.0, 1.0, 0xAC71Fu);

  double total_sq = 0.0;
  for (const float w : weights) total_sq += static_cast<double>(w) * w;

  for (const double s : grid) {
    const std::vector<float> pruned = magnitude_prune(weights, s);
    double power = 0.0;
    using gpupower::numeric::DType;
    switch (dtype_) {
      case DType::kFP32:
        power = simulate_power<float>(gpu_, dtype_, sampling_, pruned,
                                      activations, rows);
        break;
      case DType::kFP16:
      case DType::kFP16T:
        power = simulate_power<gpupower::numeric::float16_t>(
            gpu_, dtype_, sampling_, pruned, activations, rows);
        break;
      case DType::kINT8:
        power = simulate_power<gpupower::numeric::int8_value_t>(
            gpu_, dtype_, sampling_, pruned, activations, rows);
        break;
    }
    if (power <= power_cap_w) {
      double kept_sq = 0.0;
      for (const float w : pruned) kept_sq += static_cast<double>(w) * w;
      best.sparsity = s;
      best.power_w = power;
      best.l2_retained = total_sq > 0.0 ? kept_sq / total_sq : 1.0;
      best.feasible = true;
      return best;  // grid is ascending: first feasible level is minimal
    }
    best.power_w = power;  // remember the last evaluated level
    best.sparsity = s;
  }
  best.feasible = false;
  return best;
}

}  // namespace gpupower::core
