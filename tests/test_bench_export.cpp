// Perf-gate suite: the analysis/json parser the gate reads trajectories
// with, and the bench_export compare semantics (speedup gates everywhere,
// wall times gate only on a like-for-like protocol).
#include "tools/bench_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/json.hpp"

namespace gpupower {
namespace {

using analysis::JsonValue;
using analysis::json_parse;

TEST(JsonParse, ScalarsAndContainers) {
  const auto parsed = json_parse(
      R"({"name": "x", "count": 3, "ratio": 1.5, "on": true,
          "off": false, "nothing": null, "list": [1, 2.5, "s"]})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& v = parsed.value;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "x");
  EXPECT_DOUBLE_EQ(v.find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.find("ratio")->as_number(), 1.5);
  EXPECT_TRUE(v.find("on")->as_boolean());
  EXPECT_FALSE(v.find("off")->as_boolean(true));
  EXPECT_TRUE(v.find("nothing")->is_null());
  ASSERT_TRUE(v.find("list")->is_array());
  ASSERT_EQ(v.find("list")->size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("list")->at(1).as_number(), 2.5);
  EXPECT_EQ(v.find("list")->at(2).as_string(), "s");
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_EQ(v.keys(), (std::vector<std::string>{"name", "count", "ratio",
                                                "on", "off", "nothing",
                                                "list"}));
}

TEST(JsonParse, StringEscapes) {
  const auto parsed = json_parse(R"(["a\"b", "tab\there", "éA"])");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.at(0).as_string(), "a\"b");
  EXPECT_EQ(parsed.value.at(1).as_string(), "tab\there");
  EXPECT_EQ(parsed.value.at(2).as_string(), "\xC3\xA9\x41");

  // \uXXXX escapes decode BMP code points to UTF-8.
  const auto unicode = json_parse("[\"A\\u00e9\\u20ac\"]");
  ASSERT_TRUE(unicode.ok) << unicode.error;
  EXPECT_EQ(unicode.value.at(0).as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParse, NegativeAndExponentNumbers) {
  const auto parsed = json_parse(R"([-3, -2.5e2, 1e-3])");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_DOUBLE_EQ(parsed.value.at(0).as_number(), -3.0);
  EXPECT_DOUBLE_EQ(parsed.value.at(1).as_number(), -250.0);
  EXPECT_DOUBLE_EQ(parsed.value.at(2).as_number(), 0.001);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse("").ok);
  EXPECT_FALSE(json_parse("{").ok);
  EXPECT_FALSE(json_parse("[1, 2,]").ok);
  EXPECT_FALSE(json_parse(R"({"a": 1} extra)").ok);
  EXPECT_FALSE(json_parse(R"({"a" 1})").ok);
  EXPECT_FALSE(json_parse(R"("unterminated)").ok);
  EXPECT_FALSE(json_parse(R"("bad \q escape")").ok);
  const auto failed = json_parse("[1, ");
  EXPECT_FALSE(failed.ok);
  EXPECT_FALSE(failed.error.empty());
}

TEST(JsonParse, RoundTripsEmitterOutput) {
  JsonValue doc = JsonValue::object();
  doc.set("bench", JsonValue::string("activity_kernel"))
      .set("schema", JsonValue::integer(1))
      .set("value", JsonValue::number(3.25));
  JsonValue cases = JsonValue::array();
  cases.push(JsonValue::string("fp16"));
  doc.set("cases", std::move(cases));

  const auto reparsed = json_parse(doc.dump(/*pretty=*/true));
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(reparsed.value.dump(), doc.dump());
}

// --- compare gate ---------------------------------------------------------

JsonValue bench_doc(const std::string& protocol, double batched_ms,
                    double speedup) {
  std::vector<tools::BenchCase> cases;
  tools::BenchCase entry;
  entry.name = "fp16";
  entry.metrics = {{"observer_ms", batched_ms * speedup},
                   {"batched_ms", batched_ms},
                   {"speedup", speedup}};
  cases.push_back(entry);
  return tools::bench_document("activity_kernel", protocol, cases);
}

TEST(BenchCompare, IdenticalDocumentsPass) {
  const JsonValue doc = bench_doc("N=256", 10.0, 8.0);
  const auto result = tools::compare_bench_documents(doc, doc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.protocols_match);
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.deltas.size(), 3u);
}

// A fresh document carrying the observability block (engine_stats) stays
// fully comparable against a committed baseline without one: the gate
// walks only the baseline's cases, so the extra top-level key is inert
// and committed BENCH files never need regeneration for it.
TEST(BenchCompare, EngineStatsBlockNeverGates) {
  const JsonValue baseline = bench_doc("N=256", 10.0, 8.0);

  std::vector<tools::BenchCase> cases;
  tools::BenchCase entry;
  entry.name = "fp16";
  entry.metrics = {{"observer_ms", 80.0},
                   {"batched_ms", 10.0},
                   {"speedup", 8.0}};
  cases.push_back(entry);
  JsonValue engine_stats = JsonValue::object();
  engine_stats.set("workers", JsonValue::integer(4))
      .set("compute_seconds", JsonValue::number(1.25));
  const JsonValue fresh =
      tools::bench_document("activity_kernel", "N=256", cases, &engine_stats);
  ASSERT_NE(fresh.find("engine_stats"), nullptr);

  const auto result = tools::compare_bench_documents(baseline, fresh);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.protocols_match);
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.deltas.size(), 3u);  // only the baseline's case metrics

  // And symmetrically: a baseline that has the block compares cleanly
  // against itself (the block's numbers never become deltas).
  const auto self = tools::compare_bench_documents(fresh, fresh);
  ASSERT_TRUE(self.ok) << self.error;
  EXPECT_FALSE(self.regressed);
  ASSERT_EQ(self.deltas.size(), 3u);
}

TEST(BenchCompare, WallTimesGateOnlyWhenOptedIn) {
  const JsonValue baseline = bench_doc("N=256", 10.0, 8.0);
  const JsonValue fresh = bench_doc("N=256", 14.0, 8.0);  // 40% slower
  // Default: wall times are informational even on a matching protocol
  // (the documents cannot prove they came from the same machine).
  EXPECT_FALSE(tools::compare_bench_documents(baseline, fresh).regressed);

  tools::CompareOptions walltime;
  walltime.gate_walltime = true;
  EXPECT_TRUE(
      tools::compare_bench_documents(baseline, fresh, walltime).regressed);
  // Within tolerance passes even when gated.
  const JsonValue close = bench_doc("N=256", 11.0, 8.0);  // 10% slower
  EXPECT_FALSE(
      tools::compare_bench_documents(baseline, close, walltime).regressed);
}

JsonValue fleet_doc(const std::string& protocol, double energy_j) {
  std::vector<tools::BenchCase> cases;
  tools::BenchCase entry;
  entry.name = "proportional@0.50";
  entry.metrics = {{"energy_j", energy_j}, {"backlog_max_s", 0.05}};
  cases.push_back(entry);
  return tools::bench_document("fleet_capping", protocol, cases);
}

TEST(BenchCompare, EnergyMetricsGateSymmetricallyOnMatchingProtocol) {
  const JsonValue baseline = fleet_doc("fleet N=512", 450.0);
  // Deterministic model outputs: drift in EITHER direction beyond the
  // tolerance fails — a changed model must regenerate the committed
  // document, a faster-looking number is no excuse.
  EXPECT_TRUE(tools::compare_bench_documents(baseline,
                                             fleet_doc("fleet N=512", 600.0))
                  .regressed);
  EXPECT_TRUE(tools::compare_bench_documents(baseline,
                                             fleet_doc("fleet N=512", 300.0))
                  .regressed);
  EXPECT_FALSE(tools::compare_bench_documents(baseline,
                                              fleet_doc("fleet N=512", 460.0))
                   .regressed);
  // Different protocol: informational only.
  EXPECT_FALSE(tools::compare_bench_documents(baseline,
                                              fleet_doc("fleet N=128", 600.0))
                   .regressed);
  // Opt-out clears the gate.
  tools::CompareOptions no_energy;
  no_energy.gate_energy = false;
  EXPECT_FALSE(tools::compare_bench_documents(
                   baseline, fleet_doc("fleet N=512", 600.0), no_energy)
                   .regressed);
}

TEST(BenchCompare, NothingGatesAcrossProtocols) {
  // Speedups at different shapes are different quantities: a smaller CI
  // shape must never fail the gate against the committed full-protocol
  // trajectory, however its numbers move.
  const JsonValue baseline = bench_doc("N=1024", 100.0, 9.0);
  const JsonValue fresh_bad = bench_doc("N=256", 300.0, 4.0);
  const auto result = tools::compare_bench_documents(baseline, fresh_bad);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.protocols_match);
  EXPECT_FALSE(result.regressed);
  EXPECT_FALSE(result.deltas.empty());  // still reported, informational
}

TEST(BenchCompare, SpeedupDropGatesOnMatchingProtocol) {
  const JsonValue baseline = bench_doc("N=256", 10.0, 10.0);
  const JsonValue fresh = bench_doc("N=256", 10.0, 7.0);  // 30% lower
  EXPECT_TRUE(tools::compare_bench_documents(baseline, fresh).regressed);

  tools::CompareOptions loose;
  loose.tolerance = 0.5;
  EXPECT_FALSE(
      tools::compare_bench_documents(baseline, fresh, loose).regressed);
}

TEST(BenchCompare, GeomeanScopesTheSpeedupGateWhenPresent) {
  // With an aggregate case, per-dtype speedups are informational (one
  // dtype's ratio legitimately moves with the runner generation); only the
  // geomean gates.
  const auto with_geomean = [](double fp16_speedup, double geomean) {
    std::vector<tools::BenchCase> cases;
    tools::BenchCase fp16;
    fp16.name = "fp16";
    fp16.metrics = {{"speedup", fp16_speedup}};
    cases.push_back(fp16);
    tools::BenchCase agg;
    agg.name = "geomean";
    agg.metrics = {{"speedup", geomean}};
    cases.push_back(agg);
    return tools::bench_document("activity_kernel", "N=1024", cases);
  };

  const JsonValue baseline = with_geomean(10.0, 9.0);
  // One dtype drops 40% but the aggregate holds: pass.
  EXPECT_FALSE(tools::compare_bench_documents(baseline, with_geomean(6.0, 8.5))
                   .regressed);
  // The aggregate itself drops beyond tolerance: fail.
  EXPECT_TRUE(tools::compare_bench_documents(baseline, with_geomean(10.0, 6.0))
                  .regressed);
}

TEST(BenchCompare, MissingCaseIsIncomparable) {
  const JsonValue baseline = bench_doc("N=256", 10.0, 8.0);
  JsonValue fresh = tools::bench_document("activity_kernel", "N=256", {});
  const auto result = tools::compare_bench_documents(baseline, fresh);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("fp16"), std::string::npos);

  const JsonValue other = tools::bench_document("other_bench", "N=256", {});
  EXPECT_FALSE(tools::compare_bench_documents(baseline, other).ok);
}

TEST(BenchCompare, MissingFreshMetricIsIncomparable) {
  // Emitter drift (a renamed/dropped metric) must not silently turn the
  // gate into a no-op: a baseline metric absent from the fresh run makes
  // the documents incomparable, exactly like a missing case.
  const JsonValue baseline = bench_doc("N=256", 10.0, 8.0);
  std::vector<tools::BenchCase> cases;
  tools::BenchCase entry;
  entry.name = "fp16";
  entry.metrics = {{"observer_ms", 80.0}, {"batched_ms", 10.0}};  // no speedup
  cases.push_back(entry);
  const JsonValue fresh =
      tools::bench_document("activity_kernel", "N=256", cases);
  const auto result = tools::compare_bench_documents(baseline, fresh);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("speedup"), std::string::npos);
}

TEST(BenchCompare, ReadBenchJsonValidatesShape) {
  const std::string path = testing::TempDir() + "gate_doc.json";
  ASSERT_TRUE(tools::write_bench_json(path, bench_doc("N=256", 10.0, 8.0)));
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(tools::read_bench_json(path, doc, error)) << error;
  EXPECT_EQ(doc.find("bench")->as_string(), "activity_kernel");

  // Valid JSON that is not a bench document is rejected.
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"not\": \"a bench doc\"}", f);
  std::fclose(f);
  EXPECT_FALSE(tools::read_bench_json(path, doc, error));
  EXPECT_FALSE(tools::read_bench_json(path + ".missing", doc, error));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpupower
