// Power traces: timestamped samples as a DCGM field poller would record
// them, with the trimming and averaging pipeline the paper applies
// (100 ms samples, first 500 ms discarded as warmup).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace gpupower::telemetry {

struct PowerSample {
  double t_s = 0.0;
  double power_w = 0.0;
};

class PowerTrace {
 public:
  PowerTrace() = default;
  explicit PowerTrace(std::vector<PowerSample> samples)
      : samples_(std::move(samples)) {}

  void push(double t_s, double power_w) { samples_.push_back({t_s, power_w}); }

  [[nodiscard]] const std::vector<PowerSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Returns a trace with every sample earlier than `trim_s` dropped
  /// (the paper's 500 ms warmup trim).
  [[nodiscard]] PowerTrace trimmed(double trim_s) const;

  [[nodiscard]] double mean_w() const;
  [[nodiscard]] double stddev_w() const;
  [[nodiscard]] double min_w() const;
  [[nodiscard]] double max_w() const;

  /// Trapezoidal energy integral over the trace span, in joules.
  [[nodiscard]] double energy_j() const;

  /// Writes "t_s,power_w" rows with a header.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<PowerSample> samples_;
};

/// One utilization reading, as `nvmlDeviceGetUtilizationRates` (or
/// `dcgmi dmon -e 203`) would report it: the busy fraction of the GPU over
/// the sampling window ending at `t_s`.
struct UtilSample {
  double t_s = 0.0;
  double utilization = 0.0;  ///< busy fraction in [0, 1]
};

/// A recorded utilization timeline — what a PowerMizer-style governor polls,
/// and what the DVFS replayer can consume as a workload (trace-driven
/// replay) or emit as a measurement.
class UtilTrace {
 public:
  UtilTrace() = default;
  explicit UtilTrace(std::vector<UtilSample> samples)
      : samples_(std::move(samples)) {}

  void push(double t_s, double utilization) {
    samples_.push_back({t_s, utilization});
  }

  [[nodiscard]] const std::vector<UtilSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;

  /// Writes "t_s,utilization" rows with a header.
  void write_csv(std::ostream& os) const;
  /// Parses the write_csv format back (header optional).  Returns false on
  /// malformed rows; `trace` then holds the rows parsed so far.
  static bool read_csv(std::istream& is, UtilTrace& trace);

 private:
  std::vector<UtilSample> samples_;
};

}  // namespace gpupower::telemetry
