// The per-event energy model: every observer event from the tiled GEMM
// traversal maps to switched capacitance on a physical rail.  This encodes
// the paper's Section V hypothesis — input-dependent power is bit-flip
// (toggle) activity plus driven Hamming weight — as a concrete CMOS dynamic
// power model: E = sum over rails of (energy per event unit) x (event count).
//
// Rails:
//   fetch    — memory hierarchy wires (DRAM interface / L2 / shared memory):
//              per-word access charge + per-bit-toggle line switching
//   operand  — register file reads and operand-collector buses feeding the
//              math units; tensor cores amortize these across fragments
//   multiply — multiplier array partial-product activity, modelled as
//              popcount(mantissa_a) x popcount(mantissa_b) (+ exponent adder
//              for FP); an exact zero operand gates the array
//   accum    — accumulator register writeback (per-bit toggles + access)
//   issue    — data-independent instruction issue/control overhead per math
//              instruction (per MAC for SIMT, per MMA for tensor cores)
//
// All energies are in picojoules.
#pragma once

#include <cstdint>

#include "numeric/dtype.hpp"

namespace gpupower::gpusim {

struct EnergyModel {
  // Per-bit toggle energies (wire switching).
  double fetch_toggle_pj = 0.30;
  double operand_toggle_pj = 0.12;
  double acc_toggle_pj = 0.02;
  // Per-word access charges (precharge, decode, clocked latches).  Fetch and
  // operand accesses drive width-proportional wire bundles, so the power
  // model scales them by (element width / 32); the accumulator is always a
  // 32-bit register.
  double fetch_access_pj = 0.50;
  double operand_access_pj = 0.60;
  double acc_access_pj = 0.30;
  // Per set bit driven on a bus word (Hamming-weight component: holding a
  // line high costs energy even without a transition).
  double weight_pj = 0.012;
  // Multiplier array energy per partial-product bit (popcount product
  // model).  Tensor-core arrays share operand routing across the fragment
  // and are substantially cheaper per product than SIMT FMA datapaths.
  double multiply_pp_simt_pj = 0.0316;
  double multiply_pp_tc_pj = 0.0054;
  // Exponent-adder energy per set exponent bit (FP only), per datapath.
  double exponent_simt_pj = 0.0316;
  double exponent_tc_pj = 0.0054;
  // Instruction issue overhead.
  double simt_issue_pj = 0.37;   ///< per FMA (HFMA2 pairing halves this for FP16)
  double mma_issue_pj = 1700.0;   ///< per MMA instruction (amortized over its MACs)
  /// Device-global scale applied to all dynamic energies; calibrates a
  /// device's process/voltage corner relative to the A100 baseline model.
  double scale = 1.0;
};

/// Raw activity totals accumulated while walking a GEMM (counts, not
/// energies).  Produced by ActivityCounters, consumed by PowerCalculator.
struct ActivityTotals {
  std::uint64_t fetch_words = 0;
  std::uint64_t fetch_toggles = 0;
  std::uint64_t fetch_weight = 0;
  std::uint64_t operand_words = 0;
  std::uint64_t operand_toggles = 0;
  std::uint64_t operand_weight = 0;
  std::uint64_t mult_pp = 0;        ///< accumulated popcount products
  std::uint64_t exponent_bits = 0;  ///< accumulated exponent popcounts (FP)
  std::uint64_t acc_updates = 0;
  std::uint64_t acc_toggles = 0;
  std::uint64_t macs = 0;

  /// Memberwise equality: parity harnesses compare whole structs so new
  /// counter fields are covered automatically.
  [[nodiscard]] bool operator==(const ActivityTotals&) const noexcept = default;

  ActivityTotals& operator+=(const ActivityTotals& o) noexcept;
  /// Multiplies every counter by `factor` (used to scale sampled estimates
  /// up to the full problem).  Factors are small rationals; rounding error
  /// is negligible against sampling noise.
  void scale_by(double factor) noexcept;
};

/// Significand in the multiplier array's operand domain: the two's
/// complement byte for INT8, the hidden-bit mantissa for FP16/FP32 (zero and
/// subnormal values carry no hidden bit, so a zero operand contributes no
/// partial products — the hardware's zero gating).
[[nodiscard]] std::uint32_t significand(std::uint32_t bits, int width) noexcept;

/// Popcount of the exponent fields of both operands (FP only), gated to zero
/// when either operand is zero (no multiply happens).
[[nodiscard]] std::uint32_t exponent_activity(std::uint32_t a_bits,
                                              std::uint32_t b_bits,
                                              int width) noexcept;

/// Multiplier array switching for one MAC given the previous operands the
/// array held: partial-product rows re-evaluate where an operand bit
/// changed, so activity is transition-driven —
///   HD(sig_a, prev_sig_a) * popcount(sig_b) +
///   HD(sig_b, prev_sig_b) * popcount(sig_a).
/// Identical back-to-back operands (sorted streams, repeated values) switch
/// almost nothing; a zero operand gates the array.
[[nodiscard]] std::uint32_t multiplier_switching(std::uint32_t sig_a,
                                                 std::uint32_t prev_sig_a,
                                                 std::uint32_t sig_b,
                                                 std::uint32_t prev_sig_b) noexcept;

/// Static per-MAC multiplier activity (popcount product) — used by the
/// power-model feature extractor as a cheap stream-free proxy.
struct MacActivity {
  std::uint32_t pp = 0;
  std::uint32_t exp_bits = 0;
};

[[nodiscard]] MacActivity mac_activity(std::uint32_t a_bits, std::uint32_t b_bits,
                                       int width) noexcept;

}  // namespace gpupower::gpusim
