#include "core/config_builder.hpp"

#include <cstdio>

#include "core/pattern_dsl.hpp"
#include "gpusim/device.hpp"

namespace gpupower::core {
namespace {

// Matches the [64, 65536] range env.cpp enforces for GPUPOWER_N, so a
// config is constructible through the builder iff it is reachable through
// the environment knobs.
constexpr std::size_t kMinN = 64;
constexpr std::size_t kMaxN = 1 << 16;
constexpr int kMaxSeeds = 10000;
constexpr std::size_t kMaxIterations = 1000000000;

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void ExperimentConfigBuilder::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

ExperimentConfigBuilder& ExperimentConfigBuilder::gpu(
    gpupower::gpusim::GpuModel model) {
  config_.gpu = model;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::dtype(
    gpupower::numeric::DType dtype) {
  config_.dtype = dtype;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::dtype(std::string_view name) {
  gpupower::numeric::DType parsed;
  if (!gpupower::numeric::parse_dtype(name, parsed)) {
    fail("unknown dtype '" + std::string(name) +
         "' (expected fp32 | fp16 | fp16t | int8)");
    return *this;
  }
  config_.dtype = parsed;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::n(std::size_t n) {
  if (n < kMinN || n > kMaxN) {
    fail("n=" + std::to_string(n) + " out of range [" + std::to_string(kMinN) +
         ", " + std::to_string(kMaxN) + "]");
    return *this;
  }
  config_.n = n;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::seeds(int seeds) {
  if (seeds < 1 || seeds > kMaxSeeds) {
    fail("seeds=" + std::to_string(seeds) + " out of range [1, " +
         std::to_string(kMaxSeeds) + "]");
    return *this;
  }
  config_.seeds = seeds;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::iterations(
    std::size_t iterations) {
  if (iterations > kMaxIterations) {
    fail("iterations=" + std::to_string(iterations) + " out of range [0, " +
         std::to_string(kMaxIterations) + "]");
    return *this;
  }
  config_.iterations = iterations;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::base_seed(
    std::uint64_t seed) {
  config_.base_seed = seed;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::pattern(
    const PatternSpec& spec) {
  config_.pattern = spec;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::pattern(
    std::string_view dsl) {
  const ParseResult parsed = parse_pattern(dsl);
  if (!parsed.ok) {
    fail("pattern DSL error at offset " + std::to_string(parsed.error_pos) +
         ": " + parsed.error);
    return *this;
  }
  config_.pattern = parsed.spec;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::sampling(
    const gpupower::gpusim::SamplingPlan& plan) {
  if (plan.k_fraction <= 0.0 || plan.k_fraction > 1.0) {
    fail("sampling.k_fraction=" + format_double(plan.k_fraction) +
         " out of range (0, 1]");
    return *this;
  }
  config_.sampling = plan;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::sampler(
    const telemetry::SamplerConfig& config) {
  if (config.period_s <= 0.0 || config.warmup_trim_s < 0.0) {
    fail("sampler period must be positive and warmup trim non-negative");
    return *this;
  }
  config_.sampler = config;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::variation(
    const gpupower::gpusim::ProcessVariation& variation) {
  config_.variation = variation;
  return *this;
}

ExperimentConfigBuilder& ExperimentConfigBuilder::env(const BenchEnv& env) {
  // Route through the validating setters so a BenchEnv assembled outside
  // read_bench_env (e.g. from CLI flags) cannot smuggle in out-of-range
  // values.
  n(env.n);
  seeds(env.seeds);
  gpupower::gpusim::SamplingPlan plan = config_.sampling;
  plan.max_tiles = env.tiles;
  plan.k_fraction = env.k_fraction;
  sampling(plan);
  return *this;
}

std::optional<ExperimentConfig> ExperimentConfigBuilder::try_build() const {
  if (!valid()) return std::nullopt;
  return config_;
}

void DvfsConfigBuilder::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

DvfsConfigBuilder& DvfsConfigBuilder::experiment(
    const ExperimentConfig& config) {
  config_.experiment = config;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::governor(
    const gpupower::gpusim::dvfs::GovernorConfig& config) {
  config_.governor = config;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::governor(std::string_view dsl) {
  const auto parsed = gpupower::gpusim::dvfs::parse_governor(dsl);
  if (!parsed.ok) {
    fail("governor DSL error at offset " + std::to_string(parsed.error_pos) +
         ": " + parsed.error);
    return *this;
  }
  config_.governor = parsed.config;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::timeline(
    const gpupower::gpusim::dvfs::WorkloadTimeline& timeline) {
  if (timeline.empty()) {
    fail("timeline has no phases");
    return *this;
  }
  config_.timeline = timeline;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::timeline(std::string_view dsl) {
  const auto parsed = gpupower::gpusim::dvfs::parse_timeline(dsl);
  if (!parsed.ok) {
    fail("timeline DSL error at offset " + std::to_string(parsed.error_pos) +
         ": " + parsed.error);
    return *this;
  }
  config_.timeline = parsed.timeline;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::add_phase_pattern(
    const PatternSpec& spec) {
  config_.phase_patterns.push_back(spec);
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::add_phase_pattern(std::string_view dsl) {
  const ParseResult parsed = parse_pattern(dsl);
  if (!parsed.ok) {
    fail("phase pattern DSL error at offset " +
         std::to_string(parsed.error_pos) + ": " + parsed.error);
    return *this;
  }
  config_.phase_patterns.push_back(parsed.spec);
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::slice(double slice_s) {
  // The microsecond floor keeps replay slice counts sane (the replayer
  // additionally hard-caps the slice count as a backstop).
  if (!(slice_s >= 1e-6) || slice_s > 10.0) {
    fail("slice=" + format_double(slice_s) +
         " out of range [1e-6, 10] seconds");
    return *this;
  }
  config_.slice_s = slice_s;
  return *this;
}

DvfsConfigBuilder& DvfsConfigBuilder::pstates(int count) {
  if (count < 1 || count > 16) {
    fail("pstates=" + std::to_string(count) + " out of range [1, 16]");
    return *this;
  }
  config_.pstates = count;
  return *this;
}

const std::string& DvfsConfigBuilder::error() const noexcept {
  if (!error_.empty()) return error_;
  static const std::string kMissingTimeline =
      "no timeline set (a DVFS config needs a workload to replay)";
  static const std::string kDanglingPattern =
      "timeline references a phase pattern index beyond the added "
      "phase patterns (add_phase_pattern)";
  static const std::string kNone;
  if (config_.timeline.empty()) return kMissingTimeline;
  if (config_.timeline.max_pattern_index() >=
      static_cast<int>(config_.phase_patterns.size())) {
    return kDanglingPattern;
  }
  return kNone;
}

std::optional<DvfsConfig> DvfsConfigBuilder::try_build() const {
  if (!valid()) return std::nullopt;
  return config_;
}

void FleetConfigBuilder::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

FleetConfigBuilder& FleetConfigBuilder::experiment(
    const ExperimentConfig& config) {
  config_.experiment = config;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_timeline(
    const gpupower::gpusim::dvfs::WorkloadTimeline& timeline) {
  if (timeline.empty()) {
    fail("timeline has no phases");
    return *this;
  }
  config_.timelines.push_back(timeline);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_timeline(std::string_view dsl) {
  const auto parsed = gpupower::gpusim::dvfs::parse_timeline(dsl);
  if (!parsed.ok) {
    fail("timeline DSL error at offset " + std::to_string(parsed.error_pos) +
         ": " + parsed.error);
    return *this;
  }
  config_.timelines.push_back(parsed.timeline);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_device(
    const FleetDeviceConfig& device) {
  config_.devices.push_back(device);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_device(
    gpupower::gpusim::GpuModel gpu, std::string_view governor_dsl,
    int timeline, int priority) {
  const auto parsed = gpupower::gpusim::dvfs::parse_governor(governor_dsl);
  if (!parsed.ok) {
    fail("governor DSL error at offset " + std::to_string(parsed.error_pos) +
         ": " + parsed.error);
    return *this;
  }
  FleetDeviceConfig device;
  device.gpu = gpu;
  device.governor = parsed.config;
  device.timeline = timeline;
  device.priority = priority;
  config_.devices.push_back(device);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_staggered_devices(
    const gpupower::gpusim::dvfs::WorkloadTimeline& timeline, int count,
    double stagger_s, gpupower::gpusim::GpuModel gpu,
    std::string_view governor_dsl) {
  if (count < 1 || count > 256) {
    fail("staggered device count " + std::to_string(count) +
         " out of range [1, 256]");
    return *this;
  }
  if (stagger_s < 0.0) {
    fail("stagger must be non-negative");
    return *this;
  }
  const int base = static_cast<int>(config_.timelines.size());
  for (int i = 0; i < count; ++i) {
    gpupower::gpusim::dvfs::WorkloadTimeline shifted;
    if (i > 0 && stagger_s > 0.0) {
      shifted = gpupower::gpusim::dvfs::WorkloadTimeline::idle(
          static_cast<double>(i) * stagger_s);
    }
    shifted.append(timeline);
    add_timeline(shifted);
    add_device(gpu, governor_dsl, /*timeline=*/base + i,
               /*priority=*/count - i);
  }
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::allocator(
    const gpupower::gpusim::fleet::AllocatorConfig& config) {
  config_.allocator = config;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::allocator(std::string_view policy) {
  gpupower::gpusim::fleet::AllocatorConfig::Policy parsed;
  if (!gpupower::gpusim::fleet::parse_allocator_policy(policy, parsed)) {
    fail("unknown allocator '" + std::string(policy) +
         "' (expected uniform | proportional | priority | greedy)");
    return *this;
  }
  config_.allocator.policy = parsed;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::cap(double cap_w) {
  if (!(cap_w > 0.0)) {
    fail("cap=" + format_double(cap_w) +
         " must be positive (infinity = uncapped)");
    return *this;
  }
  config_.allocator.cap_w = cap_w;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::thermal(
    const gpupower::gpusim::fleet::ThermalConfig& config) {
  if (config.enabled && !(config.tau_s > 0.0)) {
    fail("thermal tau must be > 0");
    return *this;
  }
  if (config.enabled && !(config.trip_c > config.release_c)) {
    fail("thermal trip temperature must exceed the release temperature");
    return *this;
  }
  config_.thermal = config;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_phase_pattern(
    const PatternSpec& spec) {
  config_.phase_patterns.push_back(spec);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::add_phase_pattern(
    std::string_view dsl) {
  const ParseResult parsed = parse_pattern(dsl);
  if (!parsed.ok) {
    fail("phase pattern DSL error at offset " +
         std::to_string(parsed.error_pos) + ": " + parsed.error);
    return *this;
  }
  config_.phase_patterns.push_back(parsed.spec);
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::slice(double slice_s) {
  if (!(slice_s >= 1e-6) || slice_s > 10.0) {
    fail("slice=" + format_double(slice_s) +
         " out of range [1e-6, 10] seconds");
    return *this;
  }
  config_.slice_s = slice_s;
  return *this;
}

FleetConfigBuilder& FleetConfigBuilder::pstates(int count) {
  if (count < 1 || count > 16) {
    fail("pstates=" + std::to_string(count) + " out of range [1, 16]");
    return *this;
  }
  config_.pstates = count;
  return *this;
}

bool FleetConfigBuilder::valid() const noexcept {
  return error_.empty() && validate_fleet_config(config_).empty();
}

std::string FleetConfigBuilder::error() const {
  if (!error_.empty()) return error_;
  return validate_fleet_config(config_);
}

std::optional<FleetConfig> FleetConfigBuilder::try_build() const {
  if (!valid()) return std::nullopt;
  return config_;
}

std::string canonical_config_key(const ExperimentConfig& config) {
  std::string key;
  key.reserve(192);
  key += "gpu=";
  key += gpupower::gpusim::name(config.gpu);
  key += "|dtype=";
  key += gpupower::numeric::name(config.dtype);
  key += "|n=" + std::to_string(config.n);
  key += "|seeds=" + std::to_string(config.seeds);
  key += "|iters=" + std::to_string(config.effective_iterations());
  key += "|base=" + std::to_string(config.base_seed);
  key += "|samp=" + std::to_string(config.sampling.max_tiles) + ":" +
         format_double(config.sampling.k_fraction) + ":" +
         std::to_string(config.sampling.seed);
  key += "|smpl=" + format_double(config.sampler.period_s) + ":" +
         format_double(config.sampler.warmup_trim_s) + ":" +
         format_double(config.sampler.ramp_tau_s) + ":" +
         format_double(config.sampler.noise_sigma_w);
  key += "|var=";
  if (config.variation) {
    key += format_double(config.variation->sigma_fraction) + ":" +
           std::to_string(config.variation->instance) + ":" +
           (config.variation->per_seed ? "perseed" : "shared");
  } else {
    key += "none";
  }
  // to_dsl keeps the key human-readable, but rounds doubles to ~6
  // significant digits; append the pattern's raw scalars at full precision
  // so near-identical specs never collide.
  key += "|pattern=" + to_dsl(config.pattern);
  key += "|praw=" + pattern_raw_key(config.pattern);
  return key;
}

std::string pattern_raw_key(const PatternSpec& pattern) {
  return std::to_string(static_cast<int>(pattern.value)) + ":" +
         format_double(pattern.mean) + ":" + format_double(pattern.sigma) +
         ":" + std::to_string(pattern.set_size) + ":" +
         std::to_string(static_cast<int>(pattern.place)) + ":" +
         format_double(pattern.sort_percent) + ":" +
         format_double(pattern.sparsity) + ":" +
         std::to_string(static_cast<int>(pattern.bitop)) + ":" +
         format_double(pattern.bit_fraction) + ":" +
         (pattern.transpose_b ? "t" : "n");
}

}  // namespace gpupower::core
