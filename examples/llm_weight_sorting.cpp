// LLM weight sorting (Section V future work): neural-network layer weights
// feed GEMMs where rows correspond to independent neurons, so rows can be
// permuted freely as long as the output is un-permuted — a computation-
// preserving transform.  This example takes a transformer-style FFN weight
// matrix, applies the permutation-invariant row sort plus an (accuracy-
// affecting) mean shift, and reports the simulated A100 power for each
// variant, verifying on the way that the row sort leaves the GEMM result
// intact.
//
//   ./build/examples/llm_weight_sorting
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/transforms.hpp"
#include "gemm/reference.hpp"
#include "gpusim/simulator.hpp"
#include "patterns/distributions.hpp"
#include "patterns/sparsity.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  const std::size_t n = env.n;
  std::printf(
      "Power-aware LLM weight transforms on a %zux%zu FFN layer (FP16-T, "
      "A100)\n\n",
      n, n);

  // Transformer FFN weights: roughly Gaussian, zero-centred, small sigma.
  const auto weights = patterns::gaussian_fill(n * n, 0.0, 0.02, 0xF0F0u);
  const auto activations = patterns::gaussian_fill(n * n, 0.0, 1.0, 7);

  gpusim::SimOptions options;
  options.sampling = gpusim::SamplingPlan::fast(env.tiles, env.k_fraction);
  const gpusim::GpuSimulator sim(gpusim::GpuModel::kA100PCIe, options);
  const auto problem = gemm::GemmProblem::square(n, /*transpose_b=*/false);

  const auto simulate = [&](const std::vector<float>& w) {
    const auto a = gemm::materialize<numeric::float16_t>(w, n, n);
    const auto b = gemm::materialize<numeric::float16_t>(activations, n, n);
    return sim.run_gemm(problem, numeric::DType::kFP16T, a, b);
  };

  analysis::Table table({"variant", "power (W)", "vs baseline", "exact?"});
  const auto baseline = simulate(weights);
  table.add_row({"baseline weights", analysis::fixed(baseline.total_w, 1),
                 "--", "yes"});

  // 1. Permutation-invariant row sort: provably exact.
  const auto sorted = core::sort_rows_permutation_invariant(weights, n, n);
  const auto sorted_report = simulate(sorted.sorted);
  table.add_row({"rows sorted by mean", analysis::fixed(sorted_report.total_w, 1),
                 analysis::fixed(sorted_report.total_w - baseline.total_w, 1) + " W",
                 "yes (un-permute output)"});

  // 2. Mean shift toward a larger average (paper Section V direction 1).
  const auto shifted = core::mean_shift(weights, 0.08);
  const auto shifted_report = simulate(shifted.shifted);
  table.add_row({"mean shifted to 0.08",
                 analysis::fixed(shifted_report.total_w, 1),
                 analysis::fixed(shifted_report.total_w - baseline.total_w, 1) + " W",
                 "no (bias " + analysis::fixed(shifted.delta, 3) + ")"});

  // 3. Structured 2:4 sparsity on the smallest magnitudes.
  auto pruned = weights;
  patterns::sparsify_2_4(pruned);
  const auto pruned_report = simulate(pruned);
  table.add_row({"2:4 magnitude pruned",
                 analysis::fixed(pruned_report.total_w, 1),
                 analysis::fixed(pruned_report.total_w - baseline.total_w, 1) + " W",
                 "approx (50% weights kept)"});

  table.print(std::cout);

  // Correctness spot check for the row sort at a small size: GEMM output
  // restored by the inverse permutation must match the original exactly for
  // the INT8 (exact-arithmetic) pipeline.
  {
    const std::size_t m = 64;
    const auto w_small = patterns::gaussian_fill(m * m, 0.0, 25.0, 1);
    const auto x_small = patterns::gaussian_fill(m * m, 0.0, 25.0, 2);
    const auto s = core::sort_rows_permutation_invariant(w_small, m, m);
    const auto p = gemm::GemmProblem::square(m, false);
    gemm::Matrix<std::int32_t> c(m, m), original_out, sorted_out;
    gemm::reference_gemm(p,
                         gemm::materialize<numeric::int8_value_t>(w_small, m, m),
                         gemm::materialize<numeric::int8_value_t>(x_small, m, m),
                         c, original_out);
    gemm::reference_gemm(
        p, gemm::materialize<numeric::int8_value_t>(s.sorted, m, m),
        gemm::materialize<numeric::int8_value_t>(x_small, m, m), c, sorted_out);
    std::vector<float> rows(sorted_out.span().begin(), sorted_out.span().end());
    const auto restored = core::unpermute_rows(rows, s.permutation, m, m);
    bool exact = true;
    for (std::size_t i = 0; i < restored.size(); ++i) {
      if (static_cast<std::int32_t>(restored[i]) != original_out.span()[i]) {
        exact = false;
      }
    }
    std::printf("\nrow-sort round-trip on INT8 GEMM: %s\n",
                exact ? "bit-exact" : "MISMATCH (bug!)");
  }
  return 0;
}
