#include "core/report.hpp"

#include "core/pattern_dsl.hpp"
#include "gpusim/device.hpp"

namespace gpupower::core {

analysis::JsonValue to_json(const ExperimentConfig& config,
                            const ExperimentResult& result) {
  using analysis::JsonValue;
  JsonValue rails = JsonValue::object();
  rails.set("fetch_w", JsonValue::number(result.rails.fetch_w))
      .set("operand_w", JsonValue::number(result.rails.operand_w))
      .set("multiply_w", JsonValue::number(result.rails.multiply_w))
      .set("accum_w", JsonValue::number(result.rails.accum_w))
      .set("issue_w", JsonValue::number(result.rails.issue_w));

  JsonValue protocol = JsonValue::object();
  protocol
      .set("n", JsonValue::integer(static_cast<long long>(config.n)))
      .set("seeds", JsonValue::integer(result.seeds))
      .set("iterations",
           JsonValue::integer(
               static_cast<long long>(config.effective_iterations())))
      .set("sampled_tiles",
           JsonValue::integer(
               static_cast<long long>(config.sampling.max_tiles)))
      .set("k_fraction", JsonValue::number(config.sampling.k_fraction));

  JsonValue j = JsonValue::object();
  j.set("gpu", JsonValue::string(gpusim::name(config.gpu)))
      .set("dtype", JsonValue::string(gpupower::numeric::name(config.dtype)))
      .set("pattern", JsonValue::string(to_dsl(config.pattern)))
      .set("power_w", JsonValue::number(result.power_w))
      .set("power_std_w", JsonValue::number(result.power_std_w))
      .set("iteration_s", JsonValue::number(result.iteration_s))
      .set("energy_per_iter_j", JsonValue::number(result.energy_per_iter_j))
      .set("alignment", JsonValue::number(result.alignment))
      .set("weight_fraction", JsonValue::number(result.weight_fraction))
      .set("throttled", JsonValue::boolean(result.throttled))
      .set("clock_frac", JsonValue::number(result.clock_frac))
      .set("rails", std::move(rails))
      .set("protocol", std::move(protocol));
  return j;
}

analysis::JsonValue sweep_to_json(FigureId id, const ExperimentConfig& base,
                                  std::span<const SweepEntry> entries) {
  using analysis::JsonValue;
  JsonValue series = JsonValue::array();
  for (const SweepEntry& entry : entries) {
    ExperimentConfig config = base;
    config.pattern = entry.point.spec;
    JsonValue point = to_json(config, entry.result);
    point.set("x", JsonValue::number(entry.point.x))
        .set("label", JsonValue::string(entry.point.label));
    series.push(std::move(point));
  }
  JsonValue j = JsonValue::object();
  j.set("figure", JsonValue::string(figure_key(id)))
      .set("name", JsonValue::string(figure_name(id)))
      .set("axis", JsonValue::string(figure_axis(id)))
      .set("series", std::move(series));
  return j;
}

}  // namespace gpupower::core
