#include "core/dvfs_experiment.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/config_builder.hpp"
#include "core/pattern_spec.hpp"
#include "gpusim/dvfs/dsl_util.hpp"
#include "patterns/rng.hpp"

namespace gpupower::core {
namespace {

namespace dvfs = gpupower::gpusim::dvfs;

template <typename T>
gpupower::gpusim::ActivityEstimate typed_activity(
    const gpupower::gpusim::GpuSimulator& sim, const PatternSpec& pattern,
    gpupower::numeric::DType dtype, std::size_t n,
    const gemm::GemmProblem& problem, std::uint64_t replica_seed) {
  const ExperimentInputs<T> inputs =
      build_inputs<T>(pattern, dtype, n, replica_seed);
  return sim.activity(problem, dtype, inputs.a, inputs.b);
}

gpupower::gpusim::ActivityEstimate pattern_activity(
    const gpupower::gpusim::GpuSimulator& sim, const PatternSpec& pattern,
    gpupower::numeric::DType dtype, std::size_t n,
    const gemm::GemmProblem& problem, std::uint64_t replica_seed) {
  return with_storage_type(dtype, [&](auto tag) {
    return typed_activity<typename decltype(tag)::type>(
        sim, pattern, dtype, n, problem, replica_seed);
  });
}

using dvfs::detail::format_exact;

}  // namespace

std::vector<gpupower::gpusim::ActivityTotals> replica_activity_variants(
    const gpupower::gpusim::GpuSimulator& sim,
    const ExperimentConfig& experiment,
    std::span<const PatternSpec> phase_patterns,
    const dvfs::WorkloadTimeline& timeline, const gemm::GemmProblem& problem,
    int seed_index) {
  const int max_ref = timeline.max_pattern_index();
  if (max_ref >= static_cast<int>(phase_patterns.size())) {
    throw std::invalid_argument(
        "timeline references phase pattern " + std::to_string(max_ref) +
        " but only " + std::to_string(phase_patterns.size()) +
        " phase pattern(s) are configured");
  }

  const std::uint64_t replica_seed = patterns::derive_seed(
      experiment.base_seed, static_cast<std::uint64_t>(seed_index));

  std::vector<gpupower::gpusim::ActivityTotals> variants;
  variants.reserve(phase_patterns.size() + 1);
  variants.push_back(pattern_activity(sim, experiment.pattern,
                                      experiment.dtype, experiment.n, problem,
                                      replica_seed)
                         .totals);
  // Every listed pattern gets its variant (index k -> variant k + 1), with
  // the same replica seed: a phase pattern equal to the base pattern
  // produces bit-identical totals, which the parity tests pin.
  for (const PatternSpec& pattern : phase_patterns) {
    variants.push_back(pattern_activity(sim, pattern, experiment.dtype,
                                        experiment.n, problem, replica_seed)
                           .totals);
  }
  return variants;
}

std::string validate_dvfs_config(const DvfsConfig& config) {
  if (config.experiment.seeds <= 0) {
    return "experiment.seeds must be >= 1, got " +
           std::to_string(config.experiment.seeds);
  }
  if (config.slice_s <= 0.0) return "slice_s must be > 0";
  if (config.timeline.empty()) return "timeline has no phases";
  if (config.pstates < 1 || config.pstates > 16) {
    // Matches DvfsConfigBuilder's bound; a hand-built config must not
    // request a million-entry P-state table.
    return "pstates must be in [1, 16], got " + std::to_string(config.pstates);
  }
  const int max_pattern = config.timeline.max_pattern_index();
  if (max_pattern >= static_cast<int>(config.phase_patterns.size())) {
    return "timeline references phase pattern " + std::to_string(max_pattern) +
           " but only " + std::to_string(config.phase_patterns.size()) +
           " phase pattern(s) are configured";
  }
  return {};
}

dvfs::ReplayResult run_dvfs_seed_replica(const DvfsConfig& config,
                                         int seed_index) {
  if (config.slice_s <= 0.0) {
    throw std::invalid_argument("run_dvfs_seed_replica: slice_s must be > 0");
  }
  if (config.timeline.empty()) {
    throw std::invalid_argument(
        "run_dvfs_seed_replica: timeline has no phases");
  }
  if (config.pstates < 1 || config.pstates > 16) {
    throw std::invalid_argument(
        "run_dvfs_seed_replica: pstates must be in [1, 16], got " +
        std::to_string(config.pstates));
  }

  const gpupower::gpusim::GpuSimulator sim(
      config.experiment.gpu, replica_sim_options(config.experiment,
                                                 seed_index));
  const gemm::GemmProblem problem{config.experiment.n, config.experiment.n,
                                  config.experiment.n, 1.0f, 0.0f,
                                  config.experiment.pattern.transpose_b};
  const std::vector<gpupower::gpusim::ActivityTotals> variants =
      replica_activity_variants(sim, config.experiment,
                                config.phase_patterns, config.timeline,
                                problem, seed_index);

  const dvfs::PStateTable table =
      config.pstates <= 1
          ? dvfs::PStateTable::boost_only(sim.descriptor())
          : dvfs::PStateTable::for_device(sim.descriptor(), config.pstates);
  const dvfs::TimelineReplayer replayer(
      sim.descriptor(), problem, config.experiment.dtype,
      std::span<const gpupower::gpusim::ActivityTotals>(variants), table);
  const auto governor = dvfs::make_governor(config.governor);
  return replayer.replay(config.timeline, *governor, config.slice_s);
}

DvfsResult reduce_dvfs_replicas(
    const DvfsConfig& config,
    std::span<const dvfs::ReplayResult> replicas) {
  analysis::RunningStats energy, avg_power, peak_power, completion, duration;
  analysis::RunningStats backlog_max, mean_backlog, transitions;
  DvfsResult result;

  for (const dvfs::ReplayResult& replica : replicas) {
    energy.add(replica.energy_j);
    avg_power.add(replica.avg_power_w);
    peak_power.add(replica.peak_power_w);
    completion.add(replica.completion_s);
    duration.add(replica.duration_s);
    backlog_max.add(replica.backlog_max_s);
    mean_backlog.add(replica.mean_backlog_s);
    transitions.add(static_cast<double>(replica.transitions));
    result.truncated = result.truncated || replica.truncated;
  }

  result.energy_j = energy.mean();
  result.energy_std_j = energy.stddev();
  result.avg_power_w = avg_power.mean();
  result.peak_power_w = peak_power.mean();
  result.completion_s = completion.mean();
  result.duration_s = duration.mean();
  result.backlog_max_s = backlog_max.mean();
  result.mean_backlog_s = mean_backlog.mean();
  result.transitions = transitions.mean();
  result.seeds = config.experiment.seeds;
  if (!replicas.empty()) result.trace = replicas.front();
  return result;
}

DvfsResult run_dvfs(const DvfsConfig& config) {
  if (config.experiment.seeds <= 0) {
    throw std::invalid_argument(
        "run_dvfs: experiment.seeds must be >= 1, got " +
        std::to_string(config.experiment.seeds));
  }
  std::vector<dvfs::ReplayResult> replicas;
  replicas.reserve(static_cast<std::size_t>(config.experiment.seeds));
  for (int s = 0; s < config.experiment.seeds; ++s) {
    replicas.push_back(run_dvfs_seed_replica(config, s));
  }
  return reduce_dvfs_replicas(config, replicas);
}

std::string canonical_governor_key(const dvfs::GovernorConfig& governor) {
  // Raw governor fields at full precision — to_dsl is the %g display form
  // and would collide configs differing past 6 significant digits.
  return std::to_string(static_cast<int>(governor.policy)) + ":" +
         std::to_string(governor.fixed_pstate) + ":" +
         format_exact(governor.boost_util) + ":" +
         format_exact(governor.boost_hold_s) + ":" +
         format_exact(governor.low_util) + ":" +
         format_exact(governor.low_hold_s);
}

std::string canonical_timeline_key(const dvfs::WorkloadTimeline& timeline) {
  // Short timelines keep the readable phase list; long ones (a burst DSL
  // can legally realise ~2M phases) collapse to phase count + an FNV-1a
  // hash over the raw phase fields — no multi-megabyte serialisation is
  // ever materialised.
  if (timeline.phases().size() <= 64) {
    return dvfs::to_dsl(timeline);
  }
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 64; b += 8) {
      hash ^= (bits >> b) & 0xFFu;
      hash *= 1099511628211ull;
    }
  };
  for (const auto& phase : timeline.phases()) {
    mix(phase.duration_s);
    mix(phase.utilization);
    mix(static_cast<double>(phase.pattern));
  }
  std::string key = "#";
  key += std::to_string(timeline.phases().size());
  key += ':';
  key += std::to_string(hash);
  return key;
}

std::string canonical_dvfs_key(const DvfsConfig& config) {
  std::string key = canonical_config_key(config.experiment);
  key += "|gov=" + canonical_governor_key(config.governor);
  key += "|slice=" + format_exact(config.slice_s);
  key += "|pstates=" + std::to_string(config.pstates);
  key += "|tl=" + canonical_timeline_key(config.timeline);
  // Phase patterns contribute their raw scalars; the fragment is absent
  // when the list is empty, keeping historical keys stable.
  for (const PatternSpec& pattern : config.phase_patterns) {
    key += "|pp=" + pattern_raw_key(pattern);
  }
  return key;
}

}  // namespace gpupower::core
