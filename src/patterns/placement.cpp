#include "patterns/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gpupower::patterns {
namespace {

/// Applies the paper's partial-sort rule to an arbitrary index traversal:
/// traversal[i] gives the storage index of the i-th logical slot.
void partial_sort_traversal(std::vector<float>& data,
                            const std::vector<std::size_t>& traversal,
                            double percent) {
  const std::size_t n = traversal.size();
  const auto k = static_cast<std::size_t>(
      std::llround(std::clamp(percent, 0.0, 100.0) / 100.0 *
                   static_cast<double>(n)));
  if (k == 0) return;

  // Rank values by (value, traversal position) so ties resolve stably.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return data[traversal[a]] < data[traversal[b]];
                   });

  // The k smallest values, ascending.
  std::vector<float> lowest(k);
  for (std::size_t i = 0; i < k; ++i) lowest[i] = data[traversal[order[i]]];

  // Remaining values in original traversal order.
  std::vector<bool> selected(n, false);
  for (std::size_t i = 0; i < k; ++i) selected[order[i]] = true;
  std::vector<float> rest;
  rest.reserve(n - k);
  for (std::size_t i = 0; i < n; ++i) {
    if (!selected[i]) rest.push_back(data[traversal[i]]);
  }

  for (std::size_t i = 0; i < k; ++i) data[traversal[i]] = lowest[i];
  for (std::size_t i = k; i < n; ++i) data[traversal[i]] = rest[i - k];
}

std::vector<std::size_t> row_major_traversal(std::size_t rows, std::size_t cols) {
  std::vector<std::size_t> t(rows * cols);
  std::iota(t.begin(), t.end(), std::size_t{0});
  return t;
}

std::vector<std::size_t> column_major_traversal(std::size_t rows,
                                                std::size_t cols) {
  std::vector<std::size_t> t;
  t.reserve(rows * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) t.push_back(r * cols + c);
  }
  return t;
}

}  // namespace

void partial_sort_flat(std::vector<float>& data, double percent) {
  partial_sort_traversal(data, row_major_traversal(1, data.size()), percent);
}

void partial_sort_rows(std::vector<float>& data, std::size_t rows,
                       std::size_t cols, double percent) {
  partial_sort_traversal(data, row_major_traversal(rows, cols), percent);
}

void partial_sort_columns(std::vector<float>& data, std::size_t rows,
                          std::size_t cols, double percent) {
  partial_sort_traversal(data, column_major_traversal(rows, cols), percent);
}

void partial_sort_within_rows(std::vector<float>& data, std::size_t rows,
                              std::size_t cols, double percent) {
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<float> row(data.begin() + static_cast<std::ptrdiff_t>(r * cols),
                           data.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    partial_sort_flat(row, percent);
    std::copy(row.begin(), row.end(),
              data.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
}

void full_sort(std::vector<float>& data) {
  std::sort(data.begin(), data.end());
}

void sort_rows_by_mean(std::vector<float>& data, std::size_t rows,
                       std::size_t cols, bool ascending) {
  std::vector<double> means(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) sum += data[r * cols + c];
    means[r] = sum / static_cast<double>(cols);
  }
  std::vector<std::size_t> order(rows);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ascending ? means[a] < means[b] : means[a] > means[b];
  });
  std::vector<float> out(data.size());
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(order[r] * cols),
              data.begin() + static_cast<std::ptrdiff_t>((order[r] + 1) * cols),
              out.begin() + static_cast<std::ptrdiff_t>(r * cols));
  }
  data = std::move(out);
}

}  // namespace gpupower::patterns
