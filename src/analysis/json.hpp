// Minimal JSON support for structured experiment output: a small builder
// (objects, arrays, scalars, correct string escaping and non-finite number
// handling) plus a strict recursive-descent parser and read accessors —
// enough to export results to downstream analysis and to diff committed
// bench trajectories (tools/bench_export --compare) without an external
// dependency.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpupower::analysis {

class JsonValue {
 public:
  /// Scalars.
  static JsonValue number(double v);
  static JsonValue integer(long long v);
  static JsonValue boolean(bool v);
  static JsonValue string(std::string_view v);
  static JsonValue null();

  /// Containers (built incrementally).
  static JsonValue object();
  static JsonValue array();

  /// Object insertion; returns *this for chaining.  Aborts on non-objects.
  JsonValue& set(std::string_view key, JsonValue value);
  /// Array append.  Aborts on non-arrays.
  JsonValue& push(JsonValue value);

  /// Serialises compactly (no whitespace) or with 2-space indentation.
  [[nodiscard]] std::string dump(bool pretty = false) const;

  // --- read accessors (for parsed documents) ------------------------------
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  /// Numbers and integers both count as numeric.
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object member keys in insertion order (empty for non-objects).
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Array / object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Array element access; aborts when out of range or not an array.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Numeric value (integers widen); `fallback` for non-numeric kinds.
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] bool as_boolean(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void write(std::string& out, bool pretty, int depth) const;
};

/// Escapes a string for inclusion in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;          ///< empty when ok
  std::size_t error_pos = 0;  ///< byte offset of the error in the input
};

/// Strict JSON parser (RFC 8259 subset: no comments, no trailing commas;
/// \uXXXX escapes decode BMP code points to UTF-8).  Never throws.
[[nodiscard]] JsonParseResult json_parse(std::string_view text);

}  // namespace gpupower::analysis
