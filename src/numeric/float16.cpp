#include "numeric/float16.hpp"

#include <bit>
#include <cmath>

namespace gpupower::numeric {

std::uint16_t float16_t::from_float(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  // NaN: keep the quiet bit plus top mantissa payload bits.
  if (abs > 0x7F800000u) {
    return static_cast<std::uint16_t>(sign | 0x7E00u | ((abs >> 13) & 0x01FFu));
  }
  // Infinity, or magnitude >= 65536 which rounds past the largest finite
  // half.  Values in [65520, 65536) reach infinity through mantissa carry in
  // the normal path below.
  if (abs >= 0x47800000u) {  // 2^16 in binary32
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  // Normal binary16 range (>= 2^-14): rebias the exponent from 127 to 15 and
  // round the mantissa to 10 bits, nearest-even on the 13 dropped bits.
  if (abs >= 0x38800000u) {  // 2^-14
    const std::uint32_t rebased = abs - 0x38000000u;  // (127-15) << 23
    const std::uint32_t dropped = rebased & 0x1FFFu;
    std::uint32_t half = rebased >> 13;
    if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  // Subnormal range (< 2^-14): the half subnormal ULP is 2^-24, so the
  // stored integer is round-to-nearest-even(|value| * 2^24).  The product is
  // exact in binary32 (a pure exponent shift), and nearbyintf honours the
  // default FE_TONEAREST mode.  A result of 1024 encodes 2^-14, the smallest
  // normal, which is exactly the correct carry-out representation.
  const float mag = std::bit_cast<float>(abs);
  const auto half = static_cast<std::uint32_t>(std::nearbyintf(mag * 0x1p24f));
  return static_cast<std::uint16_t>(sign | half);
}

float float16_t::to_float_impl(std::uint16_t bits) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t mant = bits & 0x3FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Subnormal: renormalise the mantissa and adjust the exponent.
      int e = 0;
      std::uint32_t m = mant;
      while ((m & 0x400u) == 0) {
        ++e;
        m <<= 1;
      }
      out = sign | static_cast<std::uint32_t>(127 - 15 - e + 1) << 23 |
            ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp + 127 - 15) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

}  // namespace gpupower::numeric
