#include "core/env.hpp"

#include <cstdlib>
#include <string>

namespace gpupower::core {
namespace {

long read_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  return (end != nullptr && *end == '\0' && v >= 0) ? v : fallback;
}

double read_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0' && v > 0.0) ? v : fallback;
}

}  // namespace

BenchEnv read_bench_env() {
  BenchEnv env;
  env.n = static_cast<std::size_t>(read_long("GPUPOWER_N", 512));
  env.seeds = static_cast<int>(read_long("GPUPOWER_SEEDS", 2));
  env.tiles = static_cast<std::size_t>(read_long("GPUPOWER_TILES", 12));
  env.k_fraction = read_double("GPUPOWER_KFRAC", 0.5);
  env.csv = std::getenv("GPUPOWER_CSV") != nullptr;
  if (env.seeds < 1) env.seeds = 1;
  if (env.n < 64) env.n = 64;
  return env;
}

}  // namespace gpupower::core
