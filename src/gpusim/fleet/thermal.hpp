// Per-device thermal state threaded across replay slices: a first-order RC
// die-temperature model replacing the per-slice steady-state fixed point
// the static power path solves.  The die relaxes exponentially toward
// ambient + R_thermal * P (the same steady state evaluate_at's fixed point
// converges to), so a burst heats the die over seconds and an idle gap
// cools it — ramp-up/cool-down dynamics a per-slice fixed point cannot
// express.
//
// Throttle hysteresis: crossing `trip_c` latches the throttle (the fleet
// clamps the device's P-state to at least `throttle_pstate`); the latch
// only releases once the die cools below `release_c`.  The trip/release
// gap is what prevents per-slice flapping — pinned by the no-flap test.
//
// The state is a deterministic scalar recurrence: identical power
// sequences give identical temperature traces on any worker count.
#pragma once

#include "gpusim/power.hpp"

namespace gpupower::gpusim::fleet {

struct ThermalConfig {
  bool enabled = false;
  /// The same anchor the static fixed point relaxes toward — one
  /// constant, so thermal-off and thermal-on model the same silicon.
  double ambient_c = kAmbientC;
  /// RC time constant of the die + heatsink, seconds.  GPUs settle over
  /// roughly tens of seconds; 8 s keeps burst dynamics visible at the
  /// 10 ms default slice.
  double tau_s = 8.0;
  double trip_c = 87.0;      ///< throttle latches at or above this
  double release_c = 78.0;   ///< ...and releases at or below this
  /// Minimum P-state index while throttling; -1 = the table's deepest.
  int throttle_pstate = -1;
  /// Starting die temperature; < 0 starts at ambient.
  double initial_c = -1.0;

  [[nodiscard]] bool operator==(const ThermalConfig&) const noexcept =
      default;
};

class ThermalState {
 public:
  /// `r_c_per_w` is the device's steady-state thermal resistance
  /// (DeviceDescriptor::thermal_resistance_c_per_w): the RC model's
  /// asymptote at power P is ambient + R * P, matching the fixed point.
  ThermalState(const ThermalConfig& config, double r_c_per_w);

  /// Advances the die by one slice at `power_w`: exact exponential
  /// relaxation toward ambient + R * P over `dt_s`, then the hysteresis
  /// latch update.
  void step(double power_w, double dt_s);

  [[nodiscard]] double temperature_c() const noexcept {
    return temperature_c_;
  }
  [[nodiscard]] bool throttling() const noexcept { return throttling_; }

 private:
  ThermalConfig config_;
  double r_c_per_w_;
  double temperature_c_;
  bool throttling_;
};

}  // namespace gpupower::gpusim::fleet
