// Power-capped inference (Section V future work, "data pruning for power
// capping"): a datacenter operator caps each GPU below its TDP; instead of
// DVFS throttling (which slows everything down), this example uses the
// PowerAwareSparsifier to find the minimal magnitude-pruning sparsity whose
// simulated GEMM power fits under the cap, and compares the two approaches'
// effective throughput.
//
//   ./build/examples/power_capped_inference
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/transforms.hpp"
#include "gpusim/simulator.hpp"
#include "patterns/distributions.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  const std::size_t n = env.n;
  const gpusim::SamplingPlan plan =
      gpusim::SamplingPlan::fast(env.tiles, env.k_fraction);

  std::printf(
      "Sparsity as a power-capping lever (%zux%zu FP16 GEMM, simulated "
      "A100)\n\n",
      n, n);

  const auto weights = patterns::gaussian_fill(n * n, 0.0, 210.0, 42);
  const auto activations = patterns::gaussian_fill(n * n, 0.0, 210.0, 7);

  gpusim::SimOptions options;
  options.sampling = plan;
  const gpusim::GpuSimulator sim(gpusim::GpuModel::kA100PCIe, options);
  const auto problem = gemm::GemmProblem::square(n);
  const auto dense_a = gemm::materialize<numeric::float16_t>(weights, n, n);
  const auto b = gemm::materialize<numeric::float16_t>(activations, n, n);
  const auto dense =
      sim.run_gemm(problem, numeric::DType::kFP16, dense_a, b);

  // Sweep caps from just under the dense draw down toward the floor.
  const core::PowerAwareSparsifier sparsifier(gpusim::GpuModel::kA100PCIe,
                                              numeric::DType::kFP16, plan);

  analysis::Table table({"power cap (W)", "DVFS throughput", "sparsity",
                         "sparsity throughput", "L2 norm kept"});
  for (const double fraction : {0.99, 0.97, 0.95, 0.92}) {
    const double cap = dense.total_w * fraction;

    // Option A: DVFS — clock scales until the cap holds; throughput follows
    // the clock (dynamic power is ~linear in f at fixed voltage).
    const double dvfs_clock =
        std::min(1.0, (cap - dense.idle_w - dense.leakage_w) /
                          (dense.total_w - dense.idle_w - dense.leakage_w));
    // Option B: prune weights until the data draws little enough power.
    const auto design = sparsifier.design(weights, n, cap);

    table.add_row(
        {analysis::fixed(cap, 1),
         analysis::fixed(100.0 * dvfs_clock, 1) + " %",
         design.feasible ? analysis::fixed(100.0 * design.sparsity, 1) + " %"
                         : "infeasible",
         design.feasible ? "100 % (full clock)" : "--",
         design.feasible ? analysis::fixed(100.0 * design.l2_retained, 1) + " %"
                         : "--"});
  }
  table.print(std::cout);
  std::printf(
      "\nDense draw: %.1f W.  DVFS trades throughput for power; input\n"
      "sparsification holds full throughput and trades model fidelity\n"
      "(L2 norm kept) instead — the trade-off the paper proposes exploring.\n",
      dense.total_w);
  return 0;
}
