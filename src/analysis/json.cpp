#include "analysis/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>
#include <utility>

namespace gpupower::analysis {

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::integer(long long v) {
  JsonValue j;
  j.kind_ = Kind::kInteger;
  j.integer_ = v;
  return j;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::string(std::string_view v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_.assign(v);
  return j;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

JsonValue JsonValue::array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value) {
  assert(kind_ == Kind::kObject);
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::write(std::string& out, bool pretty, int depth) const {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing = pretty ? std::string(2 * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", integer_);
      out += buf;
      return;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no Inf/NaN
        return;
      }
      // Shortest decimal that round-trips the exact double: spec documents
      // (core/spec.hpp) rely on dump -> parse preserving every scalar bit
      // for canonical-key equality, and short values ("2.5") stay short.
      char buf[64];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, number_);
      out.append(buf, ec == std::errc{} ? ptr : buf);
      return;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += indent;
        items_[i].write(out, pretty, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += closing;
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += indent;
        out += '"';
        out += json_escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.write(out, pretty, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += closing;
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(bool pretty) const {
  std::string out;
  write(out, pretty, 0);
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  if (kind_ == Kind::kObject) {
    out.reserve(members_.size());
    for (const auto& [name, value] : members_) out.push_back(name);
  }
  return out;
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  assert(kind_ == Kind::kArray && index < items_.size());
  return items_[index];
}

double JsonValue::as_number(double fallback) const noexcept {
  if (kind_ == Kind::kNumber) return number_;
  if (kind_ == Kind::kInteger) return static_cast<double>(integer_);
  return fallback;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.error_pos = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after JSON value";
      result.error_pos = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view word, JsonValue value,
                     JsonValue& out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape digit");
            }
          }
          // BMP code point to UTF-8 (surrogate pairs unsupported — the
          // emitter never produces them for our ASCII-ish documents).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  /// RFC 8259 number grammar: -? (0 | [1-9][0-9]*) frac? exp?.  strtod is
  /// laxer (accepts "+5", ".5", "5."), so the token is validated first.
  static bool rfc8259_number(const std::string& token) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t p) {
      return p < token.size() && token[p] >= '0' && token[p] <= '9';
    };
    if (i < token.size() && token[i] == '-') ++i;
    if (!digit(i)) return false;
    if (token[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == token.size();
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a number");
    const std::string token(text_.substr(start, pos_ - start));
    if (!rfc8259_number(token)) return fail("malformed number");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    // Integral values without fraction/exponent stay integers, matching
    // the emitter's two numeric kinds — unless they overflow long long, in
    // which case the double value is kept rather than silently saturating.
    if (token.find_first_of(".eE") == std::string::npos) {
      long long integral = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), integral);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        out = JsonValue::integer(integral);
        return true;
      }
    }
    out = JsonValue::number(value);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > 128) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        JsonValue object = JsonValue::object();
        skip_ws();
        if (consume('}')) {
          out = std::move(object);
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':' after object key");
          JsonValue value;
          if (!parse_value(value)) return false;
          object.set(key, std::move(value));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) break;
          return fail("expected ',' or '}' in object");
        }
        out = std::move(object);
        ok = true;
        break;
      }
      case '[': {
        ++pos_;
        JsonValue array = JsonValue::array();
        skip_ws();
        if (consume(']')) {
          out = std::move(array);
          ok = true;
          break;
        }
        for (;;) {
          JsonValue value;
          if (!parse_value(value)) return false;
          array.push(std::move(value));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) break;
          return fail("expected ',' or ']' in array");
        }
        out = std::move(array);
        ok = true;
        break;
      }
      case '"': {
        std::string value;
        if (!parse_string(value)) return false;
        out = JsonValue::string(value);
        ok = true;
        break;
      }
      case 't':
        ok = parse_literal("true", JsonValue::boolean(true), out);
        break;
      case 'f':
        ok = parse_literal("false", JsonValue::boolean(false), out);
        break;
      case 'n':
        ok = parse_literal("null", JsonValue::null(), out);
        break;
      default:
        ok = parse_number(out);
        break;
    }
    --depth_;
    return ok;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace gpupower::analysis
