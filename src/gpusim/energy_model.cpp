#include "gpusim/energy_model.hpp"

#include <bit>

namespace gpupower::gpusim {

ActivityTotals& ActivityTotals::operator+=(const ActivityTotals& o) noexcept {
  fetch_words += o.fetch_words;
  fetch_toggles += o.fetch_toggles;
  fetch_weight += o.fetch_weight;
  operand_words += o.operand_words;
  operand_toggles += o.operand_toggles;
  operand_weight += o.operand_weight;
  mult_pp += o.mult_pp;
  exponent_bits += o.exponent_bits;
  acc_updates += o.acc_updates;
  acc_toggles += o.acc_toggles;
  macs += o.macs;
  return *this;
}

void ActivityTotals::scale_by(double factor) noexcept {
  const auto mul = [factor](std::uint64_t& v) {
    v = static_cast<std::uint64_t>(static_cast<double>(v) * factor + 0.5);
  };
  mul(fetch_words);
  mul(fetch_toggles);
  mul(fetch_weight);
  mul(operand_words);
  mul(operand_toggles);
  mul(operand_weight);
  mul(mult_pp);
  mul(exponent_bits);
  mul(acc_updates);
  mul(acc_toggles);
  mul(macs);
}

std::uint32_t significand(std::uint32_t bits, int width) noexcept {
  switch (width) {
    case 8: {
      // Sign-magnitude: Booth-style recoding makes array activity track the
      // operand magnitude, not the raw two's-complement bits (whose
      // popcount explodes for small negative values).
      const auto v = static_cast<std::int32_t>(static_cast<std::int8_t>(bits));
      return static_cast<std::uint32_t>(v < 0 ? -v : v);
    }
    case 16: {
      const std::uint32_t exp = (bits >> 10) & 0x1Fu;
      const std::uint32_t mant = bits & 0x3FFu;
      return exp == 0 ? mant : (mant | 0x400u);
    }
    case 32: {
      const std::uint32_t exp = (bits >> 23) & 0xFFu;
      const std::uint32_t mant = bits & 0x7FFFFFu;
      return exp == 0 ? mant : (mant | 0x800000u);
    }
    default:
      return 0;
  }
}

std::uint32_t exponent_activity(std::uint32_t a_bits, std::uint32_t b_bits,
                                int width) noexcept {
  switch (width) {
    case 16: {
      if (significand(a_bits, 16) == 0 || significand(b_bits, 16) == 0) return 0;
      return static_cast<std::uint32_t>(std::popcount((a_bits >> 10) & 0x1Fu) +
                                        std::popcount((b_bits >> 10) & 0x1Fu));
    }
    case 32: {
      if (significand(a_bits, 32) == 0 || significand(b_bits, 32) == 0) return 0;
      return static_cast<std::uint32_t>(std::popcount((a_bits >> 23) & 0xFFu) +
                                        std::popcount((b_bits >> 23) & 0xFFu));
    }
    default:
      return 0;  // INT8 has no exponent datapath
  }
}

std::uint32_t multiplier_switching(std::uint32_t sig_a, std::uint32_t prev_sig_a,
                                   std::uint32_t sig_b,
                                   std::uint32_t prev_sig_b) noexcept {
  const auto ha = static_cast<std::uint32_t>(std::popcount(sig_a ^ prev_sig_a));
  const auto hb = static_cast<std::uint32_t>(std::popcount(sig_b ^ prev_sig_b));
  const auto pa = static_cast<std::uint32_t>(std::popcount(sig_a));
  const auto pb = static_cast<std::uint32_t>(std::popcount(sig_b));
  return ha * pb + hb * pa;
}

MacActivity mac_activity(std::uint32_t a_bits, std::uint32_t b_bits,
                         int width) noexcept {
  MacActivity out;
  const auto pa =
      static_cast<std::uint32_t>(std::popcount(significand(a_bits, width)));
  const auto pb =
      static_cast<std::uint32_t>(std::popcount(significand(b_bits, width)));
  out.pp = pa * pb;
  out.exp_bits = exponent_activity(a_bits, b_bits, width);
  return out;
}

}  // namespace gpupower::gpusim
