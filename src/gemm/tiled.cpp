// Explicit instantiations of the compute-only kernel configurations so that
// downstream targets linking only for computation do not re-instantiate the
// templates.
#include "gemm/tiled.hpp"

namespace gpupower::gemm {

template void tiled_gemm<float, NullObserver>(
    const GemmProblem&, const Matrix<float>&, const Matrix<float>&,
    const Matrix<float>&, Matrix<float>&, const TileConfig&, NullObserver&);
template void tiled_gemm<gpupower::numeric::float16_t, NullObserver>(
    const GemmProblem&, const Matrix<gpupower::numeric::float16_t>&,
    const Matrix<gpupower::numeric::float16_t>&, const Matrix<float>&,
    Matrix<float>&, const TileConfig&, NullObserver&);
template void tiled_gemm<gpupower::numeric::int8_value_t, NullObserver>(
    const GemmProblem&, const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<std::int32_t>&, Matrix<std::int32_t>&, const TileConfig&,
    NullObserver&);

}  // namespace gpupower::gemm
