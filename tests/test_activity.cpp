#include "gpusim/activity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "patterns/distributions.hpp"

namespace gpupower::gpusim {
namespace {

using gemm::GemmProblem;
using gemm::Matrix;
using gemm::TileConfig;
using gpupower::numeric::DType;
using gpupower::numeric::float16_t;

template <typename T>
Matrix<T> random_matrix(std::size_t n, std::uint64_t seed) {
  return gemm::materialize<T>(
      patterns::gaussian_fill(n * n, 0.0, 210.0, seed), n, n);
}

TEST(ActivityCounters, ZeroMatricesProduceNoDataActivity) {
  const std::size_t n = 64;
  Matrix<float16_t> a(n, n), b(n, n);  // all zeros
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  EXPECT_EQ(est.totals.fetch_toggles, 0u);
  EXPECT_EQ(est.totals.operand_toggles, 0u);
  EXPECT_EQ(est.totals.fetch_weight, 0u);
  EXPECT_EQ(est.totals.mult_pp, 0u);
  EXPECT_EQ(est.totals.exponent_bits, 0u);
  EXPECT_EQ(est.totals.acc_toggles, 0u);
  // But the machine still moved words and issued MACs.
  EXPECT_GT(est.totals.fetch_words, 0u);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

TEST(ActivityCounters, ConstantMatricesToggleOnlyAtBoundaries) {
  const std::size_t n = 64;
  Matrix<float16_t> a(n, n), b(n, n);
  a.fill(float16_t(2.5f));
  b.fill(float16_t(2.5f));
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  // Identical words back to back: zero toggles after the first word, and
  // zero multiplier transitions after the first MAC.
  const int word_bits = 16;
  EXPECT_LE(est.totals.fetch_toggles, static_cast<std::uint64_t>(word_bits));
  EXPECT_LE(est.totals.operand_toggles, static_cast<std::uint64_t>(word_bits));
  // Weight accumulates for every word regardless.
  EXPECT_GT(est.totals.fetch_weight, 0u);
}

TEST(ActivityCounters, RandomDataTogglesHeavily) {
  const std::size_t n = 64;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  // Random FP16 words differ in ~6-8 bits on average.
  const double per_word = static_cast<double>(est.totals.operand_toggles) /
                          static_cast<double>(est.totals.operand_words);
  EXPECT_GT(per_word, 4.0);
  EXPECT_LT(per_word, 10.0);
}

TEST(ActivityCounters, SortedInputsToggleLessThanRandom) {
  const std::size_t n = 64;
  auto values = patterns::gaussian_fill(n * n, 0.0, 210.0, 1);
  auto sorted_values = values;
  std::sort(sorted_values.begin(), sorted_values.end());
  const auto random_a = gemm::materialize<float16_t>(values, n, n);
  const auto sorted_a = gemm::materialize<float16_t>(sorted_values, n, n);

  const auto config = TileConfig::for_dtype(DType::kFP16);
  const auto est_random =
      estimate_activity(GemmProblem::square(n), random_a, random_a, config);
  const auto est_sorted =
      estimate_activity(GemmProblem::square(n), sorted_a, sorted_a, config);
  EXPECT_LT(est_sorted.totals.operand_toggles,
            est_random.totals.operand_toggles);
  EXPECT_LT(est_sorted.totals.mult_pp, est_random.totals.mult_pp);
}

TEST(ActivityTotals, AccumulateAndScale) {
  ActivityTotals a;
  a.macs = 10;
  a.mult_pp = 100;
  ActivityTotals b;
  b.macs = 5;
  b.mult_pp = 50;
  a += b;
  EXPECT_EQ(a.macs, 15u);
  EXPECT_EQ(a.mult_pp, 150u);
  a.scale_by(2.0);
  EXPECT_EQ(a.macs, 30u);
  EXPECT_EQ(a.mult_pp, 300u);
}

struct SamplingCase {
  std::size_t max_tiles;
  double k_fraction;
};

class SampledVsExact : public ::testing::TestWithParam<SamplingCase> {};

TEST_P(SampledVsExact, EstimatesWithinTolerance) {
  // Property: for statistically homogeneous inputs, the sampled estimate of
  // every data-dependent counter stays within ~10% of the exact walk.
  const std::size_t n = 192;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto config = TileConfig::for_dtype(DType::kFP16);
  const auto problem = GemmProblem::square(n);

  const auto exact = estimate_activity(problem, a, b, config);
  SamplingPlan plan;
  plan.max_tiles = GetParam().max_tiles;
  plan.k_fraction = GetParam().k_fraction;
  const auto sampled = estimate_activity(problem, a, b, config, plan);

  const auto within = [](std::uint64_t s, std::uint64_t e, double tol) {
    return std::fabs(static_cast<double>(s) - static_cast<double>(e)) <=
           tol * static_cast<double>(e);
  };
  EXPECT_TRUE(within(sampled.totals.operand_toggles,
                     exact.totals.operand_toggles, 0.10));
  EXPECT_TRUE(within(sampled.totals.mult_pp, exact.totals.mult_pp, 0.10));
  EXPECT_TRUE(within(sampled.totals.acc_toggles, exact.totals.acc_toggles,
                     0.10));
  EXPECT_TRUE(within(sampled.totals.macs, exact.totals.macs, 0.10));
}

INSTANTIATE_TEST_SUITE_P(Plans, SampledVsExact,
                         ::testing::Values(SamplingCase{16, 1.0},
                                           SamplingCase{8, 0.5},
                                           SamplingCase{4, 0.5},
                                           SamplingCase{16, 0.25}));

TEST(Sampling, ExactPlanWalksEveryTile) {
  const std::size_t n = 256;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  EXPECT_FALSE(est.sampled);
  EXPECT_EQ(est.tiles_walked, est.tiles_total);
  EXPECT_DOUBLE_EQ(est.k_coverage, 1.0);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

TEST(Sampling, SmallProblemNeverSamples) {
  // When the grid has fewer quanta than max_tiles, the walk is exhaustive
  // at warp granularity.
  const std::size_t n = 64;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  SamplingPlan plan;
  plan.max_tiles = 1000;
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16), plan);
  EXPECT_FALSE(est.sampled);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

}  // namespace
}  // namespace gpupower::gpusim
