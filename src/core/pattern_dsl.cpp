#include "core/pattern_dsl.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace gpupower::core {
namespace {

struct Arg {
  std::string key;  ///< empty for positional
  double value = 0.0;
  bool percent = false;
};

struct Stage {
  std::string name;
  std::vector<Arg> args;
  std::size_t pos = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(std::vector<Stage>& stages, std::string& error,
             std::size_t& error_pos) {
    skip_ws();
    if (at_end()) {
      error = "empty pattern";
      error_pos = 0;
      return false;
    }
    for (;;) {
      Stage stage;
      if (!parse_stage(stage, error, error_pos)) return false;
      stages.push_back(std::move(stage));
      skip_ws();
      if (at_end()) return true;
      if (!consume('|')) {
        error = "expected '|' between stages";
        error_pos = pos_;
        return false;
      }
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (!at_end() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_identifier(std::string& out) {
    skip_ws();
    const std::size_t start = pos_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{}) return false;
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  bool parse_stage(Stage& stage, std::string& error, std::size_t& error_pos) {
    skip_ws();
    stage.pos = pos_;
    if (!parse_identifier(stage.name)) {
      error = "expected stage name";
      error_pos = pos_;
      return false;
    }
    if (!consume('(')) {
      error = "expected '(' after '" + stage.name + "'";
      error_pos = pos_;
      return false;
    }
    skip_ws();
    if (consume(')')) return true;
    for (;;) {
      Arg arg;
      skip_ws();
      // Optional key=
      const std::size_t before = pos_;
      std::string ident;
      if (parse_identifier(ident)) {
        if (consume('=')) {
          arg.key = ident;
        } else {
          pos_ = before;  // it was the start of something else (error below)
        }
      }
      if (!parse_number(arg.value)) {
        error = "expected number in '" + stage.name + "(...)'";
        error_pos = pos_;
        return false;
      }
      if (consume('%')) arg.percent = true;
      stage.args.push_back(std::move(arg));
      if (consume(',')) continue;
      if (consume(')')) return true;
      error = "expected ',' or ')' in '" + stage.name + "(...)'";
      error_pos = pos_;
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Looks up an argument by key, or by position when unnamed.
bool find_arg(const Stage& stage, std::string_view key, std::size_t position,
              double& out, bool as_fraction_when_percent = false) {
  std::size_t positional = 0;
  for (const Arg& arg : stage.args) {
    const bool named_match = !arg.key.empty() && arg.key == key;
    const bool positional_match = arg.key.empty() && positional == position;
    if (arg.key.empty()) ++positional;
    if (named_match || positional_match) {
      out = arg.percent && as_fraction_when_percent ? arg.value / 100.0
                                                    : arg.value;
      return true;
    }
  }
  return false;
}

bool fail(ParseResult& result, const Stage& stage, const std::string& message) {
  result.ok = false;
  result.error = message;
  result.error_pos = stage.pos;
  return false;
}

bool apply_stage(ParseResult& result, const Stage& stage, bool& have_value,
                 bool& have_place, bool& have_sparsity, bool& have_bitop) {
  PatternSpec& spec = result.spec;
  const auto one_value_stage = [&]() {
    if (have_value) {
      return fail(result, stage,
                  "duplicate value-distribution stage '" + stage.name + "'");
    }
    have_value = true;
    return true;
  };
  const auto one_place_stage = [&]() {
    if (have_place) {
      return fail(result, stage, "duplicate placement stage '" + stage.name + "'");
    }
    have_place = true;
    return true;
  };
  const auto one_bit_stage = [&]() {
    if (have_bitop) {
      return fail(result, stage, "duplicate bit stage '" + stage.name + "'");
    }
    have_bitop = true;
    return true;
  };

  double v = 0.0;
  if (stage.name == "gaussian" || stage.name == "constant" ||
      stage.name == "set") {
    if (!one_value_stage()) return false;
    if (stage.name == "gaussian") spec.value = PatternSpec::Value::kGaussian;
    if (stage.name == "constant") spec.value = PatternSpec::Value::kConstant;
    if (stage.name == "set") {
      spec.value = PatternSpec::Value::kValueSet;
      if (find_arg(stage, "size", 0, v)) {
        if (v < 1.0) return fail(result, stage, "set size must be >= 1");
        spec.set_size = static_cast<std::size_t>(v);
      }
    }
    const std::size_t mean_pos = stage.name == "set" ? 1 : 0;
    if (find_arg(stage, "mean", mean_pos, v)) spec.mean = v;
    if (find_arg(stage, "sigma", mean_pos + 1, v)) {
      if (v <= 0.0) return fail(result, stage, "sigma must be positive");
      spec.sigma = v;
    }
    return true;
  }
  if (stage.name == "sort_rows" || stage.name == "sort_cols" ||
      stage.name == "sort_within_rows") {
    if (!one_place_stage()) return false;
    spec.place = stage.name == "sort_rows"
                     ? PatternSpec::Place::kSortRows
                     : stage.name == "sort_cols"
                           ? PatternSpec::Place::kSortColumns
                           : PatternSpec::Place::kSortWithinRows;
    if (!find_arg(stage, "percent", 0, v)) {
      return fail(result, stage, stage.name + " needs a percentage");
    }
    if (v < 0.0 || v > 100.0) {
      return fail(result, stage, "sort percentage must be in [0, 100]");
    }
    spec.sort_percent = v;
    return true;
  }
  if (stage.name == "full_sort") {
    if (!one_place_stage()) return false;
    spec.place = PatternSpec::Place::kFullSort;
    return true;
  }
  if (stage.name == "sparsity") {
    if (have_sparsity) return fail(result, stage, "duplicate sparsity stage");
    have_sparsity = true;
    if (!find_arg(stage, "fraction", 0, v, /*as_fraction_when_percent=*/true)) {
      return fail(result, stage, "sparsity needs a fraction");
    }
    if (v < 0.0 || v > 1.0) {
      return fail(result, stage, "sparsity fraction must be in [0, 1]");
    }
    spec.sparsity = v;
    return true;
  }
  static const std::map<std::string_view, PatternSpec::BitOp> kBitOps{
      {"flip_bits", PatternSpec::BitOp::kFlipRandom},
      {"rand_lsb", PatternSpec::BitOp::kRandomizeLow},
      {"rand_msb", PatternSpec::BitOp::kRandomizeHigh},
      {"zero_lsb", PatternSpec::BitOp::kZeroLow},
      {"zero_msb", PatternSpec::BitOp::kZeroHigh},
  };
  if (const auto it = kBitOps.find(stage.name); it != kBitOps.end()) {
    if (!one_bit_stage()) return false;
    spec.bitop = it->second;
    if (!find_arg(stage, "fraction", 0, v, /*as_fraction_when_percent=*/true)) {
      return fail(result, stage, stage.name + " needs a width fraction");
    }
    if (v < 0.0 || v > 1.0) {
      return fail(result, stage, "bit fraction must be in [0, 1]");
    }
    spec.bit_fraction = v;
    return true;
  }
  if (stage.name == "no_transpose") {
    spec.transpose_b = false;
    return true;
  }
  return fail(result, stage, "unknown stage '" + stage.name + "'");
}

}  // namespace

ParseResult parse_pattern(std::string_view text) {
  ParseResult result;
  std::vector<Stage> stages;
  Parser parser(text);
  if (!parser.parse(stages, result.error, result.error_pos)) {
    result.ok = false;
    return result;
  }
  bool have_value = false, have_place = false, have_sparsity = false,
       have_bitop = false;
  for (const Stage& stage : stages) {
    if (!apply_stage(result, stage, have_value, have_place, have_sparsity,
                     have_bitop)) {
      return result;
    }
  }
  result.ok = true;
  return result;
}

std::string to_dsl(const PatternSpec& spec) {
  std::ostringstream ss;
  switch (spec.value) {
    case PatternSpec::Value::kGaussian:
      ss << "gaussian(mean=" << spec.mean;
      if (spec.sigma >= 0.0) ss << ", sigma=" << spec.sigma;
      ss << ")";
      break;
    case PatternSpec::Value::kValueSet:
      ss << "set(size=" << spec.set_size << ", mean=" << spec.mean;
      if (spec.sigma >= 0.0) ss << ", sigma=" << spec.sigma;
      ss << ")";
      break;
    case PatternSpec::Value::kConstant:
      ss << "constant(mean=" << spec.mean;
      if (spec.sigma >= 0.0) ss << ", sigma=" << spec.sigma;
      ss << ")";
      break;
  }
  switch (spec.place) {
    case PatternSpec::Place::kNone:
      break;
    case PatternSpec::Place::kSortRows:
      ss << " | sort_rows(" << spec.sort_percent << "%)";
      break;
    case PatternSpec::Place::kSortColumns:
      ss << " | sort_cols(" << spec.sort_percent << "%)";
      break;
    case PatternSpec::Place::kSortWithinRows:
      ss << " | sort_within_rows(" << spec.sort_percent << "%)";
      break;
    case PatternSpec::Place::kFullSort:
      ss << " | full_sort()";
      break;
  }
  if (spec.sparsity > 0.0) ss << " | sparsity(" << spec.sparsity << ")";
  switch (spec.bitop) {
    case PatternSpec::BitOp::kNone:
      break;
    case PatternSpec::BitOp::kFlipRandom:
      ss << " | flip_bits(" << spec.bit_fraction << ")";
      break;
    case PatternSpec::BitOp::kRandomizeLow:
      ss << " | rand_lsb(" << spec.bit_fraction << ")";
      break;
    case PatternSpec::BitOp::kRandomizeHigh:
      ss << " | rand_msb(" << spec.bit_fraction << ")";
      break;
    case PatternSpec::BitOp::kZeroLow:
      ss << " | zero_lsb(" << spec.bit_fraction << ")";
      break;
    case PatternSpec::BitOp::kZeroHigh:
      ss << " | zero_msb(" << spec.bit_fraction << ")";
      break;
  }
  if (!spec.transpose_b) ss << " | no_transpose()";
  return ss.str();
}

}  // namespace gpupower::core
