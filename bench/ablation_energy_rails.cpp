// Ablation: which physical rail explains which takeaway?  Re-evaluates four
// representative experiments with each energy-model rail zeroed in turn,
// reporting how much of the baseline-vs-variant power delta that rail
// carries.  This is the design-choice audit for the DESIGN.md claim that
// the takeaways *emerge* from toggle physics rather than hard-coded curves.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/pattern_spec.hpp"
#include "fig_harness.hpp"
#include "gpusim/activity.hpp"
#include "gpusim/power.hpp"

namespace {

using namespace gpupower;

enum class Rail { kNone, kFetch, kOperand, kMultiply, kAccum, kWeight };

const char* rail_name(Rail r) {
  switch (r) {
    case Rail::kNone:
      return "full model";
    case Rail::kFetch:
      return "- fetch";
    case Rail::kOperand:
      return "- operand";
    case Rail::kMultiply:
      return "- multiply";
    case Rail::kAccum:
      return "- accum";
    case Rail::kWeight:
      return "- weight";
  }
  return "?";
}

gpusim::DeviceDescriptor ablated(Rail rail) {
  gpusim::DeviceDescriptor dev = gpusim::device(gpusim::GpuModel::kA100PCIe);
  switch (rail) {
    case Rail::kNone:
      break;
    case Rail::kFetch:
      dev.energy.fetch_toggle_pj = dev.energy.fetch_access_pj = 0.0;
      break;
    case Rail::kOperand:
      dev.energy.operand_toggle_pj = dev.energy.operand_access_pj = 0.0;
      break;
    case Rail::kMultiply:
      dev.energy.multiply_pp_simt_pj = dev.energy.multiply_pp_tc_pj = 0.0;
      dev.energy.exponent_simt_pj = dev.energy.exponent_tc_pj = 0.0;
      break;
    case Rail::kAccum:
      dev.energy.acc_toggle_pj = dev.energy.acc_access_pj = 0.0;
      break;
    case Rail::kWeight:
      dev.energy.weight_pj = 0.0;
      break;
  }
  return dev;
}

double evaluate(const gpusim::DeviceDescriptor& dev,
                const core::PatternSpec& spec, numeric::DType dtype,
                const core::BenchEnv& env) {
  const auto problem = gemm::GemmProblem{env.n, env.n, env.n, 1.0f, 0.0f,
                                         spec.transpose_b};
  const auto inputs =
      core::build_inputs<numeric::float16_t>(spec, dtype, env.n, 42);
  gpusim::SamplingPlan plan;
  plan.max_tiles = env.tiles;
  plan.k_fraction = env.k_fraction;
  const auto est = gpusim::estimate_activity(
      problem, inputs.a, inputs.b, gemm::TileConfig::for_dtype(dtype), plan);
  return gpusim::PowerCalculator(dev).evaluate(problem, dtype, est.totals)
      .total_w;
}

}  // namespace

int main() {
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env,
                        "Ablation: per-rail contribution to each takeaway "
                        "(FP16, baseline vs variant)");

  struct Variant {
    const char* name;
    core::PatternSpec spec;
  };
  std::vector<Variant> variants;
  {
    core::PatternSpec sorted = core::baseline_gaussian_spec();
    sorted.place = core::PatternSpec::Place::kSortRows;
    sorted.sort_percent = 100.0;
    variants.push_back({"T9 sorted+aligned", sorted});
    core::PatternSpec sparse = core::baseline_gaussian_spec();
    sparse.sparsity = 0.5;
    variants.push_back({"T12 sparsity 50%", sparse});
    core::PatternSpec shifted = core::baseline_gaussian_spec();
    shifted.mean = 4096.0;
    shifted.sigma = 1.0;
    variants.push_back({"T2 mean shift", shifted});
    core::PatternSpec zeroed = core::baseline_gaussian_spec();
    zeroed.bitop = core::PatternSpec::BitOp::kZeroLow;
    zeroed.bit_fraction = 0.5;
    variants.push_back({"T14 LSBs zeroed", zeroed});
  }

  const auto baseline_spec = core::baseline_gaussian_spec();
  analysis::Table table({"model", "baseline W", "T9 dW", "T12 dW", "T2 dW",
                         "T14 dW"});
  for (const Rail rail : {Rail::kNone, Rail::kFetch, Rail::kOperand,
                          Rail::kMultiply, Rail::kAccum, Rail::kWeight}) {
    const auto dev = ablated(rail);
    const double base =
        evaluate(dev, baseline_spec, numeric::DType::kFP16, env);
    std::vector<double> row{base};
    for (const auto& variant : variants) {
      row.push_back(evaluate(dev, variant.spec, numeric::DType::kFP16, env) -
                    base);
    }
    table.add_row(rail_name(rail), row, 1);
  }
  table.print(std::cout);
  std::printf(
      "\nReading: a rail whose removal shrinks a delta (dW moves toward 0)\n"
      "is the physical carrier of that takeaway — e.g. removing the multiply\n"
      "rail should flatten T9 (sorted streams stop saving array switching),\n"
      "and removing operand wires should flatten T2.\n");
  return 0;
}
