// Dense row-major matrix container shared by the kernels, the activity
// model, and the pattern pipeline.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "numeric/scalar_traits.hpp"

namespace gpupower::gemm {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> span() noexcept { return data_; }
  [[nodiscard]] std::span<const T> span() const noexcept { return data_; }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
    }
    return out;
  }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Converts an FP32-generated buffer into a typed matrix (round to nearest),
/// following the paper's protocol of generating FP32 values once and
/// converting per datatype.
template <typename T>
[[nodiscard]] Matrix<T> materialize(const std::vector<float>& values,
                                    std::size_t rows, std::size_t cols) {
  assert(values.size() == rows * cols);
  Matrix<T> out(rows, cols);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.span()[i] = gpupower::numeric::scalar_traits<T>::from_float(values[i]);
  }
  return out;
}

/// Extracts each element's raw storage bits widened to uint32 (for the
/// alignment / Hamming-weight analysis of Fig. 8).
template <typename T>
[[nodiscard]] std::vector<std::uint32_t> raw_bits(const Matrix<T>& m) {
  using traits = gpupower::numeric::scalar_traits<T>;
  std::vector<std::uint32_t> out(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(traits::to_bits(m.span()[i]));
  }
  return out;
}

}  // namespace gpupower::gemm
