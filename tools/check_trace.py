#!/usr/bin/env python3
"""Validates a gpupower Chrome-trace JSON file (GPUPOWER_TRACE /
`gpowerctl --trace-out`).

Checks, in order:
  1. the file is valid JSON with a `traceEvents` list and
     `otherData.dropped` counter;
  2. every event is a complete-span record: ph == "X", string `name`,
     numeric `ts`/`dur` (dur >= 0), integer `pid`/`tid`;
  3. events are sorted by start timestamp (monotonic `ts`), the order the
     exporter guarantees so parents precede their children;
  4. per-tid spans nest properly: any two spans on one thread are either
     disjoint or one contains the other — overlapping-but-not-nested
     spans mean a broken recorder, not a real timeline.  Spans in
     CROSS_THREAD_SPANS are exempt: their start is stamped on a different
     thread than their ring (queue.wait opens at enqueue time on the
     submitter), so they overlap the owning worker's other spans by
     design;
  5. an `args` member, when present, is a JSON object of scalar values
     (strings and numbers — the obs::SpanArgs export surface; nested
     containers or nulls mean a hand-rolled emitter);
  6. every `--require NAME` span name appears at least once;
  7. every span whose name matches a `--require-args PATTERN` glob
     carries an args object with a string "key" member — the scenario
     canonical key the attribution pipeline (tools/trace_report.py)
     groups by.

Usage:
  tools/check_trace.py TRACE.json [--require engine.submit]
                       [--require-args 'replica.*'] ...
  tools/check_trace.py --selftest

Exit codes: 0 ok, 1 validation failure, 2 usage / unreadable input.
The CI gcc-release job runs this over a traced
`gpowerctl run examples/specs/fleet_capping.json`; the --selftest mode
(synthetic good and bad traces) runs as an ordinary ctest.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys

# Spans shorter than the clock quantum collapse to equal float
# microsecond stamps; containment checks get this much slack (µs).
EPSILON_US = 1e-3

# Spans whose start timestamp is captured on a different thread than the
# ring they land on (see src/core/engine.cpp): checked for shape and
# monotonicity, exempt from the per-tid nesting stack.
CROSS_THREAD_SPANS = {"queue.wait"}


def fail(path: str, message: str) -> None:
    print(f"check_trace: {path}: {message}", file=sys.stderr)


def validate_args(event: dict, where: str, name: str, path: str,
                  require_args: list[str]) -> bool:
    """Rule 5 + 7: args shape, and key presence on --require-args spans."""
    args = event.get("args")
    if args is not None:
        if not isinstance(args, dict):
            fail(path, f"{where} ({name}): args is not an object")
            return False
        for k, v in args.items():
            # bool is an int subclass; reject it explicitly — the
            # exporter emits only strings and numbers.
            if isinstance(v, bool) or not isinstance(v, (str, int, float)):
                fail(
                    path,
                    f"{where} ({name}): args[{k!r}] is not a scalar "
                    f"(got {type(v).__name__})",
                )
                return False
    if any(fnmatch.fnmatchcase(name, pattern) for pattern in require_args):
        key = args.get("key") if isinstance(args, dict) else None
        if not isinstance(key, str) or not key:
            fail(
                path,
                f"{where} ({name}): matches --require-args but carries "
                f"no string args.key (scenario attribution missing)",
            )
            return False
    return True


def validate(doc: object, path: str, required: list[str],
             require_args: list[str] | None = None) -> bool:
    require_args = require_args or []
    if not isinstance(doc, dict):
        fail(path, "top level is not a JSON object")
        return False
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "missing traceEvents list")
        return False
    other = doc.get("otherData")
    if not isinstance(other, dict) or not isinstance(other.get("dropped"), int):
        fail(path, "missing otherData.dropped counter")
        return False

    names = set()
    last_ts = None
    # Per-tid stack of (start, end): events arrive start-sorted, so proper
    # nesting means each new span either starts after the innermost open
    # span ends (pop it) or lies fully inside it (push).
    stacks: dict[int, list[tuple[float, float]]] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(path, f"{where}: not an object")
            return False
        if event.get("ph") != "X":
            fail(path, f"{where}: ph is not 'X' (complete span)")
            return False
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"{where}: missing span name")
            return False
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(
            dur, (int, float)
        ):
            fail(path, f"{where} ({name}): non-numeric ts/dur")
            return False
        if dur < 0:
            fail(path, f"{where} ({name}): negative duration {dur}")
            return False
        tid = event.get("tid")
        if not isinstance(event.get("pid"), int) or not isinstance(tid, int):
            fail(path, f"{where} ({name}): non-integer pid/tid")
            return False
        if last_ts is not None and ts < last_ts:
            fail(
                path,
                f"{where} ({name}): timestamps not monotonic "
                f"({ts} after {last_ts})",
            )
            return False
        last_ts = ts
        names.add(name)
        if not validate_args(event, where, name, path, require_args):
            return False

        if name in CROSS_THREAD_SPANS:
            continue
        end = ts + dur
        stack = stacks.setdefault(tid, [])
        while stack and ts >= stack[-1][1] - EPSILON_US:
            stack.pop()
        if stack and end > stack[-1][1] + EPSILON_US:
            fail(
                path,
                f"{where} ({name}): span [{ts}, {end}] overlaps but does "
                f"not nest inside the open span ending at {stack[-1][1]} "
                f"on tid {tid}",
            )
            return False
        stack.append((ts, end))

    missing = [name for name in required if name not in names]
    if missing:
        fail(
            path,
            f"required span(s) never recorded: {', '.join(missing)} "
            f"({len(events)} event(s) present)",
        )
        return False

    dropped = other["dropped"]
    print(
        f"check_trace: {path}: OK — {len(events)} event(s), "
        f"{len(names)} distinct span name(s), {dropped} dropped"
    )
    return True


def check_file(path: str, required: list[str],
               require_args: list[str]) -> int:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(path, f"cannot read: {e}")
        return 2
    except json.JSONDecodeError as e:
        fail(path, f"invalid JSON: {e}")
        return 1
    return 0 if validate(doc, path, required, require_args) else 1


def selftest() -> int:
    def span(name, ts, dur, tid=1):
        return {
            "name": name,
            "cat": "gpupower",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "dur": dur,
        }

    def doc(events, dropped=0):
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped": dropped},
        }

    good = [
        # Parent with two sequential children, plus a disjoint span on
        # another thread.
        doc(
            [
                span("engine.submit", 0.0, 100.0),
                span("store.read", 1.0, 10.0),
                span("replica.fleet", 20.0, 70.0, tid=2),
                span("reduce.fleet", 95.0, 4.0),
            ]
        ),
        doc([], dropped=3),
        # Zero-length spans at the same stamp (sub-quantum work).
        doc([span("a", 5.0, 0.0), span("a", 5.0, 0.0)]),
        # A queue.wait span opens at enqueue time (stamped on the
        # submitter) and so overlaps the worker's previous compute span
        # without nesting — exempt by design.
        doc(
            [
                span("replica.fleet", 0.0, 10.0),
                span("queue.wait", 4.0, 8.0),
                span("replica.fleet", 12.0, 5.0),
            ]
        ),
    ]
    bad = [
        ({"traceEvents": {}}, "traceEvents not a list"),
        (doc([{"ph": "X"}]), "missing span name"),
        (doc([span("a", 0.0, -1.0)]), "negative duration"),
        (doc([span("b", 10.0, 1.0), span("a", 0.0, 1.0)]), "unsorted ts"),
        (
            doc([span("a", 0.0, 10.0), span("b", 5.0, 10.0)]),
            "overlap without nesting",
        ),
        (doc([span("a", 0.0, 1.0)], dropped="lots"), "non-integer dropped"),
    ]

    ok = True
    for i, document in enumerate(good):
        if not validate(document, f"<selftest good {i}>", []):
            print(f"check_trace: selftest: good case {i} rejected")
            ok = False
    for i, (document, label) in enumerate(bad):
        if validate(document, f"<selftest bad {i}>", []):
            print(f"check_trace: selftest: bad case {i} ({label}) accepted")
            ok = False
    if validate(doc([span("a", 0.0, 1.0)]), "<selftest require>", ["zzz"]):
        print("check_trace: selftest: missing required span accepted")
        ok = False

    # Attributed spans: scalar args pass, containers and bools fail, and
    # --require-args demands a string key on matching names.
    def attributed(name, args):
        event = span(name, 0.0, 1.0)
        event["args"] = args
        return event

    good_args = doc(
        [attributed("replica.fleet", {"key": "fleet\x1fgpu=a100", "seed": 3})]
    )
    if not validate(good_args, "<selftest args good>", [],
                    ["replica.*", "engine.submit"]):
        print("check_trace: selftest: scalar args rejected")
        ok = False
    bad_args = [
        (attributed("a", {"key": ["nested"]}), "list-valued arg"),
        (attributed("a", {"flag": True}), "bool-valued arg"),
        (attributed("a", {"key": None}), "null-valued arg"),
    ]
    for i, (event, label) in enumerate(bad_args):
        if validate(doc([event]), f"<selftest args bad {i}>", []):
            print(f"check_trace: selftest: args case {i} ({label}) accepted")
            ok = False
    for i, (event, label) in enumerate(
        [
            (span("replica.fleet", 0.0, 1.0), "span without args"),
            (attributed("replica.fleet", {"seed": 1}), "args without key"),
            (attributed("replica.fleet", {"key": 7}), "numeric key"),
        ]
    ):
        if validate(doc([event]), f"<selftest require-args {i}>", [],
                    ["replica.*"]):
            print(
                f"check_trace: selftest: require-args case {i} ({label}) "
                f"accepted"
            )
            ok = False
    print(f"check_trace: selftest {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate a gpupower Chrome-trace JSON file."
    )
    parser.add_argument("trace", nargs="?", help="trace file to validate")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear (repeatable)",
    )
    parser.add_argument(
        "--require-args",
        action="append",
        default=[],
        metavar="PATTERN",
        help="glob of span names that must carry a string args.key "
        "(repeatable)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="validate synthetic good/bad traces and exit",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.trace:
        parser.error("a trace file (or --selftest) is required")
    return check_file(args.trace, args.require, args.require_args)


if __name__ == "__main__":
    sys.exit(main())
