#!/usr/bin/env python3
"""Aggregates a gpupower Chrome-trace JSON file (GPUPOWER_TRACE /
`gpowerctl --trace-out`) into where-did-the-time-go tables:

  by span name      count, total, SELF time (total minus direct children),
                    mean and max duration per distinct span name;
  by scenario       the same totals grouped by the scenario canonical key
                    each span carries in args.key (engine.submit /
                    replica.* / reduce.* / store.* spans are attributed;
                    unattributed spans are reported as a remainder line).

Self time uses the exporter's guarantees (ts-sorted events, proper
per-tid nesting — see tools/check_trace.py): a per-thread stack charges
every span's duration against its direct parent, so a parent's self time
is what IT spent, not what its subtree spent.  Spans in
CROSS_THREAD_SPANS (queue.wait) are stamped on a different thread than
their ring and never nest; they aggregate by name but are exempt from the
stack.

Scenario keys are kind-prefixed canonical keys ("fleet\\x1fgpu=...", a few
KB for fleet specs) — tables show the kind plus a stable 12-hex digest
and a clipped preview; --json emits the full keys.

Usage:
  tools/trace_report.py TRACE.json [--top N] [--json] [--out FILE]
                        [--min-scenarios N]
  tools/trace_report.py --selftest

Exit codes: 0 ok, 1 malformed trace or unmet --min-scenarios, 2 usage /
unreadable input.  CI runs this over the traced fleet_capping smoke
(--min-scenarios asserts the attribution pipeline end to end) and uploads
the --out document next to the trace; the --selftest (exact self-time
arithmetic on synthetic traces) runs as an ordinary ctest.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

# Keep in sync with tools/check_trace.py: sub-quantum spans collapse to
# equal float microsecond stamps (slack, µs), and these spans are stamped
# cross-thread so they never take part in per-tid nesting.
EPSILON_US = 1e-3
CROSS_THREAD_SPANS = {"queue.wait"}

# The scenario-key field separator (core canonical_scenario_key): the key
# is "<kind>\x1f<field list>".
KIND_SEPARATOR = "\x1f"


def fail(path: str, message: str) -> None:
    print(f"trace_report: {path}: {message}", file=sys.stderr)


class Aggregate:
    """Count / total / self / max accumulator for one group."""

    __slots__ = ("count", "total_us", "self_us", "max_us")

    def __init__(self) -> None:
        self.count = 0
        self.total_us = 0.0
        self.self_us = 0.0
        self.max_us = 0.0

    def add(self, dur_us: float, self_us: float) -> None:
        self.count += 1
        self.total_us += dur_us
        self.self_us += self_us
        self.max_us = max(self.max_us, dur_us)


class Report:
    def __init__(self) -> None:
        self.events = 0
        self.by_name: dict[str, Aggregate] = {}
        self.by_key: dict[str, Aggregate] = {}
        self.unattributed_self_us = 0.0

    def record(self, name: str, key: str | None, dur_us: float,
               self_us: float) -> None:
        self.by_name.setdefault(name, Aggregate()).add(dur_us, self_us)
        if key is not None:
            self.by_key.setdefault(key, Aggregate()).add(dur_us, self_us)
        else:
            self.unattributed_self_us += self_us


def analyze(doc: object, path: str) -> Report | None:
    """Builds the aggregates; returns None on a malformed document.

    Validation here is shape-only (check_trace.py is the full validator):
    enough to guarantee the stack arithmetic below is well-defined.
    """
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        fail(path, "not a Chrome-trace document (missing traceEvents list)")
        return None

    report = Report()
    # Per-tid stack of open frames [end_us, name, key, self_us]; events
    # arrive ts-sorted, so a new span either closes the innermost frames
    # or nests inside the top one.
    stacks: dict[int, list[list]] = {}

    def close(frame: list) -> None:
        report.record(frame[1], frame[2], frame[4], max(frame[3], 0.0))

    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{i}]: not an object")
            return None
        name = event.get("name")
        ts = event.get("ts")
        dur = event.get("dur")
        if (
            not isinstance(name, str)
            or not isinstance(ts, (int, float))
            or not isinstance(dur, (int, float))
            or dur < 0
        ):
            fail(path, f"traceEvents[{i}]: malformed span record")
            return None
        report.events += 1
        args = event.get("args")
        key = args.get("key") if isinstance(args, dict) else None
        if key is not None and not isinstance(key, str):
            key = None

        if name in CROSS_THREAD_SPANS:
            report.record(name, key, dur, dur)
            continue
        end = ts + dur
        stack = stacks.setdefault(event.get("tid", 0), [])
        while stack and ts >= stack[-1][0] - EPSILON_US:
            close(stack.pop())
        if stack:
            stack[-1][3] -= dur  # charge the direct parent
        stack.append([end, name, key, dur, dur])
    for stack in stacks.values():
        while stack:
            close(stack.pop())
    return report


def key_kind(key: str) -> str:
    return key.split(KIND_SEPARATOR, 1)[0]


def key_label(key: str) -> str:
    """Stable short form of a canonical key: kind + 12-hex digest."""
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:12]
    return f"{key_kind(key)}:{digest}"


def sorted_items(groups: dict[str, Aggregate]) -> list[tuple[str, Aggregate]]:
    return sorted(groups.items(), key=lambda kv: -kv[1].self_us)


def print_table(title: str, headers: list[str],
                rows: list[list[str]]) -> None:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n{title}")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def print_report(report: Report, path: str, top: int) -> None:
    print(
        f"trace_report: {path}: {report.events} event(s), "
        f"{len(report.by_name)} span name(s), "
        f"{len(report.by_key)} scenario key(s)"
    )
    name_rows = [
        [
            name,
            str(agg.count),
            f"{agg.total_us / 1e3:.3f}",
            f"{agg.self_us / 1e3:.3f}",
            f"{agg.total_us / agg.count / 1e3:.3f}",
            f"{agg.max_us / 1e3:.3f}",
        ]
        for name, agg in sorted_items(report.by_name)[:top]
    ]
    print_table(
        f"by span name (top {min(top, len(report.by_name))} by self time)",
        ["span", "count", "total ms", "self ms", "mean ms", "max ms"],
        name_rows,
    )
    if report.by_key:
        key_rows = [
            [
                key_label(key),
                str(agg.count),
                f"{agg.total_us / 1e3:.3f}",
                f"{agg.self_us / 1e3:.3f}",
            ]
            for key, agg in sorted_items(report.by_key)[:top]
        ]
        print_table(
            f"by scenario (top {min(top, len(report.by_key))} by self time)",
            ["scenario", "spans", "total ms", "self ms"],
            key_rows,
        )
        print(
            f"\nunattributed self time: "
            f"{report.unattributed_self_us / 1e3:.3f} ms"
        )


def report_json(report: Report, path: str) -> dict:
    return {
        "trace": path,
        "events": report.events,
        "by_name": [
            {
                "name": name,
                "count": agg.count,
                "total_us": agg.total_us,
                "self_us": agg.self_us,
                "max_us": agg.max_us,
            }
            for name, agg in sorted_items(report.by_name)
        ],
        "by_scenario": [
            {
                "key": key,
                "kind": key_kind(key),
                "label": key_label(key),
                "count": agg.count,
                "total_us": agg.total_us,
                "self_us": agg.self_us,
            }
            for key, agg in sorted_items(report.by_key)
        ],
        "unattributed_self_us": report.unattributed_self_us,
    }


def selftest() -> int:
    def span(name, ts, dur, tid=1, key=None, **extra):
        event = {
            "name": name,
            "cat": "gpupower",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "dur": dur,
        }
        args = dict(extra)
        if key is not None:
            args["key"] = key
        if args:
            event["args"] = args
        return event

    k1 = "fleet\x1fgpu=a100;cap=415.2"
    k2 = "static\x1fgpu=h100"
    doc = {
        "traceEvents": [
            # tid 1: submit(k1) with nested store.read + reduce; the
            # grandchild chain a>b>c checks transitive self-time charging.
            span("engine.submit", 0.0, 100.0, key=k1, kind="fleet"),
            span("store.read", 10.0, 20.0, key=k1),
            span("reduce.fleet", 50.0, 30.0, key=k1, replicas=2),
            span("a", 200.0, 100.0),
            span("b", 210.0, 80.0),
            span("c", 220.0, 10.0),
            # tid 2: one attributed replica, one cross-thread queue.wait
            # overlapping it (exempt from nesting, full dur is self), and
            # a second scenario key.
            span("replica.fleet", 0.0, 40.0, tid=2, key=k1, seed=0),
            span("queue.wait", 5.0, 60.0, tid=2),
            span("engine.submit", 80.0, 10.0, tid=2, key=k2, kind="static"),
        ],
        "displayTimeUnit": "ms",
        "otherData": {"dropped": 0},
    }

    report = analyze(doc, "<selftest>")
    checks = []

    def expect(label: str, actual, wanted) -> None:
        checks.append((label, actual, wanted))

    if report is None:
        print("trace_report: selftest: synthetic trace rejected")
        return 1
    expect("events", report.events, 9)
    submit = report.by_name["engine.submit"]
    expect("submit.count", submit.count, 2)
    expect("submit.total", submit.total_us, 110.0)
    # 100 - 20 (store.read) - 30 (reduce) = 50, plus the bare 10 on tid 2.
    expect("submit.self", submit.self_us, 60.0)
    expect("a.self", report.by_name["a"].self_us, 20.0)
    expect("b.self", report.by_name["b"].self_us, 70.0)
    expect("c.self", report.by_name["c"].self_us, 10.0)
    expect("queue.wait.self", report.by_name["queue.wait"].self_us, 60.0)
    # k1: submit 50 + store.read 20 + reduce 30 + replica 40.
    expect("k1.self", report.by_key[k1].self_us, 140.0)
    expect("k1.count", report.by_key[k1].count, 4)
    expect("k2.self", report.by_key[k2].self_us, 10.0)
    # a/b/c (100 total) + queue.wait (60) carry no key.
    expect("unattributed", report.unattributed_self_us, 160.0)
    expect("k1.kind", key_kind(k1), "fleet")
    expect("k1.label", key_label(k1).startswith("fleet:"), True)

    bad = [
        ({"traceEvents": {}}, "traceEvents not a list"),
        ({"traceEvents": [{"name": "a", "ts": 0.0}]}, "missing dur"),
        ({"traceEvents": [{"name": "a", "ts": 0.0, "dur": -1.0}]},
         "negative dur"),
    ]
    ok = True
    for label, actual, wanted in checks:
        if isinstance(wanted, float):
            good = abs(actual - wanted) < 1e-6
        else:
            good = actual == wanted
        if not good:
            print(
                f"trace_report: selftest: {label} = {actual!r}, "
                f"want {wanted!r}"
            )
            ok = False
    for i, (document, label) in enumerate(bad):
        if analyze(document, f"<selftest bad {i}>") is not None:
            print(f"trace_report: selftest: bad case {i} ({label}) accepted")
            ok = False
    print(f"trace_report: selftest {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate a gpupower trace into self-time tables."
    )
    parser.add_argument("trace", nargs="?", help="trace file to analyze")
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows per table (default 20)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full JSON report instead of tables",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--min-scenarios", type=int, default=0, metavar="N",
        help="fail unless at least N scenario keys were attributed",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="check the self-time arithmetic on synthetic traces and exit",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.trace:
        parser.error("a trace file (or --selftest) is required")
    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(args.trace, f"cannot read: {e}")
        return 2
    except json.JSONDecodeError as e:
        fail(args.trace, f"invalid JSON: {e}")
        return 1
    report = analyze(doc, args.trace)
    if report is None:
        return 1

    document = report_json(report, args.trace)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print_report(report, args.trace, args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(document, f, indent=2)
            f.write("\n")
        print(f"trace_report: wrote {args.out}", file=sys.stderr)
    if len(report.by_key) < args.min_scenarios:
        fail(
            args.trace,
            f"only {len(report.by_key)} scenario key(s) attributed "
            f"(--min-scenarios {args.min_scenarios})",
        )
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into head/less and closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
