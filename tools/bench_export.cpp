#include "tools/bench_export.hpp"

#include <cstdio>

namespace gpupower::tools {

analysis::JsonValue bench_document(const std::string& bench,
                                   const std::string& protocol,
                                   const std::vector<BenchCase>& cases) {
  analysis::JsonValue doc = analysis::JsonValue::object();
  doc.set("bench", analysis::JsonValue::string(bench));
  doc.set("schema", analysis::JsonValue::integer(1));
  doc.set("protocol", analysis::JsonValue::string(protocol));
  analysis::JsonValue case_array = analysis::JsonValue::array();
  for (const BenchCase& c : cases) {
    analysis::JsonValue entry = analysis::JsonValue::object();
    entry.set("name", analysis::JsonValue::string(c.name));
    analysis::JsonValue metrics = analysis::JsonValue::object();
    for (const BenchMetric& m : c.metrics) {
      metrics.set(m.name, analysis::JsonValue::number(m.value));
    }
    entry.set("metrics", std::move(metrics));
    case_array.push(std::move(entry));
  }
  doc.set("cases", std::move(case_array));
  return doc;
}

bool write_bench_json(const std::string& path,
                      const analysis::JsonValue& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = doc.dump(/*pretty=*/true);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace gpupower::tools
