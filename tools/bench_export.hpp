// Structured JSON export for micro-benchmark results: builds one
// BENCH_<name>.json document per run in a stable, diff-friendly shape meant
// to be committed at the repo root.  The file holds the *current* trajectory
// point; git history of the committed file is the perf trajectory, and CI
// uploads the freshly measured document as an artifact on every run.
//
// Document shape (see README "Activity fast path" for the field glossary):
//
//   {
//     "bench": "activity_kernel",
//     "schema": 1,
//     "protocol": "N=1024 sampled(tiles=12, kfrac=0.50) ...",
//     "cases": [
//       {"name": "fp16", "metrics": {"observer_ms": ..., "batched_ms": ...,
//                                    "speedup": ...}},
//       ...
//     ]
//   }
#pragma once

#include <string>
#include <vector>

#include "analysis/json.hpp"

namespace gpupower::tools {

struct BenchMetric {
  std::string name;
  double value = 0.0;
};

struct BenchCase {
  std::string name;
  std::vector<BenchMetric> metrics;
};

/// Assembles the document above.  Metrics keep insertion order so committed
/// output diffs cleanly between runs.
[[nodiscard]] analysis::JsonValue bench_document(
    const std::string& bench, const std::string& protocol,
    const std::vector<BenchCase>& cases);

/// Pretty-prints `doc` to `path` (with a trailing newline).  Returns false
/// when the file cannot be written.
bool write_bench_json(const std::string& path, const analysis::JsonValue& doc);

}  // namespace gpupower::tools
