// Plain-text table and CSV emission for the figure-regeneration benches:
// each bench prints one series per datatype/GPU exactly as the paper's
// figures plot them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpupower::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells are formatted by the caller.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell as-is, remaining cells from doubles with fixed
  /// precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders an aligned, pipe-separated (markdown-compatible) table.
  void print(std::ostream& os) const;

  /// Renders as CSV.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
[[nodiscard]] std::string fixed(double v, int precision = 2);

}  // namespace gpupower::analysis
