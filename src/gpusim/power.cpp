#include "gpusim/power.hpp"

#include <algorithm>
#include <cmath>

#include "gemm/kernel_desc.hpp"

namespace gpupower::gpusim {
namespace {

constexpr double kPicojoule = 1e-12;
/// Fraction of the idle floor that is core-rail leakage and clock-tree
/// charge, scaling with V^2 when a P-state lowers the supply; the rest
/// (fans, VRs, memory refresh) is voltage-independent.  At boost voltage
/// the scale is exactly 1.0, keeping the static path bit-identical.
constexpr double kIdleLeakageFraction = 0.5;

}  // namespace

double math_instructions(gpupower::numeric::DType dtype, double macs) noexcept {
  using gpupower::numeric::DType;
  switch (dtype) {
    case DType::kFP32:
      return macs;  // one FFMA per MAC
    case DType::kFP16:
      return macs / 2.0;  // HFMA2 packs two half MACs per instruction
    case DType::kFP16T:
      return macs / (16.0 * 8.0 * 16.0);  // HMMA m16n8k16
    case DType::kINT8:
      return macs / (16.0 * 8.0 * 32.0);  // IMMA m16n8k32
  }
  return macs;
}

namespace {

/// Fraction of the SM array a problem's threadblock grid can occupy.  Small
/// problems (e.g. 512x512, 16 threadblocks) leave most SMs idle, stretching
/// runtime and deflating average power — the effect behind the paper's
/// RTX 6000 runs at 512x512 showing compressed power variations.
double occupancy(const gemm::GemmProblem& problem,
                 const gemm::TileConfig& tiles, int sm_count) {
  const double grid =
      std::ceil(static_cast<double>(problem.n) /
                static_cast<double>(tiles.threadblock.m)) *
      std::ceil(static_cast<double>(problem.m) /
                static_cast<double>(tiles.threadblock.n));
  return std::min(1.0, grid / static_cast<double>(sm_count));
}

}  // namespace

double PowerCalculator::iteration_time_s(const gemm::GemmProblem& problem,
                                         gpupower::numeric::DType dtype) const {
  const gemm::KernelDesc kernel = gemm::kernel_for(dtype);
  const double peak_flops = dev_.peak_tflops(dtype) * 1e12;
  const double occ = occupancy(problem, kernel.tiles, dev_.sm_count);
  const double t_math = problem.flops() / (peak_flops * kernel.efficiency * occ);

  // Memory traffic: each operand matrix is read once per iteration (L2
  // captures tile reuse at these shapes) and D is written once.
  const double element_bytes = gpupower::numeric::byte_width(dtype);
  const double acc_bytes = dtype == gpupower::numeric::DType::kINT8 ? 4.0 : 4.0;
  const double bytes =
      element_bytes * (static_cast<double>(problem.n * problem.k) +
                       static_cast<double>(problem.k * problem.m)) +
      acc_bytes * static_cast<double>(problem.n * problem.m);
  const double t_mem = bytes / (dev_.mem_bandwidth_gbs * 1e9);

  return std::max(t_math, t_mem);
}

PowerReport PowerCalculator::evaluate(const gemm::GemmProblem& problem,
                                      gpupower::numeric::DType dtype,
                                      const ActivityTotals& act) const {
  return evaluate_at(problem, dtype, act, OperatingPoint{});
}

PowerReport PowerCalculator::evaluate_at(const gemm::GemmProblem& problem,
                                         gpupower::numeric::DType dtype,
                                         const ActivityTotals& act,
                                         const OperatingPoint& op) const {
  const EnergyModel& e = dev_.energy;
  PowerReport report;
  report.iteration_s = iteration_time_s(problem, dtype);

  // Per-iteration dynamic energy by rail (joules).  Access charges scale
  // with the element width (an FP16 word drives half the wires of an FP32
  // word); toggle and weight terms are already width-aware through the data.
  const double scale = e.scale * kPicojoule;
  const double w32 = gpupower::numeric::bit_width(dtype) / 32.0;
  const bool tensor = gpupower::numeric::uses_tensor_cores(dtype);
  const double fetch_j =
      scale * (e.fetch_toggle_pj * static_cast<double>(act.fetch_toggles) +
               e.fetch_access_pj * w32 * static_cast<double>(act.fetch_words) +
               e.weight_pj * static_cast<double>(act.fetch_weight));
  const double operand_j =
      scale * (e.operand_toggle_pj * static_cast<double>(act.operand_toggles) +
               e.operand_access_pj * w32 * static_cast<double>(act.operand_words) +
               e.weight_pj * static_cast<double>(act.operand_weight));
  const double multiply_j =
      scale *
      ((tensor ? e.multiply_pp_tc_pj : e.multiply_pp_simt_pj) *
           static_cast<double>(act.mult_pp) +
       (tensor ? e.exponent_tc_pj : e.exponent_simt_pj) *
           static_cast<double>(act.exponent_bits));
  const double accum_j =
      scale * (e.acc_toggle_pj * static_cast<double>(act.acc_toggles) +
               e.acc_access_pj * static_cast<double>(act.acc_updates));
  const double instructions =
      math_instructions(dtype, static_cast<double>(act.macs));
  const double issue_j =
      scale * (tensor ? e.mma_issue_pj : e.simt_issue_pj) * instructions;
  const double dynamic_j = fetch_j + operand_j + multiply_j + accum_j + issue_j;

  // P-state scaling: switched energy per iteration goes as V^2, so dynamic
  // power at the operating point is p_dyn0 * f * V^2.  At the boost point
  // (1.0, 1.0) every factor below multiplies by exactly 1.0, keeping this
  // path bit-identical to the historical static evaluation.
  const double v2 = op.voltage_scale * op.voltage_scale;
  const double dvfs = op.clock_frac * v2;
  // The idle floor's core-rail share relaxes with the supply voltage; the
  // scale is exactly 1.0 at the boost point.
  const double idle_w =
      dev_.idle_w *
      (kIdleLeakageFraction * v2 + (1.0 - kIdleLeakageFraction));

  // Thermal / leakage fixed point at the operating point's clock.
  const double p_dyn0 = dynamic_j / report.iteration_s;
  const double p_dyn = p_dyn0 * dvfs;
  double total = p_dyn + idle_w;
  double leakage = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double temp_c = kAmbientC + dev_.thermal_resistance_c_per_w * total;
    leakage = idle_w * dev_.leakage_per_c *
              std::max(0.0, temp_c - kLeakageRefC);
    total = p_dyn + idle_w + leakage;
  }

  // TDP clamp: scale the clock down until total power fits.  Dynamic power
  // scales linearly with frequency at fixed voltage; iterate because
  // leakage relaxes as the die cools.  `clock_frac` is the residual
  // throttle on top of the P-state's own clock.
  double clock_frac = 1.0;
  if (total > dev_.tdp_w) {
    report.throttled = true;
    for (int i = 0; i < 6; ++i) {
      const double budget = dev_.tdp_w - idle_w - leakage;
      clock_frac = std::clamp(budget / p_dyn, 0.05, 1.0);
      const double t = p_dyn * clock_frac + idle_w + leakage;
      const double temp_c = kAmbientC + dev_.thermal_resistance_c_per_w * t;
      leakage = idle_w * dev_.leakage_per_c *
                std::max(0.0, temp_c - kLeakageRefC);
    }
    total = p_dyn * clock_frac + idle_w + leakage;
  }

  report.effective_clock_frac = op.clock_frac * clock_frac;
  report.realized_iteration_s =
      report.iteration_s / report.effective_clock_frac;
  const double rail_scale = v2 * (op.clock_frac * clock_frac) /
                            report.iteration_s;
  report.rails.fetch_w = fetch_j * rail_scale;
  report.rails.operand_w = operand_j * rail_scale;
  report.rails.multiply_w = multiply_j * rail_scale;
  report.rails.accum_w = accum_j * rail_scale;
  report.rails.issue_w = issue_j * rail_scale;
  report.dynamic_w = report.rails.total();
  report.idle_w = idle_w;
  report.leakage_w = leakage;
  report.total_w = total;
  report.energy_j = total * report.realized_iteration_s;
  report.temperature_c =
      kAmbientC + dev_.thermal_resistance_c_per_w * total;
  // The paper reports 98.5% average GPU utilization across its (full-
  // occupancy) experiments; partial grids scale it down.
  report.utilization =
      0.985 * occupancy(problem, gemm::kernel_for(dtype).tiles, dev_.sm_count);
  return report;
}

}  // namespace gpupower::gpusim
