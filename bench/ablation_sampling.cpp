// Ablation: tile/K sampling accuracy vs cost.  Compares the exact activity
// walk against sampled plans across several input patterns and reports the
// relative power error — the evidence behind the benches' default sampled
// configuration.
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

#include "analysis/table.hpp"
#include "core/obs/obs.hpp"
#include "core/pattern_spec.hpp"
#include "fig_harness.hpp"
#include "gpusim/simulator.hpp"

namespace {

using namespace gpupower;

double run_with_plan(const core::PatternSpec& spec, std::size_t n,
                     const gpusim::SamplingPlan& plan, double& seconds) {
  gpusim::SimOptions options;
  options.sampling = plan;
  const gpusim::GpuSimulator sim(gpusim::GpuModel::kA100PCIe, options);
  const auto inputs = core::build_inputs<numeric::float16_t>(
      spec, numeric::DType::kFP16, n, 42);
  const auto problem = gemm::GemmProblem::square(n, spec.transpose_b);
  const core::obs::StopWatch watch;
  const auto report =
      sim.run_gemm(problem, numeric::DType::kFP16, inputs.a, inputs.b);
  seconds = watch.seconds();
  return report.total_w;
}

}  // namespace

int main() {
  const core::BenchEnv env = core::read_bench_env();
  const std::size_t n = std::min<std::size_t>(env.n, 512);  // exact walk cost
  std::printf(
      "Ablation: sampled vs exact activity estimation (FP16, %zux%zu)\n\n", n,
      n);

  struct Case {
    const char* name;
    core::PatternSpec spec;
  };
  std::vector<Case> cases;
  cases.push_back({"gaussian", core::baseline_gaussian_spec()});
  {
    core::PatternSpec s = core::baseline_gaussian_spec();
    s.place = core::PatternSpec::Place::kSortRows;
    s.sort_percent = 100.0;
    cases.push_back({"sorted", s});
    core::PatternSpec sp = core::baseline_gaussian_spec();
    sp.sparsity = 0.5;
    cases.push_back({"sparse50", sp});
  }

  struct Plan {
    const char* name;
    gpusim::SamplingPlan plan;
  };
  const Plan plans[] = {
      {"exact", gpusim::SamplingPlan::exact()},
      {"32 tiles", gpusim::SamplingPlan::fast(32, 1.0)},
      {"12 tiles k/2", gpusim::SamplingPlan::fast(12, 0.5)},
      {"4 tiles k/4", gpusim::SamplingPlan::fast(4, 0.25)},
  };

  analysis::Table table({"case / plan", "power (W)", "error vs exact (%)",
                         "walk time (s)"});
  for (const Case& c : cases) {
    double exact_w = 0.0;
    for (const Plan& p : plans) {
      double seconds = 0.0;
      const double w = run_with_plan(c.spec, n, p.plan, seconds);
      if (std::string_view(p.name) == "exact") exact_w = w;
      table.add_row(std::string(c.name) + " / " + p.name,
                    {w, exact_w > 0.0 ? (w - exact_w) / exact_w * 100.0 : 0.0,
                     seconds},
                    3);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nSampled estimates should stay within a few percent of the exact\n"
      "walk while cutting the walk cost by an order of magnitude.\n");
  return 0;
}
