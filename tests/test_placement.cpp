#include "patterns/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "patterns/distributions.hpp"

namespace gpupower::patterns {
namespace {

std::multiset<float> multiset_of(const std::vector<float>& v) {
  return {v.begin(), v.end()};
}

TEST(Placement, ZeroPercentIsIdentity) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  const auto original = data;
  partial_sort_rows(data, 16, 16, 0.0);
  EXPECT_EQ(data, original);
}

TEST(Placement, HundredPercentFullySorts) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  partial_sort_rows(data, 16, 16, 100.0);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(Placement, PartialSortPlacesLowestPrefix) {
  // Paper definition: the lowest n% of values, sorted ascending, land in the
  // first n% of row-major indices.
  auto data = gaussian_fill(400, 0.0, 210.0, 42);
  const auto original = data;
  partial_sort_rows(data, 20, 20, 25.0);

  auto sorted = original;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(data[i], sorted[i]) << "prefix index " << i;
  }
  // The remainder keeps the original relative order.
  std::vector<float> expected_rest;
  const std::multiset<float> lowest(sorted.begin(), sorted.begin() + 100);
  std::multiset<float> budget = lowest;
  for (const float v : original) {
    auto it = budget.find(v);
    if (it != budget.end()) {
      budget.erase(it);
    } else {
      expected_rest.push_back(v);
    }
  }
  for (std::size_t i = 0; i < expected_rest.size(); ++i) {
    EXPECT_EQ(data[100 + i], expected_rest[i]) << "rest index " << i;
  }
}

TEST(Placement, PreservesMultiset) {
  auto data = gaussian_fill(1024, 0.0, 210.0, 42);
  const auto before = multiset_of(data);
  partial_sort_rows(data, 32, 32, 40.0);
  EXPECT_EQ(multiset_of(data), before);

  auto data2 = gaussian_fill(1024, 0.0, 210.0, 43);
  const auto before2 = multiset_of(data2);
  partial_sort_columns(data2, 32, 32, 60.0);
  EXPECT_EQ(multiset_of(data2), before2);

  auto data3 = gaussian_fill(1024, 0.0, 210.0, 44);
  const auto before3 = multiset_of(data3);
  partial_sort_within_rows(data3, 32, 32, 50.0);
  EXPECT_EQ(multiset_of(data3), before3);
}

TEST(Placement, ColumnSortFillsLeftColumns) {
  auto data = gaussian_fill(64, 0.0, 210.0, 42);
  partial_sort_columns(data, 8, 8, 100.0);
  // Fully column-sorted: reading column-major must be ascending.
  std::vector<float> column_major;
  for (std::size_t c = 0; c < 8; ++c) {
    for (std::size_t r = 0; r < 8; ++r) column_major.push_back(data[r * 8 + c]);
  }
  EXPECT_TRUE(std::is_sorted(column_major.begin(), column_major.end()));
}

TEST(Placement, WithinRowsSortsEachRowIndependently) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  const auto original = data;
  partial_sort_within_rows(data, 16, 16, 100.0);
  for (std::size_t r = 0; r < 16; ++r) {
    std::vector<float> row(data.begin() + static_cast<std::ptrdiff_t>(r * 16),
                           data.begin() + static_cast<std::ptrdiff_t>((r + 1) * 16));
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end())) << "row " << r;
    // Row contents unchanged (only reordered within the row).
    std::vector<float> orig_row(
        original.begin() + static_cast<std::ptrdiff_t>(r * 16),
        original.begin() + static_cast<std::ptrdiff_t>((r + 1) * 16));
    EXPECT_EQ(multiset_of(row), multiset_of(orig_row)) << "row " << r;
  }
}

TEST(Placement, FullSortAscending) {
  auto data = gaussian_fill(512, 0.0, 210.0, 42);
  full_sort(data);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(Placement, SortRowsByMeanOrdersRowMeans) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  sort_rows_by_mean(data, 16, 16);
  double prev = -1e30;
  for (std::size_t r = 0; r < 16; ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < 16; ++c) mean += data[r * 16 + c];
    mean /= 16.0;
    EXPECT_GE(mean, prev) << "row " << r;
    prev = mean;
  }
}

class PlacementPercentSweep : public ::testing::TestWithParam<double> {};

TEST_P(PlacementPercentSweep, PrefixSortedInvariant) {
  const double pct = GetParam();
  auto data = gaussian_fill(900, 0.0, 210.0, 77);
  partial_sort_rows(data, 30, 30, pct);
  const auto k = static_cast<std::size_t>(std::llround(pct / 100.0 * 900));
  EXPECT_TRUE(std::is_sorted(data.begin(),
                             data.begin() + static_cast<std::ptrdiff_t>(k)));
  if (k > 0 && k < 900) {
    // Everything in the prefix is <= everything after it.
    const float prefix_max = *std::max_element(
        data.begin(), data.begin() + static_cast<std::ptrdiff_t>(k));
    const float rest_min = *std::min_element(
        data.begin() + static_cast<std::ptrdiff_t>(k), data.end());
    EXPECT_LE(prefix_max, rest_min);
  }
}

INSTANTIATE_TEST_SUITE_P(Percents, PlacementPercentSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 33.3, 50.0, 66.7,
                                           80.0, 99.0, 100.0));

}  // namespace
}  // namespace gpupower::patterns
