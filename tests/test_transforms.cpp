#include "core/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gemm/reference.hpp"
#include "patterns/distributions.hpp"

namespace gpupower::core {
namespace {

using gpupower::numeric::DType;
using gpupower::numeric::float16_t;

TEST(MeanShift, HitsTargetMean) {
  const auto weights = patterns::gaussian_fill(4096, 0.0, 1.0, 42);
  const auto result = mean_shift(weights, 8.0);
  double mean = 0.0;
  for (const float w : result.shifted) mean += w;
  mean /= static_cast<double>(result.shifted.size());
  EXPECT_NEAR(mean, 8.0, 1e-3);
  EXPECT_NEAR(result.delta, 8.0, 0.1);
  EXPECT_GT(result.relative_perturbation, 0.0);
}

TEST(MeanShift, ZeroShiftIsFree) {
  const auto weights = patterns::gaussian_fill(1024, 5.0, 1.0, 42);
  const auto result = mean_shift(weights, 5.0);
  EXPECT_NEAR(result.delta, 0.0, 0.1);
  EXPECT_LT(result.relative_perturbation, 0.05);
}

TEST(RowSort, PermutationInvariantGemm) {
  // The core claim of the Section V weight-sorting idea: sorting rows of W
  // and un-permuting the output leaves the computation bit-identical for
  // exact arithmetic paths.  Verify with an INT8 GEMM (exact accumulation).
  using gpupower::numeric::int8_value_t;
  const std::size_t n = 32;
  const auto weights = patterns::gaussian_fill(n * n, 0.0, 25.0, 42);
  const auto activations = patterns::gaussian_fill(n * n, 0.0, 25.0, 43);

  const auto sorted = sort_rows_permutation_invariant(weights, n, n);

  const auto problem = gemm::GemmProblem::square(n, /*transpose_b=*/false);
  const auto x = gemm::materialize<int8_value_t>(activations, n, n);
  gemm::Matrix<std::int32_t> c(n, n);

  gemm::Matrix<std::int32_t> original_out;
  gemm::reference_gemm(problem, gemm::materialize<int8_value_t>(weights, n, n),
                       x, c, original_out);

  gemm::Matrix<std::int32_t> sorted_out;
  gemm::reference_gemm(problem,
                       gemm::materialize<int8_value_t>(sorted.sorted, n, n), x,
                       c, sorted_out);

  // Un-permute the sorted output's rows and compare exactly.
  std::vector<float> sorted_rows(sorted_out.span().size());
  for (std::size_t i = 0; i < sorted_rows.size(); ++i) {
    sorted_rows[i] = static_cast<float>(sorted_out.span()[i]);
  }
  const auto restored = unpermute_rows(sorted_rows, sorted.permutation, n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t col = 0; col < n; ++col) {
      EXPECT_EQ(static_cast<std::int32_t>(restored[r * n + col]),
                original_out.at(r, col))
          << "(" << r << "," << col << ")";
    }
  }
}

TEST(RowSort, RowsAreOrderedByMean) {
  const auto weights = patterns::gaussian_fill(16 * 8, 0.0, 10.0, 42);
  const auto result = sort_rows_permutation_invariant(weights, 16, 8);
  double prev = -1e30;
  for (std::size_t r = 0; r < 16; ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < 8; ++c) mean += result.sorted[r * 8 + c];
    EXPECT_GE(mean, prev);
    prev = mean;
  }
}

TEST(RowSort, UnpermuteInvertsPermute) {
  const auto original = patterns::gaussian_fill(12 * 4, 0.0, 1.0, 42);
  const auto result = sort_rows_permutation_invariant(original, 12, 4);
  const auto restored = unpermute_rows(result.sorted, result.permutation, 12, 4);
  EXPECT_EQ(restored, original);
}

TEST(MagnitudePrune, PrunesSmallestMagnitudes) {
  const std::vector<float> weights{0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f,
                                   -2.0f, 0.3f};
  const auto pruned = magnitude_prune(weights, 0.5);
  // The four smallest magnitudes (0.05, 0.1, 0.2, 0.3) become zero.
  EXPECT_EQ(pruned[0], 0.0f);
  EXPECT_EQ(pruned[2], 0.0f);
  EXPECT_EQ(pruned[4], 0.0f);
  EXPECT_EQ(pruned[7], 0.0f);
  EXPECT_EQ(pruned[1], -5.0f);
  EXPECT_EQ(pruned[3], 3.0f);
  EXPECT_EQ(pruned[5], 1.0f);
  EXPECT_EQ(pruned[6], -2.0f);
}

TEST(MagnitudePrune, Endpoints) {
  const auto weights = patterns::gaussian_fill(100, 0.0, 1.0, 42);
  EXPECT_EQ(magnitude_prune(weights, 0.0), weights);
  const auto all = magnitude_prune(weights, 1.0);
  for (const float w : all) EXPECT_EQ(w, 0.0f);
}

TEST(Sparsifier, FindsMinimalFeasibleSparsity) {
  const std::size_t n = 256;
  const auto weights = patterns::gaussian_fill(n * n, 0.0, 210.0, 42);
  const PowerAwareSparsifier sparsifier(gpupower::gpusim::GpuModel::kA100PCIe,
                                        DType::kFP16);
  // First find the dense power, then cap slightly below it (the small
  // problem runs at partial occupancy, compressing absolute swings).
  const auto dense = sparsifier.design(weights, n, 1e9);
  ASSERT_TRUE(dense.feasible);
  EXPECT_DOUBLE_EQ(dense.sparsity, 0.0);

  const double cap = dense.power_w - 1.0;
  const auto design = sparsifier.design(weights, n, cap);
  ASSERT_TRUE(design.feasible);
  EXPECT_GT(design.sparsity, 0.0);
  EXPECT_LE(design.power_w, cap);
  EXPECT_LT(design.l2_retained, 1.0);
  EXPECT_GT(design.l2_retained, 0.3);
}

TEST(Sparsifier, ReportsInfeasibleCap) {
  const std::size_t n = 128;
  const auto weights = patterns::gaussian_fill(n * n, 0.0, 210.0, 42);
  const PowerAwareSparsifier sparsifier(gpupower::gpusim::GpuModel::kA100PCIe,
                                        DType::kFP16);
  const auto design = sparsifier.design(weights, n, 1.0);  // 1 W: impossible
  EXPECT_FALSE(design.feasible);
}

}  // namespace
}  // namespace gpupower::core
