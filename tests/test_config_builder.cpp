#include "core/config_builder.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"
#include "core/pattern_dsl.hpp"

namespace gpupower::core {
namespace {

TEST(ConfigBuilder, FluentSettersLand) {
  const auto config = ExperimentConfigBuilder()
                          .gpu(gpupower::gpusim::GpuModel::kH100SXM)
                          .dtype(gpupower::numeric::DType::kINT8)
                          .n(256)
                          .seeds(5)
                          .iterations(1234)
                          .base_seed(99)
                          .pattern(baseline_gaussian_spec())
                          .build();
  EXPECT_EQ(config.gpu, gpupower::gpusim::GpuModel::kH100SXM);
  EXPECT_EQ(config.dtype, gpupower::numeric::DType::kINT8);
  EXPECT_EQ(config.n, 256u);
  EXPECT_EQ(config.seeds, 5);
  EXPECT_EQ(config.iterations, 1234u);
  EXPECT_EQ(config.base_seed, 99u);
}

TEST(ConfigBuilder, DefaultsMatchExperimentConfig) {
  const ExperimentConfigBuilder builder;
  EXPECT_TRUE(builder.valid());
  const auto config = builder.build();
  const ExperimentConfig reference;
  EXPECT_EQ(config.n, reference.n);
  EXPECT_EQ(config.seeds, reference.seeds);
  EXPECT_EQ(config.dtype, reference.dtype);
}

TEST(ConfigBuilder, DtypeByName) {
  const auto builder = ExperimentConfigBuilder().dtype("fp16t");
  EXPECT_TRUE(builder.valid());
  EXPECT_EQ(builder.build().dtype, gpupower::numeric::DType::kFP16T);
}

TEST(ConfigBuilder, UnknownDtypeNameIsError) {
  const auto builder = ExperimentConfigBuilder().dtype("fp64");
  EXPECT_FALSE(builder.valid());
  EXPECT_NE(builder.error().find("fp64"), std::string::npos);
  EXPECT_EQ(builder.try_build(), std::nullopt);
}

// The DSL wiring: a pattern given as a string parses into the config, and
// the canonical serialisation round-trips.
TEST(ConfigBuilder, DslPatternRoundTrips) {
  const std::string dsl = "gaussian(sigma=210) | sort_rows(40%) | sparsity(25%)";
  const auto builder = ExperimentConfigBuilder().pattern(dsl);
  ASSERT_TRUE(builder.valid()) << builder.error();
  const PatternSpec& spec = builder.build().pattern;
  EXPECT_EQ(spec.place, PatternSpec::Place::kSortRows);
  EXPECT_DOUBLE_EQ(spec.sort_percent, 40.0);
  EXPECT_DOUBLE_EQ(spec.sparsity, 0.25);

  // parse(to_dsl(spec)) == spec — the canonical round-trip property.
  const std::string canonical = to_dsl(spec);
  const ParseResult reparsed = parse_pattern(canonical);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_EQ(to_dsl(reparsed.spec), canonical);
}

TEST(ConfigBuilder, BadDslReportsOffsetAndMessage) {
  const auto builder = ExperimentConfigBuilder().pattern("gaussian(sigma=");
  EXPECT_FALSE(builder.valid());
  EXPECT_NE(builder.error().find("pattern DSL error at offset"),
            std::string::npos);
  EXPECT_EQ(builder.try_build(), std::nullopt);
}

TEST(ConfigBuilder, OutOfRangeNIsError) {
  EXPECT_FALSE(ExperimentConfigBuilder().n(8).valid());
  EXPECT_FALSE(ExperimentConfigBuilder().n(1 << 20).valid());
  EXPECT_TRUE(ExperimentConfigBuilder().n(64).valid());
}

TEST(ConfigBuilder, OutOfRangeSeedsIsError) {
  EXPECT_FALSE(ExperimentConfigBuilder().seeds(0).valid());
  EXPECT_FALSE(ExperimentConfigBuilder().seeds(-2).valid());
  EXPECT_FALSE(ExperimentConfigBuilder().seeds(100000).valid());
  EXPECT_TRUE(ExperimentConfigBuilder().seeds(10).valid());
}

TEST(ConfigBuilder, BadSamplingPlanIsError) {
  gpupower::gpusim::SamplingPlan plan;
  plan.k_fraction = 0.0;
  EXPECT_FALSE(ExperimentConfigBuilder().sampling(plan).valid());
  plan.k_fraction = 2.0;
  EXPECT_FALSE(ExperimentConfigBuilder().sampling(plan).valid());
}

TEST(ConfigBuilder, FirstErrorWins) {
  const auto builder =
      ExperimentConfigBuilder().seeds(0).dtype("nonsense").n(1);
  EXPECT_FALSE(builder.valid());
  EXPECT_NE(builder.error().find("seeds=0"), std::string::npos);
}

TEST(ConfigBuilder, EnvAppliesKnobs) {
  BenchEnv env;
  env.n = 256;
  env.seeds = 4;
  env.tiles = 6;
  env.k_fraction = 0.25;
  const auto config = ExperimentConfigBuilder().env(env).build();
  EXPECT_EQ(config.n, 256u);
  EXPECT_EQ(config.seeds, 4);
  EXPECT_EQ(config.sampling.max_tiles, 6u);
  EXPECT_DOUBLE_EQ(config.sampling.k_fraction, 0.25);
}

TEST(CanonicalConfigKey, StableForEqualConfigs) {
  const ExperimentConfig a;
  const ExperimentConfig b;
  EXPECT_EQ(canonical_config_key(a), canonical_config_key(b));
}

TEST(CanonicalConfigKey, EveryScalarFieldIsSignificant) {
  const ExperimentConfig base;
  const std::string base_key = canonical_config_key(base);

  ExperimentConfig changed = base;
  changed.gpu = gpupower::gpusim::GpuModel::kV100SXM2;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.dtype = gpupower::numeric::DType::kINT8;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.n = 1024;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.seeds = 3;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.iterations = 777;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.base_seed = 1;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.sampling.k_fraction = 0.75;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.sampler.noise_sigma_w = 0.0;
  EXPECT_NE(canonical_config_key(changed), base_key);

  changed = base;
  changed.variation = gpupower::gpusim::ProcessVariation{0.05, 7};
  EXPECT_NE(canonical_config_key(changed), base_key);
}

TEST(CanonicalConfigKey, PatternSerialisedAsDsl) {
  ExperimentConfig config;
  config.pattern = baseline_gaussian_spec();
  const std::string key = canonical_config_key(config);
  EXPECT_NE(key.find(to_dsl(config.pattern)), std::string::npos);
}

TEST(CanonicalConfigKey, DistinctPatternsDistinctKeys) {
  ExperimentConfig a;
  a.pattern = baseline_gaussian_spec();
  ExperimentConfig b = a;
  b.pattern.sparsity = 0.5;
  EXPECT_NE(canonical_config_key(a), canonical_config_key(b));
}

// to_dsl rounds doubles to ~6 significant digits; the key must still
// separate patterns that differ below that precision (served-from-cache
// results would otherwise silently be wrong).
TEST(CanonicalConfigKey, SubPrintPrecisionPatternsDistinctKeys) {
  ExperimentConfig a;
  a.pattern = baseline_gaussian_spec();
  a.pattern.sparsity = 0.1234561;
  ExperimentConfig b = a;
  b.pattern.sparsity = 0.1234564;
  EXPECT_NE(canonical_config_key(a), canonical_config_key(b));

  ExperimentConfig c = a;
  c.pattern.transpose_b = false;
  EXPECT_NE(canonical_config_key(a), canonical_config_key(c));
}

TEST(ConfigBuilder, EnvOutOfRangeValuesAreErrors) {
  BenchEnv env;
  env.seeds = 0;  // assembled by hand (e.g. CLI flags), not read_bench_env
  EXPECT_FALSE(ExperimentConfigBuilder().env(env).valid());
  env.seeds = 2;
  env.k_fraction = 2.0;
  EXPECT_FALSE(ExperimentConfigBuilder().env(env).valid());
}

}  // namespace
}  // namespace gpupower::core
