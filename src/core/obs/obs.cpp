#include "core/obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "analysis/json.hpp"
#include "core/annotations.hpp"
#include "core/env.hpp"
#include "core/store/result_store.hpp"

namespace gpupower::core::obs {
namespace {

// ------------------------------------------------------------------ clock

std::int64_t raw_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t epoch_ns() noexcept {
  // -1 keeps now_ns() strictly positive: callers use 0 as the
  // "observability off" sentinel, and the very first now_ns() in the
  // process would otherwise return exactly 0.
  static const std::int64_t epoch = raw_ns() - 1;
  return epoch;
}

// -------------------------------------------------------------- switches

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};

struct TraceConfig {
  Mutex mutex;
  std::string path GPUPOWER_GUARDED_BY(mutex);
};

TraceConfig& trace_config() {
  // Immortal (deliberately leaked): the atexit flush and late span
  // recorders must never observe a destroyed singleton, and static
  // destruction order across TUs cannot guarantee that.
  static TraceConfig* config = new TraceConfig;
  return *config;
}

void flush_at_exit() {
  std::string error;
  if (!flush_trace(&error) && !error.empty()) {
    std::fprintf(stderr, "gpupower: trace flush failed: %s\n", error.c_str());
  }
}

// ------------------------------------------------------------ span rings

constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

// The inline SpanArgs grows a slot from 24 B to ~168 B (~11 MB per
// recording thread, allocated lazily on that thread's first span).
// Tracing is an opt-in diagnostic mode; paying the fixed footprint keeps
// the record path allocation-free and the ring fill-once.
struct TraceEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t end_ns;
  SpanArgs args;
};

/// Fill-once ring: slots are written only by the owning thread, published
/// by the release-store of `count`; the exporter acquire-loads `count`
/// and reads the frozen prefix.  Nothing ever overwrites a published
/// slot, so writer and exporter cannot race (TSan-clean by construction).
/// A full ring drops (and counts) instead of wrapping.
struct ThreadRing {
  std::uint32_t tid = 0;
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::vector<TraceEvent> slots;  // sized once at registration
};

struct TraceRegistry {
  Mutex mutex;
  /// Rings are owned here and never freed, so they outlive their threads
  /// (a worker may exit long before the final flush).
  std::vector<std::unique_ptr<ThreadRing>> rings GPUPOWER_GUARDED_BY(mutex);
};

TraceRegistry& trace_registry() {
  static TraceRegistry* registry = new TraceRegistry;  // immortal, see above
  return *registry;
}

ThreadRing& local_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<ThreadRing>();
    owned->slots.resize(kRingCapacity);
    TraceRegistry& registry = trace_registry();
    MutexLock lock(registry.mutex);
    owned->tid = static_cast<std::uint32_t>(registry.rings.size() + 1);
    ring = owned.get();
    registry.rings.push_back(std::move(owned));
  }
  return *ring;
}

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

// --------------------------------------------------------------- metrics

struct MetricsRegistry {
  Mutex mutex;
  // std::map: sorted iteration gives registry_json a stable key order.
  // Values are pointer-stable (and immortal), so returned references
  // survive any amount of later registration.
  std::map<std::string, std::unique_ptr<Counter>> counters
      GPUPOWER_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges
      GPUPOWER_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      GPUPOWER_GUARDED_BY(mutex);
};

MetricsRegistry& metrics_registry() {
  static MetricsRegistry* registry = new MetricsRegistry;  // immortal
  return *registry;
}

/// Upper bound of histogram bucket `i` in ns (log2 scale; bucket 0 is the
/// zero bucket).
double bucket_upper_ns(int i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, i);
}

/// Smallest bucket upper bound with cumulative count >= q * total.
double histogram_quantile_ns(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += h.bucket(i);
    if (static_cast<double>(cumulative) >= target) return bucket_upper_ns(i);
  }
  return static_cast<double>(h.max_ns());
}

}  // namespace

std::int64_t now_ns() noexcept {
  // Pin the epoch before reading the clock: on the very first call the
  // static below initializes from raw_ns() too, and evaluating raw first
  // would yield a negative difference.
  const std::int64_t epoch = epoch_ns();
  return raw_ns() - epoch;
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics.store(enabled, std::memory_order_relaxed);
}

void set_trace_path(std::string path) {
  TraceConfig& config = trace_config();
  bool enabled = false;
  {
    MutexLock lock(config.mutex);
    config.path = std::move(path);
    enabled = !config.path.empty();
  }
  g_tracing.store(enabled, std::memory_order_relaxed);
  if (enabled) {
    // A trace consumer always wants the timing fields filled in.
    g_metrics.store(true, std::memory_order_relaxed);
    static std::once_flag armed;
    std::call_once(armed, [] { std::atexit(flush_at_exit); });
  }
}

std::string trace_path() {
  TraceConfig& config = trace_config();
  MutexLock lock(config.mutex);
  return config.path;
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const ObsEnv env = read_obs_env();
    // Programmatic configuration (gpowerctl flags) wins: the env only
    // fills knobs that are still at their defaults.
    if (!env.trace_path.empty() && trace_path().empty()) {
      set_trace_path(env.trace_path);
    }
    if (env.metrics_set) set_metrics_enabled(env.metrics);
  });
}

const char* intern(std::string_view text) {
  struct InternTable {
    Mutex mutex;
    // std::set: node-based, so c_str() pointers are stable forever.
    std::set<std::string, std::less<>> entries GPUPOWER_GUARDED_BY(mutex);
  };
  static InternTable* table = new InternTable;  // immortal, see above
  MutexLock lock(table->mutex);
  auto it = table->entries.find(text);
  if (it == table->entries.end()) {
    it = table->entries.emplace(text).first;
  }
  return it->c_str();
}

void record_span(const char* name, std::int64_t start_ns,
                 std::int64_t end_ns) noexcept {
  record_span(name, start_ns, end_ns, SpanArgs());
}

void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 const SpanArgs& args) noexcept {
  if (name == nullptr || !tracing_enabled()) return;
  ThreadRing& ring = local_ring();
  const std::uint32_t n = ring.count.load(std::memory_order_relaxed);
  if (n >= ring.slots.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring.slots[n] = TraceEvent{name, start_ns, end_ns, args};
  ring.count.store(n + 1, std::memory_order_release);
}

TraceCounts trace_counts() noexcept {
  TraceCounts counts;
  TraceRegistry& registry = trace_registry();
  MutexLock lock(registry.mutex);
  for (const auto& ring : registry.rings) {
    counts.recorded += ring->count.load(std::memory_order_acquire);
    counts.dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  return counts;
}

bool write_trace(const std::string& path, std::string* error) {
  struct Snapshot {
    const char* name;
    std::int64_t start_ns;
    std::int64_t end_ns;
    std::uint32_t tid;
    SpanArgs args;
  };
  std::vector<Snapshot> events;
  std::uint64_t dropped = 0;
  {
    TraceRegistry& registry = trace_registry();
    MutexLock lock(registry.mutex);
    for (const auto& ring : registry.rings) {
      const std::uint32_t n = ring->count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        const TraceEvent& e = ring->slots[i];
        events.push_back(
            Snapshot{e.name, e.start_ns, e.end_ns, ring->tid, e.args});
      }
      dropped += ring->dropped.load(std::memory_order_relaxed);
    }
  }
  // Start-ascending (timestamps monotonic for the checker); end-descending
  // breaks ties so a parent span precedes the children it encloses.
  std::sort(events.begin(), events.end(),
            [](const Snapshot& a, const Snapshot& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });

  std::string out;
  out.reserve(events.size() * 96 + 128);
  out += "{\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Snapshot& e = events[i];
    if (i != 0) out += ',';
    out += "\n{\"name\":\"";
    append_escaped(out, e.name);
    const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(std::max<std::int64_t>(e.end_ns - e.start_ns, 0)) /
        1000.0;
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"gpupower\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  e.tid, ts_us, dur_us);
    out += buf;
    if (e.args.size() > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < e.args.size(); ++a) {
        const SpanArgs::Arg& kv = e.args.at(a);
        if (a != 0) out += ',';
        out += '"';
        append_escaped(out, kv.key);
        out += "\":";
        if (kv.str != nullptr) {
          out += '"';
          append_escaped(out, kv.str);
          out += '"';
        } else {
          out += std::to_string(static_cast<long long>(kv.num));
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
  out += std::to_string(dropped);
  out += "}}\n";
  return atomic_write_text(path, out, error);
}

bool flush_trace(std::string* error) {
  const std::string path = trace_path();
  if (path.empty()) return false;
  return write_trace(path, error);
}

void reset_trace() {
  // Test-only: callers must be quiescent (no concurrent recorders), since
  // zeroing a count re-opens published slots for their owner threads.
  TraceRegistry& registry = trace_registry();
  MutexLock lock(registry.mutex);
  for (const auto& ring : registry.rings) {
    ring->count.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(std::int64_t ns) noexcept {
  if (!metrics_enabled()) return;
  const std::uint64_t v =
      ns > 0 ? static_cast<std::uint64_t>(ns) : std::uint64_t{0};
  const int b = v == 0 ? 0 : std::bit_width(v);  // v in [2^(b-1), 2^b)
  buckets_[b >= kBuckets ? kBuckets - 1 : b].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<std::int64_t>(v),
                      std::memory_order_relaxed);
  std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

Counter& counter(const char* name) {
  MetricsRegistry& registry = metrics_registry();
  MutexLock lock(registry.mutex);
  auto& slot = registry.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const char* name) {
  MetricsRegistry& registry = metrics_registry();
  MutexLock lock(registry.mutex);
  auto& slot = registry.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const char* name) {
  MetricsRegistry& registry = metrics_registry();
  MutexLock lock(registry.mutex);
  auto& slot = registry.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

analysis::JsonValue registry_json() {
  using analysis::JsonValue;
  // Snapshot the rings' drop counts first: the trace and metrics mutexes
  // are never nested elsewhere, and taking them sequentially (not nested)
  // keeps it that way.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ring_drops;
  std::uint64_t drops_total = 0;
  {
    TraceRegistry& traces = trace_registry();
    MutexLock lock(traces.mutex);
    for (const auto& ring : traces.rings) {
      const std::uint64_t d = ring->dropped.load(std::memory_order_relaxed);
      drops_total += d;
      if (d != 0) ring_drops.emplace_back(ring->tid, d);
    }
  }
  JsonValue counters = JsonValue::object();
  JsonValue gauges = JsonValue::object();
  JsonValue histograms = JsonValue::object();
  MetricsRegistry& registry = metrics_registry();
  MutexLock lock(registry.mutex);
  for (const auto& [name, metric] : registry.counters) {
    counters.set(name,
                 JsonValue::integer(static_cast<long long>(metric->value())));
  }
  for (const auto& [name, metric] : registry.gauges) {
    gauges.set(name,
               JsonValue::integer(static_cast<long long>(metric->value())));
  }
  // Ring drops ride in the gauges block (they are instantaneous facts
  // about the trace buffers, not gated metrics) so trace loss is visible
  // to every metrics consumer.
  gauges.set("obs.ring_dropped_total",
             JsonValue::integer(static_cast<long long>(drops_total)));
  for (const auto& [tid, d] : ring_drops) {
    gauges.set("obs.ring_dropped.tid" + std::to_string(tid),
               JsonValue::integer(static_cast<long long>(d)));
  }
  for (const auto& [name, metric] : registry.histograms) {
    JsonValue h = JsonValue::object();
    h.set("count",
          JsonValue::integer(static_cast<long long>(metric->count())));
    h.set("total_ns",
          JsonValue::integer(static_cast<long long>(metric->total_ns())));
    h.set("max_ns",
          JsonValue::integer(static_cast<long long>(metric->max_ns())));
    h.set("p50_ns", JsonValue::number(histogram_quantile_ns(*metric, 0.50)));
    h.set("p95_ns", JsonValue::number(histogram_quantile_ns(*metric, 0.95)));
    h.set("p99_ns", JsonValue::number(histogram_quantile_ns(*metric, 0.99)));
    JsonValue buckets = JsonValue::array();
    int top = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (metric->bucket(i) != 0) top = i;
    }
    for (int i = 0; i <= top; ++i) {
      buckets.push(
          JsonValue::integer(static_cast<long long>(metric->bucket(i))));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(name, std::move(h));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void reset_metrics() {
  MetricsRegistry& registry = metrics_registry();
  MutexLock lock(registry.mutex);
  for (const auto& [name, metric] : registry.counters) metric->reset();
  for (const auto& [name, metric] : registry.gauges) metric->reset();
  for (const auto& [name, metric] : registry.histograms) metric->reset();
}

}  // namespace gpupower::core::obs
