#include "telemetry/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

namespace gpupower::telemetry {

PowerTrace PowerTrace::trimmed(double trim_s) const {
  std::vector<PowerSample> kept;
  kept.reserve(samples_.size());
  for (const auto& s : samples_) {
    if (s.t_s >= trim_s) kept.push_back(s);
  }
  return PowerTrace(std::move(kept));
}

double PowerTrace::mean_w() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.power_w;
  return sum / static_cast<double>(samples_.size());
}

double PowerTrace::stddev_w() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean_w();
  double sq = 0.0;
  for (const auto& s : samples_) sq += (s.power_w - m) * (s.power_w - m);
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double PowerTrace::min_w() const {
  double v = std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) v = std::min(v, s.power_w);
  return samples_.empty() ? 0.0 : v;
}

double PowerTrace::max_w() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const auto& s : samples_) v = std::max(v, s.power_w);
  return samples_.empty() ? 0.0 : v;
}

double PowerTrace::energy_j() const {
  double e = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = samples_[i].t_s - samples_[i - 1].t_s;
    e += 0.5 * (samples_[i].power_w + samples_[i - 1].power_w) * dt;
  }
  return e;
}

void PowerTrace::write_csv(std::ostream& os) const {
  os << "t_s,power_w\n";
  for (const auto& s : samples_) os << s.t_s << ',' << s.power_w << '\n';
}

double UtilTrace::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.utilization;
  return sum / static_cast<double>(samples_.size());
}

double UtilTrace::max() const {
  double v = 0.0;
  for (const auto& s : samples_) v = std::max(v, s.utilization);
  return v;
}

void UtilTrace::write_csv(std::ostream& os) const {
  os << "t_s,utilization\n";
  for (const auto& s : samples_) os << s.t_s << ',' << s.utilization << '\n';
}

bool UtilTrace::read_csv(std::istream& is, UtilTrace& trace) {
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("t_s", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos) return false;
    char* end = nullptr;
    const double t = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) return false;
    const char* util_begin = line.c_str() + comma + 1;
    const double util = std::strtod(util_begin, &end);
    if (end == util_begin) return false;
    trace.push(t, util);
  }
  return true;
}

}  // namespace gpupower::telemetry
