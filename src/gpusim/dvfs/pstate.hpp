// P-state tables: the discrete clock/voltage operating points a driver-
// managed power state machine (PowerMizer / nvidia-smi "performance
// states") steps between.  States are derived from a DeviceDescriptor's
// boost clock: P0 is the boost state, deeper states scale the clock down
// toward a floor with the supply voltage tracking frequency along the
// classic near-linear DVFS curve (voltage cannot drop below the transistor
// threshold, hence the voltage floor).
//
// Convention follows the NVML clock tables the powermizer exemplar walks:
// index 0 is the highest-performance state, the last index the deepest
// low-power state.
#pragma once

#include <cstddef>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/power.hpp"

namespace gpupower::gpusim::dvfs {

struct PState {
  int index = 0;               ///< 0 = boost, size()-1 = deepest low-power
  double clock_ghz = 0.0;
  double clock_frac = 1.0;     ///< clock / boost clock
  double voltage_scale = 1.0;  ///< supply voltage / boost voltage

  [[nodiscard]] OperatingPoint operating_point() const noexcept {
    return OperatingPoint{clock_frac, voltage_scale};
  }
};

class PStateTable {
 public:
  /// The degenerate one-state table: boost only.  Replaying with it is the
  /// "DVFS disabled" case and reproduces the static model bit-identically.
  [[nodiscard]] static PStateTable boost_only(const DeviceDescriptor& dev);

  /// Builds `states` evenly spaced clock points from the boost clock down
  /// to `min_clock_frac` of it, with voltage following
  ///   V(f) = v_floor + (1 - v_floor) * f
  /// relative to the boost voltage (v_floor models the threshold voltage
  /// the rail cannot go below).
  [[nodiscard]] static PStateTable for_device(const DeviceDescriptor& dev,
                                              int states = 5,
                                              double min_clock_frac = 0.40,
                                              double voltage_floor = 0.65);

  [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }
  [[nodiscard]] const PState& operator[](std::size_t i) const noexcept {
    return states_[i];
  }
  [[nodiscard]] const PState& boost() const noexcept { return states_.front(); }
  [[nodiscard]] const PState& deepest() const noexcept {
    return states_.back();
  }
  [[nodiscard]] const std::vector<PState>& states() const noexcept {
    return states_;
  }

  /// Clamps an arbitrary index into the table's valid range.
  [[nodiscard]] int clamp_index(int index) const noexcept;

 private:
  std::vector<PState> states_;
};

}  // namespace gpupower::gpusim::dvfs
