// Fleet power-capping suite: allocator conservation (sum of grants <= cap
// on every slice), the RC thermal model (heat-up/cool-down monotonicity,
// throttle hysteresis without flapping), the single-device equivalence
// guarantee (fleet of one, infinite cap, thermal off == submit_dvfs bit
// for bit), determinism through the engine at different worker counts, and
// the capped-fleet behaviours the fig_fleet_capping bench sweeps.
#include "gpusim/fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <vector>

#include "core/config_builder.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/fleet_experiment.hpp"
#include "gpusim/fleet/allocator.hpp"
#include "gpusim/fleet/thermal.hpp"
#include "gpusim/simulator.hpp"

namespace gpupower::gpusim::fleet {
namespace {

using core::DvfsConfig;
using core::FleetConfig;
using core::FleetResult;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- allocators -----------------------------------------------------------

std::vector<DeviceDemand> sample_demands() {
  // Device 2 is idle-ish, device 3 inactive; floors below demands.
  std::vector<DeviceDemand> demands(4);
  demands[0] = {220.0, 60.0, 0.08, 0.004, 3, true};
  demands[1] = {180.0, 55.0, 0.02, 0.005, 1, true};
  demands[2] = {52.0, 50.0, 0.0, 0.006, 2, true};
  demands[3] = {0.0, 0.0, 0.0, 0.0, 4, false};
  return demands;
}

TEST(FleetAllocator, EveryPolicyConservesTheCap) {
  const auto demands = sample_demands();
  for (const auto policy :
       {AllocatorConfig::Policy::kUniform,
        AllocatorConfig::Policy::kProportional,
        AllocatorConfig::Policy::kPriority,
        AllocatorConfig::Policy::kGreedyOracle}) {
    AllocatorConfig config;
    config.policy = policy;
    const auto allocator = make_allocator(config);
    for (const double cap : {100.0, 250.0, 600.0}) {
      std::vector<double> budgets(demands.size(), -1.0);
      allocator->allocate(demands, cap, budgets);
      double total = 0.0;
      for (std::size_t i = 0; i < demands.size(); ++i) {
        EXPECT_GE(budgets[i], 0.0);
        if (!demands[i].active) {
          EXPECT_EQ(budgets[i], 0.0);
        }
        total += budgets[i];
      }
      EXPECT_LE(total, cap * (1.0 + 1e-12))
          << name(policy) << " cap=" << cap;
    }
  }
}

TEST(FleetAllocator, UniformSplitsEquallyAmongActiveDevices) {
  const auto demands = sample_demands();
  const auto allocator = make_allocator({AllocatorConfig::Policy::kUniform});
  std::vector<double> budgets(demands.size());
  allocator->allocate(demands, 300.0, budgets);
  EXPECT_DOUBLE_EQ(budgets[0], 100.0);
  EXPECT_DOUBLE_EQ(budgets[1], 100.0);
  EXPECT_DOUBLE_EQ(budgets[2], 100.0);
  EXPECT_DOUBLE_EQ(budgets[3], 0.0);
}

TEST(FleetAllocator, ProportionalGrantsDemandWhenItFitsAndScalesWhenNot) {
  const auto demands = sample_demands();
  const auto allocator =
      make_allocator({AllocatorConfig::Policy::kProportional});
  std::vector<double> budgets(demands.size());
  allocator->allocate(demands, 600.0, budgets);  // 452 total fits
  EXPECT_DOUBLE_EQ(budgets[0], 220.0);
  EXPECT_DOUBLE_EQ(budgets[1], 180.0);
  EXPECT_DOUBLE_EQ(budgets[2], 52.0);

  allocator->allocate(demands, 226.0, budgets);  // half of total demand
  EXPECT_DOUBLE_EQ(budgets[0], 110.0);
  EXPECT_DOUBLE_EQ(budgets[1], 90.0);
  EXPECT_DOUBLE_EQ(budgets[2], 26.0);
}

TEST(FleetAllocator, PriorityFundsFloorsFirstThenFillsInOrder) {
  const auto demands = sample_demands();
  const auto allocator = make_allocator({AllocatorConfig::Policy::kPriority});
  std::vector<double> budgets(demands.size());
  // Floors sum to 165; the remaining 85 goes to device 0 (priority 3).
  allocator->allocate(demands, 250.0, budgets);
  EXPECT_DOUBLE_EQ(budgets[0], 145.0);  // floor 60 + 85
  EXPECT_DOUBLE_EQ(budgets[1], 55.0);   // floor only
  EXPECT_DOUBLE_EQ(budgets[2], 50.0);   // floor only
  EXPECT_DOUBLE_EQ(budgets[3], 0.0);
}

// --- thermal model --------------------------------------------------------

ThermalConfig test_thermal() {
  ThermalConfig config;
  config.enabled = true;
  config.ambient_c = 30.0;
  config.tau_s = 2.0;
  config.trip_c = 80.0;
  config.release_c = 70.0;
  return config;
}

TEST(FleetThermal, HeatsMonotonicallyTowardTheRCAsymptote) {
  const ThermalConfig config = test_thermal();
  ThermalState state(config, 0.12);
  const double target = 30.0 + 0.12 * 300.0;  // ambient + R * P
  double last = state.temperature_c();
  EXPECT_DOUBLE_EQ(last, 30.0);
  for (int i = 0; i < 400; ++i) {
    state.step(300.0, 0.05);
    EXPECT_GT(state.temperature_c(), last);
    EXPECT_LT(state.temperature_c(), target);
    last = state.temperature_c();
  }
  EXPECT_NEAR(state.temperature_c(), target, 0.05);
}

TEST(FleetThermal, CoolsMonotonicallyTowardAmbientAtZeroPower) {
  ThermalConfig config = test_thermal();
  config.initial_c = 85.0;
  ThermalState state(config, 0.12);
  double last = state.temperature_c();
  for (int i = 0; i < 400; ++i) {
    state.step(0.0, 0.05);
    EXPECT_LT(state.temperature_c(), last);
    EXPECT_GT(state.temperature_c(), 30.0);
    last = state.temperature_c();
  }
  EXPECT_NEAR(state.temperature_c(), 30.0, 0.05);
}

TEST(FleetThermal, ThrottleHysteresisDoesNotFlap) {
  const ThermalConfig config = test_thermal();
  ThermalState state(config, 0.12);
  // Heat past the trip point.
  while (!state.throttling()) state.step(600.0, 0.05);
  EXPECT_GE(state.temperature_c(), config.trip_c);

  // Cool through the hysteresis band: the latch must hold everywhere
  // between release and trip — no flapping on slice-scale noise.
  int transitions = 0;
  bool last = state.throttling();
  while (state.temperature_c() > config.release_c) {
    state.step(0.0, 0.02);
    if (state.throttling() != last) {
      ++transitions;
      last = state.throttling();
    }
    if (state.temperature_c() > config.release_c) {
      EXPECT_TRUE(state.throttling());
    }
  }
  EXPECT_FALSE(state.throttling());  // released at/below release_c
  EXPECT_EQ(transitions, 1);         // exactly one off transition
}

// --- shared fixture -------------------------------------------------------

DvfsConfig small_dvfs_config() {
  DvfsConfig config;
  config.experiment.dtype = gpupower::numeric::DType::kFP16;
  config.experiment.n = 64;
  config.experiment.seeds = 2;
  config.experiment.sampling = SamplingPlan::fast(6, 0.5);
  config.slice_s = 0.01;
  config.pstates = 5;
  config.governor.policy = dvfs::GovernorConfig::Policy::kUtilization;
  config.timeline =
      dvfs::parse_timeline(
          "burst(period=0.1, duty=30%, high=1, low=10%, dur=0.5)")
          .timeline;
  return config;
}

/// The fleet that must reproduce `config` bit for bit: one device, same
/// GPU/governor/timeline, infinite cap, thermal off.
FleetConfig fleet_of_one(const DvfsConfig& config) {
  FleetConfig fleet_config;
  fleet_config.experiment = config.experiment;
  fleet_config.timelines = {config.timeline};
  core::FleetDeviceConfig device;
  device.gpu = config.experiment.gpu;
  device.governor = config.governor;
  fleet_config.devices = {device};
  fleet_config.phase_patterns = config.phase_patterns;
  fleet_config.slice_s = config.slice_s;
  fleet_config.pstates = config.pstates;
  return fleet_config;  // allocator defaults: uncapped; thermal off
}

FleetConfig small_fleet_config(int devices = 3) {
  const DvfsConfig dvfs_config = small_dvfs_config();
  FleetConfig config = fleet_of_one(dvfs_config);
  config.devices.clear();
  for (int i = 0; i < devices; ++i) {
    core::FleetDeviceConfig device;
    device.gpu = dvfs_config.experiment.gpu;
    device.governor = dvfs_config.governor;
    device.timeline = i % static_cast<int>(config.timelines.size());
    device.priority = devices - i;
    config.devices.push_back(device);
  }
  return config;
}

void expect_identical_replays(const dvfs::ReplayResult& a,
                              const dvfs::ReplayResult& b) {
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.backlog_max_s, b.backlog_max_s);
  EXPECT_EQ(a.mean_backlog_s, b.mean_backlog_s);
  EXPECT_EQ(a.transitions, b.transitions);
  ASSERT_EQ(a.slices.size(), b.slices.size());
  for (std::size_t i = 0; i < a.slices.size(); ++i) {
    EXPECT_EQ(a.slices[i].power_w, b.slices[i].power_w);
    EXPECT_EQ(a.slices[i].pstate, b.slices[i].pstate);
    EXPECT_EQ(a.slices[i].utilization, b.slices[i].utilization);
    EXPECT_EQ(a.slices[i].backlog_s, b.slices[i].backlog_s);
    EXPECT_EQ(a.slices[i].clock_frac, b.slices[i].clock_frac);
  }
}

// --- the equivalence guarantee --------------------------------------------

TEST(Fleet, SingleDeviceInfiniteCapThermalOffMatchesDvfsBitForBit) {
  const DvfsConfig dvfs_config = small_dvfs_config();
  const FleetConfig fleet_config = fleet_of_one(dvfs_config);

  const core::DvfsResult dvfs_result = core::run_dvfs(dvfs_config);
  const FleetResult fleet_result = core::run_fleet(fleet_config);

  EXPECT_EQ(fleet_result.energy_j, dvfs_result.energy_j);
  EXPECT_EQ(fleet_result.energy_std_j, dvfs_result.energy_std_j);
  EXPECT_EQ(fleet_result.completion_s, dvfs_result.completion_s);
  EXPECT_EQ(fleet_result.backlog_max_s, dvfs_result.backlog_max_s);
  EXPECT_EQ(fleet_result.mean_backlog_s, dvfs_result.mean_backlog_s);
  EXPECT_EQ(fleet_result.transitions, dvfs_result.transitions);
  ASSERT_EQ(fleet_result.trace.devices.size(), 1u);
  expect_identical_replays(fleet_result.trace.devices[0].replay,
                           dvfs_result.trace);
  // Fleet-only series stay empty in the equivalence configuration.
  EXPECT_TRUE(fleet_result.trace.devices[0].temperature_c.empty());
  EXPECT_TRUE(fleet_result.trace.devices[0].budget_w.empty());
}

TEST(Fleet, EngineSubmitFleetMatchesSubmitDvfsInTheDegenerateCase) {
  const DvfsConfig dvfs_config = small_dvfs_config();
  core::ExperimentEngine engine(core::EngineOptions::with_workers(2));
  const core::DvfsHandle dvfs_handle = engine.submit_dvfs(dvfs_config);
  const core::FleetHandle fleet_handle =
      engine.submit_fleet(fleet_of_one(dvfs_config));
  engine.wait_all();
  EXPECT_EQ(fleet_handle.get().energy_j, dvfs_handle.get().energy_j);
  expect_identical_replays(fleet_handle.get().trace.devices[0].replay,
                           dvfs_handle.get().trace);
}

// --- determinism through the engine ---------------------------------------

TEST(Fleet, EngineReplayIsDeterministicAcrossWorkerCounts) {
  FleetConfig config = small_fleet_config();
  config.allocator.policy = AllocatorConfig::Policy::kProportional;
  config.allocator.cap_w = 300.0;
  config.thermal = test_thermal();
  const FleetResult serial = core::run_fleet(config);

  std::vector<int> worker_counts{1, 4};
  if (const int workers = core::read_bench_env().workers; workers >= 1) {
    worker_counts.push_back(workers);
  }
  for (const int workers : worker_counts) {
    core::EngineOptions options;
    options.workers = workers;
    core::ExperimentEngine engine(options);
    const FleetResult& parallel = engine.submit_fleet(config).get();
    EXPECT_EQ(serial.energy_j, parallel.energy_j);
    EXPECT_EQ(serial.energy_std_j, parallel.energy_std_j);
    EXPECT_EQ(serial.completion_s, parallel.completion_s);
    EXPECT_EQ(serial.backlog_max_s, parallel.backlog_max_s);
    EXPECT_EQ(serial.over_cap_slices, parallel.over_cap_slices);
    ASSERT_EQ(serial.trace.fleet_power_w.size(),
              parallel.trace.fleet_power_w.size());
    for (std::size_t i = 0; i < serial.trace.fleet_power_w.size(); ++i) {
      EXPECT_EQ(serial.trace.fleet_power_w[i],
                parallel.trace.fleet_power_w[i]);
    }
    ASSERT_EQ(serial.trace.devices.size(), parallel.trace.devices.size());
    for (std::size_t d = 0; d < serial.trace.devices.size(); ++d) {
      expect_identical_replays(serial.trace.devices[d].replay,
                               parallel.trace.devices[d].replay);
      EXPECT_EQ(serial.trace.devices[d].temperature_c,
                parallel.trace.devices[d].temperature_c);
      EXPECT_EQ(serial.trace.devices[d].budget_w,
                parallel.trace.devices[d].budget_w);
    }
  }
}

TEST(Fleet, EngineCachesIdenticalSubmissionsAndSeparatesAllocators) {
  core::ExperimentEngine engine(core::EngineOptions::with_workers(2));
  FleetConfig config = small_fleet_config();
  config.allocator.cap_w = 250.0;
  const core::FleetHandle first = engine.submit_fleet(config);
  const core::FleetHandle second = engine.submit_fleet(config);
  engine.wait_all();
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(&first.get(), &second.get());

  FleetConfig uniform = config;
  uniform.allocator.policy = AllocatorConfig::Policy::kUniform;
  (void)engine.submit_fleet(uniform);
  FleetConfig hotter = config;
  hotter.thermal = test_thermal();
  (void)engine.submit_fleet(hotter);
  engine.wait_all();
  EXPECT_EQ(engine.stats().jobs_computed, 3u);
}

// --- capped-fleet behaviour -----------------------------------------------

TEST(Fleet, GrantedBudgetsRespectTheCapOnEverySlice) {
  FleetConfig config = small_fleet_config(4);
  config.allocator.policy = AllocatorConfig::Policy::kGreedyOracle;
  config.allocator.cap_w = 260.0;
  const FleetResult result = core::run_fleet(config);

  // Reconstruct per-slice budget sums from the seed-0 trace: devices end
  // at different times, so walk to the longest series.
  std::size_t slices = 0;
  for (const FleetDeviceRun& device : result.trace.devices) {
    slices = std::max(slices, device.budget_w.size());
    EXPECT_EQ(device.budget_w.size(), device.replay.slices.size());
  }
  ASSERT_GT(slices, 0u);
  for (std::size_t s = 0; s < slices; ++s) {
    double total = 0.0;
    for (const FleetDeviceRun& device : result.trace.devices) {
      if (s < device.budget_w.size()) total += device.budget_w[s];
    }
    EXPECT_LE(total, config.allocator.cap_w * (1.0 + 1e-9))
        << "slice " << s;
  }
}

TEST(Fleet, TightCapForcesDeeperStatesAndBacklog) {
  FleetConfig config = small_fleet_config(4);
  const FleetResult uncapped = core::run_fleet(config);

  FleetConfig capped = config;
  capped.allocator.policy = AllocatorConfig::Policy::kUniform;
  // Between the fleet's floor (4 x ~42 W idle) and its uncapped peak: the
  // cap binds during bursts but stays physically enforceable.
  capped.allocator.cap_w =
      0.5 * (uncapped.peak_power_w +
             4.0 * device(config.devices[0].gpu).idle_w);
  ASSERT_LT(capped.allocator.cap_w, uncapped.peak_power_w);
  const FleetResult result = core::run_fleet(capped);

  EXPECT_LE(result.peak_power_w,
            capped.allocator.cap_w * (1.0 + 1e-9));
  EXPECT_GT(result.backlog_max_s, uncapped.backlog_max_s);
  EXPECT_LT(result.energy_j, uncapped.energy_j);
  int clamped = 0;
  for (const core::FleetDeviceSummary& device : result.devices) {
    clamped += static_cast<int>(device.budget_clamped_slices);
  }
  EXPECT_GT(clamped, 0);
}

TEST(Fleet, P99BacklogIsAFleetQuantileBelowTheMax) {
  // Staggered load means the devices' worst backlogs differ; the p99
  // across devices interpolates between the top order statistics, so it
  // stays positive, at most the max, and above the across-device mean
  // whenever the distribution has a tail.
  FleetConfig config = small_fleet_config(4);
  config.allocator.policy = AllocatorConfig::Policy::kUniform;
  const FleetResult uncapped = core::run_fleet(config);
  FleetConfig capped = config;
  capped.allocator.cap_w =
      0.5 * (uncapped.peak_power_w +
             4.0 * device(config.devices[0].gpu).idle_w);
  const FleetResult result = core::run_fleet(capped);

  EXPECT_GT(result.backlog_p99_s, 0.0);
  EXPECT_LE(result.backlog_p99_s, result.backlog_max_s + 1e-12);
  // The JSON export carries the SLO metric.
  const std::string json = core::fleet_to_json(capped, result).dump();
  EXPECT_NE(json.find("\"backlog_p99_s\":"), std::string::npos);
}

TEST(Fleet, DemandAwareAllocationBeatsUniformOnBacklog) {
  // Staggered bursts: devices peak at different times, so a demand signal
  // can move budget to whoever is bursting.  The uniform split starves the
  // burster while idle devices hold unused headroom.
  FleetConfig config = small_fleet_config(3);
  config.timelines.clear();
  for (int i = 0; i < 3; ++i) {
    dvfs::WorkloadTimeline timeline;
    if (i > 0) {
      timeline =
          dvfs::WorkloadTimeline::idle(0.15 * static_cast<double>(i));
    }
    timeline.append(
        dvfs::parse_timeline(
            "burst(period=0.45, duty=30%, high=1, low=10%, dur=0.9)")
            .timeline);
    config.timelines.push_back(timeline);
    config.devices[static_cast<std::size_t>(i)].timeline = i;
  }
  const FleetResult uncapped = core::run_fleet(config);

  FleetConfig uniform = config;
  uniform.allocator.policy = AllocatorConfig::Policy::kUniform;
  uniform.allocator.cap_w =
      0.45 * (uncapped.peak_power_w +
              3.0 * device(config.devices[0].gpu).idle_w);
  FleetConfig proportional = uniform;
  proportional.allocator.policy = AllocatorConfig::Policy::kProportional;

  const FleetResult uniform_result = core::run_fleet(uniform);
  const FleetResult proportional_result = core::run_fleet(proportional);
  EXPECT_LT(proportional_result.backlog_max_s,
            uniform_result.backlog_max_s);
  EXPECT_LE(proportional_result.completion_s,
            uniform_result.completion_s);
}

// --- thermal threading through the fleet ----------------------------------

TEST(Fleet, ThermalStateThreadsAcrossSlicesAndThrottlesWhenHot) {
  FleetConfig config = small_fleet_config(1);
  config.timelines = {dvfs::WorkloadTimeline::constant(1.0, 0.4)};
  config.devices[0].governor.policy = dvfs::GovernorConfig::Policy::kFixed;
  config.devices[0].governor.fixed_pstate = 0;
  config.thermal = test_thermal();
  // A hot die at start plus a low trip point: the device must throttle
  // immediately and recover only after cooling through the release band.
  config.thermal.initial_c = 90.0;
  config.thermal.trip_c = 60.0;
  config.thermal.release_c = 45.0;
  config.thermal.tau_s = 0.2;  // fast RC so the test sees both regimes
  const FleetResult result = core::run_fleet(config);

  ASSERT_EQ(result.trace.devices.size(), 1u);
  const FleetDeviceRun& device = result.trace.devices[0];
  ASSERT_FALSE(device.temperature_c.empty());
  EXPECT_GT(device.throttled_slices, 0);
  // While throttling, the clamp parks the device in the deepest state.
  EXPECT_EQ(device.replay.slices.front().pstate, config.pstates - 1);
  // The die cools (power at the throttled state sits below the hot start)
  // and the device eventually returns to boost once released.
  EXPECT_LT(device.temperature_c.back(), 90.0);
  EXPECT_EQ(device.replay.slices.back().pstate, 0);
  // Once released, the latch stays open: pstate transitions back to boost
  // exactly once (no trip/release flapping at slice granularity).
  int throttle_exits = 0;
  for (std::size_t s = 1; s < device.replay.slices.size(); ++s) {
    if (device.replay.slices[s - 1].pstate == config.pstates - 1 &&
        device.replay.slices[s].pstate < config.pstates - 1) {
      ++throttle_exits;
    }
  }
  EXPECT_EQ(throttle_exits, 1);
}

TEST(Fleet, SustainedLoadHeatsTheDieMonotonically) {
  FleetConfig config = small_fleet_config(1);
  config.timelines = {dvfs::WorkloadTimeline::constant(1.0, 0.3)};
  config.devices[0].governor.policy = dvfs::GovernorConfig::Policy::kFixed;
  config.thermal = test_thermal();
  config.thermal.trip_c = 200.0;  // never throttles; pure heat-up
  config.thermal.release_c = 190.0;
  const FleetResult result = core::run_fleet(config);

  const std::vector<double>& temps =
      result.trace.devices[0].temperature_c;
  ASSERT_GE(temps.size(), 2u);
  for (std::size_t i = 1; i < temps.size(); ++i) {
    EXPECT_GT(temps[i], temps[i - 1]) << "slice " << i;
  }
  EXPECT_GT(result.devices[0].peak_temperature_c, 30.0);
}

// --- validation -----------------------------------------------------------

TEST(Fleet, RejectsDegenerateConfigs) {
  core::ExperimentEngine engine(core::EngineOptions::with_workers(1));
  FleetConfig config = small_fleet_config();
  config.experiment.seeds = 0;
  EXPECT_THROW((void)engine.submit_fleet(config), std::invalid_argument);

  config = small_fleet_config();
  config.devices.clear();
  EXPECT_THROW((void)engine.submit_fleet(config), std::invalid_argument);

  config = small_fleet_config();
  config.devices[0].timeline = 7;
  EXPECT_THROW((void)engine.submit_fleet(config), std::invalid_argument);

  config = small_fleet_config();
  config.thermal = test_thermal();
  config.thermal.release_c = config.thermal.trip_c;  // no hysteresis band
  EXPECT_THROW((void)engine.submit_fleet(config), std::invalid_argument);

  config = small_fleet_config();
  config.allocator.cap_w = 0.0;
  EXPECT_THROW((void)engine.submit_fleet(config), std::invalid_argument);
}

TEST(Fleet, BuilderAssemblesAndValidates) {
  const DvfsConfig dvfs_config = small_dvfs_config();
  core::FleetConfigBuilder builder;
  builder.experiment(dvfs_config.experiment)
      .add_timeline("burst(period=0.1, duty=30%, dur=0.4)")
      .add_device(GpuModel::kA100PCIe, "utilization(up=80%, down=30%)")
      .add_device(GpuModel::kRTX6000, "fixed(0)", /*timeline=*/0,
                  /*priority=*/2)
      .allocator("greedy")
      .cap(400.0)
      .slice(0.01)
      .pstates(5);
  ASSERT_TRUE(builder.valid()) << builder.error();
  const FleetConfig config = builder.build();
  EXPECT_EQ(config.devices.size(), 2u);
  EXPECT_EQ(config.devices[1].gpu, GpuModel::kRTX6000);
  EXPECT_EQ(config.allocator.policy,
            AllocatorConfig::Policy::kGreedyOracle);
  EXPECT_DOUBLE_EQ(config.allocator.cap_w, 400.0);

  // Heterogeneous fleets run: the two models draw different power.
  const FleetResult result = core::run_fleet(config);
  ASSERT_EQ(result.devices.size(), 2u);
  EXPECT_NE(result.devices[0].energy_j, result.devices[1].energy_j);

  core::FleetConfigBuilder invalid;
  invalid.experiment(dvfs_config.experiment)
      .add_device(GpuModel::kA100PCIe, "utilization(up=80%, down=30%)");
  EXPECT_FALSE(invalid.valid());  // no timeline
  EXPECT_FALSE(invalid.try_build().has_value());

  core::FleetConfigBuilder bad_allocator;
  bad_allocator.allocator("fairshare");
  EXPECT_FALSE(bad_allocator.valid());
}

TEST(Fleet, CacheKeySeparatesCapsAllocatorsAndThermal) {
  FleetConfig a = small_fleet_config();
  FleetConfig b = a;
  EXPECT_EQ(core::canonical_fleet_key(a), core::canonical_fleet_key(b));
  b.allocator.cap_w = 500.0;
  EXPECT_NE(core::canonical_fleet_key(a), core::canonical_fleet_key(b));
  b = a;
  b.allocator.policy = AllocatorConfig::Policy::kUniform;
  EXPECT_NE(core::canonical_fleet_key(a), core::canonical_fleet_key(b));
  b = a;
  b.thermal = test_thermal();
  EXPECT_NE(core::canonical_fleet_key(a), core::canonical_fleet_key(b));
  b = a;
  b.devices[1].priority += 1;
  EXPECT_NE(core::canonical_fleet_key(a), core::canonical_fleet_key(b));
}

}  // namespace
}  // namespace gpupower::gpusim::fleet
