// Converts activity counts into watts: the dynamic-energy aggregation, the
// input-independent runtime model (Fig. 1), the thermal/leakage fixed point,
// and TDP throttling (DVFS clamping, which the paper avoided on the A100 by
// choosing 2048x2048 but observed on the RTX 6000).
#pragma once

#include "gemm/problem.hpp"
#include "gpusim/device.hpp"
#include "gpusim/energy_model.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::gpusim {

/// Ambient air temperature the thermal model relaxes toward, and the
/// junction temperature above which excess leakage accrues.  Shared by the
/// steady-state fixed point in PowerCalculator::evaluate_at and the
/// time-resolved RC thermal model the fleet simulator threads across
/// slices — the two must agree or the thermal-off/thermal-on paths would
/// model different silicon.
inline constexpr double kAmbientC = 30.0;
inline constexpr double kLeakageRefC = 40.0;

/// Dynamic power broken down by physical rail, in watts at the realized
/// clock.
struct RailPower {
  double fetch_w = 0.0;
  double operand_w = 0.0;
  double multiply_w = 0.0;
  double accum_w = 0.0;
  double issue_w = 0.0;

  [[nodiscard]] double total() const noexcept {
    return fetch_w + operand_w + multiply_w + accum_w + issue_w;
  }
};

/// A DVFS operating point: core clock and supply voltage relative to the
/// device's boost state.  The default (1.0, 1.0) is the boost P-state —
/// evaluating there is bit-identical to the classic static path, which is
/// how the DVFS subsystem expresses "disabled" as the one-state degenerate
/// case.
struct OperatingPoint {
  double clock_frac = 1.0;     ///< core clock / boost clock
  double voltage_scale = 1.0;  ///< supply voltage / boost voltage
};

struct PowerReport {
  double iteration_s = 0.0;           ///< at boost clock
  double realized_iteration_s = 0.0;  ///< after P-state + any throttling
  double effective_clock_frac = 1.0;  ///< 1.0 when at boost and not throttled
  bool throttled = false;

  RailPower rails;         ///< data-dependent + issue dynamic power
  double dynamic_w = 0.0;  ///< rails.total()
  double idle_w = 0.0;
  double leakage_w = 0.0;  ///< temperature-dependent excess leakage
  double total_w = 0.0;
  double energy_j = 0.0;   ///< per GEMM iteration
  double temperature_c = 0.0;
  double utilization = 0.0;
};

/// Math instructions issued for `macs` multiply-accumulates on the given
/// datapath: per-FMA for SIMT (HFMA2 pairs FP16 MACs), per-MMA for tensor
/// cores.
[[nodiscard]] double math_instructions(gpupower::numeric::DType dtype,
                                       double macs) noexcept;

class PowerCalculator {
 public:
  explicit PowerCalculator(const DeviceDescriptor& dev) : dev_(dev) {}

  /// Iteration time at boost clock for one GEMM, from the roofline of the
  /// datapath's sustained math throughput and memory bandwidth.  Input data
  /// never enters this function — runtimes are input-independent, matching
  /// the paper's microsecond-consistent Fig. 1.
  [[nodiscard]] double iteration_time_s(const gemm::GemmProblem& problem,
                                        gpupower::numeric::DType dtype) const;

  /// Full power evaluation for one steady-state GEMM iteration at boost
  /// clock — the classic static path, equal to `evaluate_at` with the
  /// default OperatingPoint.
  [[nodiscard]] PowerReport evaluate(const gemm::GemmProblem& problem,
                                     gpupower::numeric::DType dtype,
                                     const ActivityTotals& activity) const;

  /// Steady-state evaluation at a forced DVFS operating point: per-
  /// iteration switched energy scales with V^2, dynamic power with f*V^2,
  /// and runtime stretches by 1/f.  The thermal/leakage fixed point and the
  /// TDP clamp run on top, so a P-state that still exceeds TDP throttles
  /// further (effective_clock_frac reports the combined factor).  The
  /// per-slice stepping primitive behind the DVFS replayer.
  [[nodiscard]] PowerReport evaluate_at(const gemm::GemmProblem& problem,
                                        gpupower::numeric::DType dtype,
                                        const ActivityTotals& activity,
                                        const OperatingPoint& op) const;

  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return dev_;
  }

 private:
  DeviceDescriptor dev_;
};

}  // namespace gpupower::gpusim
