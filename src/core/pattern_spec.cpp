#include "core/pattern_spec.hpp"

#include <cmath>
#include <sstream>

#include "numeric/bits.hpp"
#include "patterns/bitops.hpp"
#include "patterns/distributions.hpp"
#include "patterns/placement.hpp"
#include "patterns/rng.hpp"
#include "patterns/sparsity.hpp"

namespace gpupower::core {
namespace {

// Seed stream tags so every random decision in one replica is independent.
enum Stream : std::uint64_t {
  kStreamA = 0,
  kStreamB = 1,
  kStreamSparsityA = 2,
  kStreamSparsityB = 3,
  kStreamBitsA = 4,
  kStreamBitsB = 5,
};

std::vector<float> generate_values(const PatternSpec& spec, double sigma,
                                   std::size_t count, std::uint64_t seed) {
  switch (spec.value) {
    case PatternSpec::Value::kGaussian:
      return patterns::gaussian_fill(count, spec.mean, sigma, seed);
    case PatternSpec::Value::kValueSet:
      return patterns::value_set_fill(count, spec.set_size, spec.mean, sigma,
                                      seed);
    case PatternSpec::Value::kConstant:
      return patterns::constant_random_fill(count, spec.mean, sigma, seed);
  }
  return patterns::gaussian_fill(count, spec.mean, sigma, seed);
}

void apply_placement(const PatternSpec& spec, std::vector<float>& data,
                     std::size_t n) {
  switch (spec.place) {
    case PatternSpec::Place::kNone:
      break;
    case PatternSpec::Place::kSortRows:
      patterns::partial_sort_rows(data, n, n, spec.sort_percent);
      break;
    case PatternSpec::Place::kSortColumns:
      patterns::partial_sort_columns(data, n, n, spec.sort_percent);
      break;
    case PatternSpec::Place::kSortWithinRows:
      patterns::partial_sort_within_rows(data, n, n, spec.sort_percent);
      break;
    case PatternSpec::Place::kFullSort:
      patterns::full_sort(data);
      break;
  }
}

template <typename T>
void apply_bitop(const PatternSpec& spec, gemm::Matrix<T>& m,
                 std::uint64_t seed) {
  using traits = gpupower::numeric::scalar_traits<T>;
  const int bits = static_cast<int>(
      std::llround(spec.bit_fraction * static_cast<double>(traits::kBits)));
  switch (spec.bitop) {
    case PatternSpec::BitOp::kNone:
      break;
    case PatternSpec::BitOp::kFlipRandom:
      patterns::flip_random_bits(m.span(), bits, seed);
      break;
    case PatternSpec::BitOp::kRandomizeLow:
      patterns::randomize_low_bits(m.span(), bits, seed);
      break;
    case PatternSpec::BitOp::kRandomizeHigh:
      patterns::randomize_high_bits(m.span(), bits, seed);
      break;
    case PatternSpec::BitOp::kZeroLow:
      patterns::zero_low_bits(m.span(), bits);
      break;
    case PatternSpec::BitOp::kZeroHigh:
      patterns::zero_high_bits(m.span(), bits);
      break;
  }
}

}  // namespace

std::string PatternSpec::describe() const {
  std::ostringstream ss;
  switch (value) {
    case Value::kGaussian:
      ss << "gaussian(mean=" << mean << ",sigma=" << sigma << ")";
      break;
    case Value::kValueSet:
      ss << "value_set(" << set_size << ")";
      break;
    case Value::kConstant:
      ss << "constant";
      break;
  }
  switch (place) {
    case Place::kNone:
      break;
    case Place::kSortRows:
      ss << "+sort_rows(" << sort_percent << "%)";
      break;
    case Place::kSortColumns:
      ss << "+sort_cols(" << sort_percent << "%)";
      break;
    case Place::kSortWithinRows:
      ss << "+sort_within_rows(" << sort_percent << "%)";
      break;
    case Place::kFullSort:
      ss << "+full_sort";
      break;
  }
  if (sparsity > 0.0) ss << "+sparsity(" << sparsity * 100.0 << "%)";
  switch (bitop) {
    case BitOp::kNone:
      break;
    case BitOp::kFlipRandom:
      ss << "+flip(" << bit_fraction << ")";
      break;
    case BitOp::kRandomizeLow:
      ss << "+rand_lsb(" << bit_fraction << ")";
      break;
    case BitOp::kRandomizeHigh:
      ss << "+rand_msb(" << bit_fraction << ")";
      break;
    case BitOp::kZeroLow:
      ss << "+zero_lsb(" << bit_fraction << ")";
      break;
    case BitOp::kZeroHigh:
      ss << "+zero_msb(" << bit_fraction << ")";
      break;
  }
  if (!transpose_b) ss << "+b_not_transposed";
  return ss.str();
}

template <typename T>
ExperimentInputs<T> build_inputs(const PatternSpec& spec,
                                 gpupower::numeric::DType dtype, std::size_t n,
                                 std::uint64_t seed) {
  using gpupower::numeric::DType;
  const bool is_int8 = dtype == DType::kINT8;
  // Scale the FP-domain distribution parameters into INT8's representable
  // range, as the paper does (210 -> 25).
  const double range_scale = is_int8 ? 25.0 / 210.0 : 1.0;
  double sigma = spec.sigma < 0.0
                     ? gpupower::numeric::default_sigma(dtype)
                     : spec.sigma * range_scale;
  const double saved_mean = spec.mean;
  PatternSpec local = spec;
  local.mean = saved_mean * range_scale;

  const std::size_t count = n * n;
  std::vector<float> a_vals = generate_values(
      local, sigma, count, patterns::derive_seed(seed, kStreamA));
  std::vector<float> b_vals = generate_values(
      local, sigma, count, patterns::derive_seed(seed, kStreamB));

  apply_placement(spec, a_vals, n);
  apply_placement(spec, b_vals, n);

  if (spec.sparsity > 0.0) {
    patterns::sparsify(a_vals, spec.sparsity,
                       patterns::derive_seed(seed, kStreamSparsityA));
    patterns::sparsify(b_vals, spec.sparsity,
                       patterns::derive_seed(seed, kStreamSparsityB));
  }

  ExperimentInputs<T> inputs;
  inputs.a = gemm::materialize<T>(a_vals, n, n);
  inputs.b = gemm::materialize<T>(b_vals, n, n);

  apply_bitop(spec, inputs.a, patterns::derive_seed(seed, kStreamBitsA));
  apply_bitop(spec, inputs.b, patterns::derive_seed(seed, kStreamBitsB));

  const auto a_bits = gemm::raw_bits(inputs.a);
  const auto b_bits = gemm::raw_bits(inputs.b);
  const int width = gpupower::numeric::bit_width(dtype);
  inputs.alignment = gpupower::numeric::average_alignment(a_bits, b_bits, width);
  inputs.weight_fraction =
      gpupower::numeric::average_weight_fraction(a_bits, width);
  return inputs;
}

template ExperimentInputs<float> build_inputs<float>(const PatternSpec&,
                                                     gpupower::numeric::DType,
                                                     std::size_t,
                                                     std::uint64_t);
template ExperimentInputs<gpupower::numeric::float16_t>
build_inputs<gpupower::numeric::float16_t>(const PatternSpec&,
                                           gpupower::numeric::DType,
                                           std::size_t, std::uint64_t);
template ExperimentInputs<gpupower::numeric::int8_value_t>
build_inputs<gpupower::numeric::int8_value_t>(const PatternSpec&,
                                              gpupower::numeric::DType,
                                              std::size_t, std::uint64_t);

}  // namespace gpupower::core
