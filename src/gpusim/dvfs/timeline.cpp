#include "gpusim/dvfs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <vector>

#include "gpusim/dvfs/dsl_util.hpp"

namespace gpupower::gpusim::dvfs {
namespace {

using detail::Cursor;
using detail::format_exact;
using detail::read_ident;
using detail::read_number;

constexpr double kEps = 1e-12;

double clamp_util(double u) { return std::clamp(u, 0.0, 1.0); }

}  // namespace

WorkloadTimeline::WorkloadTimeline(std::vector<TimelinePhase> phases) {
  for (const TimelinePhase& phase : phases) {
    if (phase.duration_s <= 0.0) continue;
    append(constant(phase.utilization, phase.duration_s, phase.pattern));
  }
}

WorkloadTimeline WorkloadTimeline::constant(double utilization,
                                            double duration_s, int pattern) {
  WorkloadTimeline timeline;
  if (duration_s > 0.0) {
    timeline.phases_.push_back(
        {duration_s, clamp_util(utilization), std::max(pattern, -1)});
    timeline.duration_s_ = duration_s;
    timeline.ends_.push_back(duration_s);
  }
  return timeline;
}

WorkloadTimeline WorkloadTimeline::idle(double duration_s) {
  return constant(0.0, duration_s);
}

WorkloadTimeline WorkloadTimeline::burst(double period_s, double duty,
                                         double high, double low,
                                         double duration_s) {
  WorkloadTimeline timeline;
  if (period_s <= 0.0 || duration_s <= 0.0) return timeline;
  // Phase-count backstop: a pathological period (user DSL input) must not
  // materialise billions of phases; beyond the cap the wave truncates.
  constexpr double kMaxPeriods = 1e6;
  if (duration_s / period_s > kMaxPeriods) {
    duration_s = period_s * kMaxPeriods;
  }
  duty = std::clamp(duty, 0.0, 1.0);
  double t = 0.0;
  while (t < duration_s - kEps) {
    const double on = std::min(period_s * duty, duration_s - t);
    if (on > 0.0) timeline.append(constant(high, on));
    t += on;
    const double off = std::min(period_s * (1.0 - duty), duration_s - t);
    if (off > 0.0) timeline.append(constant(low, off));
    t += off;
    if (on <= 0.0 && off <= 0.0) break;  // degenerate duty, avoid spinning
  }
  return timeline;
}

WorkloadTimeline WorkloadTimeline::ramp(double from, double to, int steps,
                                        double duration_s) {
  WorkloadTimeline timeline;
  steps = std::max(steps, 1);
  if (duration_s <= 0.0) return timeline;
  const double step_s = duration_s / static_cast<double>(steps);
  for (int i = 0; i < steps; ++i) {
    // Endpoints included for steps >= 2; a single step takes the segment
    // midpoint so both `from` and `to` still shape the result.
    const double frac =
        steps == 1 ? 0.5
                   : static_cast<double>(i) / static_cast<double>(steps - 1);
    timeline.append(constant(from + (to - from) * frac, step_s));
  }
  return timeline;
}

WorkloadTimeline WorkloadTimeline::from_trace(
    const telemetry::UtilTrace& trace) {
  WorkloadTimeline timeline;
  double prev_t = 0.0;
  for (const telemetry::UtilSample& sample : trace.samples()) {
    const double window = sample.t_s - prev_t;
    if (window > 0.0) {
      timeline.append(constant(sample.utilization, window));
    }
    prev_t = std::max(prev_t, sample.t_s);
  }
  return timeline;
}

WorkloadTimeline& WorkloadTimeline::append(const WorkloadTimeline& other) {
  for (const TimelinePhase& phase : other.phases_) {
    // Merge equal-utilization neighbours so trace round trips through
    // to_util_trace/from_trace compare structurally equal.  Phases carrying
    // different pattern overrides never merge — they are different inputs
    // even at equal load.
    if (!phases_.empty() &&
        phases_.back().utilization == phase.utilization &&
        phases_.back().pattern == phase.pattern) {
      phases_.back().duration_s += phase.duration_s;
      duration_s_ += phase.duration_s;
      ends_.back() = duration_s_;
      continue;
    }
    phases_.push_back(phase);
    duration_s_ += phase.duration_s;
    ends_.push_back(duration_s_);
  }
  return *this;
}

double WorkloadTimeline::offered_at(double t_s) const noexcept {
  if (t_s < 0.0 || phases_.empty() || t_s >= duration_s_) return 0.0;
  const auto it = std::upper_bound(ends_.begin(), ends_.end(), t_s);
  const std::size_t idx = static_cast<std::size_t>(it - ends_.begin());
  return idx < phases_.size() ? phases_[idx].utilization : 0.0;
}

int WorkloadTimeline::pattern_at(double t_s) const noexcept {
  if (t_s < 0.0 || phases_.empty() || t_s >= duration_s_) return -1;
  const auto it = std::upper_bound(ends_.begin(), ends_.end(), t_s);
  const std::size_t idx = static_cast<std::size_t>(it - ends_.begin());
  return idx < phases_.size() ? phases_[idx].pattern : -1;
}

int WorkloadTimeline::max_pattern_index() const noexcept {
  int max_index = -1;
  for (const TimelinePhase& phase : phases_) {
    max_index = std::max(max_index, phase.pattern);
  }
  return max_index;
}

telemetry::UtilTrace WorkloadTimeline::to_util_trace(double period_s) const {
  telemetry::UtilTrace trace;
  if (period_s <= 0.0) return trace;
  for (double t = period_s; t <= duration_s_ + kEps; t += period_s) {
    // Sample the window's midpoint: robust to ends landing exactly on
    // phase boundaries.
    trace.push(std::min(t, duration_s_), offered_at(t - 0.5 * period_s));
  }
  return trace;
}

TimelineParseResult parse_timeline(std::string_view text) {
  Cursor cursor{text};
  TimelineParseResult result;
  const auto fail = [&cursor](std::string message) {
    TimelineParseResult r;
    r.error = std::move(message);
    r.error_pos = cursor.pos;
    return r;
  };

  struct Arg {
    std::string key;
    double value = 0.0;
  };

  bool any_stage = false;
  for (;;) {
    const std::string name = read_ident(cursor);
    if (name.empty()) return fail("expected a timeline stage name");
    if (!cursor.accept('(')) return fail("expected '(' after stage name");

    std::vector<Arg> args;
    if (!cursor.accept(')')) {
      for (;;) {
        Arg arg;
        arg.key = read_ident(cursor);
        if (arg.key.empty()) return fail("expected key=value");
        if (!cursor.accept('=')) {
          return fail("expected '=' after '" + arg.key + "'");
        }
        if (!read_number(cursor, arg.value)) {
          return fail("expected a number for '" + arg.key + "'");
        }
        args.push_back(arg);
        if (cursor.accept(')')) break;
        if (!cursor.accept(',')) return fail("expected ',' or ')'");
      }
    }
    const auto get = [&args](std::string_view key, double fallback) {
      for (const Arg& arg : args) {
        if (arg.key == key) return arg.value;
      }
      return fallback;
    };
    const auto known = [&args](std::initializer_list<std::string_view> keys) {
      for (const Arg& arg : args) {
        if (std::find(keys.begin(), keys.end(), arg.key) == keys.end()) {
          return std::string(arg.key);
        }
      }
      return std::string();
    };

    WorkloadTimeline stage;
    std::string bad;
    if (name == "constant") {
      bad = known({"util", "dur", "pattern"});
      stage = WorkloadTimeline::constant(get("util", 1.0), get("dur", 1.0));
    } else if (name == "idle") {
      bad = known({"dur", "pattern"});
      stage = WorkloadTimeline::idle(get("dur", 1.0));
    } else if (name == "burst") {
      bad = known({"period", "duty", "high", "low", "dur", "pattern"});
      stage = WorkloadTimeline::burst(get("period", 0.2), get("duty", 0.3),
                                      get("high", 1.0), get("low", 0.0),
                                      get("dur", 1.0));
      // burst() truncates at its phase-count backstop; a silently shorter
      // timeline than the spec asked for is a parse error, not a result.
      if (!stage.empty() && stage.duration_s() < get("dur", 1.0) - 1e-9) {
        return fail("burst() period is too small for the duration "
                    "(more than 1e6 periods)");
      }
    } else if (name == "ramp") {
      bad = known({"from", "to", "steps", "dur", "pattern"});
      // Clamp in the double domain first: casting an unrepresentable
      // double to int is UB, and user DSL input reaches here directly.
      const int steps =
          static_cast<int>(std::clamp(get("steps", 8.0), 1.0, 65536.0));
      stage = WorkloadTimeline::ramp(get("from", 0.0), get("to", 1.0), steps,
                                     get("dur", 1.0));
    } else {
      return fail("unknown timeline stage '" + name +
                  "' (constant | idle | burst | ramp)");
    }
    if (!bad.empty()) {
      return fail("unknown " + name + "() key '" + bad + "'");
    }
    if (stage.empty()) {
      return fail(name + "() produced an empty stage (check dur/period)");
    }

    // Every stage accepts pattern=K: an index into the owning config's
    // phase-pattern list, stamped onto each phase the stage realises.
    const double pattern_value = get("pattern", -1.0);
    if (pattern_value != -1.0) {
      if (!(pattern_value >= 0.0 && pattern_value <= 255.0) ||
          pattern_value != std::floor(pattern_value)) {
        return fail("pattern must be an integer index in [0, 255]");
      }
      std::vector<TimelinePhase> stamped = stage.phases();
      for (TimelinePhase& phase : stamped) {
        phase.pattern = static_cast<int>(pattern_value);
      }
      stage = WorkloadTimeline(std::move(stamped));
    }

    result.timeline.append(stage);
    any_stage = true;
    if (cursor.at_end()) break;
    if (!cursor.accept('|')) return fail("expected '|' between stages");
  }

  result.ok = any_stage;
  if (!any_stage) result.error = "empty timeline";
  return result;
}

std::string to_dsl(const WorkloadTimeline& timeline) {
  // Canonical, cache-key-stable form: the realised phase list.  Uses the
  // constant() stage so the output stays parseable by parse_timeline.
  std::string out;
  for (const TimelinePhase& phase : timeline.phases()) {
    if (!out.empty()) out += " | ";
    out += "constant(util=" + format_exact(phase.utilization) +
           ", dur=" + format_exact(phase.duration_s);
    // Pattern-free phases keep the historical form (stable cache keys).
    if (phase.pattern >= 0) {
      out += ", pattern=" + std::to_string(phase.pattern);
    }
    out += ")";
  }
  if (out.empty()) out = "idle(dur=0)";
  return out;
}

}  // namespace gpupower::gpusim::dvfs
