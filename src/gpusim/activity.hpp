// Activity estimation: counts bit toggles, Hamming weight, multiplier
// partial-product activity, and accumulator switching over the tiled GEMM
// traversal — the raw inputs to the power model.
//
// Two backends compute the same ActivityTotals, bit-identically:
//
//  - kBatched (default): the bit-plane kernel.  Each tile's A-row / B-column
//    operand words are gathered into contiguous per-stream buffers once per
//    K-range (every K-slice of the tile reuses the same packed panels);
//    toggle counts (XOR with the one-word-shifted stream), Hamming
//    weights, multiplier partial-product activity, and accumulator switching
//    are then computed with bulk std::popcount loops over the packed
//    streams.  Per-stream port state threads through the packed segments in
//    exactly the order the observer walk would have seen, so the totals
//    match the reference walk bit for bit (pinned by the parity tests).
//  - kObserver: the reference per-element walk — gemm::process_tile with an
//    ActivityCounters observer, one callback per physical wire event.
//
// Exact mode walks every threadblock tile (tests, small problems).  Sampled
// mode walks a stratified subset of warp-tile-sized quanta and an evenly
// strided subset of K-slices, then scales counts to the full problem; a
// property test pins the sampled estimate against the exact walk.
#pragma once

#include <cstdint>

#include "gemm/matrix.hpp"
#include "gemm/problem.hpp"
#include "gemm/tile_config.hpp"
#include "gemm/tiled.hpp"
#include "gpusim/energy_model.hpp"

namespace gpupower::gpusim {

/// Last word driven on each observed bus.  One instance persists across
/// tiles, exactly like the physical wires do: toggle counts at every tile
/// (and K-slice) boundary chain off the previous word, not off zero.
struct PortState {
  std::uint32_t last_fetch_a = 0;
  std::uint32_t last_fetch_b = 0;
  std::uint32_t last_operand_a = 0;
  std::uint32_t last_operand_b = 0;
  std::uint32_t prev_sig_a = 0;
  std::uint32_t prev_sig_b = 0;
};

/// Observer for gemm::process_tile that accumulates ActivityTotals — the
/// reference backend, and the observer the compute path keeps using.
class ActivityCounters {
 public:
  static constexpr bool kEnabled = true;

  void fetch_a(std::uint32_t bits, int width) noexcept {
    on_stream(bits, width, port_.last_fetch_a, totals_.fetch_words,
              totals_.fetch_toggles, totals_.fetch_weight);
  }
  void fetch_b(std::uint32_t bits, int width) noexcept {
    on_stream(bits, width, port_.last_fetch_b, totals_.fetch_words,
              totals_.fetch_toggles, totals_.fetch_weight);
  }
  void operand_a(std::uint32_t bits, int width) noexcept {
    on_stream(bits, width, port_.last_operand_a, totals_.operand_words,
              totals_.operand_toggles, totals_.operand_weight);
  }
  void operand_b(std::uint32_t bits, int width) noexcept {
    on_stream(bits, width, port_.last_operand_b, totals_.operand_words,
              totals_.operand_toggles, totals_.operand_weight);
  }
  void mac_pair(std::uint32_t a_bits, std::uint32_t b_bits, int width) noexcept {
    const std::uint32_t sig_a = significand(a_bits, width);
    const std::uint32_t sig_b = significand(b_bits, width);
    totals_.mult_pp +=
        multiplier_switching(sig_a, port_.prev_sig_a, sig_b, port_.prev_sig_b);
    totals_.exponent_bits += exponent_activity(a_bits, b_bits, width);
    port_.prev_sig_a = sig_a;
    port_.prev_sig_b = sig_b;
    ++totals_.macs;
  }
  void acc_update(std::uint64_t before, std::uint64_t after) noexcept {
    totals_.acc_toggles += static_cast<std::uint64_t>(
        std::popcount(before ^ after));
    ++totals_.acc_updates;
  }

  [[nodiscard]] const ActivityTotals& totals() const noexcept { return totals_; }
  [[nodiscard]] const PortState& port_state() const noexcept { return port_; }
  void reset() noexcept { *this = ActivityCounters{}; }

 private:
  static void on_stream(std::uint32_t bits, int width, std::uint32_t& last,
                        std::uint64_t& words, std::uint64_t& toggles,
                        std::uint64_t& weight) noexcept {
    toggles += static_cast<std::uint64_t>(std::popcount(last ^ bits));
    weight += static_cast<std::uint64_t>(std::popcount(bits));
    ++words;
    last = bits;
    (void)width;
  }

  ActivityTotals totals_;
  PortState port_;
};

/// Controls how much of the GEMM the estimator walks.
struct SamplingPlan {
  /// Number of warp-tile quanta to walk; 0 walks every threadblock tile
  /// exactly.
  std::size_t max_tiles = 0;
  /// Fraction of K-slices walked in each sampled tile (evenly strided).
  double k_fraction = 1.0;
  std::uint64_t seed = 0x5EEDu;

  [[nodiscard]] static SamplingPlan exact() { return SamplingPlan{}; }
  [[nodiscard]] static SamplingPlan fast(std::size_t tiles = 16,
                                         double k_frac = 1.0) {
    return SamplingPlan{tiles, k_frac, 0x5EEDu};
  }
};

/// Which implementation walks the traversal.  Both produce bit-identical
/// ActivityTotals; kObserver exists as the reference for parity tests and
/// the micro benchmark.
enum class ActivityBackend {
  kBatched,   ///< packed bit-plane kernel (fast path, default)
  kObserver,  ///< per-element observer walk (reference)
};

struct ActivityEstimate {
  ActivityTotals totals;  ///< scaled to the full problem
  bool sampled = false;
  std::size_t tiles_walked = 0;
  std::size_t tiles_total = 0;
  double k_coverage = 1.0;
};

/// Estimates full-problem activity for one GEMM iteration.
template <typename T>
[[nodiscard]] ActivityEstimate estimate_activity(
    const gemm::GemmProblem& problem, const gemm::Matrix<T>& a,
    const gemm::Matrix<T>& b_storage, const gemm::TileConfig& config,
    const SamplingPlan& plan = SamplingPlan::exact(),
    ActivityBackend backend = ActivityBackend::kBatched);

extern template ActivityEstimate estimate_activity<float>(
    const gemm::GemmProblem&, const gemm::Matrix<float>&,
    const gemm::Matrix<float>&, const gemm::TileConfig&, const SamplingPlan&,
    ActivityBackend);
extern template ActivityEstimate estimate_activity<gpupower::numeric::float16_t>(
    const gemm::GemmProblem&, const gemm::Matrix<gpupower::numeric::float16_t>&,
    const gemm::Matrix<gpupower::numeric::float16_t>&, const gemm::TileConfig&,
    const SamplingPlan&, ActivityBackend);
extern template ActivityEstimate estimate_activity<gpupower::numeric::int8_value_t>(
    const gemm::GemmProblem&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::TileConfig&, const SamplingPlan&, ActivityBackend);

}  // namespace gpupower::gpusim
