#include "patterns/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gpupower::patterns {

std::vector<float> gaussian_fill(std::size_t count, double mean, double stddev,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> out(count);
  for (auto& v : out) v = static_cast<float>(rng.gaussian(mean, stddev));
  return out;
}

std::vector<float> value_set_fill(std::size_t count, std::size_t set_size,
                                  double mean, double stddev,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> set(std::max<std::size_t>(set_size, 1));
  for (auto& v : set) v = static_cast<float>(rng.gaussian(mean, stddev));
  std::vector<float> out(count);
  for (auto& v : out) v = set[rng.uniform_below(set.size())];
  return out;
}

std::vector<float> constant_random_fill(std::size_t count, double mean,
                                        double stddev, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto value = static_cast<float>(rng.gaussian(mean, stddev));
  return std::vector<float>(count, value);
}

std::vector<float> uniform_fill(std::size_t count, double lo, double hi,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> out(count);
  for (auto& v : out) v = static_cast<float>(rng.uniform(lo, hi));
  return out;
}

BufferStats compute_stats(const std::vector<float>& data) {
  BufferStats s;
  if (data.empty()) return s;
  s.min = std::numeric_limits<float>::infinity();
  s.max = -std::numeric_limits<float>::infinity();
  double sum = 0.0;
  for (const float v : data) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    if (v == 0.0f) ++s.zeros;
  }
  s.mean = sum / static_cast<double>(data.size());
  double sq = 0.0;
  for (const float v : data) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(data.size()));
  return s;
}

}  // namespace gpupower::patterns
