// Fig. 8: GPU power vs input bit alignment and Hamming weight.  Every
// configuration from the Section IV sweeps becomes one scatter point
// (alignment, weight, power); this bench prints the per-datatype scatter and
// the correlations the paper eyeballs: higher alignment / lower weight tend
// toward lower power, but not perfectly consistently.
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/correlation.hpp"
#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env,
                        "Fig. 8: power vs bit alignment and Hamming weight "
                        "(every experiment configuration)");

  for (const auto dtype : numeric::kAllDTypes) {
    std::vector<double> alignment, weight, power;
    analysis::Table table({"experiment", "alignment", "weight frac",
                           "power (W)"});
    for (const auto fig : core::kAllFigures) {
      const auto sweep = core::figure_sweep(fig);
      // Every other sweep point keeps the scatter dense but the bench fast.
      for (std::size_t i = 0; i < sweep.size(); i += 2) {
        core::ExperimentConfig config;
        config.dtype = dtype;
        config.pattern = sweep[i].spec;
        env.apply(config);
        config.seeds = 1;
        const auto result = core::run_experiment(config);
        alignment.push_back(result.alignment);
        weight.push_back(result.weight_fraction);
        power.push_back(result.power_w);
        table.add_row(std::string(core::figure_name(fig)).substr(0, 8) + " " +
                          sweep[i].label,
                      {result.alignment, result.weight_fraction,
                       result.power_w},
                      3);
      }
    }
    std::printf("--- %s scatter ---\n", std::string(numeric::name(dtype)).c_str());
    table.print(std::cout);
    std::printf(
        "pearson(power, alignment) = %+.3f   pearson(power, weight) = %+.3f\n"
        "spearman(power, alignment) = %+.3f  spearman(power, weight) = %+.3f\n\n",
        analysis::pearson(alignment, power), analysis::pearson(weight, power),
        analysis::spearman(alignment, power),
        analysis::spearman(weight, power));
  }
  std::printf(
      "Expected: negative power/alignment correlation and positive\n"
      "power/weight correlation for FP datatypes — present but imperfect,\n"
      "as the paper notes.\n");
  return 0;
}
