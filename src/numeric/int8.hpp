// Signed 8-bit integer element type with the saturating round-to-nearest
// conversion GPUs apply when narrowing accumulators or quantizing inputs.
// Storage is two's-complement, matching what the hardware's operand buses
// carry — bit statistics are computed on these raw bytes.
#pragma once

#include <cstdint>

namespace gpupower::numeric {

class int8_value_t {
 public:
  constexpr int8_value_t() noexcept = default;

  /// Quantizes a float: round to nearest (ties away from zero, matching
  /// CUDA `__float2int_rn` semantics closely enough for value generation)
  /// and saturate to [-128, 127].
  explicit int8_value_t(float value) noexcept : value_(quantize(value)) {}

  constexpr explicit int8_value_t(std::int8_t raw) noexcept : value_(raw) {}

  [[nodiscard]] static constexpr int8_value_t from_bits(std::uint8_t bits) noexcept {
    return int8_value_t(static_cast<std::int8_t>(bits));
  }

  [[nodiscard]] constexpr std::uint8_t bits() const noexcept {
    return static_cast<std::uint8_t>(value_);
  }
  [[nodiscard]] constexpr std::int8_t value() const noexcept { return value_; }
  [[nodiscard]] float to_float() const noexcept {
    return static_cast<float>(value_);
  }
  explicit operator float() const noexcept { return to_float(); }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return value_ == 0; }

  friend constexpr bool operator==(int8_value_t, int8_value_t) noexcept = default;
  friend constexpr bool operator<(int8_value_t a, int8_value_t b) noexcept {
    return a.value_ < b.value_;
  }

  static constexpr int kBits = 8;

 private:
  [[nodiscard]] static std::int8_t quantize(float value) noexcept;

  std::int8_t value_ = 0;
};

static_assert(sizeof(int8_value_t) == 1, "int8 storage must be 1 byte");

/// 32-bit accumulator used by integer GEMM pipelines (IMMA accumulates
/// INT8xINT8 products into INT32 exactly).
using int32_accum_t = std::int32_t;

}  // namespace gpupower::numeric
