#include "gemm/tiled.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gemm/reference.hpp"
#include "patterns/distributions.hpp"

namespace gpupower::gemm {
namespace {

using gpupower::numeric::DType;
using gpupower::numeric::float16_t;
using gpupower::numeric::int8_value_t;

template <typename T>
Matrix<T> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                        double sigma) {
  return materialize<T>(
      patterns::gaussian_fill(rows * cols, 0.0, sigma, seed), rows, cols);
}

struct TiledCase {
  std::size_t n;
  bool transpose_b;
  DType dtype;
};

class TiledVsReference : public ::testing::TestWithParam<TiledCase> {};

template <typename T>
void expect_tiled_matches_reference(const TiledCase& tc, double tolerance) {
  GemmProblem p = GemmProblem::square(tc.n, tc.transpose_b);
  p.alpha = 1.25f;
  p.beta = -0.5f;
  const double sigma = tc.dtype == DType::kINT8 ? 25.0 : 2.0;
  const auto a = random_matrix<T>(tc.n, tc.n, 1, sigma);
  const auto b = random_matrix<T>(tc.n, tc.n, 2, sigma);
  using Acc = gpupower::numeric::accumulator_t<T>;
  Matrix<Acc> c(tc.n, tc.n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c.span()[i] = static_cast<Acc>(static_cast<int>(i % 7) - 3);
  }
  Matrix<Acc> expected, actual;
  reference_gemm(p, a, b, c, expected);
  tiled_gemm(p, a, b, c, actual, TileConfig::for_dtype(tc.dtype));

  ASSERT_EQ(actual.rows(), expected.rows());
  for (std::size_t i = 0; i < tc.n; ++i) {
    for (std::size_t j = 0; j < tc.n; ++j) {
      const double e = static_cast<double>(expected.at(i, j));
      const double g = static_cast<double>(actual.at(i, j));
      // FP accumulation order differs between the naive loop and the tiled
      // walk; allow a relative tolerance scaled to the dot-product length.
      EXPECT_NEAR(g, e, tolerance * (std::fabs(e) + 1.0))
          << "at (" << i << ", " << j << ")";
    }
  }
}

TEST_P(TiledVsReference, MatchesOracle) {
  const TiledCase tc = GetParam();
  switch (tc.dtype) {
    case DType::kFP32:
      expect_tiled_matches_reference<float>(tc, 1e-5);
      break;
    case DType::kFP16:
    case DType::kFP16T:
      // Tensor-core dot products reduce in mma.k chunks, reordering the FP32
      // accumulation relative to the serial oracle; allow for the extra
      // rounding headroom.
      expect_tiled_matches_reference<float16_t>(tc, 2e-4);
      break;
    case DType::kINT8:
      // INT32 accumulation is exact: zero tolerance.
      expect_tiled_matches_reference<int8_value_t>(tc, 0.0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTypes, TiledVsReference,
    ::testing::Values(TiledCase{33, true, DType::kFP32},
                      TiledCase{64, true, DType::kFP32},
                      TiledCase{130, false, DType::kFP32},
                      TiledCase{64, true, DType::kFP16},
                      TiledCase{96, false, DType::kFP16},
                      TiledCase{64, true, DType::kFP16T},
                      TiledCase{100, false, DType::kFP16T},
                      TiledCase{64, true, DType::kINT8},
                      TiledCase{129, false, DType::kINT8},
                      TiledCase{128, true, DType::kINT8}));

struct CountingObserver {
  static constexpr bool kEnabled = true;
  std::size_t fetch = 0, operand = 0, macs = 0, accs = 0;
  void fetch_a(std::uint32_t, int) { ++fetch; }
  void fetch_b(std::uint32_t, int) { ++fetch; }
  void operand_a(std::uint32_t, int) { ++operand; }
  void operand_b(std::uint32_t, int) { ++operand; }
  void mac_pair(std::uint32_t, std::uint32_t, int) { ++macs; }
  void acc_update(std::uint64_t, std::uint64_t) { ++accs; }
};

TEST(TiledGemm, ObserverSeesEveryMac) {
  const std::size_t n = 64;
  GemmProblem p = GemmProblem::square(n);
  const auto a = random_matrix<float>(n, n, 1, 2.0);
  const auto b = random_matrix<float>(n, n, 2, 2.0);
  Matrix<float> c(n, n), d;
  CountingObserver obs;
  tiled_gemm(p, a, b, c, d, TileConfig::for_dtype(DType::kFP32), obs);
  EXPECT_EQ(obs.macs, n * n * n);
  // SIMT: one accumulator update per MAC, two operand reads per MAC.
  EXPECT_EQ(obs.accs, n * n * n);
  EXPECT_EQ(obs.operand, 2 * n * n * n);
  // Fetch: each k-slice streams the tile's A rows and B columns once.
  EXPECT_GT(obs.fetch, 0u);
}

TEST(TiledGemm, TensorCoreAccumulatesPerMma) {
  const std::size_t n = 64;
  GemmProblem p = GemmProblem::square(n);
  const auto a = random_matrix<float16_t>(n, n, 1, 2.0);
  const auto b = random_matrix<float16_t>(n, n, 2, 2.0);
  Matrix<float> c(n, n), d;
  CountingObserver obs;
  const auto config = TileConfig::for_dtype(DType::kFP16T);
  tiled_gemm(p, a, b, c, d, config, obs);
  EXPECT_EQ(obs.macs, n * n * n);
  // One accumulator write per output element per MMA k-step (k = 16):
  EXPECT_EQ(obs.accs, n * n * n / config.mma.k);
  // Fragment reuse: far fewer operand reads than 2 per MAC.
  EXPECT_LT(obs.operand, n * n * n);
}

TEST(TiledGemm, ProcessTileKRangeComposes) {
  // Walking [0, k/2) then [k/2, k) must equal walking [0, k) in one go.
  const std::size_t n = 64;
  GemmProblem p = GemmProblem::square(n);
  const auto a = random_matrix<float>(n, n, 1, 2.0);
  const auto b = random_matrix<float>(n, n, 2, 2.0);
  const auto config = TileConfig::for_dtype(DType::kFP32);
  const TileCoord tile{0, 0, n, n};
  NullObserver obs;

  std::vector<float> full(n * n, 0.0f), split(n * n, 0.0f);
  process_tile(p, a, b, tile, config, full, obs);
  process_tile(p, a, b, tile, config, split, obs, 0, n / 2);
  process_tile(p, a, b, tile, config, split, obs, n / 2, n);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_FLOAT_EQ(split[i], full[i]) << "index " << i;
  }
}

TEST(TiledGemm, EnumerateTilesCoversOutputExactly) {
  const auto tiles = enumerate_tiles(300, 200, TileShape{128, 128, 8});
  std::size_t covered = 0;
  for (const auto& t : tiles) covered += t.rows * t.cols;
  EXPECT_EQ(covered, 300u * 200u);
  EXPECT_EQ(tiles.size(), 3u * 2u);
  // Ragged edge tiles are clipped.
  EXPECT_EQ(tiles.back().rows, 300u - 256u);
  EXPECT_EQ(tiles.back().cols, 200u - 128u);
}

}  // namespace
}  // namespace gpupower::gemm
