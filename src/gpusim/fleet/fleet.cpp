#include "gpusim/fleet/fleet.hpp"

#include <algorithm>
#include <limits>

#include "core/obs/obs.hpp"

namespace gpupower::gpusim::fleet {

FleetRun FleetSimulator::run(std::span<const Device> devices, double slice_s,
                             bool drain_backlog) const {
  core::obs::Span run_span("fleet.run");
  run_span.args(core::obs::SpanArgs().arg(
      "devices", static_cast<std::int64_t>(devices.size())));
  FleetRun run;
  run.slice_s = slice_s;
  run.cap_w = allocator_.cap_w;
  if (devices.empty() || slice_s <= 0.0) return run;

  const std::size_t n = devices.size();
  std::int64_t allocate_pass = 0;
  std::vector<dvfs::DeviceCursor> cursors;
  cursors.reserve(n);
  std::vector<ThermalState> thermal;
  thermal.reserve(n);
  for (const Device& device : devices) {
    cursors.emplace_back(*device.replayer, *device.timeline, *device.governor,
                         slice_s, drain_backlog);
    thermal.emplace_back(thermal_,
                         device.replayer->descriptor()
                             .thermal_resistance_c_per_w);
  }

  run.devices.resize(n);
  const auto allocator = make_allocator(allocator_);
  const bool capped = allocator_.capped();
  std::vector<DeviceDemand> demands(n);
  std::vector<double> budgets(n);
  std::vector<char> planned(n, 0);
  std::vector<char> done(n, 0);

  for (;;) {
    // Phase 1: every active device plans (timeline sample + governor
    // decision) so the allocator sees the whole fleet's demand at once.
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      planned[i] = 0;
      if (done[i]) continue;
      if (!cursors[i].plan()) {
        done[i] = 1;
        continue;
      }
      planned[i] = 1;
      any = true;
    }
    if (!any) break;

    // Phase 2: divide the cap.  Uncapped fleets skip allocation entirely
    // — budgets stay infinite and the step below is unconstrained, the
    // single-device-equivalence path.
    if (capped) {
      for (std::size_t i = 0; i < n; ++i) {
        DeviceDemand& demand = demands[i];
        demand.active = planned[i] != 0;
        if (!demand.active) {
          demand = DeviceDemand{};
          demand.active = false;
          continue;
        }
        // Price demand and floor at the same die temperature the step's
        // budget clamp will use, or a device with cap headroom would
        // spuriously clamp on its own leakage.
        const double temperature_c =
            thermal_.enabled ? thermal[i].temperature_c() : -1.0;
        demand.demand_w = cursors[i].demand_w(temperature_c);
        demand.floor_w = cursors[i].floor_w(temperature_c);
        demand.pending_work_s = cursors[i].pending_work_s();
        demand.efficiency_s_per_j = cursors[i].efficiency_s_per_j();
        demand.priority = devices[i].priority;
      }
      {
        // One span per allocator pass (one pass per capped slice): the
        // committed shapes run hundreds of slices, well inside the obs
        // ring capacity; overlong replays drop-and-count instead.
        core::obs::Span alloc_span(
            "fleet.allocate",
            core::obs::SpanArgs()
                .arg("devices", static_cast<std::int64_t>(n))
                .arg("pass", allocate_pass));
        allocator->allocate(demands, allocator_.cap_w, budgets);
      }
      ++allocate_pass;
      static core::obs::Counter& passes =
          core::obs::counter("fleet.allocate_passes");
      passes.add();
    }

    // Phase 3 + 4: step each device in index order under its constraints,
    // then integrate its thermal state with the slice's realized power.
    double slice_power_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!planned[i]) continue;
      dvfs::DeviceCursor& cursor = cursors[i];
      FleetDeviceRun& device_run = run.devices[i];

      dvfs::StepConstraint constraint;
      int thermal_floor = 0;
      if (thermal_.enabled) {
        constraint.temperature_c = thermal[i].temperature_c();
        if (thermal[i].throttling()) {
          const int table_size = static_cast<int>(
              devices[i].replayer->table().size());
          thermal_floor = thermal_.throttle_pstate >= 0
                              ? std::min(thermal_.throttle_pstate,
                                         table_size - 1)
                              : table_size - 1;
          constraint.min_pstate = thermal_floor;
          ++device_run.throttled_slices;
        }
      }
      if (capped) constraint.budget_w = budgets[i];

      const int desired = cursor.desired_pstate();
      cursor.step(constraint);

      // The budget clamped iff the realized state is deeper than both the
      // governor's choice and the thermal floor.
      if (cursor.pstate() > std::max(desired, thermal_floor)) {
        ++device_run.budget_clamped_slices;
      }

      const double power_w = cursor.partial().slices.back().power_w;
      slice_power_w += power_w;
      if (thermal_.enabled) {
        thermal[i].step(power_w, slice_s);
        device_run.temperature_c.push_back(thermal[i].temperature_c());
        device_run.peak_temperature_c = std::max(
            device_run.peak_temperature_c, thermal[i].temperature_c());
      }
      if (capped) device_run.budget_w.push_back(budgets[i]);
    }

    run.fleet_power_w.push_back(slice_power_w);
    run.peak_power_w = std::max(run.peak_power_w, slice_power_w);
    if (capped && slice_power_w > allocator_.cap_w * (1.0 + 1e-12)) {
      ++run.over_cap_slices;
    }
  }

  // Finalize per-device results and fold the fleet summary.
  double backlog_mean_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dvfs::ReplayResult replay = cursors[i].finish();
    run.energy_j += replay.energy_j;
    run.duration_s = std::max(run.duration_s, replay.duration_s);
    run.completion_s = std::max(run.completion_s, replay.completion_s);
    run.backlog_max_s = std::max(run.backlog_max_s, replay.backlog_max_s);
    backlog_mean_sum += replay.mean_backlog_s;
    run.transitions += replay.transitions;
    run.truncated = run.truncated || replay.truncated;
    run.devices[i].replay = std::move(replay);
  }
  run.mean_backlog_s = backlog_mean_sum / static_cast<double>(n);
  if (run.duration_s > 0.0) {
    run.avg_power_w = run.energy_j / run.duration_s;
  }
  return run;
}

}  // namespace gpupower::gpusim::fleet
