// Observability layer: spans, counters, and Chrome-trace export — the
// one place timing flows through, shared by the engine, the kernels, the
// store, serve, and the bench harness.
//
// Two independent switches, each one relaxed atomic:
//
//   tracing  scoped `Span`s record (name, start, end) into lock-free
//            per-thread ring buffers; `flush_trace()` (or the atexit hook
//            armed by `set_trace_path`/`GPUPOWER_TRACE`) exports them as
//            Chrome trace-event JSON loadable by chrome://tracing and
//            Perfetto (ui.perfetto.dev).
//   metrics  named Counter/Gauge/Histogram objects accumulate, and the
//            engine's per-kind timing fields (compute/queue-wait/store
//            seconds) fill in; `registry_json()` dumps the registry as a
//            stable JSON document (`ExperimentEngine::metrics_json()`,
//            `gpowerctl --metrics-out`, serve `stats` events).
//
// When both are off — the default — every instrumentation site compiles
// down to one relaxed atomic load and a branch: no clock read, no
// allocation, no store.  Tracing never perturbs results (enforced by
// test: bit-identical outputs with tracing on vs. off) — it only ever
// *observes* timestamps.
//
// Ring-buffer protocol (TSan-clean by construction): each thread owns a
// fill-once buffer — slots are written only by the owning thread and
// published by a release-store of the count; the exporter acquire-loads
// the count and reads the frozen prefix.  A full buffer drops (and
// counts) further events instead of wrapping, so no slot is ever written
// twice and there is nothing for a reader to race.  Buffers live in an
// immortal registry, so threads may exit before the flush.
//
// Span names must be string literals (static storage): rings store the
// pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace gpupower::analysis {
class JsonValue;
}

namespace gpupower::core::obs {

/// Nanoseconds since process start on the monotonic clock — the ONE
/// sanctioned steady_clock site in the tree (tools/lint_project.py bans
/// raw steady_clock::now() elsewhere), so bench timings and trace spans
/// can never disagree about what "now" means.
[[nodiscard]] std::int64_t now_ns() noexcept;

// ---------------------------------------------------------------- switches

[[nodiscard]] bool tracing_enabled() noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// Arms tracing and remembers where flush_trace() writes; also arms the
/// metrics switch (a trace consumer always wants the timing fields) and
/// registers an atexit flush the first time a non-empty path is set.
/// An empty path disables tracing (the buffered events stay recorded).
void set_trace_path(std::string path);
[[nodiscard]] std::string trace_path();

void set_metrics_enabled(bool enabled) noexcept;

/// Applies GPUPOWER_TRACE / GPUPOWER_METRICS (core/env.hpp) exactly once
/// per process; knobs already configured programmatically (gpowerctl
/// flags) win over the environment.  The ExperimentEngine constructor
/// calls this, so every engine binary honours the env without touching
/// its main().
void init_from_env();

// ------------------------------------------------------------------ spans

/// Interns a runtime string into an immortal deduplicating table and
/// returns a stable process-lifetime `const char*`.  This is how dynamic
/// values (canonical scenario keys, campaign point labels) become span
/// arguments: rings store pointers, never copies, and the span may be
/// exported long after the object that produced the string is gone.
/// Identical strings intern to one allocation, so per-job keys cost one
/// table hit per submit, not per span.  Guard call sites on
/// tracing_enabled() — interning when tracing is off wastes a mutex hop.
[[nodiscard]] const char* intern(std::string_view text);

/// Bounded, allocation-free key/value argument list for a span, exported
/// as the `"args":{...}` object of the Chrome trace event.  At most
/// kMaxArgs entries; extras are silently ignored (arg() stays chainable).
/// Keys must be string literals; string values must be literals or
/// intern()ed — the ring stores the pointers.
class SpanArgs {
 public:
  static constexpr int kMaxArgs = 4;

  struct Arg {
    const char* key = nullptr;
    const char* str = nullptr;  // nullptr => numeric value in `num`
    std::int64_t num = 0;
  };

  SpanArgs() = default;

  SpanArgs& arg(const char* key, const char* value) noexcept {
    if (count_ < kMaxArgs && key != nullptr && value != nullptr) {
      args_[count_++] = Arg{key, value, 0};
    }
    return *this;
  }
  SpanArgs& arg(const char* key, std::int64_t value) noexcept {
    if (count_ < kMaxArgs && key != nullptr) {
      args_[count_++] = Arg{key, nullptr, value};
    }
    return *this;
  }
  // Disambiguates integer literals (0 would otherwise convert to both
  // const char* and int64_t).
  SpanArgs& arg(const char* key, int value) noexcept {
    return arg(key, static_cast<std::int64_t>(value));
  }

  [[nodiscard]] int size() const noexcept { return count_; }
  [[nodiscard]] const Arg& at(int i) const noexcept { return args_[i]; }

 private:
  Arg args_[kMaxArgs] = {};
  int count_ = 0;
};

/// Records a span with explicit bounds on the calling thread's ring (no-op
/// unless tracing is enabled).  `name` must be a string literal.  Used
/// directly when the interval is not a scope — e.g. the engine's
/// queue-wait span, whose start is captured at enqueue time.
void record_span(const char* name, std::int64_t start_ns,
                 std::int64_t end_ns) noexcept;

/// As above, with arguments attached to the exported event.
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns,
                 const SpanArgs& args) noexcept;

/// Scoped RAII span: one relaxed load when tracing is off; one clock read
/// at each end and one ring slot when it is on.  Arguments can be given
/// at construction or attached later via args() — the setter no-ops when
/// tracing was off at construction, so building the SpanArgs should be
/// guarded on tracing_enabled() when it involves intern().
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(tracing_enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? now_ns() : 0) {}
  Span(const char* name, const SpanArgs& args) noexcept : Span(name) {
    if (name_ != nullptr) args_ = args;
  }
  ~Span() {
    if (name_ != nullptr) record_span(name_, start_ns_, now_ns(), args_);
  }

  void args(const SpanArgs& args) noexcept {
    if (name_ != nullptr) args_ = args;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
  SpanArgs args_;
};

/// Events currently buffered / dropped across all thread rings (for tests
/// and the exporter's drop report).
struct TraceCounts {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};
[[nodiscard]] TraceCounts trace_counts() noexcept;

/// Exports every buffered span as Chrome trace-event JSON to `path`
/// (atomic temp+rename via core::atomic_write_text).  Events are sorted
/// by start time, so timestamps are monotonic and parents precede their
/// children.  Returns false with the reason in `error` on a write
/// failure.  Does not clear the buffers: flushing twice writes a superset.
bool write_trace(const std::string& path, std::string* error = nullptr);

/// write_trace to the configured trace path; false (no error, no file)
/// when no path is configured.  Idempotent — also runs at process exit
/// once a path has been set.
bool flush_trace(std::string* error = nullptr);

/// Drops all buffered spans and resets the drop counters (tests).
void reset_trace();

// ---------------------------------------------------------------- metrics

/// Monotonic counter.  add() is gated on the metrics switch internally,
/// so call sites stay branch-free.  Registry-owned (see counter() below);
/// safe from any thread, all updates relaxed.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (metrics_enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value (e.g. queue depth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed latency histogram over nanoseconds: bucket i counts
/// samples in [2^(i-1), 2^i) ns (bucket 0 holds 0 ns).  Fixed 64
/// buckets, all updates relaxed atomics — safe from any thread.  max is
/// a relaxed CAS loop (contended only by same-magnitude samples).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::int64_t ns) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Named metric lookup: returns a process-lifetime reference (metrics are
/// never destroyed), creating the metric on first use.  Call sites cache
/// the reference in a function-local static so the steady-state cost is
/// the relaxed-atomic update, not a map lookup.  Names must be stable
/// literals — they become the JSON keys.
[[nodiscard]] Counter& counter(const char* name);
[[nodiscard]] Gauge& gauge(const char* name);
[[nodiscard]] Histogram& histogram(const char* name);

/// The whole registry as one stable JSON object:
///   { "counters": {name: n, ...}, "gauges": {...},
///     "histograms": {name: {"count":n,"total_ns":n,"max_ns":n,
///                           "p50_ns":n,"p95_ns":n,"p99_ns":n,
///                           "buckets":[n,...]}, ...} }
/// Keys are sorted; quantiles are upper bucket bounds (log2 resolution),
/// derived here so consumers (gpowerctl top, CI) never re-implement the
/// bucket math; "buckets" is the raw log2 histogram trimmed at the
/// highest non-empty bucket (bucket i counts samples in [2^(i-1), 2^i)
/// ns).  The gauges block also surfaces the trace rings' drop counts —
/// "obs.ring_dropped_total" plus one "obs.ring_dropped.tid<N>" entry per
/// thread that dropped — so a metrics consumer sees trace loss without
/// parsing the trace file's otherData.
[[nodiscard]] analysis::JsonValue registry_json();

/// Zeroes every registered metric (tests).
void reset_metrics();

// ------------------------------------------------------------- stopwatch

/// The bench harness's wall-clock timer, on the same clock as every span
/// — always on (benches need their timings regardless of the switches).
class StopWatch {
 public:
  StopWatch() noexcept : start_ns_(now_ns()) {}
  void reset() noexcept { start_ns_ = now_ns(); }
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return now_ns() - start_ns_;
  }
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }
  [[nodiscard]] double ms() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace gpupower::core::obs
