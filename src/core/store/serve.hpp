// The engine as a long-lived service: `gpowerctl serve` reads
// newline-delimited scenario/campaign spec JSON (core/spec.hpp) and streams
// one NDJSON event per completed scenario as results land — not at
// wait_all() — so a client watching a campaign sees points arrive in
// completion order.  Any number of concurrent sessions (stdin, or one per
// Unix-socket client) multiplex onto ONE engine and ONE result store:
// identical scenarios submitted by different clients dedup through the
// shared cache/store and are computed at most once.
//
// Request lines:
//   {"scenario": "fleet", ...}      any single-scenario, campaign, or dag
//                                   spec, on one line
//   stats                           emit an engine stats event
//   {"cmd":"stats"}                 same, as a JSON command (any line with
//                                   a "cmd" key is a command, not a spec)
//   sessions / {"cmd":"sessions"}   emit a sessions event listing every
//                                   live session's counters
//
// Response events (one compact JSON object per line):
//   {"type":"accepted","req":1,"scenario":"fleet","points":12}
//   {"type":"result","req":1,"point":"uniform@0.50","scenario":"fleet",
//    "metrics":{"energy_j":...,"completion_s":...,...}}
//   {"type":"done","req":1,"points":12}
//   {"type":"error","req":2,"error":"..."}
//   {"type":"node","req":3,"node":"grid","kind":"campaign",
//    "points":[{"label":"uniform@0.50","metrics":{...}},...],
//    "result":{...}}   (dag requests: one per node as it finalises, in
//                       deterministic node order; "result" on
//                       reduce/search nodes; a dag request's accepted
//                       "points" counts nodes, and done follows the last
//                       node event)
//   {"type":"stats","engine":"4 worker(s), ...",
//    "metrics":{"gpupower_metrics":1,"engine":{...},"obs":{...}},
//    "sessions":[{"id":1,...},...]}
//   {"type":"sessions","sessions":[{"id":1,"age_s":0.8,"requests":2,
//    "points":12,"results":9,"errors":0,"dedup_hits":3,"store_hits":1,
//    "bytes_streamed":20480},...]}
//
// Stats events carry both the human counter line and the full
// ExperimentEngine::metrics_json() document (one schema with gpowerctl
// --metrics-out).  They are emitted on request and — with
// ServeOptions::stats_every = N — automatically after every N completed
// scenarios, so a long-lived session is inspectable without restart.
//
// Per-session accounting: every session (stdin or socket) registers in a
// process-wide registry and counts its own requests, accepted points,
// emitted results/errors, engine dedup / store hits (attributed through
// ExperimentEngine::SubmitOutcome, not racy stats diffs), and bytes
// streamed.  The live listing is embedded in every stats event and
// queryable via `sessions`; session totals also feed process-wide
// `serve.*` counters and a `serve.active_sessions` gauge in the obs
// registry (visible in metrics_json() when metrics are on).
//
// Metric names match the bench documents (kind_bench_metrics in
// gpowerctl / BENCH_*.json), so serve output can be cross-checked against
// `gpowerctl run --bench-out` — CI does exactly that.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/engine.hpp"

namespace gpupower::core {

struct ServeOptions {
  /// Attach the kind's full display document ("result": scenario_to_json)
  /// to every result event, not just the summary metrics.
  bool full_results = false;
  /// Completion-poll interval for the event streamer.
  int poll_ms = 2;
  /// Emit a stats event after every N completed scenarios; 0 (default)
  /// emits only on request, keeping the historical event stream exact.
  int stats_every = 0;
};

/// Serves one client: reads request lines from `in` until EOF, submits
/// onto the shared engine, and streams events to `out` as scenarios
/// complete.  Returns the number of request lines consumed.  A malformed
/// line emits an error event and the session continues — one bad request
/// must not kill a long-lived service.  Thread-safe with respect to the
/// engine: run any number of sessions against one engine concurrently.
long serve_session(ExperimentEngine& engine, std::istream& in,
                   std::ostream& out, const ServeOptions& options = {});

/// Live-session registry snapshot as a JSON array, one object per active
/// serve session:
///   {"id":n,"age_s":x,"requests":n,"points":n,"results":n,"errors":n,
///    "dedup_hits":n,"store_hits":n,"bytes_streamed":n}
/// Sessions appear for their lifetime only (counters are cumulative
/// within a session; process-wide cumulative totals live in the obs
/// `serve.*` counters).  Sorted by id; safe from any thread.
[[nodiscard]] analysis::JsonValue serve_sessions_json();

/// Summary metrics for one result in emission order, named exactly like
/// the bench-document metrics ("power_w"/"energy_per_iter_j" for static,
/// "energy_j"/"completion_s"/"backlog_mean_s"/"backlog_max_s" for
/// dvfs/fleet) — shared by serve result events and gpowerctl's bench
/// export so the two can never drift apart.
[[nodiscard]] std::vector<std::pair<std::string, double>>
scenario_summary_metrics(const ScenarioResult& result);

/// Cooperative shutdown handle for serve_unix_socket: another thread
/// calls request_stop() and the accept loop unwinds cleanly — in-flight
/// sessions finish, their threads are joined, and the socket file is
/// removed.  Without one (the gpowerctl default) the server runs until
/// the process dies, exactly as before.
class ServeSocketControl {
 public:
  ServeSocketControl() = default;
  ServeSocketControl(const ServeSocketControl&) = delete;
  ServeSocketControl& operator=(const ServeSocketControl&) = delete;

  /// Idempotent; safe from any thread (including signal-free contexts
  /// only — it takes a lock, so do NOT call from a signal handler).
  void request_stop();

  [[nodiscard]] bool stop_requested() const;

  /// Session threads the server currently tracks (live connections plus
  /// at most a few just-finished ones awaiting their reap on the next
  /// accept).  Bounded by concurrent clients, NOT total clients served —
  /// the regression guard for the one-thread-per-client-forever leak.
  [[nodiscard]] std::size_t tracked_sessions() const;

 private:
  friend bool serve_unix_socket(ExperimentEngine&, const std::string&,
                                const ServeOptions&, std::string&,
                                ServeSocketControl*);
  /// The server parks its listening fd here so request_stop() can
  /// shutdown(2) it — the one safe way to unblock a concurrent accept(2)
  /// (close(2) from another thread races fd reuse).
  void attach_listener(int fd);
  void detach_listener();
  void set_tracked_sessions(std::size_t count);

  mutable Mutex mutex_;
  int listen_fd_ GPUPOWER_GUARDED_BY(mutex_) = -1;
  bool stop_requested_ GPUPOWER_GUARDED_BY(mutex_) = false;
  std::size_t tracked_sessions_ GPUPOWER_GUARDED_BY(mutex_) = 0;
};

/// Blocking Unix-domain-socket server: binds `socket_path` (removing a
/// stale socket file first), accepts clients forever, and runs one
/// serve_session per connection on its own thread.  Returns true after a
/// clean stop through `control`; false on a socket-layer failure with
/// the reason in `error`.  Pass control=nullptr to run until the process
/// exits (the long-lived service default).
bool serve_unix_socket(ExperimentEngine& engine,
                       const std::string& socket_path,
                       const ServeOptions& options, std::string& error,
                       ServeSocketControl* control = nullptr);

}  // namespace gpupower::core
