// The time-resolved DVFS replayer: steps a workload timeline through a
// governor-driven P-state machine in fixed time slices, charging each slice
// the energy model's power at the slice's operating point and tracking the
// work backlog a too-deep P-state builds up (the latency side of the
// energy/latency trade-off).
//
// Per slice:
//   1. the governor picks the next P-state from the last slice's realized
//      utilization (the oracle additionally sees the upcoming offered load),
//   2. offered work arrives (timeline), queued work drains at the state's
//      effective clock (TDP throttling included via evaluate_at),
//   3. power is the busy-weighted blend of the state's active steady-state
//      power and the device's idle floor; energy integrates power over the
//      slice.
//
// With a one-state (boost-only) table, a fixed(0) governor, and a saturating
// timeline, every slice reproduces the static model's total_w bit-identically
// — the "DVFS disabled" degenerate case the equivalence tests pin.
//
// The replay is a deterministic, single-threaded state machine: identical
// inputs give identical traces regardless of how many engine workers run
// other seeds concurrently.
#pragma once

#include <cstddef>
#include <vector>

#include "gemm/problem.hpp"
#include "gpusim/dvfs/governor.hpp"
#include "gpusim/dvfs/pstate.hpp"
#include "gpusim/dvfs/timeline.hpp"
#include "gpusim/power.hpp"
#include "telemetry/trace.hpp"

namespace gpupower::gpusim::dvfs {

struct ReplaySlice {
  double t_s = 0.0;          ///< slice start
  double offered = 0.0;      ///< offered load during the slice
  double utilization = 0.0;  ///< realized busy fraction
  int pstate = 0;
  double clock_frac = 1.0;   ///< effective clock (P-state x TDP throttle)
  double power_w = 0.0;
  double backlog_s = 0.0;    ///< queued work at slice end, boost-seconds
};

struct ReplayResult {
  std::vector<ReplaySlice> slices;
  double slice_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  double duration_s = 0.0;      ///< replay horizon (timeline + drain tail)
  double completion_s = 0.0;    ///< when the last queued work finished
  double backlog_max_s = 0.0;
  double mean_backlog_s = 0.0;  ///< time-average queued work (latency proxy)
  double work_offered_s = 0.0;  ///< total offered work, boost-seconds
  double work_completed_s = 0.0;
  int transitions = 0;          ///< P-state changes taken
  /// The slice-count backstop fired with backlog still queued: the energy
  /// and completion numbers under-count the unserved tail.
  bool truncated = false;

  /// Realized utilization per slice (window-end timestamps) — feed it back
  /// through WorkloadTimeline::from_trace for trace-driven replay.
  [[nodiscard]] telemetry::UtilTrace util_trace() const;
  /// Per-slice power as a telemetry trace (mean/energy helpers, CSV).
  [[nodiscard]] telemetry::PowerTrace power_trace() const;
};

class TimelineReplayer {
 public:
  /// Precomputes the steady-state power report for every P-state in the
  /// table (one evaluate_at per state) for the given GEMM working point.
  TimelineReplayer(const DeviceDescriptor& dev,
                   const gemm::GemmProblem& problem,
                   gpupower::numeric::DType dtype,
                   const ActivityTotals& activity, const PStateTable& table);

  /// Steps the governor through the timeline.  When `drain_backlog` is set
  /// the replay keeps running past the timeline's end (offered load 0)
  /// until queued work finishes, so slow governors pay their full latency
  /// bill.  The governor is reset() first; `slice_s` must be positive.
  /// Replays truncate at ~4M slices — a backstop against pathological
  /// slice/duration combinations, far above any sane configuration.
  [[nodiscard]] ReplayResult replay(const WorkloadTimeline& timeline,
                                    Governor& governor, double slice_s,
                                    bool drain_backlog = true) const;

  [[nodiscard]] const PStateTable& table() const noexcept { return table_; }
  /// Steady-state report per P-state (index-aligned with the table).
  [[nodiscard]] const std::vector<PowerReport>& pstate_reports()
      const noexcept {
    return reports_;
  }

 private:
  DeviceDescriptor dev_;
  PStateTable table_;
  std::vector<PowerReport> reports_;
};

}  // namespace gpupower::gpusim::dvfs
