// Fig. 1: average iteration runtime by datatype across all experiments.
// The paper's point is that runtimes are *input-independent* (microsecond-
// level consistency), since every experiment launches the same CUTLASS
// kernel on the same shape.  This bench runs every figure sweep and reports
// mean iteration runtime per datatype plus the spread across experiments —
// the "error bars a magnitude smaller" observation.  All experiment cells
// are submitted to the ExperimentEngine up front and collected in order.
#include <cstdio>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env, "Fig. 1: average iteration runtime by datatype");

  core::ExperimentEngine engine = bench::make_engine(env);

  // Pool one representative point from every figure sweep plus the
  // baseline, mirroring "across all experiments".
  std::vector<core::PatternSpec> specs{core::baseline_gaussian_spec()};
  for (const auto fig : core::kAllFigures) {
    const auto sweep = core::figure_sweep(fig);
    specs.push_back(sweep[sweep.size() / 2].spec);
  }

  std::vector<std::vector<core::ExperimentHandle>> handles_by_dtype;
  for (const auto dtype : numeric::kAllDTypes) {
    std::vector<core::ExperimentHandle> handles;
    for (const auto& spec : specs) {
      const auto config = core::ExperimentConfigBuilder()
                              .dtype(dtype)
                              .env(env)
                              .seeds(1)  // runtime is deterministic given shape
                              .pattern(spec)
                              .build();
      handles.push_back(engine.submit(config));
    }
    handles_by_dtype.push_back(std::move(handles));
  }
  engine.wait_all();

  analysis::Table table({"datatype", "mean iter (ms)", "spread (us)",
                         "experiments"});
  for (std::size_t d = 0; d < std::size(numeric::kAllDTypes); ++d) {
    analysis::RunningStats runtime_ms;
    for (const auto& handle : handles_by_dtype[d]) {
      runtime_ms.add(handle.get().iteration_s * 1e3);
    }
    table.add_row(std::string(numeric::name(numeric::kAllDTypes[d])),
                  {runtime_ms.mean(),
                   (runtime_ms.max() - runtime_ms.min()) * 1e3,
                   static_cast<double>(runtime_ms.count())},
                  3);
  }
  table.print(std::cout);
  std::printf(
      "\nRuntime depends only on shape and datapath throughput, never on the\n"
      "input bits — the spread column is the max-min across experiments.\n");
  bench::print_engine_stats(engine);
  return 0;
}
