#include "numeric/bits.hpp"

namespace gpupower::numeric {
namespace {

template <typename W>
std::uint64_t stream_toggles_impl(std::span<const W> words) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < words.size(); ++i) {
    total += static_cast<std::uint64_t>(
        std::popcount(static_cast<W>(words[i - 1] ^ words[i])));
  }
  return total;
}

template <typename W>
std::uint64_t stream_weight_impl(std::span<const W> words) noexcept {
  std::uint64_t total = 0;
  for (const W w : words) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

}  // namespace

std::uint64_t stream_toggles(std::span<const std::uint64_t> words) noexcept {
  return stream_toggles_impl(words);
}
std::uint64_t stream_toggles(std::span<const std::uint32_t> words) noexcept {
  return stream_toggles_impl(words);
}
std::uint64_t stream_toggles(std::span<const std::uint16_t> words) noexcept {
  return stream_toggles_impl(words);
}
std::uint64_t stream_toggles(std::span<const std::uint8_t> words) noexcept {
  return stream_toggles_impl(words);
}

std::uint64_t stream_weight(std::span<const std::uint64_t> words) noexcept {
  return stream_weight_impl(words);
}
std::uint64_t stream_weight(std::span<const std::uint32_t> words) noexcept {
  return stream_weight_impl(words);
}
std::uint64_t stream_weight(std::span<const std::uint16_t> words) noexcept {
  return stream_weight_impl(words);
}
std::uint64_t stream_weight(std::span<const std::uint8_t> words) noexcept {
  return stream_weight_impl(words);
}

double average_alignment(std::span<const std::uint32_t> a,
                         std::span<const std::uint32_t> b,
                         int width) noexcept {
  if (a.empty() || a.size() != b.size() || width <= 0) return 0.0;
  std::uint64_t differing = 0;
  const std::uint32_t mask = low_mask<std::uint32_t>(width);
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += static_cast<std::uint64_t>(std::popcount((a[i] ^ b[i]) & mask));
  }
  const double per_element =
      static_cast<double>(differing) / static_cast<double>(a.size());
  return 1.0 - per_element / static_cast<double>(width);
}

double average_weight_fraction(std::span<const std::uint32_t> words,
                               int width) noexcept {
  if (words.empty() || width <= 0) return 0.0;
  std::uint64_t weight = 0;
  const std::uint32_t mask = low_mask<std::uint32_t>(width);
  for (const std::uint32_t w : words) {
    weight += static_cast<std::uint64_t>(std::popcount(w & mask));
  }
  const double per_element =
      static_cast<double>(weight) / static_cast<double>(words.size());
  return per_element / static_cast<double>(width);
}

}  // namespace gpupower::numeric
