// Naive reference GEMM — the correctness oracle every tiled kernel is tested
// against.  Accumulates in the pipeline's accumulator type (FP32 for
// floating point, INT32 for INT8) and applies the D = alpha*AB + beta*C
// epilogue in FP32, mirroring CUTLASS's default epilogue functor.
#pragma once

#include "gemm/matrix.hpp"
#include "gemm/problem.hpp"

namespace gpupower::gemm {

/// Computes D = alpha * A * op(B) + beta * C.  C may alias D (the paper
/// notes the in-place update convention); it is read before being written.
/// Output is produced in the accumulator domain (float or int32).
template <typename T>
void reference_gemm(const GemmProblem& problem, const Matrix<T>& a,
                    const Matrix<T>& b_storage,
                    const Matrix<gpupower::numeric::accumulator_t<T>>& c,
                    Matrix<gpupower::numeric::accumulator_t<T>>& d);

extern template void reference_gemm<float>(
    const GemmProblem&, const Matrix<float>&, const Matrix<float>&,
    const Matrix<float>&, Matrix<float>&);
extern template void reference_gemm<gpupower::numeric::float16_t>(
    const GemmProblem&, const Matrix<gpupower::numeric::float16_t>&,
    const Matrix<gpupower::numeric::float16_t>&, const Matrix<float>&,
    Matrix<float>&);
extern template void reference_gemm<gpupower::numeric::int8_value_t>(
    const GemmProblem&, const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<std::int32_t>&, Matrix<std::int32_t>&);

}  // namespace gpupower::gemm
