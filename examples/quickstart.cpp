// Quickstart: simulate the paper's baseline experiment — a 2048x2048 GEMM
// with Gaussian random inputs on an A100 — for all four datatype setups, and
// print the DCGM-style reported power, runtime, and the per-rail breakdown.
//
// The four runs go through the ExperimentEngine: built with the fluent
// ExperimentConfigBuilder, submitted as a batch, executed on the worker
// pool, and collected in order.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart            # fast sampled run at N=512
//   GPUPOWER_N=2048 GPUPOWER_SEEDS=10 ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/figures.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  std::printf("gpupower quickstart: %zux%zu GEMM, %d seed(s), A100 PCIe\n\n",
              env.n, env.n, env.seeds);

  core::EngineOptions options;
  options.workers = env.workers;
  core::ExperimentEngine engine(options);

  std::vector<core::ExperimentHandle> handles;
  for (const auto dtype : numeric::kAllDTypes) {
    handles.push_back(engine.submit(core::ExperimentConfigBuilder()
                                        .dtype(dtype)
                                        .env(env)
                                        .pattern(core::baseline_gaussian_spec())
                                        .build()));
  }
  engine.wait_all();

  analysis::Table table({"datatype", "power (W)", "std (W)", "iter (ms)",
                         "energy/iter (J)", "fetch W", "operand W", "multiply W",
                         "accum W", "issue W"});
  for (std::size_t d = 0; d < std::size(numeric::kAllDTypes); ++d) {
    const core::ExperimentResult& r = handles[d].get();
    table.add_row(std::string(numeric::name(numeric::kAllDTypes[d])),
                  {r.power_w, r.power_std_w, r.iteration_s * 1e3,
                   r.energy_per_iter_j, r.rails.fetch_w, r.rails.operand_w,
                   r.rails.multiply_w, r.rails.accum_w, r.rails.issue_w},
                  3);
  }

  table.print(std::cout);
  std::printf(
      "\nPower varies with *input data*, not just shape: try the fig*_ benches\n"
      "in build/bench/ to sweep the paper's input patterns.\n");
  return 0;
}
