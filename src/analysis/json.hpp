// Minimal JSON emission for structured experiment output: a small builder
// (objects, arrays, scalars, correct string escaping and non-finite number
// handling) — enough to export results to downstream analysis without an
// external dependency.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gpupower::analysis {

class JsonValue {
 public:
  /// Scalars.
  static JsonValue number(double v);
  static JsonValue integer(long long v);
  static JsonValue boolean(bool v);
  static JsonValue string(std::string_view v);
  static JsonValue null();

  /// Containers (built incrementally).
  static JsonValue object();
  static JsonValue array();

  /// Object insertion; returns *this for chaining.  Aborts on non-objects.
  JsonValue& set(std::string_view key, JsonValue value);
  /// Array append.  Aborts on non-arrays.
  JsonValue& push(JsonValue value);

  /// Serialises compactly (no whitespace) or with 2-space indentation.
  [[nodiscard]] std::string dump(bool pretty = false) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray, kObject };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  long long integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void write(std::string& out, bool pretty, int depth) const;
};

/// Escapes a string for inclusion in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace gpupower::analysis
