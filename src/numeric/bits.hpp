// Bit-level utilities underpinning the input-dependent power analysis.
//
// The paper's causal hypothesis (Section V) is that GPU power tracks the
// number of bit flips (toggles) in datapaths and wires, plus how many bits
// are set (Hamming weight).  Everything in the energy model reduces to the
// primitives defined here: popcount, pairwise Hamming distance, bit
// alignment between multiplied operands, and toggle counts over operand
// streams.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <concepts>

namespace gpupower::numeric {

/// Mask keeping only the low `width` bits.
template <std::unsigned_integral W>
[[nodiscard]] constexpr W low_mask(int width) noexcept {
  return width >= static_cast<int>(sizeof(W) * 8)
             ? ~W{0}
             : static_cast<W>((W{1} << width) - 1);
}

/// Number of set bits in a word.
template <std::unsigned_integral W>
[[nodiscard]] constexpr int popcount(W w) noexcept {
  return std::popcount(w);
}

/// Hamming distance between two words: bits that would toggle if a wire
/// holding `a` is driven to `b`.
template <std::unsigned_integral W>
[[nodiscard]] constexpr int hamming_distance(W a, W b) noexcept {
  return std::popcount(static_cast<W>(a ^ b));
}

/// Hamming weight of a word restricted to its low `width` bits.
template <std::unsigned_integral W>
[[nodiscard]] constexpr int hamming_weight(W w, int width) noexcept {
  return std::popcount(static_cast<W>(w & low_mask<W>(width)));
}

/// Bit alignment in [0, 1]: 1 when every one of the low `width` bits of `a`
/// equals the corresponding bit of `b`, 0 when every bit differs
/// (paper Section IV-F definition).
template <std::unsigned_integral W>
[[nodiscard]] constexpr double bit_alignment(W a, W b, int width) noexcept {
  const int differing = std::popcount(static_cast<W>((a ^ b) & low_mask<W>(width)));
  return 1.0 - static_cast<double>(differing) / static_cast<double>(width);
}

/// Total toggle count across a stream of words, i.e. the number of wire
/// transitions a bus sees when the words are driven back to back.
/// This is the quantity the toggle-aware-compression literature (Pekhimenko
/// et al., HPCA'16) calls "bit toggles".
[[nodiscard]] std::uint64_t stream_toggles(std::span<const std::uint64_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_toggles(std::span<const std::uint32_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_toggles(std::span<const std::uint16_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_toggles(std::span<const std::uint8_t> words) noexcept;

/// Total Hamming weight across a stream of words.
[[nodiscard]] std::uint64_t stream_weight(std::span<const std::uint64_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_weight(std::span<const std::uint32_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_weight(std::span<const std::uint16_t> words) noexcept;
[[nodiscard]] std::uint64_t stream_weight(std::span<const std::uint8_t> words) noexcept;

/// Average bit alignment between element-wise pairs of two equally long
/// streams (paper Fig. 8 x-axis).  `width` is the datatype bit width; the
/// words carry each element's raw storage bits in their low `width` bits.
[[nodiscard]] double average_alignment(std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b,
                                       int width) noexcept;

/// Average Hamming weight per element normalised by width (paper Fig. 8).
[[nodiscard]] double average_weight_fraction(std::span<const std::uint32_t> words,
                                             int width) noexcept;

}  // namespace gpupower::numeric
