// DVFS governor sweep (new-scenario figure): replays a bursty GEMM timeline
// through the P-state machine under a grid of PowerMizer-style utilization
// thresholds, against three references — fixed max clock (energy baseline),
// the deepest fixed P-state (latency worst case), and the clairvoyant
// oracle (energy lower bound).  The figure the static paper model cannot
// produce: energy vs completion-time trade-offs of driver power management
// serving non-steady traffic.
//
// The grid is expressed as a campaign spec (core/spec.hpp): the bench
// assembles the campaign document a user could equally write by hand —
// one dvfs base scenario plus a `governor` axis — expands it, and fans
// every point through the ExperimentEngine as one deduplicated batch.
// `--emit-spec FILE` writes the document for reuse with `gpowerctl run`.
//
// Environment knobs as every figure bench: GPUPOWER_N, GPUPOWER_SEEDS,
// GPUPOWER_TILES, GPUPOWER_KFRAC, GPUPOWER_WORKERS, GPUPOWER_CSV.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/spec.hpp"
#include "core/store/result_store.hpp"
#include "fig_harness.hpp"

namespace {

using namespace gpupower;
using analysis::JsonValue;

JsonValue governor_axis_value(const std::string& dsl,
                              const std::string& label) {
  JsonValue entry = JsonValue::object();
  entry.set("value", JsonValue::string(dsl))
      .set("label", JsonValue::string(label));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_spec_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-spec") == 0 && i + 1 < argc) {
      emit_spec_path = argv[++i];
    }
  }

  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env, "DVFS governor sweep — bursty GEMM timeline");

  // The workload: 5 Hz bursts at full offered load over a 20% background —
  // the shape that separates a good governor (races to boost in the burst,
  // parks partway down in the gaps without starving the background) from a
  // fixed clock.
  const char* kTimeline =
      "burst(period=0.2, duty=30%, high=100%, low=20%, dur=2)";

  const auto base_builder = core::DvfsConfigBuilder()
                                .experiment(core::ExperimentConfigBuilder()
                                                .dtype("fp16t")
                                                .env(env)
                                                .build())
                                .timeline(kTimeline)
                                .slice(0.01)
                                .pstates(5)
                                .governor("fixed(0)");
  if (!base_builder.valid()) {
    std::fprintf(stderr, "fig_dvfs_governor: %s\n",
                 base_builder.error().c_str());
    return 2;
  }

  // The campaign document: one dvfs base scenario, one governor axis.
  JsonValue values = JsonValue::array();
  values.push(governor_axis_value("fixed(0)", "fixed max clock"));
  values.push(governor_axis_value("fixed(4)", "fixed deepest"));
  for (const int up : {60, 90}) {
    for (const int down : {15, 30, 45, 60}) {
      char governor[96];
      std::snprintf(governor, sizeof governor,
                    "utilization(up=%d%%, down=%d%%, up_hold=0.01, "
                    "down_hold=0.02)",
                    up, down);
      char label[48];
      std::snprintf(label, sizeof label, "util up=%d%% down=%d%%", up, down);
      values.push(governor_axis_value(governor, label));
    }
  }
  values.push(governor_axis_value("oracle()", "oracle"));

  JsonValue axis = JsonValue::object();
  axis.set("field", JsonValue::string("governor"))
      .set("values", std::move(values));
  JsonValue axes = JsonValue::array();
  axes.push(std::move(axis));
  JsonValue doc = JsonValue::object();
  doc.set("scenario", JsonValue::string("campaign"))
      .set("name", JsonValue::string("dvfs_governor"))
      .set("base",
           core::spec_to_json(core::ScenarioConfig(base_builder.build())))
      .set("axes", std::move(axes));

  if (!emit_spec_path.empty()) {
    if (!core::atomic_write_text(emit_spec_path,
                                 doc.dump(/*pretty=*/true) + "\n")) {
      std::fprintf(stderr, "fig_dvfs_governor: cannot write %s\n",
                   emit_spec_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", emit_spec_path.c_str());
  }

  const core::SpecParseResult spec = core::parse_scenario_spec(doc);
  if (!spec.ok) {
    std::fprintf(stderr, "fig_dvfs_governor: %s\n", spec.error.c_str());
    return 2;
  }
  core::ExperimentEngine engine = bench::make_engine(env);
  core::CampaignRun run;
  std::string error;
  if (!core::submit_campaign(engine, spec.spec, run, error)) {
    std::fprintf(stderr, "fig_dvfs_governor: %s\n", error.c_str());
    return 2;
  }
  auto& points = run.points;
  auto& handles = run.handles;
  engine.wait_all();

  const core::DvfsResult& fixed = handles.front().get().dvfs();
  const double fixed_energy = fixed.energy_j;
  const double fixed_completion = fixed.completion_s;

  analysis::Table table({"governor", "energy (J)", "vs fixed (%)",
                         "completion (s)", "stretch (ms)", "avg W",
                         "transitions"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::DvfsResult& r = handles[i].get().dvfs();
    table.add_row(points[i].label,
                  {r.energy_j,
                   fixed_energy > 0.0
                       ? (r.energy_j / fixed_energy - 1.0) * 100.0
                       : 0.0,
                   r.completion_s, (r.completion_s - fixed_completion) * 1e3,
                   r.avg_power_w, r.transitions},
                  2);
  }
  table.print(std::cout);
  if (env.csv) {
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  }
  bench::print_engine_stats(engine);
  return 0;
}
