// Serve stress suite: many clients hammering ONE engine through the serve
// layer at once — the concurrency surface the TSan CI job exists to watch.
// Every session races the shared cache, the worker pool, and (over the
// socket) the accept loop; the assertions pin the service contract under
// that contention:
//   - result events are byte-identical across every concurrent session
//     (same engine, same cache entries, same JSON dump);
//   - overlapping submissions dedup: unique configs are computed exactly
//     once no matter how many clients ask;
//   - the socket server shuts down cleanly through ServeSocketControl
//     with all session threads joined and the socket file removed.
#include "core/store/serve.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "core/engine.hpp"
#include "core/obs/obs.hpp"
#include "core/scenario.hpp"
#include "core/spec.hpp"

namespace gpupower::core {
namespace {

namespace fs = std::filesystem;

// Overlapping load: the campaign's n64 point and the single spec are the
// SAME config (the axis value equals the base), so across both lines a
// session submits 3 points but only 2 unique configs — the overlap the
// dedup assertions below count on.
const char kCampaignSpec[] =
    R"json({"scenario": "campaign", "name": "stress_fixture",)json"
    R"json( "base": {"scenario": "static", "experiment": {"gpu": "a100",)json"
    R"json( "dtype": "fp16", "n": 64, "seeds": 1,)json"
    R"json( "pattern": "gaussian(sigma=210)",)json"
    R"json( "sampling": {"tiles": 4, "k_fraction": 0.5}}},)json"
    R"json( "axes": [{"field": "experiment.n", "values": [)json"
    R"json( {"value": 64, "label": "n64"}, {"value": 96, "label": "n96"}]}]})json";

const char kSingleSpec[] =
    R"json({"scenario": "static", "experiment": {"gpu": "a100",)json"
    R"json( "dtype": "fp16", "n": 64, "seeds": 1,)json"
    R"json( "pattern": "gaussian(sigma=210)",)json"
    R"json( "sampling": {"tiles": 4, "k_fraction": 0.5}}})json";

constexpr int kSessions = 8;
constexpr std::size_t kPointsPerSession = 3;  // campaign(2) + single(1)

std::string session_input() {
  return std::string(kCampaignSpec) + "\n" + kSingleSpec + "\n";
}

/// Unique canonical keys across everything one session submits — the
/// ground truth for the jobs_computed assertions, derived from the same
/// spec machinery the server uses (no hard-coded counts to rot).
std::size_t unique_config_count() {
  std::set<std::string> keys;
  const SpecParseResult campaign = parse_scenario_spec_text(kCampaignSpec);
  EXPECT_TRUE(campaign.ok) << campaign.error;
  std::vector<CampaignPoint> points;
  std::string error;
  EXPECT_TRUE(expand_campaign(campaign.spec, points, error)) << error;
  for (const CampaignPoint& point : points) {
    keys.insert(canonical_scenario_key(point.config));
  }
  const SpecParseResult single = parse_scenario_spec_text(kSingleSpec);
  EXPECT_TRUE(single.ok) << single.error;
  keys.insert(canonical_scenario_key(single.spec.config));
  return keys.size();
}

/// The session's result lines, sorted — concurrent sessions emit points
/// in completion order, so ordering is the one legitimate difference;
/// the bytes themselves must match exactly.
std::vector<std::string> sorted_result_lines(const std::string& output) {
  std::vector<std::string> results;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto parsed = analysis::json_parse(line);
    EXPECT_TRUE(parsed.ok) << "unparseable event line: " << line;
    if (!parsed.ok) continue;
    const analysis::JsonValue* type = parsed.value.find("type");
    if (type != nullptr && type->as_string() == "result") {
      results.push_back(line);
    }
  }
  std::sort(results.begin(), results.end());
  return results;
}

std::size_t count_events(const std::string& output, const std::string& type) {
  std::size_t count = 0;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    const auto parsed = analysis::json_parse(line);
    if (!parsed.ok) continue;
    const analysis::JsonValue* t = parsed.value.find("type");
    if (t != nullptr && t->as_string() == type) ++count;
  }
  return count;
}

// N concurrent stream sessions against one engine: every session gets the
// full event set, result bytes are identical everywhere, and the engine
// computed each unique config exactly once.
TEST(ServeStress, ConcurrentStreamSessionsAreByteIdenticalAndDedup) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  std::vector<std::string> outputs(kSessions);

  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&engine, &outputs, i] {
      std::istringstream in(session_input());
      std::ostringstream out;
      const long requests = serve_session(engine, in, out);
      EXPECT_EQ(requests, 2);
      outputs[static_cast<std::size_t>(i)] = out.str();
    });
  }
  for (std::thread& client : clients) client.join();

  const std::vector<std::string> reference = sorted_result_lines(outputs[0]);
  ASSERT_EQ(reference.size(), kPointsPerSession);
  for (int i = 0; i < kSessions; ++i) {
    const std::string& output = outputs[static_cast<std::size_t>(i)];
    EXPECT_EQ(sorted_result_lines(output), reference) << "session " << i;
    EXPECT_EQ(count_events(output, "accepted"), 2u) << "session " << i;
    EXPECT_EQ(count_events(output, "done"), 2u) << "session " << i;
    EXPECT_EQ(count_events(output, "error"), 0u) << "session " << i;
  }

  const EngineStats stats = engine.stats();
  const std::size_t unique = unique_config_count();
  EXPECT_EQ(stats.submitted, kSessions * kPointsPerSession);
  EXPECT_EQ(stats.jobs_computed, unique);
  EXPECT_EQ(stats.cache_hits, stats.submitted - unique);
}

// --- socket server under multi-client load --------------------------------

int connect_with_retry(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  // The server thread may not have bound yet; retry briefly.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    (void)::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

std::string stress_socket_path(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("gpupower_stress_") + tag + "_" +
           std::to_string(static_cast<long>(::getpid())) + ".sock"))
      .string();
}

// One socket server, many concurrent clients: every client sees the same
// result bytes, the shared engine dedups across connections, and
// request_stop() unwinds the accept loop cleanly (socket file removed,
// true returned).
TEST(ServeStress, SocketClientsShareOneEngineAndStopCleanly) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  const std::string socket_path = stress_socket_path("multi");

  ServeSocketControl control;
  std::string server_error;
  bool server_ok = false;
  std::thread server([&engine, &socket_path, &control, &server_error,
                      &server_ok] {
    server_ok = serve_unix_socket(engine, socket_path, ServeOptions{},
                                  server_error, &control);
  });

  std::vector<std::string> outputs(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&socket_path, &outputs, i] {
      const int fd = connect_with_retry(socket_path);
      ASSERT_GE(fd, 0) << "client " << i << " could not connect";
      ASSERT_TRUE(send_all(fd, session_input()));
      // Half-close: the session's reader sees EOF, streams the remaining
      // results, then the server closes the connection.
      (void)::shutdown(fd, SHUT_WR);
      outputs[static_cast<std::size_t>(i)] = read_to_eof(fd);
      (void)::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();

  control.request_stop();
  server.join();
  EXPECT_TRUE(server_ok) << server_error;
  EXPECT_FALSE(fs::exists(socket_path));

  const std::vector<std::string> reference = sorted_result_lines(outputs[0]);
  ASSERT_EQ(reference.size(), kPointsPerSession);
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sorted_result_lines(outputs[static_cast<std::size_t>(i)]),
              reference)
        << "client " << i;
  }

  const EngineStats stats = engine.stats();
  const std::size_t unique = unique_config_count();
  EXPECT_EQ(stats.submitted, kSessions * kPointsPerSession);
  EXPECT_EQ(stats.jobs_computed, unique);
}

// Regression guard for the session-slot leak: the accept loop used to
// push one joinable std::thread per client and only join at shutdown, so
// a long-lived service accumulated a thread handle (and its unreclaimed
// pthread stack) for every client it ever served.  Finished sessions are
// now reaped on the next accept: after many sequential clients the
// server must track a handful of slots, not one per client.
TEST(ServeStress, FinishedSessionsAreReapedNotAccumulated) {
  ExperimentEngine engine(EngineOptions::with_workers(2));
  const std::string socket_path = stress_socket_path("reap");

  ServeSocketControl control;
  std::string server_error;
  bool server_ok = false;
  std::thread server([&engine, &socket_path, &control, &server_error,
                      &server_ok] {
    server_ok = serve_unix_socket(engine, socket_path, ServeOptions{},
                                  server_error, &control);
  });

  constexpr int kSequentialClients = 12;
  for (int i = 0; i < kSequentialClients; ++i) {
    const int fd = connect_with_retry(socket_path);
    ASSERT_GE(fd, 0) << "client " << i << " could not connect";
    ASSERT_TRUE(send_all(fd, std::string(kSingleSpec) + "\n"));
    (void)::shutdown(fd, SHUT_WR);
    (void)read_to_eof(fd);  // session complete: server closed the socket
    (void)::close(fd);
  }

  // Strictly sequential clients: when client i+1 is accepted, session i
  // has streamed its results and can lag only in its last few statements
  // (close + latch store), so the tracked count must stay near 1 — and
  // nowhere near one-per-client.
  EXPECT_LE(control.tracked_sessions(), 3u)
      << "finished session threads are accumulating instead of being reaped";

  control.request_stop();
  server.join();
  EXPECT_TRUE(server_ok) << server_error;
}

// Per-session accounting under the full concurrent workload: every
// session's atomics fold into the process-wide serve.* obs counters, and
// because dedup attribution flows through ExperimentEngine::SubmitOutcome
// (first submit computes, every racing duplicate reports kCacheHit) the
// totals are EXACT even with 8 sessions racing the shared cache — not
// a stats diff that could double-count.
TEST(ServeStress, ServeCountersAreExactUnderConcurrentSessions) {
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  {
    ExperimentEngine engine(EngineOptions::with_workers(4));
    std::vector<std::thread> clients;
    clients.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      clients.emplace_back([&engine] {
        std::istringstream in(session_input());
        std::ostringstream out;
        (void)serve_session(engine, in, out);
      });
    }
    for (std::thread& client : clients) client.join();
  }

  const auto sessions = static_cast<std::uint64_t>(kSessions);
  const std::uint64_t points = sessions * kPointsPerSession;
  const std::uint64_t unique = unique_config_count();
  EXPECT_EQ(obs::counter("serve.sessions").value(), sessions);
  EXPECT_EQ(obs::counter("serve.requests").value(), sessions * 2);
  EXPECT_EQ(obs::counter("serve.points").value(), points);
  EXPECT_EQ(obs::counter("serve.results").value(), points);
  EXPECT_EQ(obs::counter("serve.dedup_hits").value(), points - unique);
  EXPECT_EQ(obs::counter("serve.store_hits").value(), 0u);  // no store
  EXPECT_GT(obs::counter("serve.bytes_streamed").value(), 0u);
  // Every session unwound its RAII registration.
  EXPECT_EQ(obs::gauge("serve.active_sessions").value(), 0);
  obs::set_metrics_enabled(false);
  obs::reset_metrics();
}

// The sessions command: a session's own row carries its deterministic
// counters as of the command line — requests/points/dedup are counted
// synchronously in the reader, so after two spec lines the values are
// pinned (results stream asynchronously and are deliberately not
// asserted from the event).  Works with metrics OFF: per-session atomics
// are unconditional, only the process-wide mirrors gate on the switch.
TEST(ServeStress, SessionsCommandReportsOwnExactCounters) {
  ExperimentEngine engine(EngineOptions::with_workers(2));
  std::istringstream in(session_input() + "sessions\n");
  std::ostringstream out;
  const long requests = serve_session(engine, in, out);
  EXPECT_EQ(requests, 3);

  const analysis::JsonValue* row = nullptr;
  analysis::JsonValue event;
  std::istringstream lines(out.str());
  std::string line;
  std::size_t sessions_events = 0;
  while (std::getline(lines, line)) {
    const auto parsed = analysis::json_parse(line);
    ASSERT_TRUE(parsed.ok) << line;
    const analysis::JsonValue* type = parsed.value.find("type");
    if (type == nullptr || type->as_string() != "sessions") continue;
    ++sessions_events;
    event = parsed.value;
  }
  EXPECT_EQ(sessions_events, 1u);
  const analysis::JsonValue* listing = event.find("sessions");
  ASSERT_NE(listing, nullptr);
  ASSERT_TRUE(listing->is_array());
  ASSERT_EQ(listing->size(), 1u);  // exactly this session is live
  row = &listing->at(0);
  EXPECT_GE(row->find("id")->as_number(0), 1.0);
  EXPECT_GE(row->find("age_s")->as_number(-1.0), 0.0);
  // The sessions line itself is request 3; both spec lines were fully
  // handled (submission counting is synchronous) before it was read.
  EXPECT_EQ(row->find("requests")->as_number(0), 3.0);
  EXPECT_EQ(row->find("points")->as_number(0), 3.0);
  EXPECT_EQ(row->find("errors")->as_number(0), 0.0);
  // campaign(n64 computed, n96 computed) then single(n64) dedups: one hit.
  EXPECT_EQ(row->find("dedup_hits")->as_number(0), 1.0);
  EXPECT_EQ(row->find("store_hits")->as_number(0), 0.0);
}

// A stop requested before the server even binds must not hang: the
// listener is poisoned on attach and the first accept returns.
TEST(ServeStress, StopRequestedBeforeServeReturnsImmediately) {
  ExperimentEngine engine(EngineOptions::with_workers(1));
  const std::string socket_path = stress_socket_path("prestop");

  ServeSocketControl control;
  control.request_stop();
  EXPECT_TRUE(control.stop_requested());

  std::string error;
  EXPECT_TRUE(
      serve_unix_socket(engine, socket_path, ServeOptions{}, error, &control));
  EXPECT_FALSE(fs::exists(socket_path));
}

}  // namespace
}  // namespace gpupower::core
