#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gpupower::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(fixed(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << cells[c] << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (const std::size_t w : widths) os << ' ' << std::string(w, '-') << " |";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fixed(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace gpupower::analysis
