// Datatype registry for the four experiment setups in the paper
// (Section III): FP32, FP16, FP16 with tensor cores (FP16-T), and INT8.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace gpupower::numeric {

enum class DType : std::uint8_t {
  kFP32,
  kFP16,
  kFP16T,  // same storage as FP16, executed on tensor-core MMA units
  kINT8,
};

inline constexpr DType kAllDTypes[] = {DType::kFP32, DType::kFP16,
                                       DType::kFP16T, DType::kINT8};

/// Storage width in bits of one element.
[[nodiscard]] constexpr int bit_width(DType t) noexcept {
  switch (t) {
    case DType::kFP32:
      return 32;
    case DType::kFP16:
    case DType::kFP16T:
      return 16;
    case DType::kINT8:
      return 8;
  }
  return 0;
}

/// Storage size in bytes of one element.
[[nodiscard]] constexpr int byte_width(DType t) noexcept {
  return bit_width(t) / 8;
}

/// True when GEMM for this setup runs on tensor-core MMA units rather than
/// the regular FMA pipelines.
[[nodiscard]] constexpr bool uses_tensor_cores(DType t) noexcept {
  return t == DType::kFP16T || t == DType::kINT8;
}

/// True for floating-point setups (FP experiments in the paper share value
/// generation: FP32 values converted round-to-nearest).
[[nodiscard]] constexpr bool is_floating_point(DType t) noexcept {
  return t != DType::kINT8;
}

[[nodiscard]] std::string_view name(DType t) noexcept;

/// Parses "fp32" / "FP16-T" / "int8" style names; returns true on success.
[[nodiscard]] bool parse_dtype(std::string_view text, DType& out) noexcept;

/// The paper's Gaussian scale parameters (Section III / Fig. 2): standard
/// deviation 210 for floating-point setups and 25 for INT8, chosen so values
/// fall within each type's representable range.
[[nodiscard]] constexpr double default_sigma(DType t) noexcept {
  return t == DType::kINT8 ? 25.0 : 210.0;
}

}  // namespace gpupower::numeric
