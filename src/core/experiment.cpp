#include "core/experiment.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "patterns/rng.hpp"

namespace gpupower::core {
namespace {

template <typename T>
SeedReplicaResult run_typed_replica(const ExperimentConfig& config,
                                    int seed_index) {
  using gpupower::gpusim::GpuSimulator;

  const GpuSimulator sim(config.gpu, replica_sim_options(config, seed_index));

  const gemm::GemmProblem problem{config.n, config.n, config.n, 1.0f, 0.0f,
                                  config.pattern.transpose_b};

  const std::uint64_t replica_seed = patterns::derive_seed(
      config.base_seed, static_cast<std::uint64_t>(seed_index));
  const ExperimentInputs<T> inputs =
      build_inputs<T>(config.pattern, config.dtype, config.n, replica_seed);
  const gpupower::gpusim::PowerReport report =
      sim.run_gemm(problem, config.dtype, inputs.a, inputs.b);

  telemetry::SamplerConfig sampler = config.sampler;
  sampler.seed = patterns::derive_seed(replica_seed, 0xD0C6);
  const telemetry::PowerTrace trace =
      telemetry::sample_run(report, config.effective_iterations(), sampler);

  SeedReplicaResult replica;
  replica.power_w = telemetry::reported_power_w(trace, sampler);
  replica.alignment = inputs.alignment;
  replica.weight_fraction = inputs.weight_fraction;
  replica.rails = report.rails;
  replica.iteration_s = report.realized_iteration_s;
  replica.energy_per_iter_j = report.energy_j;
  replica.throttled = report.throttled;
  replica.clock_frac = report.effective_clock_frac;
  return replica;
}

}  // namespace

gpupower::gpusim::SimOptions replica_sim_options(const ExperimentConfig& config,
                                                 int seed_index) {
  gpupower::gpusim::SimOptions options;
  options.sampling = config.sampling;
  options.variation = config.variation;
  if (options.variation && options.variation->per_seed) {
    // Each seed's "VM" lands on its own physical GPU: the instance id is a
    // salted hash of (base instance, seed index) so seed 0 does not reuse
    // the shared-instance draw.
    options.variation->instance = patterns::derive_seed(
        patterns::derive_seed(options.variation->instance, 0xD1F5u),
        static_cast<std::uint64_t>(seed_index));
  }
  return options;
}

SeedReplicaResult run_seed_replica(const ExperimentConfig& config,
                                   int seed_index) {
  return with_storage_type(config.dtype, [&](auto tag) {
    return run_typed_replica<typename decltype(tag)::type>(config,
                                                           seed_index);
  });
}

ExperimentResult reduce_replicas(const ExperimentConfig& config,
                                 std::span<const SeedReplicaResult> replicas) {
  analysis::RunningStats power;
  analysis::RunningStats alignment;
  analysis::RunningStats weight;
  analysis::RunningStats iteration, energy, clock;
  analysis::RunningStats fetch_w, operand_w, multiply_w, accum_w, issue_w;
  ExperimentResult result;

  for (const SeedReplicaResult& replica : replicas) {
    power.add(replica.power_w);
    alignment.add(replica.alignment);
    weight.add(replica.weight_fraction);
    fetch_w.add(replica.rails.fetch_w);
    operand_w.add(replica.rails.operand_w);
    multiply_w.add(replica.rails.multiply_w);
    accum_w.add(replica.rails.accum_w);
    issue_w.add(replica.rails.issue_w);
    // Per-seed scalars: the realized iteration time, per-iteration energy,
    // and throttle clock all depend on the seed's inputs (and on device
    // variation when enabled), so they average across seeds like every
    // other reported quantity — keeping only the last replica's values
    // would report an arbitrary seed.
    iteration.add(replica.iteration_s);
    energy.add(replica.energy_per_iter_j);
    clock.add(replica.clock_frac);
    result.throttled = result.throttled || replica.throttled;
  }

  result.power_w = power.mean();
  result.power_std_w = power.stddev();
  result.alignment = alignment.mean();
  result.weight_fraction = weight.mean();
  result.iteration_s = iteration.mean();
  result.energy_per_iter_j = energy.mean();
  // An empty span (reachable only by calling reduce_replicas directly)
  // keeps every field at its default; clock_frac needs the explicit guard
  // because its neutral value is 1.0 while an empty mean() is 0.0.
  result.clock_frac = replicas.empty() ? 1.0 : clock.mean();
  result.rails.fetch_w = fetch_w.mean();
  result.rails.operand_w = operand_w.mean();
  result.rails.multiply_w = multiply_w.mean();
  result.rails.accum_w = accum_w.mean();
  result.rails.issue_w = issue_w.mean();
  result.seeds = config.seeds;
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.seeds <= 0) {
    throw std::invalid_argument(
        "run_experiment: config.seeds must be >= 1, got " +
        std::to_string(config.seeds));
  }
  std::vector<SeedReplicaResult> replicas;
  replicas.reserve(static_cast<std::size_t>(config.seeds));
  for (int s = 0; s < config.seeds; ++s) {
    replicas.push_back(run_seed_replica(config, s));
  }
  return reduce_replicas(config, replicas);
}

}  // namespace gpupower::core
