// Pattern DSL — the input-specification language Section V sketches for the
// input-dependent power model: "a power model would take in different data
// patterns as inputs (e.g., specified via a domain-specific language)".
//
// Grammar (whitespace-insensitive):
//   spec   := stage ('|' stage)*
//   stage  := name '(' args? ')'
//   args   := arg (',' arg)*
//   arg    := [key '='] number | percentage
//
// Stages (one value stage, at most one placement, sparsity, and bit stage):
//   gaussian(mean=M, sigma=S)        value distribution (defaults 0, paper sigma)
//   set(size=K, mean=M, sigma=S)     K unique values, sampled uniformly
//   constant(mean=M, sigma=S)        one random value per matrix
//   sort_rows(P%) sort_cols(P%) sort_within_rows(P%) full_sort()
//   sparsity(F) | sparsity(P%)       random zeroing
//   flip_bits(F) rand_lsb(F) rand_msb(F) zero_lsb(F) zero_msb(F)
//                                    bit ops; F is the width fraction,
//                                    percentages accepted
//   no_transpose()                   consume B untransposed (Fig. 5a/5c)
//
// Example:
//   "gaussian(sigma=210) | sort_rows(40%) | sparsity(25%) | zero_lsb(0.5)"
#pragma once

#include <string>
#include <string_view>

#include "core/pattern_spec.hpp"

namespace gpupower::core {

struct ParseResult {
  bool ok = false;
  PatternSpec spec;
  std::string error;       ///< empty when ok
  std::size_t error_pos = 0;  ///< byte offset of the error in the input
};

/// Parses a DSL string into a PatternSpec.  Never throws; on failure the
/// result carries a human-readable message and position.
[[nodiscard]] ParseResult parse_pattern(std::string_view text);

/// Serialises a spec back into canonical DSL (parse(to_dsl(s)) == s for all
/// representable specs — the round-trip property the tests pin).
[[nodiscard]] std::string to_dsl(const PatternSpec& spec);

}  // namespace gpupower::core
