// Fig. 7: generalization across GPUs.  Replays four FP16 experiments —
// distribution mean, most-significant-bit randomization, sorted-into-rows,
// and general sparsity — on the V100, A100, H100, and Quadro RTX 6000
// models.  Following the paper, the RTX 6000 runs at 512x512 (it throttles
// at 2048x2048; this bench prints the throttle check) while the HBM parts
// use the configured size.  Every (panel x GPU x point) cell runs batched
// on the ExperimentEngine.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "fig_harness.hpp"

namespace {

using namespace gpupower;

struct Panel {
  const char* title;
  core::FigureId figure;
};

constexpr Panel kPanels[] = {
    {"distribution mean", core::FigureId::kFig3bDistributionMean},
    {"most significant bits randomized", core::FigureId::kFig4cMsbRandomized},
    {"sorted into rows", core::FigureId::kFig5aSortedRows},
    {"general sparsity", core::FigureId::kFig6aSparsity},
};

constexpr gpusim::GpuModel kGpus[] = {
    gpusim::GpuModel::kV100SXM2, gpusim::GpuModel::kA100PCIe,
    gpusim::GpuModel::kH100SXM, gpusim::GpuModel::kRTX6000};

}  // namespace

int main() {
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env,
                        "Fig. 7: FP16 experiments across NVIDIA GPUs "
                        "(V100 / A100 / H100 / RTX 6000)");

  core::ExperimentEngine engine = bench::make_engine(env);

  // The paper's RTX 6000 protocol deviation: 512x512 because 2048x2048
  // throttles.  Demonstrate the throttle first.
  {
    const auto at2048 = engine
                            .submit(core::ExperimentConfigBuilder()
                                        .gpu(gpusim::GpuModel::kRTX6000)
                                        .dtype(numeric::DType::kFP16)
                                        .env(env)
                                        .pattern(core::baseline_gaussian_spec())
                                        .n(2048)
                                        .seeds(1)
                                        .build())
                            .get();
    std::printf(
        "RTX 6000 at 2048x2048: %.1f W, throttled=%s (clock frac %.3f) — "
        "matching the paper, Fig. 7 uses 512x512 for this card.\n\n",
        at2048.power_w, at2048.throttled ? "yes" : "no", at2048.clock_frac);
  }

  // Submit every panel as one sweep per GPU, all in flight together.
  std::vector<std::vector<core::SweepRun>> runs_by_panel;
  for (const Panel& panel : kPanels) {
    std::vector<core::SweepRun> runs;
    for (const auto gpu : kGpus) {
      auto builder = core::ExperimentConfigBuilder()
                         .gpu(gpu)
                         .dtype(numeric::DType::kFP16)
                         .env(env);
      if (gpu == gpusim::GpuModel::kRTX6000) builder.n(512);
      runs.push_back(engine.submit_sweep(panel.figure, builder.build()));
    }
    runs_by_panel.push_back(std::move(runs));
  }
  engine.wait_all();

  for (std::size_t p = 0; p < std::size(kPanels); ++p) {
    std::printf("--- %s (FP16) ---\n", kPanels[p].title);
    const std::vector<core::SweepRun>& runs = runs_by_panel[p];
    std::vector<std::string> headers{
        std::string(core::figure_axis(kPanels[p].figure))};
    for (const auto gpu : kGpus) {
      headers.emplace_back(gpusim::name(gpu));
    }
    analysis::Table table(std::move(headers));
    for (std::size_t i = 0; i < runs.front().points.size(); ++i) {
      std::vector<double> row;
      for (const core::SweepRun& run : runs) {
        row.push_back(run.handles[i].get().power_w);
      }
      table.add_row(runs.front().points[i].label, row, 1);
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: V100/A100/H100 trends consistent; RTX 6000 flatter\n"
      "(smaller 512x512 grid leaves SMs idle, compressing the data-dependent\n"
      "share — the paper attributes this to its age/GDDR6/lower TDP).\n");
  bench::print_engine_stats(engine);
  return 0;
}
