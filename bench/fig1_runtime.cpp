// Fig. 1: average iteration runtime by datatype across all experiments.
// The paper's point is that runtimes are *input-independent* (microsecond-
// level consistency), since every experiment launches the same CUTLASS
// kernel on the same shape.  This bench runs every figure sweep and reports
// mean iteration runtime per datatype plus the spread across experiments —
// the "error bars a magnitude smaller" observation.
#include <cstdio>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env, "Fig. 1: average iteration runtime by datatype");

  analysis::Table table({"datatype", "mean iter (ms)", "spread (us)",
                         "experiments"});
  for (const auto dtype : numeric::kAllDTypes) {
    analysis::RunningStats runtime_ms;
    // Pool one representative point from every figure sweep plus the
    // baseline, mirroring "across all experiments".
    std::vector<core::PatternSpec> specs{core::baseline_gaussian_spec()};
    for (const auto fig : core::kAllFigures) {
      const auto sweep = core::figure_sweep(fig);
      specs.push_back(sweep[sweep.size() / 2].spec);
    }
    for (const auto& spec : specs) {
      core::ExperimentConfig config;
      config.dtype = dtype;
      config.pattern = spec;
      env.apply(config);
      config.seeds = 1;  // runtime is deterministic given the shape
      const auto result = core::run_experiment(config);
      runtime_ms.add(result.iteration_s * 1e3);
    }
    table.add_row(std::string(numeric::name(dtype)),
                  {runtime_ms.mean(),
                   (runtime_ms.max() - runtime_ms.min()) * 1e3,
                   static_cast<double>(runtime_ms.count())},
                  3);
  }
  table.print(std::cout);
  std::printf(
      "\nRuntime depends only on shape and datapath throughput, never on the\n"
      "input bits — the spread column is the max-min across experiments.\n");
  return 0;
}
