#include "core/scenario.hpp"

#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config_builder.hpp"
#include "core/report.hpp"

namespace gpupower::core {
namespace {

[[noreturn]] void throw_kind_mismatch(const char* accessor,
                                      ScenarioKind actual) {
  throw std::logic_error(std::string("ScenarioConfig/Result::") + accessor +
                         "(): scenario holds a " + std::string(name(actual)) +
                         " value");
}

/// Moves the typed replicas out of their variant slots; the engine clears
/// the slots right after the reduction, so the move is safe.
template <typename Replica>
std::vector<Replica> take_replicas(std::span<ScenarioReplica> replicas) {
  std::vector<Replica> typed;
  typed.reserve(replicas.size());
  for (ScenarioReplica& replica : replicas) {
    typed.push_back(std::get<Replica>(std::move(replica)));
  }
  return typed;
}

std::string validate_seeds(int seeds) {
  if (seeds <= 0) {
    return "experiment.seeds must be >= 1, got " + std::to_string(seeds);
  }
  return {};
}

// --- static experiment hooks -----------------------------------------------

std::string static_validate(const ScenarioConfig& config) {
  return validate_seeds(config.static_config().seeds);
}

std::string static_key(const ScenarioConfig& config) {
  return canonical_config_key(config.static_config());
}

ScenarioReplica static_replica(const ScenarioConfig& config, int seed_index) {
  return run_seed_replica(config.static_config(), seed_index);
}

ScenarioResult static_reduce(const ScenarioConfig& config,
                             std::span<ScenarioReplica> replicas) {
  return reduce_replicas(config.static_config(),
                         take_replicas<SeedReplicaResult>(replicas));
}

analysis::JsonValue static_json(const ScenarioConfig& config,
                                const ScenarioResult& result) {
  return to_json(config.static_config(), result.static_result());
}

// --- DVFS hooks ------------------------------------------------------------

std::string dvfs_validate(const ScenarioConfig& config) {
  return validate_dvfs_config(config.dvfs());
}

std::string dvfs_key(const ScenarioConfig& config) {
  return canonical_dvfs_key(config.dvfs());
}

ScenarioReplica dvfs_replica(const ScenarioConfig& config, int seed_index) {
  return run_dvfs_seed_replica(config.dvfs(), seed_index);
}

ScenarioResult dvfs_reduce(const ScenarioConfig& config,
                           std::span<ScenarioReplica> replicas) {
  return reduce_dvfs_replicas(
      config.dvfs(),
      take_replicas<gpupower::gpusim::dvfs::ReplayResult>(replicas));
}

analysis::JsonValue dvfs_json(const ScenarioConfig& config,
                              const ScenarioResult& result) {
  return dvfs_to_json(config.dvfs(), result.dvfs());
}

// --- fleet hooks -----------------------------------------------------------

std::string fleet_validate(const ScenarioConfig& config) {
  const std::string seeds = validate_seeds(config.fleet().experiment.seeds);
  if (!seeds.empty()) return seeds;
  return validate_fleet_config(config.fleet());
}

std::string fleet_key(const ScenarioConfig& config) {
  return canonical_fleet_key(config.fleet());
}

ScenarioReplica fleet_replica(const ScenarioConfig& config, int seed_index) {
  return run_fleet_seed_replica(config.fleet(), seed_index);
}

ScenarioResult fleet_reduce(const ScenarioConfig& config,
                            std::span<ScenarioReplica> replicas) {
  return reduce_fleet_replicas(
      config.fleet(),
      take_replicas<gpupower::gpusim::fleet::FleetRun>(replicas));
}

analysis::JsonValue fleet_json(const ScenarioConfig& config,
                               const ScenarioResult& result) {
  return fleet_to_json(config.fleet(), result.fleet());
}

// --- full-fidelity result codecs (the store's value format) ----------------
//
// Unlike the display exporters above (which summarise and drop trace
// columns), these serialise EVERY result field at round-trip precision —
// JsonValue emits doubles via shortest-round-trip to_chars and parses them
// back with strtod, so dump+parse reproduces each result bit-identically.
// Per-slice traces are stored columnar (one array per field) to keep the
// entries compact and diffable.

using analysis::JsonValue;

JsonValue num(double v) { return JsonValue::number(v); }

bool read_num(const JsonValue& obj, const char* key, double& out,
              std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    error = std::string("result field '") + key + "' missing or non-numeric";
    return false;
  }
  out = v->as_number();
  return true;
}

bool read_int(const JsonValue& obj, const char* key, int& out,
              std::string& error) {
  double v = 0.0;
  if (!read_num(obj, key, v, error)) return false;
  out = static_cast<int>(v);
  return true;
}

bool read_bool(const JsonValue& obj, const char* key, bool& out,
               std::string& error) {
  const JsonValue* v = obj.find(key);
  // as_boolean returns the fallback for non-bool kinds, so the two probes
  // agree exactly when the member is a real boolean.
  if (v == nullptr || v->as_boolean(false) != v->as_boolean(true)) {
    error = std::string("result field '") + key + "' missing or non-boolean";
    return false;
  }
  out = v->as_boolean();
  return true;
}

JsonValue doubles_json(std::span<const double> values) {
  JsonValue arr = JsonValue::array();
  for (const double v : values) arr.push(num(v));
  return arr;
}

bool read_doubles(const JsonValue& obj, const char* key,
                  std::vector<double>& out, std::string& error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) {
    error = std::string("result field '") + key + "' missing or non-array";
    return false;
  }
  out.clear();
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    const JsonValue& e = v->at(i);
    if (!e.is_number()) {
      error = std::string("result field '") + key + "' has a non-numeric entry";
      return false;
    }
    out.push_back(e.as_number());
  }
  return true;
}

JsonValue replay_result_json(const gpupower::gpusim::dvfs::ReplayResult& r) {
  JsonValue t = JsonValue::array();
  JsonValue offered = JsonValue::array();
  JsonValue utilization = JsonValue::array();
  JsonValue pstate = JsonValue::array();
  JsonValue clock_frac = JsonValue::array();
  JsonValue power = JsonValue::array();
  JsonValue backlog = JsonValue::array();
  for (const auto& s : r.slices) {
    t.push(num(s.t_s));
    offered.push(num(s.offered));
    utilization.push(num(s.utilization));
    pstate.push(JsonValue::integer(s.pstate));
    clock_frac.push(num(s.clock_frac));
    power.push(num(s.power_w));
    backlog.push(num(s.backlog_s));
  }
  JsonValue cols = JsonValue::object();
  cols.set("t_s", std::move(t))
      .set("offered", std::move(offered))
      .set("utilization", std::move(utilization))
      .set("pstate", std::move(pstate))
      .set("clock_frac", std::move(clock_frac))
      .set("power_w", std::move(power))
      .set("backlog_s", std::move(backlog));
  JsonValue doc = JsonValue::object();
  doc.set("slice_s", num(r.slice_s))
      .set("energy_j", num(r.energy_j))
      .set("avg_power_w", num(r.avg_power_w))
      .set("peak_power_w", num(r.peak_power_w))
      .set("duration_s", num(r.duration_s))
      .set("completion_s", num(r.completion_s))
      .set("backlog_max_s", num(r.backlog_max_s))
      .set("mean_backlog_s", num(r.mean_backlog_s))
      .set("work_offered_s", num(r.work_offered_s))
      .set("work_completed_s", num(r.work_completed_s))
      .set("transitions", JsonValue::integer(r.transitions))
      .set("truncated", JsonValue::boolean(r.truncated))
      .set("slices", std::move(cols));
  return doc;
}

bool replay_result_parse(const JsonValue& doc,
                         gpupower::gpusim::dvfs::ReplayResult& r,
                         std::string& error) {
  if (!doc.is_object()) {
    error = "replay trace is not an object";
    return false;
  }
  if (!read_num(doc, "slice_s", r.slice_s, error) ||
      !read_num(doc, "energy_j", r.energy_j, error) ||
      !read_num(doc, "avg_power_w", r.avg_power_w, error) ||
      !read_num(doc, "peak_power_w", r.peak_power_w, error) ||
      !read_num(doc, "duration_s", r.duration_s, error) ||
      !read_num(doc, "completion_s", r.completion_s, error) ||
      !read_num(doc, "backlog_max_s", r.backlog_max_s, error) ||
      !read_num(doc, "mean_backlog_s", r.mean_backlog_s, error) ||
      !read_num(doc, "work_offered_s", r.work_offered_s, error) ||
      !read_num(doc, "work_completed_s", r.work_completed_s, error) ||
      !read_int(doc, "transitions", r.transitions, error) ||
      !read_bool(doc, "truncated", r.truncated, error)) {
    return false;
  }
  const JsonValue* cols = doc.find("slices");
  if (cols == nullptr || !cols->is_object()) {
    error = "replay trace 'slices' missing or non-object";
    return false;
  }
  std::vector<double> t, offered, utilization, pstate, clock_frac, power,
      backlog;
  if (!read_doubles(*cols, "t_s", t, error) ||
      !read_doubles(*cols, "offered", offered, error) ||
      !read_doubles(*cols, "utilization", utilization, error) ||
      !read_doubles(*cols, "pstate", pstate, error) ||
      !read_doubles(*cols, "clock_frac", clock_frac, error) ||
      !read_doubles(*cols, "power_w", power, error) ||
      !read_doubles(*cols, "backlog_s", backlog, error)) {
    return false;
  }
  const std::size_t count = t.size();
  if (offered.size() != count || utilization.size() != count ||
      pstate.size() != count || clock_frac.size() != count ||
      power.size() != count || backlog.size() != count) {
    error = "replay trace columns have mismatched lengths";
    return false;
  }
  r.slices.clear();
  r.slices.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto& s = r.slices[i];
    s.t_s = t[i];
    s.offered = offered[i];
    s.utilization = utilization[i];
    s.pstate = static_cast<int>(pstate[i]);
    s.clock_frac = clock_frac[i];
    s.power_w = power[i];
    s.backlog_s = backlog[i];
  }
  return true;
}

JsonValue static_result_json(const ScenarioResult& result) {
  const ExperimentResult& r = result.static_result();
  JsonValue rails = JsonValue::object();
  rails.set("fetch_w", num(r.rails.fetch_w))
      .set("operand_w", num(r.rails.operand_w))
      .set("multiply_w", num(r.rails.multiply_w))
      .set("accum_w", num(r.rails.accum_w))
      .set("issue_w", num(r.rails.issue_w));
  JsonValue doc = JsonValue::object();
  doc.set("power_w", num(r.power_w))
      .set("power_std_w", num(r.power_std_w))
      .set("iteration_s", num(r.iteration_s))
      .set("energy_per_iter_j", num(r.energy_per_iter_j))
      .set("alignment", num(r.alignment))
      .set("weight_fraction", num(r.weight_fraction))
      .set("rails", std::move(rails))
      .set("throttled", JsonValue::boolean(r.throttled))
      .set("clock_frac", num(r.clock_frac))
      .set("seeds", JsonValue::integer(r.seeds));
  return doc;
}

bool static_result_parse(const JsonValue& doc, ScenarioResult& out,
                         std::string& error) {
  if (!doc.is_object()) {
    error = "static result is not an object";
    return false;
  }
  ExperimentResult r;
  const JsonValue* rails = doc.find("rails");
  if (rails == nullptr || !rails->is_object()) {
    error = "result field 'rails' missing or non-object";
    return false;
  }
  if (!read_num(doc, "power_w", r.power_w, error) ||
      !read_num(doc, "power_std_w", r.power_std_w, error) ||
      !read_num(doc, "iteration_s", r.iteration_s, error) ||
      !read_num(doc, "energy_per_iter_j", r.energy_per_iter_j, error) ||
      !read_num(doc, "alignment", r.alignment, error) ||
      !read_num(doc, "weight_fraction", r.weight_fraction, error) ||
      !read_num(*rails, "fetch_w", r.rails.fetch_w, error) ||
      !read_num(*rails, "operand_w", r.rails.operand_w, error) ||
      !read_num(*rails, "multiply_w", r.rails.multiply_w, error) ||
      !read_num(*rails, "accum_w", r.rails.accum_w, error) ||
      !read_num(*rails, "issue_w", r.rails.issue_w, error) ||
      !read_bool(doc, "throttled", r.throttled, error) ||
      !read_num(doc, "clock_frac", r.clock_frac, error) ||
      !read_int(doc, "seeds", r.seeds, error)) {
    return false;
  }
  out = ScenarioResult(std::move(r));
  return true;
}

JsonValue dvfs_result_json(const ScenarioResult& result) {
  const DvfsResult& r = result.dvfs();
  JsonValue doc = JsonValue::object();
  doc.set("energy_j", num(r.energy_j))
      .set("energy_std_j", num(r.energy_std_j))
      .set("avg_power_w", num(r.avg_power_w))
      .set("peak_power_w", num(r.peak_power_w))
      .set("completion_s", num(r.completion_s))
      .set("duration_s", num(r.duration_s))
      .set("backlog_max_s", num(r.backlog_max_s))
      .set("mean_backlog_s", num(r.mean_backlog_s))
      .set("transitions", num(r.transitions))
      .set("truncated", JsonValue::boolean(r.truncated))
      .set("seeds", JsonValue::integer(r.seeds))
      .set("trace", replay_result_json(r.trace));
  return doc;
}

bool dvfs_result_parse(const JsonValue& doc, ScenarioResult& out,
                       std::string& error) {
  if (!doc.is_object()) {
    error = "dvfs result is not an object";
    return false;
  }
  DvfsResult r;
  if (!read_num(doc, "energy_j", r.energy_j, error) ||
      !read_num(doc, "energy_std_j", r.energy_std_j, error) ||
      !read_num(doc, "avg_power_w", r.avg_power_w, error) ||
      !read_num(doc, "peak_power_w", r.peak_power_w, error) ||
      !read_num(doc, "completion_s", r.completion_s, error) ||
      !read_num(doc, "duration_s", r.duration_s, error) ||
      !read_num(doc, "backlog_max_s", r.backlog_max_s, error) ||
      !read_num(doc, "mean_backlog_s", r.mean_backlog_s, error) ||
      !read_num(doc, "transitions", r.transitions, error) ||
      !read_bool(doc, "truncated", r.truncated, error) ||
      !read_int(doc, "seeds", r.seeds, error)) {
    return false;
  }
  const JsonValue* trace = doc.find("trace");
  if (trace == nullptr || !replay_result_parse(*trace, r.trace, error)) {
    if (trace == nullptr) error = "result field 'trace' missing";
    return false;
  }
  out = ScenarioResult(std::move(r));
  return true;
}

JsonValue fleet_device_run_json(
    const gpupower::gpusim::fleet::FleetDeviceRun& d) {
  JsonValue doc = JsonValue::object();
  doc.set("replay", replay_result_json(d.replay))
      .set("temperature_c", doubles_json(d.temperature_c))
      .set("budget_w", doubles_json(d.budget_w))
      .set("peak_temperature_c", num(d.peak_temperature_c))
      .set("throttled_slices", JsonValue::integer(d.throttled_slices))
      .set("budget_clamped_slices",
           JsonValue::integer(d.budget_clamped_slices));
  return doc;
}

bool fleet_device_run_parse(const JsonValue& doc,
                            gpupower::gpusim::fleet::FleetDeviceRun& d,
                            std::string& error) {
  if (!doc.is_object()) {
    error = "fleet device run is not an object";
    return false;
  }
  const JsonValue* replay = doc.find("replay");
  if (replay == nullptr || !replay_result_parse(*replay, d.replay, error)) {
    if (replay == nullptr) error = "result field 'replay' missing";
    return false;
  }
  return read_doubles(doc, "temperature_c", d.temperature_c, error) &&
         read_doubles(doc, "budget_w", d.budget_w, error) &&
         read_num(doc, "peak_temperature_c", d.peak_temperature_c, error) &&
         read_int(doc, "throttled_slices", d.throttled_slices, error) &&
         read_int(doc, "budget_clamped_slices", d.budget_clamped_slices,
                  error);
}

JsonValue fleet_run_json(const gpupower::gpusim::fleet::FleetRun& run) {
  JsonValue devices = JsonValue::array();
  for (const auto& d : run.devices) devices.push(fleet_device_run_json(d));
  JsonValue doc = JsonValue::object();
  doc.set("devices", std::move(devices))
      .set("fleet_power_w", doubles_json(run.fleet_power_w))
      .set("slice_s", num(run.slice_s))
      // Infinity marks the uncapped fleet; JSON has no literal for it, so
      // the codec spells it as null.
      .set("cap_w", std::isfinite(run.cap_w) ? num(run.cap_w)
                                             : JsonValue::null())
      .set("duration_s", num(run.duration_s))
      .set("energy_j", num(run.energy_j))
      .set("avg_power_w", num(run.avg_power_w))
      .set("peak_power_w", num(run.peak_power_w))
      .set("completion_s", num(run.completion_s))
      .set("backlog_max_s", num(run.backlog_max_s))
      .set("mean_backlog_s", num(run.mean_backlog_s))
      .set("transitions", JsonValue::integer(run.transitions))
      .set("over_cap_slices", JsonValue::integer(run.over_cap_slices))
      .set("truncated", JsonValue::boolean(run.truncated));
  return doc;
}

bool fleet_run_parse(const JsonValue& doc,
                     gpupower::gpusim::fleet::FleetRun& run,
                     std::string& error) {
  if (!doc.is_object()) {
    error = "fleet run is not an object";
    return false;
  }
  const JsonValue* devices = doc.find("devices");
  if (devices == nullptr || !devices->is_array()) {
    error = "result field 'devices' missing or non-array";
    return false;
  }
  run.devices.clear();
  run.devices.resize(devices->size());
  for (std::size_t i = 0; i < devices->size(); ++i) {
    if (!fleet_device_run_parse(devices->at(i), run.devices[i], error)) {
      return false;
    }
  }
  const JsonValue* cap = doc.find("cap_w");
  if (cap == nullptr || !(cap->is_null() || cap->is_number())) {
    error = "result field 'cap_w' missing or non-numeric/null";
    return false;
  }
  run.cap_w = cap->is_null() ? std::numeric_limits<double>::infinity()
                             : cap->as_number();
  return read_doubles(doc, "fleet_power_w", run.fleet_power_w, error) &&
         read_num(doc, "slice_s", run.slice_s, error) &&
         read_num(doc, "duration_s", run.duration_s, error) &&
         read_num(doc, "energy_j", run.energy_j, error) &&
         read_num(doc, "avg_power_w", run.avg_power_w, error) &&
         read_num(doc, "peak_power_w", run.peak_power_w, error) &&
         read_num(doc, "completion_s", run.completion_s, error) &&
         read_num(doc, "backlog_max_s", run.backlog_max_s, error) &&
         read_num(doc, "mean_backlog_s", run.mean_backlog_s, error) &&
         read_int(doc, "transitions", run.transitions, error) &&
         read_int(doc, "over_cap_slices", run.over_cap_slices, error) &&
         read_bool(doc, "truncated", run.truncated, error);
}

JsonValue fleet_result_json(const ScenarioResult& result) {
  const FleetResult& r = result.fleet();
  JsonValue devices = JsonValue::array();
  for (const auto& d : r.devices) {
    JsonValue entry = JsonValue::object();
    entry.set("energy_j", num(d.energy_j))
        .set("avg_power_w", num(d.avg_power_w))
        .set("peak_power_w", num(d.peak_power_w))
        .set("completion_s", num(d.completion_s))
        .set("backlog_max_s", num(d.backlog_max_s))
        .set("mean_backlog_s", num(d.mean_backlog_s))
        .set("transitions", num(d.transitions))
        .set("peak_temperature_c", num(d.peak_temperature_c))
        .set("throttled_slices", num(d.throttled_slices))
        .set("budget_clamped_slices", num(d.budget_clamped_slices));
    devices.push(std::move(entry));
  }
  JsonValue doc = JsonValue::object();
  doc.set("energy_j", num(r.energy_j))
      .set("energy_std_j", num(r.energy_std_j))
      .set("avg_power_w", num(r.avg_power_w))
      .set("peak_power_w", num(r.peak_power_w))
      .set("completion_s", num(r.completion_s))
      .set("duration_s", num(r.duration_s))
      .set("backlog_max_s", num(r.backlog_max_s))
      .set("backlog_p99_s", num(r.backlog_p99_s))
      .set("mean_backlog_s", num(r.mean_backlog_s))
      .set("transitions", num(r.transitions))
      .set("over_cap_slices", num(r.over_cap_slices))
      .set("truncated", JsonValue::boolean(r.truncated))
      .set("seeds", JsonValue::integer(r.seeds))
      .set("devices", std::move(devices))
      .set("trace", fleet_run_json(r.trace));
  return doc;
}

bool fleet_result_parse(const JsonValue& doc, ScenarioResult& out,
                        std::string& error) {
  if (!doc.is_object()) {
    error = "fleet result is not an object";
    return false;
  }
  FleetResult r;
  if (!read_num(doc, "energy_j", r.energy_j, error) ||
      !read_num(doc, "energy_std_j", r.energy_std_j, error) ||
      !read_num(doc, "avg_power_w", r.avg_power_w, error) ||
      !read_num(doc, "peak_power_w", r.peak_power_w, error) ||
      !read_num(doc, "completion_s", r.completion_s, error) ||
      !read_num(doc, "duration_s", r.duration_s, error) ||
      !read_num(doc, "backlog_max_s", r.backlog_max_s, error) ||
      !read_num(doc, "backlog_p99_s", r.backlog_p99_s, error) ||
      !read_num(doc, "mean_backlog_s", r.mean_backlog_s, error) ||
      !read_num(doc, "transitions", r.transitions, error) ||
      !read_num(doc, "over_cap_slices", r.over_cap_slices, error) ||
      !read_bool(doc, "truncated", r.truncated, error) ||
      !read_int(doc, "seeds", r.seeds, error)) {
    return false;
  }
  const JsonValue* devices = doc.find("devices");
  if (devices == nullptr || !devices->is_array()) {
    error = "result field 'devices' missing or non-array";
    return false;
  }
  r.devices.resize(devices->size());
  for (std::size_t i = 0; i < devices->size(); ++i) {
    const JsonValue& entry = devices->at(i);
    auto& d = r.devices[i];
    if (!entry.is_object()) {
      error = "fleet device summary is not an object";
      return false;
    }
    if (!read_num(entry, "energy_j", d.energy_j, error) ||
        !read_num(entry, "avg_power_w", d.avg_power_w, error) ||
        !read_num(entry, "peak_power_w", d.peak_power_w, error) ||
        !read_num(entry, "completion_s", d.completion_s, error) ||
        !read_num(entry, "backlog_max_s", d.backlog_max_s, error) ||
        !read_num(entry, "mean_backlog_s", d.mean_backlog_s, error) ||
        !read_num(entry, "transitions", d.transitions, error) ||
        !read_num(entry, "peak_temperature_c", d.peak_temperature_c, error) ||
        !read_num(entry, "throttled_slices", d.throttled_slices, error) ||
        !read_num(entry, "budget_clamped_slices", d.budget_clamped_slices,
                  error)) {
      return false;
    }
  }
  const JsonValue* trace = doc.find("trace");
  if (trace == nullptr || !fleet_run_parse(*trace, r.trace, error)) {
    if (trace == nullptr) error = "result field 'trace' missing";
    return false;
  }
  out = ScenarioResult(std::move(r));
  return true;
}

constexpr ScenarioKindInfo kRegistry[kScenarioKindCount] = {
    {ScenarioKind::kStatic, "static", &static_validate, &static_key,
     &static_replica, &static_reduce, &static_json, &static_result_json,
     &static_result_parse},
    {ScenarioKind::kDvfs, "dvfs", &dvfs_validate, &dvfs_key, &dvfs_replica,
     &dvfs_reduce, &dvfs_json, &dvfs_result_json, &dvfs_result_parse},
    {ScenarioKind::kFleet, "fleet", &fleet_validate, &fleet_key,
     &fleet_replica, &fleet_reduce, &fleet_json, &fleet_result_json,
     &fleet_result_parse},
};

}  // namespace

std::string_view name(ScenarioKind kind) noexcept {
  return kRegistry[static_cast<std::size_t>(kind)].name;
}

bool parse_scenario_kind(std::string_view text, ScenarioKind& out) noexcept {
  for (const ScenarioKindInfo& info : kRegistry) {
    if (text == info.name) {
      out = info.kind;
      return true;
    }
  }
  if (text == "experiment") {  // the spec-file alias for "static"
    out = ScenarioKind::kStatic;
    return true;
  }
  return false;
}

const ExperimentConfig& ScenarioConfig::static_config() const {
  if (kind() != ScenarioKind::kStatic) {
    throw_kind_mismatch("static_config", kind());
  }
  return std::get<ExperimentConfig>(value_);
}

const DvfsConfig& ScenarioConfig::dvfs() const {
  if (kind() != ScenarioKind::kDvfs) throw_kind_mismatch("dvfs", kind());
  return std::get<DvfsConfig>(value_);
}

const FleetConfig& ScenarioConfig::fleet() const {
  if (kind() != ScenarioKind::kFleet) throw_kind_mismatch("fleet", kind());
  return std::get<FleetConfig>(value_);
}

const ExperimentConfig& ScenarioConfig::experiment() const noexcept {
  switch (kind()) {
    case ScenarioKind::kDvfs:
      return std::get<DvfsConfig>(value_).experiment;
    case ScenarioKind::kFleet:
      return std::get<FleetConfig>(value_).experiment;
    case ScenarioKind::kStatic:
      break;
  }
  return std::get<ExperimentConfig>(value_);
}

const ExperimentResult& ScenarioResult::static_result() const {
  if (!valid() || kind() != ScenarioKind::kStatic) {
    throw_kind_mismatch("static_result", kind());
  }
  return std::get<ExperimentResult>(value_);
}

const DvfsResult& ScenarioResult::dvfs() const {
  if (!valid() || kind() != ScenarioKind::kDvfs) {
    throw_kind_mismatch("dvfs", kind());
  }
  return std::get<DvfsResult>(value_);
}

const FleetResult& ScenarioResult::fleet() const {
  if (!valid() || kind() != ScenarioKind::kFleet) {
    throw_kind_mismatch("fleet", kind());
  }
  return std::get<FleetResult>(value_);
}

const ScenarioKindInfo& scenario_kind_info(ScenarioKind kind) noexcept {
  return kRegistry[static_cast<std::size_t>(kind)];
}

std::string validate_scenario(const ScenarioConfig& config) {
  return scenario_kind_info(config.kind()).validate(config);
}

std::string canonical_scenario_key(const ScenarioConfig& config) {
  const ScenarioKindInfo& info = scenario_kind_info(config.kind());
  // '\x1f' (unit separator) cannot appear in a kind name, so keys of
  // different kinds can never collide even if a kind's key embedded
  // another kind's spelling.
  return std::string(info.name) + '\x1f' + info.canonical_key(config);
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  const ScenarioKindInfo& info = scenario_kind_info(config.kind());
  const std::string problem = info.validate(config);
  if (!problem.empty()) {
    throw std::invalid_argument("run_scenario: " + problem);
  }
  std::vector<ScenarioReplica> replicas;
  replicas.reserve(static_cast<std::size_t>(config.seeds()));
  for (int s = 0; s < config.seeds(); ++s) {
    replicas.push_back(info.run_replica(config, s));
  }
  return info.reduce(config, replicas);
}

analysis::JsonValue scenario_to_json(const ScenarioConfig& config,
                                     const ScenarioResult& result) {
  return scenario_kind_info(config.kind()).to_json(config, result);
}

analysis::JsonValue scenario_result_to_json(const ScenarioResult& result) {
  if (!result.valid()) {
    throw std::logic_error(
        "scenario_result_to_json: empty result (no reduction has filled it)");
  }
  return scenario_kind_info(result.kind()).result_to_json(result);
}

bool scenario_result_from_json(ScenarioKind kind,
                               const analysis::JsonValue& doc,
                               ScenarioResult& out, std::string& error) {
  return scenario_kind_info(kind).result_from_json(doc, out, error);
}

}  // namespace gpupower::core
