// Fig. 8: GPU power vs input bit alignment and Hamming weight.  Every
// configuration from the Section IV sweeps becomes one scatter point
// (alignment, weight, power); this bench prints the per-datatype scatter and
// the correlations the paper eyeballs: higher alignment / lower weight tend
// toward lower power, but not perfectly consistently.  The full scatter is
// submitted to the ExperimentEngine at once; specs shared between figures
// (and with other sweeps) are computed a single time via the engine cache.
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/correlation.hpp"
#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env,
                        "Fig. 8: power vs bit alignment and Hamming weight "
                        "(every experiment configuration)");

  core::ExperimentEngine engine = bench::make_engine(env);

  struct Cell {
    core::FigureId figure;
    std::string label;
    core::ExperimentHandle handle;
  };
  std::vector<std::vector<Cell>> cells_by_dtype;
  for (const auto dtype : numeric::kAllDTypes) {
    std::vector<Cell> cells;
    for (const auto fig : core::kAllFigures) {
      const auto sweep = core::figure_sweep(fig);
      // Every other sweep point keeps the scatter dense but the bench fast.
      for (std::size_t i = 0; i < sweep.size(); i += 2) {
        const auto config = core::ExperimentConfigBuilder()
                                .dtype(dtype)
                                .env(env)
                                .seeds(1)
                                .pattern(sweep[i].spec)
                                .build();
        cells.push_back({fig, sweep[i].label, engine.submit(config)});
      }
    }
    cells_by_dtype.push_back(std::move(cells));
  }
  engine.wait_all();

  for (std::size_t d = 0; d < std::size(numeric::kAllDTypes); ++d) {
    const auto dtype = numeric::kAllDTypes[d];
    std::vector<double> alignment, weight, power;
    analysis::Table table({"experiment", "alignment", "weight frac",
                           "power (W)"});
    for (const Cell& cell : cells_by_dtype[d]) {
      const auto& result = cell.handle.get();
      alignment.push_back(result.alignment);
      weight.push_back(result.weight_fraction);
      power.push_back(result.power_w);
      table.add_row(std::string(core::figure_name(cell.figure)).substr(0, 8) +
                        " " + cell.label,
                    {result.alignment, result.weight_fraction, result.power_w},
                    3);
    }
    std::printf("--- %s scatter ---\n", std::string(numeric::name(dtype)).c_str());
    table.print(std::cout);
    std::printf(
        "pearson(power, alignment) = %+.3f   pearson(power, weight) = %+.3f\n"
        "spearman(power, alignment) = %+.3f  spearman(power, weight) = %+.3f\n\n",
        analysis::pearson(alignment, power), analysis::pearson(weight, power),
        analysis::spearman(alignment, power),
        analysis::spearman(weight, power));
  }
  std::printf(
      "Expected: negative power/alignment correlation and positive\n"
      "power/weight correlation for FP datatypes — present but imperfect,\n"
      "as the paper notes.\n");
  bench::print_engine_stats(engine);
  return 0;
}
