#include "core/power_model.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "gpusim/energy_model.hpp"
#include "numeric/bits.hpp"

namespace gpupower::core {
namespace {

constexpr std::size_t kDim = DataFeatures::kCount + 1;  // + intercept

/// Solves the symmetric system A x = b by Gaussian elimination with partial
/// pivoting (kDim is tiny; numerical heroics are unnecessary).
bool solve(std::array<std::array<double, kDim>, kDim>& a,
           std::array<double, kDim>& b, std::array<double, kDim>& x) {
  for (std::size_t col = 0; col < kDim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < kDim; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-14) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < kDim; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < kDim; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t i = kDim; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < kDim; ++c) sum -= a[i][c] * x[c];
    x[i] = sum / a[i][i];
  }
  return true;
}

template <typename T>
std::uint32_t exponent_field(std::uint32_t bits) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return (bits >> 23) & 0xFFu;
  } else if constexpr (std::is_same_v<T, gpupower::numeric::float16_t>) {
    return (bits >> 10) & 0x1Fu;
  } else {
    (void)bits;
    return 0;
  }
}

}  // namespace

template <typename T>
DataFeatures extract_features(const gemm::Matrix<T>& a,
                              const gemm::Matrix<T>& b) {
  using traits = gpupower::numeric::scalar_traits<T>;
  constexpr int kWidth = traits::kBits;
  DataFeatures f;
  const std::size_t count = a.size() + b.size();
  if (count == 0) return f;

  std::uint64_t weight = 0;
  std::uint64_t toggles = 0;
  std::uint64_t zeros = 0;
  std::uint64_t exponent = 0;
  double significand = 0.0;
  std::uint64_t toggle_pairs = 0;

  const auto scan = [&](const gemm::Matrix<T>& m) {
    std::uint32_t prev = 0;
    bool has_prev = false;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const auto bits = static_cast<std::uint32_t>(traits::to_bits(m.at(r, c)));
        weight += static_cast<std::uint64_t>(std::popcount(bits));
        if (traits::is_zero(m.at(r, c))) ++zeros;
        exponent += exponent_field<T>(bits);
        if (has_prev) {
          toggles += static_cast<std::uint64_t>(std::popcount(prev ^ bits));
          ++toggle_pairs;
        }
        prev = bits;
        has_prev = true;
      }
    }
  };
  scan(a);
  scan(b);

  // Significand activity: sample elementwise pairs (one A element against
  // the B element at the same index) — an unbiased proxy for the multiplier
  // partial-product feature without a kernel walk.
  const std::size_t pairs = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto act = gpupower::gpusim::mac_activity(
        static_cast<std::uint32_t>(traits::to_bits(a.span()[i])),
        static_cast<std::uint32_t>(traits::to_bits(b.span()[i])), kWidth);
    significand += act.pp;
  }

  const double denom = static_cast<double>(count);
  f.weight_fraction = static_cast<double>(weight) / denom / kWidth;
  f.neighbor_toggles = toggle_pairs
                           ? static_cast<double>(toggles) /
                                 static_cast<double>(toggle_pairs) / kWidth
                           : 0.0;
  f.zero_fraction = static_cast<double>(zeros) / denom;
  f.exponent_weight = static_cast<double>(exponent) / denom / kWidth;
  f.significand_activity =
      pairs ? significand / static_cast<double>(pairs) /
                  (static_cast<double>(kWidth) * kWidth)
            : 0.0;

  const auto a_bits = gemm::raw_bits(a);
  const auto b_bits = gemm::raw_bits(b);
  f.alignment = gpupower::numeric::average_alignment(a_bits, b_bits, kWidth);
  return f;
}

template DataFeatures extract_features<float>(const gemm::Matrix<float>&,
                                              const gemm::Matrix<float>&);
template DataFeatures extract_features<gpupower::numeric::float16_t>(
    const gemm::Matrix<gpupower::numeric::float16_t>&,
    const gemm::Matrix<gpupower::numeric::float16_t>&);
template DataFeatures extract_features<gpupower::numeric::int8_value_t>(
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&);

InputDependentPowerModel InputDependentPowerModel::fit(
    std::span<const PowerSample> samples, double ridge) {
  InputDependentPowerModel model;
  std::array<std::array<double, kDim>, kDim> ata{};
  std::array<double, kDim> atb{};

  for (const PowerSample& s : samples) {
    std::array<double, kDim> row;
    row[0] = 1.0;
    const auto feats = s.features.vector();
    for (std::size_t i = 0; i < DataFeatures::kCount; ++i) row[i + 1] = feats[i];
    for (std::size_t i = 0; i < kDim; ++i) {
      for (std::size_t j = 0; j < kDim; ++j) ata[i][j] += row[i] * row[j];
      atb[i] += row[i] * s.power_w;
    }
  }
  for (std::size_t i = 1; i < kDim; ++i) ata[i][i] += ridge;

  std::array<double, kDim> x{};
  if (solve(ata, atb, x)) {
    model.intercept_ = x[0];
    for (std::size_t i = 0; i < DataFeatures::kCount; ++i) {
      model.weights_[i] = x[i + 1];
    }
  }
  return model;
}

double InputDependentPowerModel::predict(const DataFeatures& f) const noexcept {
  double p = intercept_;
  const auto feats = f.vector();
  for (std::size_t i = 0; i < DataFeatures::kCount; ++i) {
    p += weights_[i] * feats[i];
  }
  return p;
}

double InputDependentPowerModel::r2(std::span<const PowerSample> samples) const {
  if (samples.size() < 2) return 0.0;
  double mean = 0.0;
  for (const auto& s : samples) mean += s.power_w;
  mean /= static_cast<double>(samples.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (const auto& s : samples) {
    const double err = s.power_w - predict(s.features);
    ss_res += err * err;
    ss_tot += (s.power_w - mean) * (s.power_w - mean);
  }
  return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
}

}  // namespace gpupower::core
