#include "core/spec.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/config_builder.hpp"
#include "core/dag/dag.hpp"
#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/obs/obs.hpp"
#include "core/pattern_dsl.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dvfs/dsl_util.hpp"

namespace gpupower::core {
namespace {

using analysis::JsonValue;
using gpupower::gpusim::dvfs::detail::format_exact;
namespace dvfs = gpupower::gpusim::dvfs;
namespace fleet = gpupower::gpusim::fleet;

/// Campaign grids above this are almost certainly a typo'd axis, not a
/// plan (the engine would happily chew through them for hours).
constexpr std::size_t kMaxCampaignPoints = 4096;

struct Ctx {
  std::string error;

  bool fail(std::string_view path, std::string_view message) {
    if (error.empty()) {
      error = path.empty() ? std::string(message)
                           : std::string(path) + ": " + std::string(message);
    }
    return false;
  }
};

std::string join_path(std::string_view parent, std::string_view key) {
  if (parent.empty()) return std::string(key);
  return std::string(parent) + "." + std::string(key);
}

bool check_keys(const JsonValue& obj, std::string_view path,
                std::initializer_list<std::string_view> allowed, Ctx& ctx) {
  for (const std::string& key : obj.keys()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string expected;
      for (const std::string_view candidate : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += candidate;
      }
      return ctx.fail(path.empty() ? "spec" : path,
                      "unknown key '" + key + "' (expected one of: " +
                          expected + ")");
    }
  }
  return true;
}

bool read_string(const JsonValue& v, std::string_view path, Ctx& ctx,
                 std::string& out) {
  if (!v.is_string()) return ctx.fail(path, "expected a string");
  out = v.as_string();
  return true;
}

bool read_number(const JsonValue& v, std::string_view path, Ctx& ctx,
                 double& out) {
  if (!v.is_number()) return ctx.fail(path, "expected a number");
  out = v.as_number();
  return true;
}

bool read_int(const JsonValue& v, std::string_view path, Ctx& ctx,
              long long& out) {
  if (!v.is_number()) return ctx.fail(path, "expected an integer");
  const double value = v.as_number();
  // Range-check before the cast: float-to-integer conversion outside the
  // target range is undefined behaviour, so a spec saying 1e300 must be
  // rejected here, not by whatever the hardware happens to produce.
  constexpr double kMax = 9223372036854775808.0;  // 2^63
  if (!(value > -kMax && value < kMax)) {
    return ctx.fail(path, "expected an integer");
  }
  out = static_cast<long long>(value);
  if (static_cast<double>(out) != value) {
    return ctx.fail(path, "expected an integer");
  }
  return true;
}

bool read_bool(const JsonValue& v, std::string_view path, Ctx& ctx,
               bool& out) {
  const bool fallback_true = v.as_boolean(true);
  const bool fallback_false = v.as_boolean(false);
  if (fallback_true != fallback_false) {
    return ctx.fail(path, "expected true or false");
  }
  out = fallback_true;
  return true;
}

// --- gpu / dtype spellings --------------------------------------------------

struct GpuSpelling {
  std::string_view key;
  gpupower::gpusim::GpuModel model;
};

constexpr GpuSpelling kGpuSpellings[] = {
    {"a100", gpupower::gpusim::GpuModel::kA100PCIe},
    {"h100", gpupower::gpusim::GpuModel::kH100SXM},
    {"v100", gpupower::gpusim::GpuModel::kV100SXM2},
    {"rtx6000", gpupower::gpusim::GpuModel::kRTX6000},
};

bool parse_gpu(std::string_view text, gpupower::gpusim::GpuModel& out) {
  std::string lowered(text);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const GpuSpelling& spelling : kGpuSpellings) {
    if (lowered == spelling.key) {
      out = spelling.model;
      return true;
    }
  }
  // Also accept the full descriptor names ("NVIDIA A100 PCIe 40GB").
  for (const auto model : gpupower::gpusim::kAllGpuModels) {
    if (text == gpupower::gpusim::name(model)) {
      out = model;
      return true;
    }
  }
  return false;
}

std::string_view gpu_key(gpupower::gpusim::GpuModel model) {
  for (const GpuSpelling& spelling : kGpuSpellings) {
    if (spelling.model == model) return spelling.key;
  }
  return "a100";
}

std::string_view dtype_key(gpupower::numeric::DType dtype) {
  using gpupower::numeric::DType;
  switch (dtype) {
    case DType::kFP32:
      return "fp32";
    case DType::kFP16:
      return "fp16";
    case DType::kFP16T:
      return "fp16t";
    case DType::kINT8:
      return "int8";
  }
  return "fp32";
}

// --- exact pattern serialisation --------------------------------------------

/// to_dsl mirrors the pattern structure but prints at ostream (~6 digit)
/// precision — fine for display, lossy for round-trips.  Spec documents
/// need parse(dump(config)) to reproduce the exact canonical key, so this
/// serialiser emits every scalar at full %.17g precision (the DSL parser
/// reads doubles with from_chars, so exponent forms parse fine).
std::string exact_pattern_dsl(const PatternSpec& spec) {
  std::string out;
  switch (spec.value) {
    case PatternSpec::Value::kGaussian:
      out = "gaussian(mean=" + format_exact(spec.mean);
      break;
    case PatternSpec::Value::kValueSet:
      out = "set(size=" + std::to_string(spec.set_size) +
            ", mean=" + format_exact(spec.mean);
      break;
    case PatternSpec::Value::kConstant:
      out = "constant(mean=" + format_exact(spec.mean);
      break;
  }
  if (spec.sigma >= 0.0) out += ", sigma=" + format_exact(spec.sigma);
  out += ")";
  switch (spec.place) {
    case PatternSpec::Place::kNone:
      break;
    case PatternSpec::Place::kSortRows:
      out += " | sort_rows(" + format_exact(spec.sort_percent) + "%)";
      break;
    case PatternSpec::Place::kSortColumns:
      out += " | sort_cols(" + format_exact(spec.sort_percent) + "%)";
      break;
    case PatternSpec::Place::kSortWithinRows:
      out += " | sort_within_rows(" + format_exact(spec.sort_percent) + "%)";
      break;
    case PatternSpec::Place::kFullSort:
      out += " | full_sort()";
      break;
  }
  if (spec.sparsity > 0.0) {
    out += " | sparsity(" + format_exact(spec.sparsity) + ")";
  }
  switch (spec.bitop) {
    case PatternSpec::BitOp::kNone:
      break;
    case PatternSpec::BitOp::kFlipRandom:
      out += " | flip_bits(" + format_exact(spec.bit_fraction) + ")";
      break;
    case PatternSpec::BitOp::kRandomizeLow:
      out += " | rand_lsb(" + format_exact(spec.bit_fraction) + ")";
      break;
    case PatternSpec::BitOp::kRandomizeHigh:
      out += " | rand_msb(" + format_exact(spec.bit_fraction) + ")";
      break;
    case PatternSpec::BitOp::kZeroLow:
      out += " | zero_lsb(" + format_exact(spec.bit_fraction) + ")";
      break;
    case PatternSpec::BitOp::kZeroHigh:
      out += " | zero_msb(" + format_exact(spec.bit_fraction) + ")";
      break;
  }
  if (!spec.transpose_b) out += " | no_transpose()";
  return out;
}

// --- experiment block -------------------------------------------------------

bool parse_experiment(const JsonValue* obj, std::string_view path, Ctx& ctx,
                      ExperimentConfig& out) {
  ExperimentConfigBuilder builder;
  if (obj != nullptr) {
    if (!obj->is_object()) return ctx.fail(path, "expected an object");
    if (!check_keys(*obj, path,
                    {"gpu", "dtype", "n", "seeds", "iterations", "base_seed",
                     "pattern", "sampling", "sampler", "variation"},
                    ctx)) {
      return false;
    }
    if (const JsonValue* v = obj->find("gpu")) {
      std::string text;
      if (!read_string(*v, join_path(path, "gpu"), ctx, text)) return false;
      gpupower::gpusim::GpuModel model;
      if (!parse_gpu(text, model)) {
        return ctx.fail(join_path(path, "gpu"),
                        "unknown gpu '" + text +
                            "' (expected a100 | h100 | v100 | rtx6000)");
      }
      builder.gpu(model);
    }
    if (const JsonValue* v = obj->find("dtype")) {
      std::string text;
      if (!read_string(*v, join_path(path, "dtype"), ctx, text)) return false;
      builder.dtype(text);
    }
    if (const JsonValue* v = obj->find("n")) {
      long long n = 0;
      if (!read_int(*v, join_path(path, "n"), ctx, n)) return false;
      builder.n(static_cast<std::size_t>(n));
    }
    if (const JsonValue* v = obj->find("seeds")) {
      long long seeds = 0;
      if (!read_int(*v, join_path(path, "seeds"), ctx, seeds)) return false;
      builder.seeds(static_cast<int>(seeds));
    }
    if (const JsonValue* v = obj->find("iterations")) {
      long long iterations = 0;
      if (!read_int(*v, join_path(path, "iterations"), ctx, iterations)) {
        return false;
      }
      builder.iterations(static_cast<std::size_t>(iterations));
    }
    if (const JsonValue* v = obj->find("base_seed")) {
      long long seed = 0;
      if (!read_int(*v, join_path(path, "base_seed"), ctx, seed)) return false;
      builder.base_seed(static_cast<std::uint64_t>(seed));
    }
    if (const JsonValue* v = obj->find("pattern")) {
      std::string dsl;
      if (!read_string(*v, join_path(path, "pattern"), ctx, dsl)) return false;
      builder.pattern(dsl);
    }
    if (const JsonValue* v = obj->find("sampling")) {
      const std::string sampling_path = join_path(path, "sampling");
      if (!v->is_object()) return ctx.fail(sampling_path, "expected an object");
      if (!check_keys(*v, sampling_path, {"tiles", "k_fraction", "seed"},
                      ctx)) {
        return false;
      }
      gpupower::gpusim::SamplingPlan plan;
      if (const JsonValue* f = v->find("tiles")) {
        long long tiles = 0;
        if (!read_int(*f, join_path(sampling_path, "tiles"), ctx, tiles)) {
          return false;
        }
        plan.max_tiles = static_cast<std::size_t>(tiles);
      }
      if (const JsonValue* f = v->find("k_fraction")) {
        if (!read_number(*f, join_path(sampling_path, "k_fraction"), ctx,
                         plan.k_fraction)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("seed")) {
        long long seed = 0;
        if (!read_int(*f, join_path(sampling_path, "seed"), ctx, seed)) {
          return false;
        }
        plan.seed = static_cast<std::uint64_t>(seed);
      }
      builder.sampling(plan);
    }
    if (const JsonValue* v = obj->find("sampler")) {
      const std::string sampler_path = join_path(path, "sampler");
      if (!v->is_object()) return ctx.fail(sampler_path, "expected an object");
      if (!check_keys(*v, sampler_path,
                      {"period_s", "warmup_trim_s", "ramp_tau_s",
                       "noise_sigma_w", "seed"},
                      ctx)) {
        return false;
      }
      telemetry::SamplerConfig sampler;
      if (const JsonValue* f = v->find("period_s")) {
        if (!read_number(*f, join_path(sampler_path, "period_s"), ctx,
                         sampler.period_s)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("warmup_trim_s")) {
        if (!read_number(*f, join_path(sampler_path, "warmup_trim_s"), ctx,
                         sampler.warmup_trim_s)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("ramp_tau_s")) {
        if (!read_number(*f, join_path(sampler_path, "ramp_tau_s"), ctx,
                         sampler.ramp_tau_s)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("noise_sigma_w")) {
        if (!read_number(*f, join_path(sampler_path, "noise_sigma_w"), ctx,
                         sampler.noise_sigma_w)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("seed")) {
        long long seed = 0;
        if (!read_int(*f, join_path(sampler_path, "seed"), ctx, seed)) {
          return false;
        }
        sampler.seed = static_cast<std::uint64_t>(seed);
      }
      builder.sampler(sampler);
    }
    if (const JsonValue* v = obj->find("variation")) {
      const std::string variation_path = join_path(path, "variation");
      if (!v->is_object()) {
        return ctx.fail(variation_path, "expected an object");
      }
      if (!check_keys(*v, variation_path,
                      {"sigma_fraction", "instance", "per_seed"}, ctx)) {
        return false;
      }
      gpupower::gpusim::ProcessVariation variation;
      if (const JsonValue* f = v->find("sigma_fraction")) {
        if (!read_number(*f, join_path(variation_path, "sigma_fraction"), ctx,
                         variation.sigma_fraction)) {
          return false;
        }
      }
      if (const JsonValue* f = v->find("instance")) {
        long long instance = 0;
        if (!read_int(*f, join_path(variation_path, "instance"), ctx,
                      instance)) {
          return false;
        }
        variation.instance = static_cast<std::uint64_t>(instance);
      }
      if (const JsonValue* f = v->find("per_seed")) {
        if (!read_bool(*f, join_path(variation_path, "per_seed"), ctx,
                       variation.per_seed)) {
          return false;
        }
      }
      builder.variation(variation);
    }
  }
  if (!builder.valid()) {
    return ctx.fail(path.empty() ? "experiment" : path, builder.error());
  }
  out = builder.build();
  return true;
}

// --- governor / thermal blocks ----------------------------------------------

bool parse_governor_field(const JsonValue& v, std::string_view path, Ctx& ctx,
                          dvfs::GovernorConfig& out) {
  if (v.is_string()) {
    const auto parsed = dvfs::parse_governor(v.as_string());
    if (!parsed.ok) {
      return ctx.fail(path, "governor DSL error at offset " +
                                std::to_string(parsed.error_pos) + ": " +
                                parsed.error);
    }
    out = parsed.config;
    return true;
  }
  if (!v.is_object()) {
    return ctx.fail(path, "expected a governor DSL string or object");
  }
  if (!check_keys(v, path,
                  {"policy", "fixed_pstate", "boost_util", "boost_hold_s",
                   "low_util", "low_hold_s"},
                  ctx)) {
    return false;
  }
  dvfs::GovernorConfig config;
  if (const JsonValue* f = v.find("policy")) {
    std::string policy;
    if (!read_string(*f, join_path(path, "policy"), ctx, policy)) return false;
    if (policy == "fixed") {
      config.policy = dvfs::GovernorConfig::Policy::kFixed;
    } else if (policy == "utilization") {
      config.policy = dvfs::GovernorConfig::Policy::kUtilization;
    } else if (policy == "oracle") {
      config.policy = dvfs::GovernorConfig::Policy::kOracle;
    } else {
      return ctx.fail(join_path(path, "policy"),
                      "unknown policy '" + policy +
                          "' (expected fixed | utilization | oracle)");
    }
  }
  if (const JsonValue* f = v.find("fixed_pstate")) {
    long long pstate = 0;
    if (!read_int(*f, join_path(path, "fixed_pstate"), ctx, pstate)) {
      return false;
    }
    config.fixed_pstate = static_cast<int>(pstate);
  }
  if (const JsonValue* f = v.find("boost_util")) {
    if (!read_number(*f, join_path(path, "boost_util"), ctx,
                     config.boost_util)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("boost_hold_s")) {
    if (!read_number(*f, join_path(path, "boost_hold_s"), ctx,
                     config.boost_hold_s)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("low_util")) {
    if (!read_number(*f, join_path(path, "low_util"), ctx, config.low_util)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("low_hold_s")) {
    if (!read_number(*f, join_path(path, "low_hold_s"), ctx,
                     config.low_hold_s)) {
      return false;
    }
  }
  out = config;
  return true;
}

bool parse_thermal(const JsonValue& v, std::string_view path, Ctx& ctx,
                   fleet::ThermalConfig& out) {
  if (!v.is_object()) return ctx.fail(path, "expected an object");
  if (!check_keys(v, path,
                  {"enabled", "ambient_c", "tau_s", "trip_c", "release_c",
                   "throttle_pstate", "initial_c"},
                  ctx)) {
    return false;
  }
  fleet::ThermalConfig config;
  if (const JsonValue* f = v.find("enabled")) {
    if (!read_bool(*f, join_path(path, "enabled"), ctx, config.enabled)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("ambient_c")) {
    if (!read_number(*f, join_path(path, "ambient_c"), ctx,
                     config.ambient_c)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("tau_s")) {
    if (!read_number(*f, join_path(path, "tau_s"), ctx, config.tau_s)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("trip_c")) {
    if (!read_number(*f, join_path(path, "trip_c"), ctx, config.trip_c)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("release_c")) {
    if (!read_number(*f, join_path(path, "release_c"), ctx,
                     config.release_c)) {
      return false;
    }
  }
  if (const JsonValue* f = v.find("throttle_pstate")) {
    long long pstate = 0;
    if (!read_int(*f, join_path(path, "throttle_pstate"), ctx, pstate)) {
      return false;
    }
    config.throttle_pstate = static_cast<int>(pstate);
  }
  if (const JsonValue* f = v.find("initial_c")) {
    if (!read_number(*f, join_path(path, "initial_c"), ctx,
                     config.initial_c)) {
      return false;
    }
  }
  out = config;
  return true;
}

bool parse_phase_patterns(const JsonValue* v, std::string_view path, Ctx& ctx,
                          std::vector<std::string>& out) {
  if (v == nullptr) return true;
  if (!v->is_array()) {
    return ctx.fail(path, "expected an array of pattern DSL strings");
  }
  for (std::size_t i = 0; i < v->size(); ++i) {
    std::string dsl;
    std::string index = "[";
    index += std::to_string(i);
    index += ']';
    if (!read_string(v->at(i), join_path(path, index), ctx, dsl)) {
      return false;
    }
    out.push_back(std::move(dsl));
  }
  return true;
}

// --- per-kind scenario parsing ----------------------------------------------

bool parse_static(const JsonValue& doc, Ctx& ctx, ScenarioConfig& out) {
  if (!check_keys(doc, "", {"scenario", "experiment"}, ctx)) return false;
  ExperimentConfig experiment;
  if (!parse_experiment(doc.find("experiment"), "experiment", ctx,
                        experiment)) {
    return false;
  }
  out = ScenarioConfig(std::move(experiment));
  return true;
}

bool parse_dvfs(const JsonValue& doc, Ctx& ctx, ScenarioConfig& out) {
  if (!check_keys(doc, "",
                  {"scenario", "experiment", "governor", "timeline",
                   "phase_patterns", "slice_s", "pstates"},
                  ctx)) {
    return false;
  }
  ExperimentConfig experiment;
  if (!parse_experiment(doc.find("experiment"), "experiment", ctx,
                        experiment)) {
    return false;
  }
  DvfsConfigBuilder builder;
  builder.experiment(experiment);
  if (const JsonValue* v = doc.find("governor")) {
    dvfs::GovernorConfig governor;
    if (!parse_governor_field(*v, "governor", ctx, governor)) return false;
    builder.governor(governor);
  }
  const JsonValue* timeline = doc.find("timeline");
  if (timeline == nullptr) {
    return ctx.fail("timeline",
                    "required for a dvfs scenario (a workload to replay)");
  }
  {
    std::string dsl;
    if (!read_string(*timeline, "timeline", ctx, dsl)) return false;
    builder.timeline(dsl);
  }
  {
    std::vector<std::string> patterns;
    if (!parse_phase_patterns(doc.find("phase_patterns"), "phase_patterns",
                              ctx, patterns)) {
      return false;
    }
    for (const std::string& dsl : patterns) builder.add_phase_pattern(dsl);
  }
  if (const JsonValue* v = doc.find("slice_s")) {
    double slice = 0.0;
    if (!read_number(*v, "slice_s", ctx, slice)) return false;
    builder.slice(slice);
  }
  if (const JsonValue* v = doc.find("pstates")) {
    long long pstates = 0;
    if (!read_int(*v, "pstates", ctx, pstates)) return false;
    builder.pstates(static_cast<int>(pstates));
  }
  if (!builder.valid()) return ctx.fail("", builder.error());
  out = ScenarioConfig(builder.build());
  return true;
}

bool parse_fleet(const JsonValue& doc, Ctx& ctx, ScenarioConfig& out) {
  if (!check_keys(doc, "",
                  {"scenario", "experiment", "timelines", "devices",
                   "staggered", "allocator", "cap_w", "thermal",
                   "phase_patterns", "slice_s", "pstates"},
                  ctx)) {
    return false;
  }
  ExperimentConfig experiment;
  if (!parse_experiment(doc.find("experiment"), "experiment", ctx,
                        experiment)) {
    return false;
  }
  FleetConfigBuilder builder;
  builder.experiment(experiment);
  if (const JsonValue* v = doc.find("timelines")) {
    if (!v->is_array()) {
      return ctx.fail("timelines", "expected an array of timeline DSL strings");
    }
    for (std::size_t i = 0; i < v->size(); ++i) {
      std::string dsl;
      if (!read_string(v->at(i), "timelines[" + std::to_string(i) + "]", ctx,
                       dsl)) {
        return false;
      }
      builder.add_timeline(dsl);
    }
  }
  if (const JsonValue* v = doc.find("devices")) {
    if (!v->is_array()) {
      return ctx.fail("devices", "expected an array of device objects");
    }
    for (std::size_t i = 0; i < v->size(); ++i) {
      const std::string device_path = "devices[" + std::to_string(i) + "]";
      const JsonValue& entry = v->at(i);
      if (!entry.is_object()) {
        return ctx.fail(device_path, "expected an object");
      }
      if (!check_keys(entry, device_path,
                      {"gpu", "governor", "timeline", "priority"}, ctx)) {
        return false;
      }
      FleetDeviceConfig device;
      if (const JsonValue* f = entry.find("gpu")) {
        std::string text;
        if (!read_string(*f, join_path(device_path, "gpu"), ctx, text)) {
          return false;
        }
        if (!parse_gpu(text, device.gpu)) {
          return ctx.fail(join_path(device_path, "gpu"),
                          "unknown gpu '" + text +
                              "' (expected a100 | h100 | v100 | rtx6000)");
        }
      }
      if (const JsonValue* f = entry.find("governor")) {
        if (!parse_governor_field(*f, join_path(device_path, "governor"), ctx,
                                  device.governor)) {
          return false;
        }
      }
      if (const JsonValue* f = entry.find("timeline")) {
        long long timeline = 0;
        if (!read_int(*f, join_path(device_path, "timeline"), ctx, timeline)) {
          return false;
        }
        device.timeline = static_cast<int>(timeline);
      }
      if (const JsonValue* f = entry.find("priority")) {
        long long priority = 0;
        if (!read_int(*f, join_path(device_path, "priority"), ctx, priority)) {
          return false;
        }
        device.priority = static_cast<int>(priority);
      }
      builder.add_device(device);
    }
  }
  if (const JsonValue* v = doc.find("staggered")) {
    if (!v->is_object()) return ctx.fail("staggered", "expected an object");
    if (!check_keys(*v, "staggered",
                    {"timeline", "count", "stagger_s", "gpu", "governor"},
                    ctx)) {
      return false;
    }
    const JsonValue* timeline = v->find("timeline");
    if (timeline == nullptr) {
      return ctx.fail("staggered.timeline", "required (a timeline DSL string)");
    }
    std::string timeline_dsl;
    if (!read_string(*timeline, "staggered.timeline", ctx, timeline_dsl)) {
      return false;
    }
    const auto parsed_timeline = dvfs::parse_timeline(timeline_dsl);
    if (!parsed_timeline.ok) {
      return ctx.fail("staggered.timeline",
                      "timeline DSL error at offset " +
                          std::to_string(parsed_timeline.error_pos) + ": " +
                          parsed_timeline.error);
    }
    const JsonValue* count_value = v->find("count");
    if (count_value == nullptr) {
      return ctx.fail("staggered.count", "required (device count)");
    }
    long long count = 0;
    if (!read_int(*count_value, "staggered.count", ctx, count)) return false;
    double stagger_s = 0.0;
    if (const JsonValue* f = v->find("stagger_s")) {
      if (!read_number(*f, "staggered.stagger_s", ctx, stagger_s)) {
        return false;
      }
    }
    gpupower::gpusim::GpuModel gpu = gpupower::gpusim::GpuModel::kA100PCIe;
    if (const JsonValue* f = v->find("gpu")) {
      std::string text;
      if (!read_string(*f, "staggered.gpu", ctx, text)) return false;
      if (!parse_gpu(text, gpu)) {
        return ctx.fail("staggered.gpu",
                        "unknown gpu '" + text +
                            "' (expected a100 | h100 | v100 | rtx6000)");
      }
    }
    std::string governor_dsl = "utilization()";
    if (const JsonValue* f = v->find("governor")) {
      if (!read_string(*f, "staggered.governor", ctx, governor_dsl)) {
        return false;
      }
    }
    builder.add_staggered_devices(parsed_timeline.timeline,
                                  static_cast<int>(count), stagger_s, gpu,
                                  governor_dsl);
  }
  if (const JsonValue* v = doc.find("allocator")) {
    std::string policy;
    if (!read_string(*v, "allocator", ctx, policy)) return false;
    builder.allocator(policy);
  }
  if (const JsonValue* v = doc.find("cap_w")) {
    if (!v->is_null()) {  // null spells "uncapped" explicitly
      double cap = 0.0;
      if (!read_number(*v, "cap_w", ctx, cap)) return false;
      builder.cap(cap);
    }
  }
  if (const JsonValue* v = doc.find("thermal")) {
    fleet::ThermalConfig thermal;
    if (!parse_thermal(*v, "thermal", ctx, thermal)) return false;
    builder.thermal(thermal);
  }
  {
    std::vector<std::string> patterns;
    if (!parse_phase_patterns(doc.find("phase_patterns"), "phase_patterns",
                              ctx, patterns)) {
      return false;
    }
    for (const std::string& dsl : patterns) builder.add_phase_pattern(dsl);
  }
  if (const JsonValue* v = doc.find("slice_s")) {
    double slice = 0.0;
    if (!read_number(*v, "slice_s", ctx, slice)) return false;
    builder.slice(slice);
  }
  if (const JsonValue* v = doc.find("pstates")) {
    long long pstates = 0;
    if (!read_int(*v, "pstates", ctx, pstates)) return false;
    builder.pstates(static_cast<int>(pstates));
  }
  if (!builder.valid()) return ctx.fail("", builder.error());
  out = ScenarioConfig(builder.build());
  return true;
}

bool parse_single(const JsonValue& doc, Ctx& ctx, ScenarioConfig& out) {
  if (!doc.is_object()) return ctx.fail("", "spec must be a JSON object");
  const JsonValue* scenario = doc.find("scenario");
  if (scenario == nullptr) {
    return ctx.fail("scenario",
                    "required (static | dvfs | fleet | campaign | dag)");
  }
  std::string kind_name;
  if (!read_string(*scenario, "scenario", ctx, kind_name)) return false;
  if (kind_name == "campaign") {
    return ctx.fail("scenario",
                    "a campaign cannot nest inside another campaign's base");
  }
  if (kind_name == "dag") {
    return ctx.fail("scenario",
                    "a dag cannot nest inside another spec's base");
  }
  ScenarioKind kind;
  if (!parse_scenario_kind(kind_name, kind)) {
    return ctx.fail("scenario", "unknown scenario kind '" + kind_name +
                                    "' (expected static | dvfs | fleet | "
                                    "campaign | dag)");
  }
  switch (kind) {
    case ScenarioKind::kStatic:
      return parse_static(doc, ctx, out);
    case ScenarioKind::kDvfs:
      return parse_dvfs(doc, ctx, out);
    case ScenarioKind::kFleet:
      return parse_fleet(doc, ctx, out);
  }
  return ctx.fail("scenario", "unhandled scenario kind");
}

// --- campaign parsing -------------------------------------------------------

std::string value_label(const JsonValue& value) {
  if (value.is_string()) return value.as_string();
  return value.dump();
}

bool parse_axis(const JsonValue& entry, std::string_view path, Ctx& ctx,
                CampaignAxis& out) {
  if (!entry.is_object()) return ctx.fail(path, "expected an axis object");
  if (!check_keys(entry, path, {"field", "values", "figure"}, ctx)) {
    return false;
  }
  const JsonValue* field = entry.find("field");
  if (field == nullptr) {
    return ctx.fail(join_path(path, "field"),
                    "required (a dotted path into the base spec)");
  }
  if (!read_string(*field, join_path(path, "field"), ctx, out.field)) {
    return false;
  }
  if (out.field.empty()) {
    return ctx.fail(join_path(path, "field"), "must not be empty");
  }
  if (out.field == "scenario") {
    return ctx.fail(join_path(path, "field"),
                    "a campaign cannot sweep the scenario kind itself");
  }
  const JsonValue* values = entry.find("values");
  const JsonValue* figure = entry.find("figure");
  if ((values == nullptr) == (figure == nullptr)) {
    return ctx.fail(path, "needs exactly one of 'values' or 'figure'");
  }
  if (figure != nullptr) {
    std::string figure_name;
    if (!read_string(*figure, join_path(path, "figure"), ctx, figure_name)) {
      return false;
    }
    FigureId id;
    if (!parse_figure_id(figure_name, id)) {
      return ctx.fail(join_path(path, "figure"),
                      "unknown figure id '" + figure_name + "'");
    }
    for (const SweepPoint& point : figure_sweep(id)) {
      out.values.push_back(
          {JsonValue::string(to_dsl(point.spec)), point.label});
    }
    return true;
  }
  if (!values->is_array() || values->size() == 0) {
    return ctx.fail(join_path(path, "values"), "expected a non-empty array");
  }
  for (std::size_t i = 0; i < values->size(); ++i) {
    const JsonValue& value = values->at(i);
    const std::string value_path =
        join_path(path, "values[" + std::to_string(i) + "]");
    if (value.is_object()) {
      if (!check_keys(value, value_path, {"value", "label"}, ctx)) {
        return false;
      }
      const JsonValue* payload = value.find("value");
      if (payload == nullptr) {
        return ctx.fail(join_path(value_path, "value"), "required");
      }
      std::string label = value_label(*payload);
      if (const JsonValue* l = value.find("label")) {
        if (!read_string(*l, join_path(value_path, "label"), ctx, label)) {
          return false;
        }
      }
      out.values.push_back({*payload, std::move(label)});
    } else if (value.is_array()) {
      return ctx.fail(value_path,
                      "array axis values need the {\"value\": ..., "
                      "\"label\": ...} wrapper form");
    } else {
      out.values.push_back({value, value_label(value)});
    }
  }
  return true;
}

bool parse_campaign(const JsonValue& doc, Ctx& ctx, ScenarioSpec& out) {
  if (!check_keys(doc, "", {"scenario", "name", "protocol", "base", "axes"},
                  ctx)) {
    return false;
  }
  out.campaign = true;
  if (const JsonValue* v = doc.find("name")) {
    if (!read_string(*v, "name", ctx, out.name)) return false;
  }
  if (const JsonValue* v = doc.find("protocol")) {
    if (!read_string(*v, "protocol", ctx, out.protocol)) return false;
  }
  const JsonValue* base = doc.find("base");
  if (base == nullptr) {
    return ctx.fail("base", "required (the scenario spec the axes patch)");
  }
  {
    Ctx base_ctx;
    ScenarioConfig base_config;
    if (!parse_single(*base, base_ctx, base_config)) {
      return ctx.fail("base", base_ctx.error);
    }
    out.config = std::move(base_config);  // the grid's un-patched corner
  }
  out.base = *base;
  const JsonValue* axes = doc.find("axes");
  if (axes == nullptr || !axes->is_array() || axes->size() == 0) {
    return ctx.fail("axes", "required (a non-empty array of axis objects)");
  }
  std::size_t points = 1;
  for (std::size_t i = 0; i < axes->size(); ++i) {
    CampaignAxis axis;
    if (!parse_axis(axes->at(i), "axes[" + std::to_string(i) + "]", ctx,
                    axis)) {
      return false;
    }
    points *= axis.values.size();
    out.axes.push_back(std::move(axis));
  }
  if (points > kMaxCampaignPoints) {
    return ctx.fail("axes", "campaign grid has " + std::to_string(points) +
                                " points (max " +
                                std::to_string(kMaxCampaignPoints) + ")");
  }
  return true;
}

/// Rebuilds `in` with the dotted `path` set to `leaf` (missing intermediate
/// objects are created; an existing non-object on the path is an error).
bool set_path(const JsonValue& in, std::string_view path,
              const JsonValue& leaf, JsonValue& out, std::string& error) {
  const std::size_t dot = path.find('.');
  const std::string_view head =
      dot == std::string_view::npos ? path : path.substr(0, dot);
  if (head.empty()) {
    error = "empty path segment";
    return false;
  }
  if (!in.is_object()) {
    error = "'" + std::string(head) + "' would patch inside a non-object";
    return false;
  }
  JsonValue rebuilt = JsonValue::object();
  bool replaced = false;
  for (const std::string& key : in.keys()) {
    const JsonValue* member = in.find(key);
    if (key == head && !replaced) {
      replaced = true;
      if (dot == std::string_view::npos) {
        rebuilt.set(key, leaf);
      } else {
        JsonValue child;
        if (!set_path(*member, path.substr(dot + 1), leaf, child, error)) {
          return false;
        }
        rebuilt.set(key, std::move(child));
      }
    } else if (key != head) {
      rebuilt.set(key, *member);
    }
  }
  if (!replaced) {
    if (dot == std::string_view::npos) {
      rebuilt.set(head, leaf);
    } else {
      JsonValue child;
      if (!set_path(JsonValue::object(), path.substr(dot + 1), leaf, child,
                    error)) {
        return false;
      }
      rebuilt.set(head, std::move(child));
    }
  }
  out = std::move(rebuilt);
  return true;
}

// --- serialisation ----------------------------------------------------------

JsonValue experiment_to_json(const ExperimentConfig& config) {
  JsonValue sampling = JsonValue::object();
  sampling
      .set("tiles",
           JsonValue::integer(static_cast<long long>(config.sampling.max_tiles)))
      .set("k_fraction", JsonValue::number(config.sampling.k_fraction))
      .set("seed", JsonValue::integer(
                       static_cast<long long>(config.sampling.seed)));

  JsonValue sampler = JsonValue::object();
  sampler.set("period_s", JsonValue::number(config.sampler.period_s))
      .set("warmup_trim_s", JsonValue::number(config.sampler.warmup_trim_s))
      .set("ramp_tau_s", JsonValue::number(config.sampler.ramp_tau_s))
      .set("noise_sigma_w", JsonValue::number(config.sampler.noise_sigma_w))
      .set("seed",
           JsonValue::integer(static_cast<long long>(config.sampler.seed)));

  JsonValue e = JsonValue::object();
  e.set("gpu", JsonValue::string(gpu_key(config.gpu)))
      .set("dtype", JsonValue::string(dtype_key(config.dtype)))
      .set("n", JsonValue::integer(static_cast<long long>(config.n)))
      .set("seeds", JsonValue::integer(config.seeds))
      .set("iterations",
           JsonValue::integer(static_cast<long long>(config.iterations)))
      .set("base_seed",
           JsonValue::integer(static_cast<long long>(config.base_seed)))
      .set("pattern", JsonValue::string(exact_pattern_dsl(config.pattern)))
      .set("sampling", std::move(sampling))
      .set("sampler", std::move(sampler));
  if (config.variation) {
    JsonValue variation = JsonValue::object();
    variation
        .set("sigma_fraction",
             JsonValue::number(config.variation->sigma_fraction))
        .set("instance", JsonValue::integer(static_cast<long long>(
                             config.variation->instance)))
        .set("per_seed", JsonValue::boolean(config.variation->per_seed));
    e.set("variation", std::move(variation));
  }
  return e;
}

JsonValue governor_to_json(const dvfs::GovernorConfig& config) {
  const char* policy = "utilization";
  if (config.policy == dvfs::GovernorConfig::Policy::kFixed) policy = "fixed";
  if (config.policy == dvfs::GovernorConfig::Policy::kOracle) {
    policy = "oracle";
  }
  JsonValue g = JsonValue::object();
  g.set("policy", JsonValue::string(policy))
      .set("fixed_pstate", JsonValue::integer(config.fixed_pstate))
      .set("boost_util", JsonValue::number(config.boost_util))
      .set("boost_hold_s", JsonValue::number(config.boost_hold_s))
      .set("low_util", JsonValue::number(config.low_util))
      .set("low_hold_s", JsonValue::number(config.low_hold_s));
  return g;
}

JsonValue thermal_to_json(const fleet::ThermalConfig& config) {
  JsonValue t = JsonValue::object();
  t.set("enabled", JsonValue::boolean(config.enabled))
      .set("ambient_c", JsonValue::number(config.ambient_c))
      .set("tau_s", JsonValue::number(config.tau_s))
      .set("trip_c", JsonValue::number(config.trip_c))
      .set("release_c", JsonValue::number(config.release_c))
      .set("throttle_pstate", JsonValue::integer(config.throttle_pstate))
      .set("initial_c", JsonValue::number(config.initial_c));
  return t;
}

JsonValue phase_patterns_to_json(const std::vector<PatternSpec>& patterns) {
  JsonValue list = JsonValue::array();
  for (const PatternSpec& pattern : patterns) {
    list.push(JsonValue::string(exact_pattern_dsl(pattern)));
  }
  return list;
}

}  // namespace

SpecParseResult parse_scenario_spec(const JsonValue& doc) {
  SpecParseResult result;
  Ctx ctx;
  if (!doc.is_object()) {
    ctx.fail("", "spec must be a JSON object");
    result.error = ctx.error;
    return result;
  }
  const JsonValue* scenario = doc.find("scenario");
  std::string kind_name;
  if (scenario != nullptr && scenario->is_string()) {
    kind_name = scenario->as_string();
  }
  bool ok = false;
  if (kind_name == "campaign") {
    ok = parse_campaign(doc, ctx, result.spec);
  } else if (kind_name == "dag") {
    auto parsed = std::make_shared<dag::DagSpec>();
    std::string dag_error;
    ok = dag::parse_dag(doc, *parsed, dag_error);
    if (ok) {
      result.spec.name = parsed->name;
      result.spec.dag = std::move(parsed);
    } else {
      ctx.fail("", dag_error);
    }
  } else {
    ok = parse_single(doc, ctx, result.spec.config);
  }
  if (!ok) {
    result.error = ctx.error;
    return result;
  }
  result.ok = true;
  return result;
}

SpecParseResult parse_scenario_spec_text(std::string_view json_text) {
  const analysis::JsonParseResult parsed = analysis::json_parse(json_text);
  if (!parsed.ok) {
    SpecParseResult result;
    result.error = "JSON syntax error at byte " +
                   std::to_string(parsed.error_pos) + ": " + parsed.error;
    return result;
  }
  return parse_scenario_spec(parsed.value);
}

SpecParseResult load_scenario_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SpecParseResult result;
    result.error = "cannot read spec file '" + path + "'";
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario_spec_text(text.str());
}

analysis::JsonValue spec_to_json(const ScenarioConfig& config) {
  JsonValue doc = JsonValue::object();
  doc.set("scenario", JsonValue::string(name(config.kind())));
  switch (config.kind()) {
    case ScenarioKind::kStatic:
      doc.set("experiment", experiment_to_json(config.static_config()));
      break;
    case ScenarioKind::kDvfs: {
      const DvfsConfig& dvfs_config = config.dvfs();
      doc.set("experiment", experiment_to_json(dvfs_config.experiment))
          .set("governor", governor_to_json(dvfs_config.governor))
          .set("timeline", JsonValue::string(dvfs::to_dsl(dvfs_config.timeline)))
          .set("phase_patterns",
               phase_patterns_to_json(dvfs_config.phase_patterns))
          .set("slice_s", JsonValue::number(dvfs_config.slice_s))
          .set("pstates", JsonValue::integer(dvfs_config.pstates));
      break;
    }
    case ScenarioKind::kFleet: {
      const FleetConfig& fleet_config = config.fleet();
      JsonValue timelines = JsonValue::array();
      for (const dvfs::WorkloadTimeline& timeline : fleet_config.timelines) {
        timelines.push(JsonValue::string(dvfs::to_dsl(timeline)));
      }
      JsonValue devices = JsonValue::array();
      for (const FleetDeviceConfig& device : fleet_config.devices) {
        JsonValue entry = JsonValue::object();
        entry.set("gpu", JsonValue::string(gpu_key(device.gpu)))
            .set("governor", governor_to_json(device.governor))
            .set("timeline", JsonValue::integer(device.timeline))
            .set("priority", JsonValue::integer(device.priority));
        devices.push(std::move(entry));
      }
      doc.set("experiment", experiment_to_json(fleet_config.experiment))
          .set("timelines", std::move(timelines))
          .set("devices", std::move(devices))
          .set("allocator",
               JsonValue::string(fleet::name(fleet_config.allocator.policy)))
          .set("cap_w", fleet_config.allocator.capped()
                            ? JsonValue::number(fleet_config.allocator.cap_w)
                            : JsonValue::null())
          .set("thermal", thermal_to_json(fleet_config.thermal))
          .set("phase_patterns",
               phase_patterns_to_json(fleet_config.phase_patterns))
          .set("slice_s", JsonValue::number(fleet_config.slice_s))
          .set("pstates", JsonValue::integer(fleet_config.pstates));
      break;
    }
  }
  return doc;
}

bool expand_campaign(const ScenarioSpec& spec, std::vector<CampaignPoint>& out,
                     std::string& error) {
  obs::Span span("campaign.expand");
  out.clear();
  if (!spec.campaign) {
    error = "not a campaign spec";
    return false;
  }
  std::size_t total = 1;
  for (const CampaignAxis& axis : spec.axes) total *= axis.values.size();
  out.reserve(total);

  std::vector<std::size_t> index(spec.axes.size(), 0);
  for (std::size_t point = 0; point < total; ++point) {
    CampaignPoint entry;
    JsonValue doc = spec.base;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const CampaignAxis& axis = spec.axes[a];
      const CampaignAxisValue& value = axis.values[index[a]];
      JsonValue patched;
      std::string patch_error;
      if (!set_path(doc, axis.field, value.value, patched, patch_error)) {
        error = "axis '" + axis.field + "': " + patch_error;
        return false;
      }
      doc = std::move(patched);
      if (a != 0) entry.label += "@";
      entry.label += value.label;
      entry.coords.emplace_back(axis.field, value.label);
    }
    Ctx ctx;
    if (!parse_single(doc, ctx, entry.config)) {
      error = "campaign point '" + entry.label + "': " + ctx.error;
      return false;
    }
    out.push_back(std::move(entry));
    // Odometer: the last axis spins fastest (row-major grid order).
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++index[a] < spec.axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  if (obs::tracing_enabled()) {
    span.args(obs::SpanArgs()
                  .arg("campaign", obs::intern(spec.name))
                  .arg("points", static_cast<std::int64_t>(out.size())));
  }
  return true;
}

bool detail::set_spec_path(const analysis::JsonValue& in,
                           std::string_view path,
                           const analysis::JsonValue& leaf,
                           analysis::JsonValue& out, std::string& error) {
  return set_path(in, path, leaf, out, error);
}

bool submit_campaign(ExperimentEngine& engine, const ScenarioSpec& spec,
                     CampaignRun& out, std::string& error) {
  if (!expand_campaign(spec, out.points, error)) return false;
  out.handles.clear();
  out.handles.reserve(out.points.size());
  out.outcomes.clear();
  out.outcomes.reserve(out.points.size());
  for (const CampaignPoint& point : out.points) {
    // The point label rides on a wrapper span (the submit span inside
    // carries the canonical key), tying grid coordinates to scenario
    // identity in one trace query.
    obs::Span span("campaign.point");
    if (obs::tracing_enabled()) {
      span.args(obs::SpanArgs().arg("point", obs::intern(point.label)));
    }
    ExperimentEngine::SubmitOutcome outcome;
    out.handles.push_back(engine.submit(point.config, &outcome));
    out.outcomes.push_back(outcome);
  }
  return true;
}

}  // namespace gpupower::core
