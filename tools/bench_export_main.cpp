// bench_export — trajectory file utility for the committed BENCH_*.json
// documents.  The one mode that matters for CI is the perf gate:
//
//   bench_export --compare <fresh.json> <baseline.json> [--tolerance F]
//
// diffs a freshly measured bench document against the committed baseline
// and exits non-zero on regression beyond the tolerance (default 25%,
// generous for shared-runner timer noise).  Gating needs matching protocol
// strings (speedups at different shapes are different quantities); then
// "speedup" gates (machine-relative; lower is worse) and, with
// --gate-walltime, the "*_ms" wall times too (same-machine comparisons
// only — a CI runner and the committed trajectory are different hosts).
// Exit codes: 0 pass, 1 regression, 2 usage or unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/bench_export.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --compare <fresh.json> <baseline.json> "
               "[--tolerance F] [--gate-walltime] [--no-gate-energy] "
               "[--require-protocol]\n"
               "  exits 1 when, on a matching protocol, a speedup in "
               "<fresh.json> is more than\n  F (default 0.25) below "
               "<baseline.json> — or, with --gate-walltime, a *_ms\n"
               "  metric is more than F slower.  *_j energies "
               "(deterministic model outputs,\n  e.g. the fleet-capping "
               "summary) gate symmetrically at F unless\n"
               "  --no-gate-energy.  --require-protocol makes "
               "a protocol mismatch\n  an error (exit 2) instead of "
               "downgrading the run to informational — use it\n  in CI so "
               "protocol drift cannot silently disable the gate\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpupower;

  std::string fresh_path;
  std::string baseline_path;
  tools::CompareOptions options;
  bool compare = false;
  bool require_protocol = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      if (i + 2 >= argc) return usage(argv[0]);
      fresh_path = argv[++i];
      baseline_path = argv[++i];
      compare = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const char* value = argv[++i];
      char* end = nullptr;
      options.tolerance = std::strtod(value, &end);
      // Trailing garbage ("25%", "O.25") must be a usage error, not a
      // silent zero-tolerance gate.
      if (end == value || *end != '\0' || !(options.tolerance >= 0.0)) {
        std::fprintf(stderr,
                     "bench_export: --tolerance needs a non-negative "
                     "number, got '%s'\n",
                     value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--gate-walltime") == 0) {
      options.gate_walltime = true;
    } else if (std::strcmp(argv[i], "--no-gate-energy") == 0) {
      options.gate_energy = false;
    } else if (std::strcmp(argv[i], "--require-protocol") == 0) {
      require_protocol = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!compare) return usage(argv[0]);

#ifdef GPUPOWER_SANITIZED
  // A sanitized binary is 2-20x slower and its timings are meaningless as
  // a perf gate; refusing loudly beats a CI matrix quietly gating noise.
  std::fprintf(stderr,
               "bench_export: --compare is disabled in sanitized builds "
               "(GPUPOWER_SANITIZE was set): sanitizer instrumentation "
               "distorts every timing this gate measures.  Run the perf "
               "gate from a release build.\n");
  return 2;
#endif

  analysis::JsonValue fresh;
  analysis::JsonValue baseline;
  std::string error;
  if (!tools::read_bench_json(fresh_path, fresh, error) ||
      !tools::read_bench_json(baseline_path, baseline, error)) {
    std::fprintf(stderr, "bench_export: %s\n", error.c_str());
    return 2;
  }

  const tools::CompareResult result =
      tools::compare_bench_documents(baseline, fresh, options);
  if (!result.ok) {
    std::fprintf(stderr, "bench_export: %s\n", result.error.c_str());
    return 2;
  }
  if (require_protocol && !result.protocols_match) {
    std::fprintf(stderr,
                 "bench_export: protocol mismatch — fresh run and baseline "
                 "measured different shapes/plans, nothing would gate; "
                 "regenerate the committed baseline or fix the fresh run's "
                 "knobs\n");
    return 2;
  }

  std::string gating;
  if (!result.protocols_match) {
    gating = "informational only: protocols differ";
  } else {
    gating = "gating speedup";
    if (options.gate_energy) gating += " + *_j energies";
    if (options.gate_walltime) gating += " + wall times";
  }
  std::printf("perf gate: %s vs %s (tolerance %.0f%%, %s)\n",
              fresh_path.c_str(), baseline_path.c_str(),
              options.tolerance * 100.0, gating.c_str());
  std::printf("%-10s %-14s %12s %12s %8s\n", "case", "metric", "baseline",
              "fresh", "ratio");
  for (const tools::MetricDelta& delta : result.deltas) {
    std::printf("%-10s %-14s %12.3f %12.3f %7.2fx%s\n",
                delta.case_name.c_str(), delta.metric.c_str(), delta.baseline,
                delta.fresh, delta.ratio,
                delta.regressed ? "  REGRESSED" : "");
  }
  if (result.regressed) {
    std::fprintf(stderr,
                 "bench_export: REGRESSION — a gated metric moved beyond "
                 "the committed trajectory by more than %.0f%%\n",
                 options.tolerance * 100.0);
    return 1;
  }
  std::printf("perf gate: PASS\n");
  return 0;
}
