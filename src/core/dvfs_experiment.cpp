#include "core/dvfs_experiment.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/config_builder.hpp"
#include "core/pattern_spec.hpp"
#include "gpusim/dvfs/dsl_util.hpp"
#include "patterns/rng.hpp"

namespace gpupower::core {
namespace {

namespace dvfs = gpupower::gpusim::dvfs;

template <typename T>
gpupower::gpusim::ActivityEstimate typed_activity(
    const gpupower::gpusim::GpuSimulator& sim, const DvfsConfig& config,
    const gemm::GemmProblem& problem, std::uint64_t replica_seed) {
  const ExperimentInputs<T> inputs =
      build_inputs<T>(config.experiment.pattern, config.experiment.dtype,
                      config.experiment.n, replica_seed);
  return sim.activity(problem, config.experiment.dtype, inputs.a, inputs.b);
}

gpupower::gpusim::ActivityEstimate replica_activity(
    const gpupower::gpusim::GpuSimulator& sim, const DvfsConfig& config,
    const gemm::GemmProblem& problem, std::uint64_t replica_seed) {
  return with_storage_type(config.experiment.dtype, [&](auto tag) {
    return typed_activity<typename decltype(tag)::type>(sim, config, problem,
                                                        replica_seed);
  });
}

using dvfs::detail::format_exact;

}  // namespace

dvfs::ReplayResult run_dvfs_seed_replica(const DvfsConfig& config,
                                         int seed_index) {
  if (config.slice_s <= 0.0) {
    throw std::invalid_argument("run_dvfs_seed_replica: slice_s must be > 0");
  }
  if (config.timeline.empty()) {
    throw std::invalid_argument(
        "run_dvfs_seed_replica: timeline has no phases");
  }
  if (config.pstates < 1 || config.pstates > 16) {
    throw std::invalid_argument(
        "run_dvfs_seed_replica: pstates must be in [1, 16], got " +
        std::to_string(config.pstates));
  }

  const gpupower::gpusim::GpuSimulator sim(
      config.experiment.gpu, replica_sim_options(config.experiment,
                                                 seed_index));
  const gemm::GemmProblem problem{config.experiment.n, config.experiment.n,
                                  config.experiment.n, 1.0f, 0.0f,
                                  config.experiment.pattern.transpose_b};
  const std::uint64_t replica_seed = patterns::derive_seed(
      config.experiment.base_seed, static_cast<std::uint64_t>(seed_index));
  const gpupower::gpusim::ActivityEstimate est =
      replica_activity(sim, config, problem, replica_seed);

  const dvfs::PStateTable table =
      config.pstates <= 1
          ? dvfs::PStateTable::boost_only(sim.descriptor())
          : dvfs::PStateTable::for_device(sim.descriptor(), config.pstates);
  const dvfs::TimelineReplayer replayer(sim.descriptor(), problem,
                                        config.experiment.dtype, est.totals,
                                        table);
  const auto governor = dvfs::make_governor(config.governor);
  return replayer.replay(config.timeline, *governor, config.slice_s);
}

DvfsResult reduce_dvfs_replicas(
    const DvfsConfig& config,
    std::span<const dvfs::ReplayResult> replicas) {
  analysis::RunningStats energy, avg_power, peak_power, completion, duration;
  analysis::RunningStats backlog_max, mean_backlog, transitions;
  DvfsResult result;

  for (const dvfs::ReplayResult& replica : replicas) {
    energy.add(replica.energy_j);
    avg_power.add(replica.avg_power_w);
    peak_power.add(replica.peak_power_w);
    completion.add(replica.completion_s);
    duration.add(replica.duration_s);
    backlog_max.add(replica.backlog_max_s);
    mean_backlog.add(replica.mean_backlog_s);
    transitions.add(static_cast<double>(replica.transitions));
    result.truncated = result.truncated || replica.truncated;
  }

  result.energy_j = energy.mean();
  result.energy_std_j = energy.stddev();
  result.avg_power_w = avg_power.mean();
  result.peak_power_w = peak_power.mean();
  result.completion_s = completion.mean();
  result.duration_s = duration.mean();
  result.backlog_max_s = backlog_max.mean();
  result.mean_backlog_s = mean_backlog.mean();
  result.transitions = transitions.mean();
  result.seeds = config.experiment.seeds;
  if (!replicas.empty()) result.trace = replicas.front();
  return result;
}

DvfsResult run_dvfs(const DvfsConfig& config) {
  if (config.experiment.seeds <= 0) {
    throw std::invalid_argument(
        "run_dvfs: experiment.seeds must be >= 1, got " +
        std::to_string(config.experiment.seeds));
  }
  std::vector<dvfs::ReplayResult> replicas;
  replicas.reserve(static_cast<std::size_t>(config.experiment.seeds));
  for (int s = 0; s < config.experiment.seeds; ++s) {
    replicas.push_back(run_dvfs_seed_replica(config, s));
  }
  return reduce_dvfs_replicas(config, replicas);
}

std::string canonical_dvfs_key(const DvfsConfig& config) {
  std::string key = canonical_config_key(config.experiment);
  // Raw governor fields at full precision — to_dsl is the %g display form
  // and would collide configs differing past 6 significant digits.
  key += "|gov=" +
         std::to_string(static_cast<int>(config.governor.policy)) + ":" +
         std::to_string(config.governor.fixed_pstate) + ":" +
         format_exact(config.governor.boost_util) + ":" +
         format_exact(config.governor.boost_hold_s) + ":" +
         format_exact(config.governor.low_util) + ":" +
         format_exact(config.governor.low_hold_s);
  key += "|slice=" + format_exact(config.slice_s);
  key += "|pstates=" + std::to_string(config.pstates);
  // Short timelines keep the readable phase list; long ones (a burst DSL
  // can legally realise ~2M phases) collapse to phase count + an FNV-1a
  // hash over the raw phase doubles — no multi-megabyte serialisation is
  // ever materialised.
  if (config.timeline.phases().size() <= 64) {
    key += "|tl=" + dvfs::to_dsl(config.timeline);
  } else {
    std::uint64_t hash = 1469598103934665603ull;
    const auto mix = [&hash](double v) {
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      for (int b = 0; b < 64; b += 8) {
        hash ^= (bits >> b) & 0xFFu;
        hash *= 1099511628211ull;
      }
    };
    for (const auto& phase : config.timeline.phases()) {
      mix(phase.duration_s);
      mix(phase.utilization);
    }
    key += "|tl#" + std::to_string(config.timeline.phases().size()) + ":" +
           std::to_string(hash);
  }
  return key;
}

}  // namespace gpupower::core
