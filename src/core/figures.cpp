#include "core/figures.hpp"

#include <cmath>
#include <sstream>

namespace gpupower::core {
namespace {

std::string number_label(double v) {
  std::ostringstream ss;
  if (v == std::floor(v) && std::fabs(v) < 1e9) {
    ss << static_cast<long long>(v);
  } else {
    ss << v;
  }
  return ss.str();
}

std::vector<SweepPoint> percent_sweep(PatternSpec base,
                                      PatternSpec::Place place) {
  std::vector<SweepPoint> points;
  for (const double pct : {0.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    PatternSpec spec = base;
    spec.place = place;
    spec.sort_percent = pct;
    points.push_back({number_label(pct) + "%", pct, spec});
  }
  return points;
}

std::vector<SweepPoint> bit_fraction_sweep(PatternSpec::BitOp op,
                                           PatternSpec base) {
  std::vector<SweepPoint> points;
  for (const double frac : {0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875,
                            1.0}) {
    PatternSpec spec = base;
    spec.bitop = op;
    spec.bit_fraction = frac;
    points.push_back({number_label(frac * 100.0) + "%", frac, spec});
  }
  return points;
}

std::vector<SweepPoint> sparsity_sweep(PatternSpec base) {
  std::vector<SweepPoint> points;
  for (const double pct : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0,
                           80.0, 90.0, 100.0}) {
    PatternSpec spec = base;
    spec.sparsity = pct / 100.0;
    points.push_back({number_label(pct) + "%", pct, spec});
  }
  return points;
}

}  // namespace

std::string_view figure_name(FigureId id) noexcept {
  switch (id) {
    case FigureId::kFig3aDistributionStd:
      return "Fig. 3a: distribution standard deviation";
    case FigureId::kFig3bDistributionMean:
      return "Fig. 3b: distribution mean";
    case FigureId::kFig3cValueSet:
      return "Fig. 3c: inputs from a set";
    case FigureId::kFig4aRandomBitFlips:
      return "Fig. 4a: random bit flips";
    case FigureId::kFig4bLsbRandomized:
      return "Fig. 4b: least significant bits randomized";
    case FigureId::kFig4cMsbRandomized:
      return "Fig. 4c: most significant bits randomized";
    case FigureId::kFig5aSortedRows:
      return "Fig. 5a: sorted into rows";
    case FigureId::kFig5bSortedAligned:
      return "Fig. 5b: sorted and aligned";
    case FigureId::kFig5cSortedColumns:
      return "Fig. 5c: sorted into columns";
    case FigureId::kFig5dSortedWithinRows:
      return "Fig. 5d: sorted within rows";
    case FigureId::kFig6aSparsity:
      return "Fig. 6a: general sparsity";
    case FigureId::kFig6bSparsityAfterSort:
      return "Fig. 6b: sparsity after sorting";
    case FigureId::kFig6cLsbZeroed:
      return "Fig. 6c: sparsity in least significant bits";
    case FigureId::kFig6dMsbZeroed:
      return "Fig. 6d: sparsity in most significant bits";
  }
  return "?";
}

std::string_view figure_axis(FigureId id) noexcept {
  switch (id) {
    case FigureId::kFig3aDistributionStd:
      return "stddev (FP domain)";
    case FigureId::kFig3bDistributionMean:
      return "mean (FP domain)";
    case FigureId::kFig3cValueSet:
      return "unique values";
    case FigureId::kFig4aRandomBitFlips:
      return "bits flipped (% of width)";
    case FigureId::kFig4bLsbRandomized:
    case FigureId::kFig4cMsbRandomized:
      return "bits randomized (% of width)";
    case FigureId::kFig5aSortedRows:
    case FigureId::kFig5bSortedAligned:
    case FigureId::kFig5cSortedColumns:
    case FigureId::kFig5dSortedWithinRows:
      return "percent sorted";
    case FigureId::kFig6aSparsity:
    case FigureId::kFig6bSparsityAfterSort:
      return "sparsity";
    case FigureId::kFig6cLsbZeroed:
    case FigureId::kFig6dMsbZeroed:
      return "bits zeroed (% of width)";
  }
  return "x";
}

std::string_view figure_key(FigureId id) noexcept {
  switch (id) {
    case FigureId::kFig3aDistributionStd:
      return "fig3a";
    case FigureId::kFig3bDistributionMean:
      return "fig3b";
    case FigureId::kFig3cValueSet:
      return "fig3c";
    case FigureId::kFig4aRandomBitFlips:
      return "fig4a";
    case FigureId::kFig4bLsbRandomized:
      return "fig4b";
    case FigureId::kFig4cMsbRandomized:
      return "fig4c";
    case FigureId::kFig5aSortedRows:
      return "fig5a";
    case FigureId::kFig5bSortedAligned:
      return "fig5b";
    case FigureId::kFig5cSortedColumns:
      return "fig5c";
    case FigureId::kFig5dSortedWithinRows:
      return "fig5d";
    case FigureId::kFig6aSparsity:
      return "fig6a";
    case FigureId::kFig6bSparsityAfterSort:
      return "fig6b";
    case FigureId::kFig6cLsbZeroed:
      return "fig6c";
    case FigureId::kFig6dMsbZeroed:
      return "fig6d";
  }
  return "?";
}

bool parse_figure_id(std::string_view text, FigureId& out) {
  std::string canon;
  for (const char c : text) {
    if (c == '.' || c == '_' || c == '-' || c == ' ') continue;
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (canon.rfind("figure", 0) == 0) canon = "fig" + canon.substr(6);
  if (canon.rfind("fig", 0) != 0) canon = "fig" + canon;
  for (const FigureId id : kAllFigures) {
    if (canon == figure_key(id)) {
      out = id;
      return true;
    }
  }
  return false;
}

PatternSpec baseline_gaussian_spec() {
  PatternSpec spec;  // gaussian, mean 0, paper-default sigma, B transposed
  return spec;
}

std::vector<SweepPoint> figure_sweep(FigureId id) {
  std::vector<SweepPoint> points;
  switch (id) {
    case FigureId::kFig3aDistributionStd: {
      for (const double sigma : {1.0, 4.0, 16.0, 64.0, 210.0, 1024.0, 4096.0,
                                 16384.0}) {
        PatternSpec spec = baseline_gaussian_spec();
        spec.sigma = sigma;
        points.push_back({number_label(sigma), sigma, spec});
      }
      break;
    }
    case FigureId::kFig3bDistributionMean: {
      for (const double mean : {0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0,
                                4096.0, 16384.0}) {
        PatternSpec spec = baseline_gaussian_spec();
        spec.mean = mean;
        spec.sigma = 1.0;
        points.push_back({number_label(mean), mean, spec});
      }
      break;
    }
    case FigureId::kFig3cValueSet: {
      for (const std::size_t size : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{16},
                                     std::size_t{64}, std::size_t{256},
                                     std::size_t{1024}, std::size_t{4096}}) {
        PatternSpec spec = baseline_gaussian_spec();
        spec.value = PatternSpec::Value::kValueSet;
        spec.set_size = size;
        points.push_back(
            {number_label(static_cast<double>(size)),
             static_cast<double>(size), spec});
      }
      break;
    }
    case FigureId::kFig4aRandomBitFlips: {
      PatternSpec base = baseline_gaussian_spec();
      base.value = PatternSpec::Value::kConstant;
      points = bit_fraction_sweep(PatternSpec::BitOp::kFlipRandom, base);
      break;
    }
    case FigureId::kFig4bLsbRandomized: {
      PatternSpec base = baseline_gaussian_spec();
      base.value = PatternSpec::Value::kConstant;
      points = bit_fraction_sweep(PatternSpec::BitOp::kRandomizeLow, base);
      break;
    }
    case FigureId::kFig4cMsbRandomized: {
      PatternSpec base = baseline_gaussian_spec();
      base.value = PatternSpec::Value::kConstant;
      points = bit_fraction_sweep(PatternSpec::BitOp::kRandomizeHigh, base);
      break;
    }
    case FigureId::kFig5aSortedRows: {
      PatternSpec base = baseline_gaussian_spec();
      base.transpose_b = false;  // paper: "The B matrix is not transposed"
      points = percent_sweep(base, PatternSpec::Place::kSortRows);
      break;
    }
    case FigureId::kFig5bSortedAligned: {
      PatternSpec base = baseline_gaussian_spec();
      base.transpose_b = true;  // low values of A multiply low values of B
      points = percent_sweep(base, PatternSpec::Place::kSortRows);
      break;
    }
    case FigureId::kFig5cSortedColumns: {
      PatternSpec base = baseline_gaussian_spec();
      base.transpose_b = false;
      points = percent_sweep(base, PatternSpec::Place::kSortColumns);
      break;
    }
    case FigureId::kFig5dSortedWithinRows: {
      PatternSpec base = baseline_gaussian_spec();
      base.transpose_b = true;  // intra-row sorted and aligned across matrices
      points = percent_sweep(base, PatternSpec::Place::kSortWithinRows);
      break;
    }
    case FigureId::kFig6aSparsity:
      points = sparsity_sweep(baseline_gaussian_spec());
      break;
    case FigureId::kFig6bSparsityAfterSort: {
      PatternSpec base = baseline_gaussian_spec();
      base.place = PatternSpec::Place::kFullSort;
      points = sparsity_sweep(base);
      break;
    }
    case FigureId::kFig6cLsbZeroed:
      points = bit_fraction_sweep(PatternSpec::BitOp::kZeroLow,
                                  baseline_gaussian_spec());
      break;
    case FigureId::kFig6dMsbZeroed:
      points = bit_fraction_sweep(PatternSpec::BitOp::kZeroHigh,
                                  baseline_gaussian_spec());
      break;
  }
  return points;
}

}  // namespace gpupower::core
