// DVFS governor sweep (new-scenario figure): replays a bursty GEMM timeline
// through the P-state machine under a grid of PowerMizer-style utilization
// thresholds, against three references — fixed max clock (energy baseline),
// the deepest fixed P-state (latency worst case), and the clairvoyant
// oracle (energy lower bound).  The figure the static paper model cannot
// produce: energy vs completion-time trade-offs of driver power management
// serving non-steady traffic.
//
// Every (governor x timeline) cell is one DVFS job on the ExperimentEngine:
// seed replicas fan out across the worker pool and duplicate configs (the
// shared baselines) are served from the engine cache.
//
// Environment knobs as every figure bench: GPUPOWER_N, GPUPOWER_SEEDS,
// GPUPOWER_TILES, GPUPOWER_KFRAC, GPUPOWER_WORKERS, GPUPOWER_CSV.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "fig_harness.hpp"

namespace {

using namespace gpupower;
namespace dvfs = gpusim::dvfs;

struct Cell {
  std::string label;
  core::DvfsHandle handle;
};

}  // namespace

int main() {
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env, "DVFS governor sweep — bursty GEMM timeline");

  // The workload: 5 Hz bursts at full offered load over a 20% background —
  // the shape that separates a good governor (races to boost in the burst,
  // parks partway down in the gaps without starving the background) from a
  // fixed clock.
  const char* kTimeline =
      "burst(period=0.2, duty=30%, high=100%, low=20%, dur=2)";

  const core::ExperimentConfig experiment =
      core::ExperimentConfigBuilder().dtype("fp16t").env(env).build();
  const auto base_builder = [&](std::string_view governor) {
    return core::DvfsConfigBuilder()
        .experiment(experiment)
        .timeline(kTimeline)
        .slice(0.01)
        .pstates(5)
        .governor(governor);
  };

  core::ExperimentEngine engine = bench::make_engine(env);
  std::vector<Cell> cells;
  const auto submit = [&](const std::string& label,
                          const std::string& governor) {
    const auto builder = base_builder(governor);
    if (!builder.valid()) {
      std::fprintf(stderr, "fig_dvfs_governor: %s\n",
                   builder.error().c_str());
      std::exit(2);
    }
    cells.push_back({label, engine.submit_dvfs(builder.build())});
  };

  submit("fixed max clock", "fixed(0)");
  submit("fixed deepest", "fixed(4)");
  for (const int up : {60, 90}) {
    for (const int down : {15, 30, 45, 60}) {
      char governor[96];
      std::snprintf(governor, sizeof governor,
                    "utilization(up=%d%%, down=%d%%, up_hold=0.01, "
                    "down_hold=0.02)",
                    up, down);
      char label[48];
      std::snprintf(label, sizeof label, "util up=%d%% down=%d%%", up, down);
      submit(label, governor);
    }
  }
  submit("oracle", "oracle()");
  engine.wait_all();

  const double fixed_energy = cells.front().handle.get().energy_j;
  const double fixed_completion = cells.front().handle.get().completion_s;

  analysis::Table table({"governor", "energy (J)", "vs fixed (%)",
                         "completion (s)", "stretch (ms)", "avg W",
                         "transitions"});
  for (const Cell& cell : cells) {
    const core::DvfsResult& r = cell.handle.get();
    table.add_row(cell.label,
                  {r.energy_j,
                   fixed_energy > 0.0
                       ? (r.energy_j / fixed_energy - 1.0) * 100.0
                       : 0.0,
                   r.completion_s, (r.completion_s - fixed_completion) * 1e3,
                   r.avg_power_w, r.transitions},
                  2);
  }
  table.print(std::cout);
  if (env.csv) {
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  }
  bench::print_engine_stats(engine);
  return 0;
}
