// Datacenter provisioning with input-dependent power models: power is
// provisioned per worst case (a DGX-H100 node reserves 10 kW for 8 GPUs),
// but the paper shows the *input data* moves per-GPU draw by tens of watts.
// This example runs the input-dependent power model across the four
// simulated GPUs and three workload input profiles — the whole grid
// expressed as one campaign spec (core/spec.hpp), exactly what a user
// would write into a JSON file for `gpowerctl run` — and reports how much
// provisioning headroom an input-aware scheduler could reclaim per GPU and
// per 1000-GPU cluster.
//
//   ./build/examples/datacenter_provisioning
//
// The same study is committed as a campaign-DAG spec at
// examples/specs/datacenter_provisioning_dag.json: a `calibrate` node
// (the a100/typical baseline, deduplicated with the grid through the
// canonical-key cache), the full gpu x profile `grid`, and a `regret`
// reduce node — `gpowerctl run` on that spec reproduces this driver's
// numbers bit-identically.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/figures.hpp"
#include "core/pattern_dsl.hpp"
#include "core/spec.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace gpupower;
  using analysis::JsonValue;

  const core::BenchEnv env = core::read_bench_env();
  std::printf(
      "Input-aware power provisioning (FP16-T GEMM, %zux%zu, %d seeds)\n\n",
      env.n, env.n, env.seeds);

  struct Profile {
    const char* name;
    core::PatternSpec spec;
  };
  std::vector<Profile> profiles;
  profiles.push_back({"adversarial (random bits)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.bitop = core::PatternSpec::BitOp::kRandomizeLow;
                        s.bit_fraction = 1.0;
                        return s;
                      }()});
  profiles.push_back({"typical (gaussian)", core::baseline_gaussian_spec()});
  profiles.push_back({"curated (sorted + 50% sparse)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.place = core::PatternSpec::Place::kSortRows;
                        s.sort_percent = 100.0;
                        s.sparsity = 0.5;
                        return s;
                      }()});

  struct Gpu {
    const char* key;
    gpusim::GpuModel model;
  };
  constexpr Gpu kGpus[] = {{"a100", gpusim::GpuModel::kA100PCIe},
                           {"h100", gpusim::GpuModel::kH100SXM},
                           {"v100", gpusim::GpuModel::kV100SXM2},
                           {"rtx6000", gpusim::GpuModel::kRTX6000}};

  // The whole (gpu x profile) grid as one campaign document.
  const core::ExperimentConfig base_config = core::ExperimentConfigBuilder()
                                                 .dtype(numeric::DType::kFP16T)
                                                 .env(env)
                                                 .build();
  JsonValue gpu_values = JsonValue::array();
  for (const Gpu& gpu : kGpus) gpu_values.push(JsonValue::string(gpu.key));
  JsonValue profile_values = JsonValue::array();
  for (const Profile& profile : profiles) {
    JsonValue entry = JsonValue::object();
    entry.set("value", JsonValue::string(core::to_dsl(profile.spec)))
        .set("label", JsonValue::string(profile.name));
    profile_values.push(std::move(entry));
  }
  JsonValue gpu_axis = JsonValue::object();
  gpu_axis.set("field", JsonValue::string("experiment.gpu"))
      .set("values", std::move(gpu_values));
  JsonValue profile_axis = JsonValue::object();
  profile_axis.set("field", JsonValue::string("experiment.pattern"))
      .set("values", std::move(profile_values));
  JsonValue axes = JsonValue::array();
  axes.push(std::move(gpu_axis));
  axes.push(std::move(profile_axis));
  JsonValue doc = JsonValue::object();
  doc.set("scenario", JsonValue::string("campaign"))
      .set("name", JsonValue::string("provisioning"))
      .set("base", core::spec_to_json(core::ScenarioConfig(base_config)))
      .set("axes", std::move(axes));

  const core::SpecParseResult spec = core::parse_scenario_spec(doc);
  if (!spec.ok) {
    std::fprintf(stderr, "datacenter_provisioning: %s\n", spec.error.c_str());
    return 2;
  }

  // All (gpu x profile) experiments in flight at once.
  core::EngineOptions engine_options;
  engine_options.workers = env.workers;
  core::ExperimentEngine engine(engine_options);
  core::CampaignRun run;
  std::string error;
  if (!core::submit_campaign(engine, spec.spec, run, error)) {
    std::fprintf(stderr, "datacenter_provisioning: %s\n", error.c_str());
    return 2;
  }
  auto& handles = run.handles;
  engine.wait_all();

  // Row-major grid: gpu axis first, so gpu g's profiles are the
  // consecutive block starting at g * profiles.size().
  for (std::size_t g = 0; g < std::size(kGpus); ++g) {
    const auto& dev = gpusim::device(kGpus[g].model);
    analysis::Table table({"input profile", "power (W)", "vs TDP"});
    double worst = 0.0;
    double best = 1e30;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const auto& result =
          handles[g * profiles.size() + p].get().static_result();
      worst = std::max(worst, result.power_w);
      best = std::min(best, result.power_w);
      table.add_row({profiles[p].name, analysis::fixed(result.power_w, 1),
                     analysis::fixed(100.0 * result.power_w / dev.tdp_w, 1) +
                         " %"});
    }
    std::printf("--- %s (TDP %.0f W) ---\n", std::string(dev.name).c_str(),
                dev.tdp_w);
    table.print(std::cout);
    std::printf(
        "input-dependent swing: %.1f W/GPU => %.1f kW reclaimable per 1000 "
        "GPUs\n\n",
        worst - best, (worst - best));
  }
  std::printf(
      "A scheduler that knows its tenants' input statistics can provision\n"
      "against profile-specific peaks instead of a single worst case.\n");
  return 0;
}
