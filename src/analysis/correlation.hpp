// Correlation measures for the Fig. 8 analysis: GPU power versus input bit
// alignment and Hamming weight across all experiment configurations.
#pragma once

#include <span>

namespace gpupower::analysis {

/// Pearson linear correlation coefficient; 0 on degenerate input.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks on ties).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Least-squares line y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

[[nodiscard]] LinearFit fit_line(std::span<const double> x,
                                 std::span<const double> y);

}  // namespace gpupower::analysis
