// gpowerctl — dcgmi/nvidia-smi-flavoured command-line front end for the
// simulator.  Lets a user poke the full stack without writing C++:
//
//   gpowerctl discovery
//       list the modelled GPUs (index, name, TDP, memory)
//   gpowerctl dmon --gpu 0 --dtype fp16t --pattern "gaussian(sigma=210)"
//       run one experiment and stream DCGM-style 100 ms power samples,
//       then print the trimmed-average summary
//   gpowerctl sweep --figure fig5b [--gpu 0] [--dtype fp16] [--csv]
//       regenerate one paper figure series
//   gpowerctl features --dtype fp16 --pattern "<dsl>"
//       print the input statistics the power model consumes
//   gpowerctl predict --dtype fp16 --pattern "<dsl>"
//       train the input-dependent power model on the figure sweeps and
//       predict the pattern's power without a kernel walk
//   gpowerctl dvfs --dtype fp16t --timeline "burst(period=0.2, duty=30%)"
//       [--governor "utilization(up=80%, down=30%)"]
//       replay a workload timeline through the P-state machine and print
//       the time-resolved power/clock trace plus the energy/latency summary
//       against the fixed-max-clock and oracle baselines
//   gpowerctl fleet --devices 4 --cap 900 --allocator proportional
//       [--thermal on]
//       fan the timeline across N simulated devices (phase-shifted per
//       device) under a shared power cap and print per-device and
//       fleet-aggregate energy/backlog/temperature, against the uncapped
//       fleet baseline
//   gpowerctl validate <spec.json>
//       parse a declarative scenario spec (core/spec.hpp) and report what
//       it would run — campaign grids are expanded and every point checked
//   gpowerctl run <spec.json> [--json] [--bench-out FILE]
//       execute a spec: one scenario, or a whole campaign grid fanned
//       through the engine as one deduplicated batch
//   gpowerctl serve [--socket PATH] [--full]
//       long-lived mode: read newline-delimited spec JSON from stdin (or
//       accept concurrent clients on a Unix socket) and stream one NDJSON
//       result line per scenario as it completes; all clients share one
//       engine and one result store, so identical submissions dedup
//   gpowerctl top --socket PATH | --metrics-file FILE
//       live operational view: poll a serve socket's stats events (or
//       re-read a --metrics-out / GPUPOWER_METRICS document) and render
//       engine throughput with per-poll deltas, replica-latency quantiles,
//       the per-kind breakdown, and the live per-session rows
//
// With GPUPOWER_STORE_DIR set, run/serve attach the persistent result
// store (core/store/): results survive the process and warm replays skip
// every replica computation (GPUPOWER_STORE=off disables it without
// unsetting the directory).
//
// The dvfs/fleet verbs are spec-building shims: the flags assemble a spec
// document (printable with --emit-spec for migration), which is parsed
// back and submitted through the same type-erased path `run` uses.
//
// Common options: --n SIZE, --seeds K, --tiles T, --kfrac F, --workers W
// (same meaning as the GPUPOWER_* environment knobs).  Sweeps and model
// training run batched on the ExperimentEngine: every point fans out across
// the worker pool and repeated configurations are served from the engine
// cache.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hpp"

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/dag/dag.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/obs/obs.hpp"
#include "core/pattern_dsl.hpp"
#include "core/power_model.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/spec.hpp"
#include "core/store/result_store.hpp"
#include "core/store/serve.hpp"
#include "telemetry/nvml.hpp"
#include "telemetry/sampler.hpp"
#include "tools/bench_export.hpp"

namespace {

using namespace gpupower;

struct Options {
  std::string command;
  unsigned gpu_index = 0;
  numeric::DType dtype = numeric::DType::kFP16;
  std::string pattern = "gaussian()";
  std::optional<core::FigureId> figure;
  core::BenchEnv env;
  bool csv = false;
  bool json = false;
  // dvfs command knobs
  std::string timeline = "burst(period=0.2, duty=30%, high=100%, low=5%, dur=2)";
  std::string governor = "utilization(up=80%, down=30%)";
  double slice_s = 0.01;
  int pstates = 5;
  // fleet command knobs
  int devices = 4;
  double cap_w = 0.0;  ///< 0 = uncapped
  std::string allocator = "proportional";
  bool thermal = false;
  // spec front end (run/validate, and the dvfs/fleet shims)
  std::string spec_path;  ///< positional <spec.json> of run/validate
  std::string bench_out;  ///< campaign bench-document output path
  bool emit_spec = false; ///< dvfs/fleet: print the spec document and exit
  bool expand = false;    ///< validate: print expanded points / node order
  // serve command knobs
  std::string socket_path;   ///< serve: Unix socket instead of stdin
  bool full_results = false; ///< serve: attach full result docs to events
  int stats_every = 0;       ///< serve: stats event every N results (0 = off)
  // top command knobs (--socket doubles as the poll target)
  std::string metrics_file;  ///< top: re-read a metrics JSON document
  int top_interval_ms = 1000;///< top: poll interval
  int top_count = 0;         ///< top: number of polls; 0 = until ctrl-c
  bool plain = false;        ///< top: no ANSI clear, append frames instead
  // observability (flags win over GPUPOWER_TRACE / GPUPOWER_METRICS)
  std::string trace_out;     ///< Chrome-trace JSON output path
  std::string metrics_out;   ///< metrics_json() output path (run commands)
};

constexpr gpusim::GpuModel kGpuByIndex[] = {
    gpusim::GpuModel::kA100PCIe, gpusim::GpuModel::kH100SXM,
    gpusim::GpuModel::kV100SXM2, gpusim::GpuModel::kRTX6000};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <discovery|dmon|sweep|features|predict|dvfs|fleet"
               "|run|validate|serve|top> [options]\n"
               "  run <spec.json>      execute a scenario / campaign / dag "
               "spec\n"
               "  validate <spec.json> parse + expand a spec without running\n"
               "                       (--expand prints campaign point labels "
               "and dag\n"
               "                       node order)\n"
               "  serve                long-lived mode: newline-delimited "
               "spec JSON on stdin,\n"
               "                       NDJSON result events streamed as "
               "scenarios complete\n"
               "  top                  live view of a running serve socket "
               "(--socket PATH)\n"
               "                       or a metrics document "
               "(--metrics-file FILE)\n"
               "  --socket PATH    serve: accept concurrent clients on a "
               "Unix socket\n"
               "                   top: poll this serve socket's stats "
               "events\n"
               "  --metrics-file F top: re-read a --metrics-out / "
               "GPUPOWER_METRICS document\n"
               "  --interval MS    top: poll interval in milliseconds "
               "(default 1000)\n"
               "  --count N        top: stop after N polls (default 0 = "
               "until ctrl-c)\n"
               "  --plain          top: append frames instead of clearing "
               "the terminal\n"
               "  --full           serve: attach full result documents to "
               "result events\n"
               "  --stats-every N  serve: emit a stats event after every N "
               "completed\n"
               "                   scenarios (default 0 = on request only)\n"
               "  --bench-out FILE bench-document export of a campaign run\n"
               "  --trace-out FILE Chrome-trace JSON (chrome://tracing / "
               "Perfetto) of the run\n"
               "  --metrics-out FILE  run: engine + obs metrics JSON after "
               "the spec completes\n"
               "  --emit-spec      dvfs/fleet: print the equivalent spec "
               "JSON and exit\n"
               "  --gpu N          device index (see 'discovery'; default 0)\n"
               "  --dtype T        fp32 | fp16 | fp16t | int8 (default fp16)\n"
               "  --pattern DSL    e.g. \"gaussian(sigma=210) | sort_rows(40%%)\"\n"
               "  --figure ID      fig3a..fig6d (sweep command)\n"
               "  --timeline DSL   dvfs workload, e.g. \"burst(period=0.2, "
               "duty=30%%, dur=2)\"\n"
               "  --governor DSL   fixed(P) | utilization(up=..%%, down=..%%) "
               "| oracle()\n"
               "  --slice S        dvfs replay time step in seconds "
               "(default 0.01)\n"
               "  --pstates K      P-state table depth, 1 = DVFS off "
               "(default 5)\n"
               "  --devices N      fleet size (default 4)\n"
               "  --cap W          shared fleet power cap in watts "
               "(default: uncapped)\n"
               "  --allocator P    uniform | proportional | priority | "
               "greedy (default proportional)\n"
               "  --thermal on     thread the RC die-temperature model "
               "across slices\n"
               "  --n SIZE --seeds K --tiles T --kfrac F --workers W --csv --json\n"
               "environment (strict; malformed values exit 2):\n"
               "  GPUPOWER_STORE_DIR  persistent result store for run/serve: "
               "completed\n"
               "                      scenarios are written back and warm "
               "replays skip\n"
               "                      every replica computation\n"
               "  GPUPOWER_STORE      'on' | 'off' — disable the store "
               "without unsetting\n"
               "                      the directory\n"
               "  GPUPOWER_TRACE      Chrome-trace output path (same as "
               "--trace-out;\n"
               "                      the flag wins when both are set)\n"
               "  GPUPOWER_METRICS    'on' | 'off' — arm the metrics "
               "registry without\n"
               "                      tracing\n"
               "  GPUPOWER_N/SEEDS/TILES/KFRAC/WORKERS/CSV  see README\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opts, std::string& error) {
  if (argc < 2) {
    error = "missing command";
    return false;
  }
  opts.command = argv[1];
  opts.env = core::read_bench_env();
  for (int i = 2; i < argc; ++i) {
    const std::string_view flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--csv") {
      opts.csv = true;
    } else if (flag == "--json") {
      opts.json = true;
    } else if (flag == "--gpu") {
      const char* v = next();
      if (!v) {
        error = "--gpu needs an index";
        return false;
      }
      opts.gpu_index = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (opts.gpu_index >= 4) {
        error = "gpu index out of range (0..3)";
        return false;
      }
    } else if (flag == "--dtype") {
      const char* v = next();
      if (!v || !numeric::parse_dtype(v, opts.dtype)) {
        error = "unknown dtype";
        return false;
      }
    } else if (flag == "--pattern") {
      const char* v = next();
      if (!v) {
        error = "--pattern needs a DSL string";
        return false;
      }
      opts.pattern = v;
    } else if (flag == "--figure") {
      const char* v = next();
      core::FigureId id;
      if (!v || !core::parse_figure_id(v, id)) {
        error = "unknown figure id";
        return false;
      }
      opts.figure = id;
    } else if (flag == "--n") {
      const char* v = next();
      if (!v) {
        error = "--n needs a size";
        return false;
      }
      opts.env.n = std::strtoul(v, nullptr, 10);
    } else if (flag == "--seeds") {
      const char* v = next();
      if (!v) {
        error = "--seeds needs a count";
        return false;
      }
      opts.env.seeds = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--tiles") {
      const char* v = next();
      if (!v) {
        error = "--tiles needs a count";
        return false;
      }
      opts.env.tiles = std::strtoul(v, nullptr, 10);
    } else if (flag == "--kfrac") {
      const char* v = next();
      if (!v) {
        error = "--kfrac needs a fraction";
        return false;
      }
      opts.env.k_fraction = std::strtod(v, nullptr);
    } else if (flag == "--timeline") {
      const char* v = next();
      if (!v) {
        error = "--timeline needs a DSL string";
        return false;
      }
      opts.timeline = v;
    } else if (flag == "--governor") {
      const char* v = next();
      if (!v) {
        error = "--governor needs a DSL string";
        return false;
      }
      opts.governor = v;
    } else if (flag == "--slice") {
      const char* v = next();
      if (!v) {
        error = "--slice needs a duration (seconds)";
        return false;
      }
      opts.slice_s = std::strtod(v, nullptr);
    } else if (flag == "--pstates") {
      const char* v = next();
      if (!v) {
        error = "--pstates needs a count";
        return false;
      }
      opts.pstates = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--devices") {
      const char* v = next();
      if (!v) {
        error = "--devices needs a count";
        return false;
      }
      opts.devices = static_cast<int>(std::strtol(v, nullptr, 10));
      if (opts.devices < 1 || opts.devices > 256) {
        error = "--devices out of range (1..256)";
        return false;
      }
    } else if (flag == "--cap") {
      const char* v = next();
      if (!v) {
        error = "--cap needs watts";
        return false;
      }
      opts.cap_w = std::strtod(v, nullptr);
      if (!(opts.cap_w > 0.0)) {
        error = "--cap must be positive";
        return false;
      }
    } else if (flag == "--allocator") {
      const char* v = next();
      if (!v) {
        error = "--allocator needs a policy name";
        return false;
      }
      opts.allocator = v;
    } else if (flag == "--thermal") {
      const char* v = next();
      if (!v || (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0)) {
        error = "--thermal needs 'on' or 'off'";
        return false;
      }
      opts.thermal = std::strcmp(v, "on") == 0;
    } else if (flag == "--workers") {
      const char* v = next();
      if (!v) {
        error = "--workers needs a count";
        return false;
      }
      opts.env.workers = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (flag == "--bench-out") {
      const char* v = next();
      if (!v) {
        error = "--bench-out needs a path";
        return false;
      }
      opts.bench_out = v;
    } else if (flag == "--emit-spec") {
      opts.emit_spec = true;
    } else if (flag == "--expand") {
      opts.expand = true;
    } else if (flag == "--socket") {
      const char* v = next();
      if (!v) {
        error = "--socket needs a path";
        return false;
      }
      opts.socket_path = v;
    } else if (flag == "--full") {
      opts.full_results = true;
    } else if (flag == "--metrics-file") {
      const char* v = next();
      if (!v) {
        error = "--metrics-file needs a path";
        return false;
      }
      opts.metrics_file = v;
    } else if (flag == "--interval") {
      const char* v = next();
      if (!v) {
        error = "--interval needs milliseconds";
        return false;
      }
      opts.top_interval_ms = static_cast<int>(std::strtol(v, nullptr, 10));
      if (opts.top_interval_ms < 1) {
        error = "--interval needs a positive millisecond count";
        return false;
      }
    } else if (flag == "--count") {
      const char* v = next();
      if (!v) {
        error = "--count needs a poll count";
        return false;
      }
      opts.top_count = static_cast<int>(std::strtol(v, nullptr, 10));
      if (opts.top_count < 0) {
        error = "--count needs a count >= 0";
        return false;
      }
    } else if (flag == "--plain") {
      opts.plain = true;
    } else if (flag == "--stats-every") {
      const char* v = next();
      if (!v) {
        error = "--stats-every needs a scenario count";
        return false;
      }
      opts.stats_every = static_cast<int>(std::strtol(v, nullptr, 10));
      if (opts.stats_every < 0) {
        error = "--stats-every needs a count >= 0";
        return false;
      }
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (!v) {
        error = "--trace-out needs a path";
        return false;
      }
      opts.trace_out = v;
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (!v) {
        error = "--metrics-out needs a path";
        return false;
      }
      opts.metrics_out = v;
    } else if (!flag.starts_with("--") && opts.spec_path.empty() &&
               (opts.command == "run" || opts.command == "validate")) {
      // Only run/validate take a positional (the spec path); a stray
      // positional on any other verb stays a hard error — "fleet 400"
      // must not silently run an uncapped fleet.
      opts.spec_path = flag;
    } else {
      error = "unknown option '" + std::string(flag) + "'";
      return false;
    }
  }
  return true;
}

bool parse_pattern_or_die(const Options& opts, core::PatternSpec& spec) {
  const auto parsed = core::parse_pattern(opts.pattern);
  if (!parsed.ok) {
    std::fprintf(stderr, "pattern error at offset %zu: %s\n",
                 parsed.error_pos, parsed.error.c_str());
    return false;
  }
  spec = parsed.spec;
  return true;
}

int cmd_discovery() {
  analysis::Table table(
      {"idx", "name", "TDP (W)", "memory", "SMs", "boost (MHz)"});
  for (unsigned i = 0; i < 4; ++i) {
    const auto& dev = gpusim::device(kGpuByIndex[i]);
    table.add_row({std::to_string(i), std::string(dev.name),
                   analysis::fixed(dev.tdp_w, 0),
                   std::string(gpusim::name(dev.memory)),
                   std::to_string(dev.sm_count),
                   analysis::fixed(dev.boost_clock_ghz * 1000.0, 0)});
  }
  table.print(std::cout);
  return 0;
}

core::ExperimentConfig make_config(const Options& opts,
                                   const core::PatternSpec& spec) {
  const auto builder = core::ExperimentConfigBuilder()
                           .gpu(kGpuByIndex[opts.gpu_index])
                           .dtype(opts.dtype)
                           .pattern(spec)
                           .env(opts.env);
  // Out-of-range --n/--seeds/--tiles/--kfrac values surface here.
  if (!builder.valid()) {
    std::fprintf(stderr, "gpowerctl: %s\n", builder.error().c_str());
    std::exit(2);
  }
  return builder.build();
}

core::ExperimentEngine make_engine(const Options& opts) {
  core::EngineOptions options;
  options.workers = opts.env.workers;
  // The persistent store rides on the env knobs so every engine-backed
  // verb (run, serve, sweep, ...) shares one wiring: memory cache ->
  // store -> compute, write-back on completion.
  const core::StoreEnv store_env = core::read_store_env();
  if (store_env.enabled) {
    options.store = std::make_shared<core::ResultStore>(
        core::StoreOptions{store_env.dir, store_env.max_bytes});
  }
  return core::ExperimentEngine(options);
}

int cmd_dmon(const Options& opts) {
  core::PatternSpec spec;
  if (!parse_pattern_or_die(opts, spec)) return 1;
  const auto config = make_config(opts, spec);

  // Single-replica run so the sample stream is concrete, then the full
  // multi-seed summary.
  gpusim::SimOptions sim_options;
  sim_options.sampling = config.sampling;
  const gpusim::GpuSimulator sim(config.gpu, sim_options);
  const auto problem =
      gemm::GemmProblem{config.n, config.n, config.n, 1.0f, 0.0f,
                        spec.transpose_b};
  telemetry::SamplerConfig sampler;
  gpusim::PowerReport report;
  switch (opts.dtype) {
    case numeric::DType::kFP32: {
      const auto in = core::build_inputs<float>(spec, opts.dtype, config.n, 42);
      report = sim.run_gemm(problem, opts.dtype, in.a, in.b);
      break;
    }
    case numeric::DType::kFP16:
    case numeric::DType::kFP16T: {
      const auto in = core::build_inputs<numeric::float16_t>(spec, opts.dtype,
                                                             config.n, 42);
      report = sim.run_gemm(problem, opts.dtype, in.a, in.b);
      break;
    }
    case numeric::DType::kINT8: {
      const auto in = core::build_inputs<numeric::int8_value_t>(
          spec, opts.dtype, config.n, 42);
      report = sim.run_gemm(problem, opts.dtype, in.a, in.b);
      break;
    }
  }
  const auto trace =
      telemetry::sample_run(report, config.effective_iterations(), sampler);

  std::printf("# gpowerctl dmon: %s, %s, pattern: %s\n",
              std::string(gpusim::name(config.gpu)).c_str(),
              std::string(numeric::name(opts.dtype)).c_str(),
              core::to_dsl(spec).c_str());
  std::printf("#  t(s)   power(W)\n");
  const std::size_t stride = std::max<std::size_t>(1, trace.size() / 20);
  for (std::size_t i = 0; i < trace.size(); i += stride) {
    std::printf("  %6.2f  %8.2f\n", trace.samples()[i].t_s,
                trace.samples()[i].power_w);
  }
  // One experiment, immediately waited on: the serial one-shot path —
  // sweeps and training batches go through the engine.
  const auto result = core::run_experiment(config);
  std::printf(
      "\nsummary (%d seeds, first %.0f ms trimmed):\n"
      "  power        %.2f W (std %.2f)\n"
      "  iteration    %.3f ms   energy/iter %.4f J\n"
      "  clock        %.0f%%%s   alignment %.3f   weight %.3f\n",
      result.seeds, sampler.warmup_trim_s * 1000.0, result.power_w,
      result.power_std_w, result.iteration_s * 1e3, result.energy_per_iter_j,
      result.clock_frac * 100.0, result.throttled ? " (THROTTLED)" : "",
      result.alignment, result.weight_fraction);
  return 0;
}

int cmd_sweep(const Options& opts) {
  if (!opts.figure) {
    std::fprintf(stderr, "sweep needs --figure (fig3a..fig6d)\n");
    return 2;
  }
  if (!opts.json) {
    std::printf("%s on %s, %s\n",
                std::string(core::figure_name(*opts.figure)).c_str(),
                std::string(gpusim::name(kGpuByIndex[opts.gpu_index])).c_str(),
                std::string(numeric::name(opts.dtype)).c_str());
  }
  core::ExperimentEngine engine = make_engine(opts);
  const core::SweepRun run = engine.submit_sweep(
      *opts.figure, make_config(opts, core::baseline_gaussian_spec()));
  const std::vector<core::SweepEntry> entries = run.collect();

  analysis::Table table({std::string(core::figure_axis(*opts.figure)),
                         "power (W)", "std (W)", "alignment", "weight"});
  for (const auto& entry : entries) {
    table.add_row(entry.point.label,
                  {entry.result.power_w, entry.result.power_std_w,
                   entry.result.alignment, entry.result.weight_fraction},
                  3);
  }
  if (opts.json) {
    std::printf("%s\n", run.to_json().dump(/*pretty=*/true).c_str());
  } else if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}

core::DataFeatures features_for(const core::PatternSpec& spec,
                                numeric::DType dtype, std::size_t n) {
  switch (dtype) {
    case numeric::DType::kFP32: {
      const auto in = core::build_inputs<float>(spec, dtype, n, 42);
      return core::extract_features(in.a, in.b);
    }
    case numeric::DType::kFP16:
    case numeric::DType::kFP16T: {
      const auto in = core::build_inputs<numeric::float16_t>(spec, dtype, n, 42);
      return core::extract_features(in.a, in.b);
    }
    case numeric::DType::kINT8: {
      const auto in =
          core::build_inputs<numeric::int8_value_t>(spec, dtype, n, 42);
      return core::extract_features(in.a, in.b);
    }
  }
  return {};
}

int cmd_features(const Options& opts) {
  core::PatternSpec spec;
  if (!parse_pattern_or_die(opts, spec)) return 1;
  const core::DataFeatures features =
      features_for(spec, opts.dtype, opts.env.n);
  std::printf("pattern: %s\n", core::to_dsl(spec).c_str());
  std::printf("  weight_fraction       %.4f\n", features.weight_fraction);
  std::printf("  neighbor_toggles      %.4f\n", features.neighbor_toggles);
  std::printf("  alignment             %.4f\n", features.alignment);
  std::printf("  zero_fraction         %.4f\n", features.zero_fraction);
  std::printf("  significand_activity  %.4f\n", features.significand_activity);
  std::printf("  exponent_weight       %.4f\n", features.exponent_weight);
  return 0;
}

int cmd_predict(const Options& opts) {
  core::PatternSpec spec;
  if (!parse_pattern_or_die(opts, spec)) return 1;

  // Train on a few representative sweeps at the configured size; the whole
  // training set runs batched on the engine (sweep points shared between
  // figures — e.g. each sweep's baseline column — are computed once).
  std::printf("training input-dependent power model (%s, n=%zu)...\n",
              std::string(numeric::name(opts.dtype)).c_str(), opts.env.n);
  core::ExperimentEngine engine = make_engine(opts);
  auto training_base = make_config(opts, core::baseline_gaussian_spec());
  training_base.seeds = 1;
  std::vector<core::SweepRun> runs;
  for (const auto fig :
       {core::FigureId::kFig3bDistributionMean,
        core::FigureId::kFig5bSortedAligned, core::FigureId::kFig6aSparsity,
        core::FigureId::kFig4bLsbRandomized, core::FigureId::kFig6cLsbZeroed}) {
    runs.push_back(engine.submit_sweep(fig, training_base));
  }
  const auto measured_handle = engine.submit(make_config(opts, spec));
  engine.wait_all();

  std::vector<core::PowerSample> samples;
  for (const core::SweepRun& run : runs) {
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      core::PowerSample sample;
      sample.power_w = run.handles[i].get().power_w;
      sample.features = features_for(run.points[i].spec, opts.dtype,
                                     opts.env.n);
      samples.push_back(sample);
    }
  }
  const auto model = core::InputDependentPowerModel::fit(samples);
  const auto stats = engine.stats();
  std::printf("trained on %zu samples (%llu simulated, %llu cache hits), "
              "R^2 = %.3f\n",
              samples.size(),
              static_cast<unsigned long long>(stats.jobs_computed),
              static_cast<unsigned long long>(stats.cache_hits),
              model.r2(samples));

  const double predicted =
      model.predict(features_for(spec, opts.dtype, opts.env.n));
  const auto& measured = measured_handle.get();
  std::printf("pattern:   %s\n", core::to_dsl(spec).c_str());
  std::printf("predicted: %.2f W (no kernel walk)\n", predicted);
  std::printf("simulated: %.2f W (error %+.2f W)\n", measured.power_w,
              predicted - measured.power_w);
  return 0;
}

// --- spec front end ---------------------------------------------------------

int spec_error(const std::string& message) {
  std::fprintf(stderr, "gpowerctl: %s\n", message.c_str());
  return 2;
}

/// Metric columns of a campaign table / bench document, per scenario kind.
std::vector<std::string> kind_metric_headers(core::ScenarioKind kind) {
  switch (kind) {
    case core::ScenarioKind::kStatic:
      return {"power (W)", "std (W)", "iter (ms)", "energy/iter (J)"};
    case core::ScenarioKind::kDvfs:
      return {"energy (J)", "avg W", "completion (s)", "max backlog (ms)"};
    case core::ScenarioKind::kFleet:
      return {"energy (J)", "avg W", "completion (s)", "max backlog (ms)",
              "p99 backlog (ms)"};
  }
  return {};
}

std::vector<double> kind_metric_values(const core::ScenarioResult& result) {
  switch (result.kind()) {
    case core::ScenarioKind::kStatic: {
      const core::ExperimentResult& r = result.static_result();
      return {r.power_w, r.power_std_w, r.iteration_s * 1e3,
              r.energy_per_iter_j};
    }
    case core::ScenarioKind::kDvfs: {
      const core::DvfsResult& r = result.dvfs();
      return {r.energy_j, r.avg_power_w, r.completion_s,
              r.backlog_max_s * 1e3};
    }
    case core::ScenarioKind::kFleet: {
      const core::FleetResult& r = result.fleet();
      return {r.energy_j, r.avg_power_w, r.completion_s,
              r.backlog_max_s * 1e3, r.backlog_p99_s * 1e3};
    }
  }
  return {};
}

/// Bench-document metrics (names aligned with the committed BENCH_*.json
/// documents so `bench_export --compare` gates campaign runs directly).
/// One source of truth with serve's result events: both read
/// scenario_summary_metrics, so CI can diff streamed results against
/// --bench-out documents key by key.
std::vector<tools::BenchMetric> kind_bench_metrics(
    const core::ScenarioResult& result) {
  std::vector<tools::BenchMetric> metrics;
  for (const auto& [metric, value] : core::scenario_summary_metrics(result)) {
    metrics.push_back({metric, value});
  }
  return metrics;
}

void print_engine_stats(const core::ExperimentEngine& engine) {
  std::printf("\nengine: %s\n", core::engine_stats_line(engine).c_str());
}

/// Writes the bench trajectory document for a finished run; shared by the
/// campaign and single-scenario paths (and every output mode — --json
/// must not swallow --bench-out).
int write_bench_out(const Options& opts, const std::string& bench_name,
                    const std::string& protocol,
                    const std::vector<tools::BenchCase>& cases) {
  const auto doc = tools::bench_document(bench_name, protocol, cases);
  if (!tools::write_bench_json(opts.bench_out, doc)) {
    return spec_error("cannot write " + opts.bench_out);
  }
  std::fprintf(stderr, "wrote %s\n", opts.bench_out.c_str());
  return 0;
}

/// Flushes the run's observability artifacts: the metrics document when
/// --metrics-out was given, and the Chrome trace eagerly (instead of at
/// exit) so the "wrote ..." message and any write failure land while the
/// user is still watching.  Call after the engine has gone idle.
int write_obs_outputs(const Options& opts, core::ExperimentEngine& engine) {
  if (!opts.metrics_out.empty()) {
    const std::string text =
        engine.metrics_json().dump(/*pretty=*/true) + "\n";
    std::string error;
    if (!core::atomic_write_text(opts.metrics_out, text, &error)) {
      return spec_error("cannot write " + opts.metrics_out + ": " + error);
    }
    std::fprintf(stderr, "wrote %s\n", opts.metrics_out.c_str());
  }
  if (core::obs::tracing_enabled()) {
    std::string error;
    if (!core::obs::flush_trace(&error)) {
      return spec_error("cannot write trace: " + error);
    }
    std::fprintf(stderr, "wrote %s\n", core::obs::trace_path().c_str());
  }
  return 0;
}

void print_scenario_summary(const core::ScenarioConfig& config,
                            const core::ScenarioResult& result) {
  const std::vector<std::string> headers = kind_metric_headers(config.kind());
  const std::vector<double> values = kind_metric_values(result);
  std::printf("# %s scenario, %d seed(s)\n",
              std::string(core::name(config.kind())).c_str(), config.seeds());
  for (std::size_t i = 0; i < headers.size(); ++i) {
    std::printf("  %-18s %.4f\n", headers[i].c_str(), values[i]);
  }
}

/// --expand detail for one dag node: what the node will run, without
/// running it (campaign grids of run nodes expand from the pre-substitution
/// document, which parses stand-alone by the dag contract).
int expand_dag_node(const core::dag::DagSpec& dag,
                    const core::dag::DagNode& node) {
  switch (node.kind) {
    case core::dag::DagNodeKind::kScenario:
      std::printf("    1 point\n");
      return 0;
    case core::dag::DagNodeKind::kCampaign: {
      const core::SpecParseResult parsed = core::parse_scenario_spec(node.run);
      if (!parsed.ok) return spec_error(parsed.error);
      std::vector<core::CampaignPoint> points;
      std::string error;
      if (!core::expand_campaign(parsed.spec, points, error)) {
        return spec_error("node '" + node.name + "': " + error);
      }
      std::printf("    %zu point(s)\n", points.size());
      for (const core::CampaignPoint& point : points) {
        std::printf("      %s\n", point.label.c_str());
      }
      return 0;
    }
    case core::dag::DagNodeKind::kReduce:
      std::printf("    %s over '%s', metric %s\n", node.reduce.op.c_str(),
                  dag.nodes[node.reduce.over].name.c_str(),
                  node.reduce.metric.c_str());
      return 0;
    case core::dag::DagNodeKind::kSearch:
      std::printf("    bisect %s in [%g, %g] until %s %s %g (tolerance %g)\n",
                  node.search.field.c_str(), node.search.lo, node.search.hi,
                  node.search.metric.c_str(), node.search.predicate.c_str(),
                  node.search.target, node.search.tolerance);
      return 0;
  }
  return 0;
}

int validate_dag(const Options& opts, const core::ScenarioSpec& spec) {
  const core::dag::DagSpec& dag = *spec.dag;
  std::size_t run_nodes = 0;
  for (const core::dag::DagNode& node : dag.nodes) {
    if (node.kind == core::dag::DagNodeKind::kScenario ||
        node.kind == core::dag::DagNodeKind::kCampaign) {
      ++run_nodes;
    }
  }
  std::string order;
  for (const std::size_t index : dag.order) {
    if (!order.empty()) order += " -> ";
    order += dag.nodes[index].name;
  }
  std::printf(
      "spec OK: dag '%s', %zu node(s) (%zu run, %zu derived), order: %s\n",
      dag.name.empty() ? "(unnamed)" : dag.name.c_str(), dag.nodes.size(),
      run_nodes, dag.nodes.size() - run_nodes, order.c_str());
  if (!opts.expand) return 0;
  for (const std::size_t index : dag.order) {
    const core::dag::DagNode& node = dag.nodes[index];
    std::printf("  node %s (%s)\n", node.name.c_str(),
                std::string(core::dag::name(node.kind)).c_str());
    if (const int status = expand_dag_node(dag, node); status != 0) {
      return status;
    }
  }
  return 0;
}

int cmd_validate(const Options& opts) {
  if (opts.spec_path.empty()) return spec_error("validate needs <spec.json>");
  const core::SpecParseResult parsed = core::load_scenario_spec(opts.spec_path);
  if (!parsed.ok) return spec_error(parsed.error);
  if (parsed.spec.dag != nullptr) return validate_dag(opts, parsed.spec);
  if (!parsed.spec.campaign) {
    std::printf("spec OK: %s scenario, %d seed(s)\n",
                std::string(core::name(parsed.spec.config.kind())).c_str(),
                parsed.spec.config.seeds());
    return 0;
  }
  std::vector<core::CampaignPoint> points;
  std::string error;
  if (!core::expand_campaign(parsed.spec, points, error)) {
    return spec_error(error);
  }
  std::string axes;
  for (const core::CampaignAxis& axis : parsed.spec.axes) {
    if (!axes.empty()) axes += " x ";
    axes += axis.field + "(" + std::to_string(axis.values.size()) + ")";
  }
  std::printf("spec OK: campaign '%s', %zu point(s) of kind %s, axes: %s\n",
              parsed.spec.name.empty() ? "(unnamed)"
                                       : parsed.spec.name.c_str(),
              points.size(),
              std::string(core::name(points.front().config.kind())).c_str(),
              axes.c_str());
  if (opts.expand) {
    for (const core::CampaignPoint& point : points) {
      std::printf("  %s\n", point.label.c_str());
    }
  }
  return 0;
}

int run_campaign(const Options& opts, const core::ScenarioSpec& spec) {
  core::ExperimentEngine engine = make_engine(opts);
  core::CampaignRun run;
  std::string error;
  if (!core::submit_campaign(engine, spec, run, error)) {
    return spec_error(error);
  }
  engine.wait_all();

  if (!opts.bench_out.empty()) {
    std::vector<tools::BenchCase> cases;
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      tools::BenchCase bench_case;
      bench_case.name = run.points[i].label;
      bench_case.metrics = kind_bench_metrics(run.handles[i].get());
      cases.push_back(std::move(bench_case));
    }
    const int status = write_bench_out(
        opts, spec.name.empty() ? "campaign" : spec.name, spec.protocol,
        cases);
    if (status != 0) return status;
  }
  if (const int status = write_obs_outputs(opts, engine); status != 0) {
    return status;
  }

  if (opts.json) {
    analysis::JsonValue doc = analysis::JsonValue::object();
    doc.set("campaign", analysis::JsonValue::string(spec.name));
    analysis::JsonValue series = analysis::JsonValue::array();
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      analysis::JsonValue entry = analysis::JsonValue::object();
      entry.set("label", analysis::JsonValue::string(run.points[i].label))
          .set("result", core::scenario_to_json(run.points[i].config,
                                                run.handles[i].get()));
      series.push(std::move(entry));
    }
    doc.set("points", std::move(series));
    std::printf("%s\n", doc.dump(/*pretty=*/true).c_str());
    return 0;
  }

  std::vector<std::string> headers{"point"};
  for (std::string& header :
       kind_metric_headers(run.points.front().config.kind())) {
    headers.push_back(std::move(header));
  }
  analysis::Table table(std::move(headers));
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    table.add_row(run.points[i].label,
                  kind_metric_values(run.handles[i].get()), 3);
  }
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  print_engine_stats(engine);
  return 0;
}

/// Prints the one-line summary of a derived (reduce/search) node from its
/// result document.
void print_derived_node_summary(const core::dag::DagNodeRun& node) {
  const analysis::JsonValue* value = node.doc.find("value");
  if (node.kind == core::dag::DagNodeKind::kReduce) {
    const analysis::JsonValue* op = node.doc.find("op");
    const analysis::JsonValue* over = node.doc.find("over");
    const analysis::JsonValue* metric = node.doc.find("metric");
    std::printf("  %s of %s over '%s' = %.6g\n",
                op != nullptr ? op->as_string().c_str() : "?",
                metric != nullptr ? metric->as_string().c_str() : "?",
                over != nullptr ? over->as_string().c_str() : "?",
                value != nullptr ? value->as_number() : 0.0);
    return;
  }
  const analysis::JsonValue* field = node.doc.find("field");
  const analysis::JsonValue* iterations = node.doc.find("iterations");
  std::printf("  %s = %.17g (%d evaluation(s))\n",
              field != nullptr ? field->as_string().c_str() : "?",
              value != nullptr ? value->as_number() : 0.0,
              iterations != nullptr ? static_cast<int>(iterations->as_number())
                                    : 0);
}

/// Executes a dag spec end to end, then reports node by node in
/// declaration order.  Run-node --json entries mirror the campaign --json
/// point shape exactly, so a dag node can be diffed byte-for-byte against
/// the equivalent stand-alone campaign run.
int run_dag_spec(const Options& opts, const core::ScenarioSpec& spec) {
  core::ExperimentEngine engine = make_engine(opts);
  core::dag::DagRun run;
  std::string error;
  if (!core::dag::run_dag(engine, *spec.dag, run, error)) {
    return spec_error(error);
  }
  engine.wait_all();

  if (!opts.bench_out.empty()) {
    std::vector<tools::BenchCase> cases;
    for (const core::dag::DagNodeRun& node : run.nodes) {
      for (const core::dag::DagNodePoint& point : node.points) {
        tools::BenchCase bench_case;
        bench_case.name = node.points.size() == 1
                              ? node.name
                              : node.name + "/" + point.label;
        bench_case.metrics = kind_bench_metrics(point.result);
        cases.push_back(std::move(bench_case));
      }
    }
    const int status = write_bench_out(
        opts, spec.name.empty() ? "dag" : spec.name, spec.protocol, cases);
    if (status != 0) return status;
  }
  if (const int status = write_obs_outputs(opts, engine); status != 0) {
    return status;
  }

  if (opts.json) {
    analysis::JsonValue doc = analysis::JsonValue::object();
    doc.set("dag", analysis::JsonValue::string(spec.name));
    analysis::JsonValue nodes = analysis::JsonValue::array();
    for (const core::dag::DagNodeRun& node : run.nodes) {
      analysis::JsonValue entry = analysis::JsonValue::object();
      entry.set("name", analysis::JsonValue::string(node.name))
          .set("kind",
               analysis::JsonValue::string(core::dag::name(node.kind)));
      if (!node.points.empty()) {
        analysis::JsonValue points = analysis::JsonValue::array();
        for (const core::dag::DagNodePoint& point : node.points) {
          analysis::JsonValue point_doc = analysis::JsonValue::object();
          point_doc.set("label", analysis::JsonValue::string(point.label))
              .set("result",
                   core::scenario_to_json(point.config, point.result));
          points.push(std::move(point_doc));
        }
        entry.set("points", std::move(points));
      }
      if (node.kind == core::dag::DagNodeKind::kReduce ||
          node.kind == core::dag::DagNodeKind::kSearch) {
        entry.set("result", node.doc);
      }
      nodes.push(std::move(entry));
    }
    doc.set("nodes", std::move(nodes));
    std::printf("%s\n", doc.dump(/*pretty=*/true).c_str());
    return 0;
  }

  for (const core::dag::DagNodeRun& node : run.nodes) {
    std::printf("# node %s (%s)\n", node.name.c_str(),
                std::string(core::dag::name(node.kind)).c_str());
    if (node.kind == core::dag::DagNodeKind::kReduce ||
        node.kind == core::dag::DagNodeKind::kSearch) {
      print_derived_node_summary(node);
    }
    if (node.points.empty()) continue;
    std::vector<std::string> headers{"point"};
    for (std::string& header :
         kind_metric_headers(node.points.front().config.kind())) {
      headers.push_back(std::move(header));
    }
    analysis::Table table(std::move(headers));
    for (const core::dag::DagNodePoint& point : node.points) {
      table.add_row(point.label, kind_metric_values(point.result), 3);
    }
    if (opts.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }
  print_engine_stats(engine);
  return 0;
}

int cmd_run(const Options& opts) {
  if (opts.spec_path.empty()) return spec_error("run needs <spec.json>");
  const core::SpecParseResult parsed = core::load_scenario_spec(opts.spec_path);
  if (!parsed.ok) return spec_error(parsed.error);
  if (parsed.spec.dag != nullptr) return run_dag_spec(opts, parsed.spec);
  if (parsed.spec.campaign) return run_campaign(opts, parsed.spec);

  core::ExperimentEngine engine = make_engine(opts);
  const core::ScenarioHandle handle = engine.submit(parsed.spec.config);
  const core::ScenarioResult& result = handle.get();
  if (!opts.bench_out.empty()) {
    tools::BenchCase bench_case;
    bench_case.name = std::string(core::name(parsed.spec.config.kind()));
    bench_case.metrics = kind_bench_metrics(result);
    const int status = write_bench_out(opts, "scenario", "", {bench_case});
    if (status != 0) return status;
  }
  if (const int status = write_obs_outputs(opts, engine); status != 0) {
    return status;
  }
  if (opts.json) {
    std::printf("%s\n", core::scenario_to_json(parsed.spec.config, result)
                            .dump(/*pretty=*/true)
                            .c_str());
    return 0;
  }
  print_scenario_summary(parsed.spec.config, result);
  print_engine_stats(engine);
  return 0;
}

/// Long-lived service mode: one engine + one store, any number of clients.
int cmd_serve(const Options& opts) {
  core::ExperimentEngine engine = make_engine(opts);
  const core::StoreEnv store_env = core::read_store_env();
  core::ServeOptions serve_options;
  serve_options.full_results = opts.full_results;
  serve_options.stats_every = opts.stats_every;
  // Stats events embed metrics_json(); arm the registry so the per-kind
  // timings in those events are live even without GPUPOWER_METRICS=on.
  core::obs::set_metrics_enabled(true);

  std::fprintf(stderr, "gpowerctl serve: %d worker(s), store %s\n",
               engine.workers(),
               store_env.enabled ? store_env.dir.c_str() : "off");
  if (!opts.socket_path.empty()) {
    std::fprintf(stderr, "listening on %s\n", opts.socket_path.c_str());
    std::string error;
    (void)core::serve_unix_socket(engine, opts.socket_path, serve_options,
                                  error);
    std::fprintf(stderr, "gpowerctl serve: %s\n", error.c_str());
    return 1;
  }

  const long requests =
      core::serve_session(engine, std::cin, std::cout, serve_options);
  std::fprintf(stderr, "served %ld request(s); engine: %s\n", requests,
               core::engine_stats_line(engine).c_str());
  return 0;
}

// --- gpowerctl top: live operational view ----------------------------------

/// One polled snapshot: the metrics_json() document plus — in socket mode
/// — the live per-session rows embedded in the serve stats event.
struct TopSample {
  analysis::JsonValue metrics;
  analysis::JsonValue sessions = analysis::JsonValue::array();
  bool have_sessions = false;
};

/// Nested lookup that tolerates absent keys and non-objects: the metrics
/// schema is stable, but `top` must render a partial document (e.g. a
/// metrics file written mid-run by an older binary) instead of aborting.
const analysis::JsonValue* json_member(const analysis::JsonValue* value,
                                       std::string_view key) {
  return value != nullptr ? value->find(key) : nullptr;
}

double json_number(const analysis::JsonValue* value, double fallback = 0.0) {
  return value != nullptr ? value->as_number(fallback) : fallback;
}

/// Minimal NDJSON client for a `gpowerctl serve --socket` endpoint: one
/// connection for the whole top session (so the serve side keeps ONE
/// session row for the viewer instead of one per poll), a stats request
/// per poll, and a line-buffered reader that skips any interleaved events
/// until the stats event arrives.
class ServeStatsClient {
 public:
  ServeStatsClient() = default;
  ServeStatsClient(const ServeStatsClient&) = delete;
  ServeStatsClient& operator=(const ServeStatsClient&) = delete;
  ~ServeStatsClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect_to(const std::string& path, std::string& error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      error = "socket path too long: " + path;
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      error = path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  bool poll(TopSample& sample, std::string& error) {
    static constexpr char kRequest[] = "{\"cmd\":\"stats\"}\n";
    const char* data = kRequest;
    std::size_t remaining = sizeof kRequest - 1;
    while (remaining > 0) {
      const ssize_t n = ::write(fd_, data, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        error = std::string("write: ") + std::strerror(errno);
        return false;
      }
      data += n;
      remaining -= static_cast<std::size_t>(n);
    }
    // Any event may interleave ahead of our stats reply (periodic
    // --stats-every emissions are themselves stats events and count).
    for (;;) {
      std::string line;
      if (!read_line(line, error)) return false;
      if (line.empty()) continue;
      const analysis::JsonParseResult parsed = analysis::json_parse(line);
      if (!parsed.ok || !parsed.value.is_object()) continue;
      const analysis::JsonValue* type = parsed.value.find("type");
      if (type == nullptr || !type->is_string() ||
          type->as_string() != "stats") {
        continue;
      }
      if (const analysis::JsonValue* metrics = parsed.value.find("metrics")) {
        sample.metrics = *metrics;
      }
      if (const analysis::JsonValue* sessions = parsed.value.find("sessions");
          sessions != nullptr && sessions->is_array()) {
        sample.sessions = *sessions;
        sample.have_sessions = true;
      }
      return true;
    }
  }

 private:
  bool read_line(std::string& line, std::string& error) {
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        error = std::string("read: ") + std::strerror(errno);
        return false;
      }
      if (n == 0) {
        error = "server closed the connection";
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

bool read_metrics_file(const std::string& path, TopSample& sample,
                       std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  analysis::JsonParseResult parsed = analysis::json_parse(text);
  if (!parsed.ok) {
    error = path + ": " + parsed.error;
    return false;
  }
  sample.metrics = std::move(parsed.value);
  return true;
}

/// Renders one frame.  `previous` is last poll's metrics document (nullptr
/// on the first frame) — counter deltas and rates are computed against it,
/// with elapsed time measured here (obs::now_ns) rather than trusting the
/// producer's clock.
void render_top(const Options& opts, const TopSample& sample,
                const analysis::JsonValue* previous, double dt_s, long poll,
                const std::string& source) {
  if (!opts.plain) {
    std::printf("\x1b[2J\x1b[H");
  } else if (poll > 1) {
    std::printf("\n");
  }
  const analysis::JsonValue* engine = json_member(&sample.metrics, "engine");
  const analysis::JsonValue* prev_engine = json_member(previous, "engine");
  const analysis::JsonValue* obs = json_member(&sample.metrics, "obs");
  std::printf("gpowerctl top — %s   poll %ld, every %d ms\n", source.c_str(),
              poll, opts.top_interval_ms);
  std::printf("workers %.0f   queue depth %.0f\n\n",
              json_number(json_member(engine, "workers")),
              json_number(json_member(
                  json_member(obs, "gauges"), "engine.queue_depth")));

  // Engine counters with per-poll deltas.  The first frame has no
  // baseline: deltas and rates render as 0 rather than as the totals.
  static constexpr const char* kCounters[] = {
      "submitted",    "cache_hits", "jobs_computed",
      "replicas_run", "store_hits", "store_writes"};
  analysis::Table counters({"counter", "total", "delta", "per s"});
  for (const char* key : kCounters) {
    const double now = json_number(json_member(engine, key));
    const double before =
        prev_engine != nullptr ? json_number(json_member(prev_engine, key), now)
                               : now;
    const double delta = now - before;
    counters.add_row(key, {now, delta, dt_s > 0.0 ? delta / dt_s : 0.0}, 1);
  }
  counters.print(std::cout);

  std::printf(
      "\ntime (s): compute %.3f   queue wait %.3f   reduce %.3f   "
      "store r/w %.3f/%.3f\n",
      json_number(json_member(engine, "compute_seconds")),
      json_number(json_member(engine, "queue_wait_seconds")),
      json_number(json_member(engine, "reduce_seconds")),
      json_number(json_member(engine, "store_read_seconds")),
      json_number(json_member(engine, "store_write_seconds")));

  if (const analysis::JsonValue* latency = json_member(
          json_member(obs, "histograms"), "engine.replica_latency_ns")) {
    std::printf(
        "replica latency: p50 %.1f us   p95 %.1f us   p99 %.1f us   "
        "max %.1f us   (%.0f sample(s))\n",
        json_number(json_member(latency, "p50_ns")) * 1e-3,
        json_number(json_member(latency, "p95_ns")) * 1e-3,
        json_number(json_member(latency, "p99_ns")) * 1e-3,
        json_number(json_member(latency, "max_ns")) * 1e-3,
        json_number(json_member(latency, "count")));
  }
  const double dropped = json_number(
      json_member(json_member(obs, "gauges"), "obs.ring_dropped_total"));
  if (dropped > 0.0) {
    std::printf("WARNING: %.0f trace event(s) dropped (ring full)\n", dropped);
  }

  // Per-kind breakdown, kinds that have seen traffic only.
  if (const analysis::JsonValue* by_kind = json_member(engine, "by_kind")) {
    analysis::Table kinds({"kind", "submitted", "computed", "replicas",
                           "cache hits", "store hits", "compute (s)"});
    bool any = false;
    for (const std::string& kind : by_kind->keys()) {
      const analysis::JsonValue* k = by_kind->find(kind);
      if (json_number(json_member(k, "submitted")) == 0.0) continue;
      any = true;
      kinds.add_row(kind,
                    {json_number(json_member(k, "submitted")),
                     json_number(json_member(k, "jobs_computed")),
                     json_number(json_member(k, "replicas_run")),
                     json_number(json_member(k, "cache_hits")),
                     json_number(json_member(k, "store_hits")),
                     json_number(json_member(k, "compute_seconds"))},
                    2);
    }
    if (any) {
      std::printf("\n");
      kinds.print(std::cout);
    }
  }

  // Serve totals (process-wide obs counters) + the live session rows.
  if (const analysis::JsonValue* counters_block =
          json_member(obs, "counters");
      json_member(counters_block, "serve.requests") != nullptr) {
    std::printf(
        "\nserve: %.0f session(s) live, %.0f total   requests %.0f   "
        "results %.0f   dedup %.0f   store hits %.0f   streamed %.1f KiB\n",
        json_number(json_member(json_member(obs, "gauges"),
                                "serve.active_sessions")),
        json_number(json_member(counters_block, "serve.sessions")),
        json_number(json_member(counters_block, "serve.requests")),
        json_number(json_member(counters_block, "serve.results")),
        json_number(json_member(counters_block, "serve.dedup_hits")),
        json_number(json_member(counters_block, "serve.store_hits")),
        json_number(json_member(counters_block, "serve.bytes_streamed")) /
            1024.0);
  }
  if (sample.have_sessions && sample.sessions.size() > 0) {
    analysis::Table sessions({"session", "age (s)", "requests", "points",
                              "results", "errors", "dedup", "store",
                              "KiB out"});
    for (std::size_t i = 0; i < sample.sessions.size(); ++i) {
      const analysis::JsonValue& s = sample.sessions.at(i);
      sessions.add_row(
          "#" + std::to_string(
                    static_cast<long long>(json_number(s.find("id")))),
          {json_number(s.find("age_s")), json_number(s.find("requests")),
           json_number(s.find("points")), json_number(s.find("results")),
           json_number(s.find("errors")), json_number(s.find("dedup_hits")),
           json_number(s.find("store_hits")),
           json_number(s.find("bytes_streamed")) / 1024.0},
          1);
    }
    std::printf("\n");
    sessions.print(std::cout);
  }
  std::fflush(stdout);
}

/// Live terminal view: polls a serve socket's stats events (one persistent
/// connection, so the viewer is a single session server-side) or re-reads
/// a metrics JSON document, and renders deltas between polls.
int cmd_top(const Options& opts) {
  const bool socket_mode = !opts.socket_path.empty();
  if (socket_mode == !opts.metrics_file.empty()) {
    return spec_error(
        "top needs exactly one of --socket PATH or --metrics-file FILE");
  }
  std::string error;
  ServeStatsClient client;
  if (socket_mode && !client.connect_to(opts.socket_path, error)) {
    return spec_error("cannot connect: " + error);
  }
  const std::string source = socket_mode
                                 ? "serve " + opts.socket_path
                                 : "metrics file " + opts.metrics_file;
  analysis::JsonValue previous;
  bool have_previous = false;
  std::int64_t previous_ns = 0;
  for (long poll = 1; opts.top_count == 0 || poll <= opts.top_count; ++poll) {
    if (poll > 1) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.top_interval_ms));
    }
    TopSample sample;
    const bool ok = socket_mode ? client.poll(sample, error)
                                : read_metrics_file(opts.metrics_file, sample,
                                                    error);
    if (!ok) return spec_error(error);
    const std::int64_t now_ns = core::obs::now_ns();
    const double dt_s =
        have_previous ? static_cast<double>(now_ns - previous_ns) * 1e-9 : 0.0;
    render_top(opts, sample, have_previous ? &previous : nullptr, dt_s, poll,
               source);
    previous = std::move(sample.metrics);
    have_previous = true;
    previous_ns = now_ns;
  }
  return 0;
}

int cmd_dvfs(const Options& opts) {
  core::PatternSpec spec;
  if (!parse_pattern_or_die(opts, spec)) return 1;

  const auto builder = core::DvfsConfigBuilder()
                           .experiment(make_config(opts, spec))
                           .governor(opts.governor)
                           .timeline(opts.timeline)
                           .slice(opts.slice_s)
                           .pstates(opts.pstates);
  if (!builder.valid()) {
    std::fprintf(stderr, "gpowerctl: %s\n", builder.error().c_str());
    return 2;
  }

  // Spec-building shim: the flags assemble a spec document (printable with
  // --emit-spec for migration), which is parsed back and submitted through
  // the same type-erased path `gpowerctl run` uses.
  const analysis::JsonValue spec_doc =
      core::spec_to_json(core::ScenarioConfig(builder.build()));
  if (opts.emit_spec) {
    std::printf("%s\n", spec_doc.dump(/*pretty=*/true).c_str());
    return 0;
  }
  const core::SpecParseResult parsed_spec = core::parse_scenario_spec(spec_doc);
  if (!parsed_spec.ok) {
    return spec_error("internal spec round-trip failed: " + parsed_spec.error);
  }
  const core::DvfsConfig config = parsed_spec.spec.config.dvfs();

  core::ExperimentEngine engine = make_engine(opts);
  const core::DvfsHandle run = engine.submit_dvfs(config);

  // --json emits the requested governor's document alone; only the table
  // path pays for the reference replays.
  if (opts.json) {
    std::printf("%s\n", core::dvfs_to_json(config, run.get())
                            .dump(/*pretty=*/true)
                            .c_str());
    return 0;
  }

  // Both reference points batched alongside the requested governor:
  // fixed(0) is "prefer maximum performance", oracle() the clairvoyant
  // lower bound.
  core::DvfsConfig fixed_config = config;
  fixed_config.governor = gpusim::dvfs::GovernorConfig{};
  fixed_config.governor.policy = gpusim::dvfs::GovernorConfig::Policy::kFixed;
  fixed_config.governor.fixed_pstate = 0;
  const core::DvfsHandle fixed_run = engine.submit_dvfs(fixed_config);
  core::DvfsConfig oracle_config = config;
  oracle_config.governor = gpusim::dvfs::GovernorConfig{};
  oracle_config.governor.policy = gpusim::dvfs::GovernorConfig::Policy::kOracle;
  const core::DvfsHandle oracle_run = engine.submit_dvfs(oracle_config);
  engine.wait_all();

  const core::DvfsResult& result = run.get();

  std::printf("# gpowerctl dvfs: %s, %s, pattern: %s\n",
              std::string(gpusim::name(config.experiment.gpu)).c_str(),
              std::string(numeric::name(config.experiment.dtype)).c_str(),
              core::to_dsl(spec).c_str());
  std::printf("# governor: %s, %d P-state(s), slice %.0f ms, timeline %.2f s\n",
              gpusim::dvfs::to_dsl(config.governor).c_str(), config.pstates,
              config.slice_s * 1e3, config.timeline.duration_s());

  analysis::Table table({"t (s)", "offered", "util", "P", "clock", "power (W)",
                         "backlog (ms)"});
  const auto& slices = result.trace.slices;
  const std::size_t stride = std::max<std::size_t>(1, slices.size() / 24);
  for (std::size_t i = 0; i < slices.size(); i += stride) {
    const auto& s = slices[i];
    char label[32];
    std::snprintf(label, sizeof label, "%.2f", s.t_s);
    table.add_row(label,
                  {s.offered, s.utilization, static_cast<double>(s.pstate),
                   s.clock_frac, s.power_w, s.backlog_s * 1e3},
                  2);
  }
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const core::DvfsResult& fixed = fixed_run.get();
  const core::DvfsResult& oracle = oracle_run.get();
  const auto savings = [](double energy, double baseline) {
    return baseline > 0.0 ? (1.0 - energy / baseline) * 100.0 : 0.0;
  };
  if (result.truncated) {
    std::printf(
        "\nWARNING: replay hit the slice-cap backstop with work still "
        "queued;\nenergy/completion under-count the unserved tail\n");
  }
  std::printf(
      "\nsummary (%d seed(s)):\n"
      "  energy        %.2f J (std %.2f)   avg %.1f W   peak %.1f W\n"
      "  completion    %.3f s   max backlog %.1f ms   transitions %.1f\n"
      "  vs fixed-max  %.2f J -> %+.1f%% energy, %+.1f ms completion\n"
      "  vs oracle     %.2f J (gap %+.1f%%)\n",
      result.seeds, result.energy_j, result.energy_std_j, result.avg_power_w,
      result.peak_power_w, result.completion_s, result.backlog_max_s * 1e3,
      result.transitions, fixed.energy_j,
      -savings(result.energy_j, fixed.energy_j),
      (result.completion_s - fixed.completion_s) * 1e3, oracle.energy_j,
      -savings(result.energy_j, oracle.energy_j));
  return 0;
}

int cmd_fleet(const Options& opts) {
  core::PatternSpec spec;
  if (!parse_pattern_or_die(opts, spec)) return 1;

  // Phase-shift each device's copy of the timeline by a small stagger so
  // the fleet's demands are not synchronised — the regime where the
  // allocation policy actually matters (synchronised bursts degenerate
  // every allocator to uniform).
  const auto parsed_timeline = gpusim::dvfs::parse_timeline(opts.timeline);
  if (!parsed_timeline.ok) {
    std::fprintf(stderr, "gpowerctl: timeline DSL error at offset %zu: %s\n",
                 parsed_timeline.error_pos, parsed_timeline.error.c_str());
    return 2;
  }
  constexpr double kStaggerS = 0.05;

  core::FleetConfigBuilder builder;
  builder.experiment(make_config(opts, spec))
      .allocator(opts.allocator)
      .slice(opts.slice_s)
      .pstates(opts.pstates)
      .add_staggered_devices(parsed_timeline.timeline, opts.devices,
                             kStaggerS, kGpuByIndex[opts.gpu_index],
                             opts.governor);
  if (opts.cap_w > 0.0) builder.cap(opts.cap_w);
  gpusim::fleet::ThermalConfig thermal;
  thermal.enabled = opts.thermal;
  builder.thermal(thermal);
  if (!builder.valid()) {
    std::fprintf(stderr, "gpowerctl: %s\n", builder.error().c_str());
    return 2;
  }

  // Spec-building shim, exactly like cmd_dvfs: flags -> spec document ->
  // parse -> the shared type-erased submission path.
  const analysis::JsonValue spec_doc =
      core::spec_to_json(core::ScenarioConfig(builder.build()));
  if (opts.emit_spec) {
    std::printf("%s\n", spec_doc.dump(/*pretty=*/true).c_str());
    return 0;
  }
  const core::SpecParseResult parsed_spec = core::parse_scenario_spec(spec_doc);
  if (!parsed_spec.ok) {
    return spec_error("internal spec round-trip failed: " + parsed_spec.error);
  }
  const core::FleetConfig config = parsed_spec.spec.config.fleet();

  core::ExperimentEngine engine = make_engine(opts);
  const core::FleetHandle run = engine.submit_fleet(config);

  if (opts.json) {
    std::printf("%s\n", core::fleet_to_json(config, run.get())
                            .dump(/*pretty=*/true)
                            .c_str());
    return 0;
  }

  // The uncapped, thermal-matched fleet as the baseline: what the same
  // hardware would do with an unlimited site envelope.
  core::FleetConfig uncapped_config = config;
  uncapped_config.allocator.cap_w =
      std::numeric_limits<double>::infinity();
  const core::FleetHandle uncapped_run =
      engine.submit_fleet(uncapped_config);
  engine.wait_all();

  const core::FleetResult& result = run.get();

  std::printf("# gpowerctl fleet: %d x %s, %s, allocator %s",
              opts.devices,
              std::string(gpusim::name(kGpuByIndex[opts.gpu_index])).c_str(),
              std::string(numeric::name(config.experiment.dtype)).c_str(),
              std::string(
                  gpusim::fleet::name(config.allocator.policy))
                  .c_str());
  if (config.allocator.capped()) {
    std::printf(", cap %.0f W", config.allocator.cap_w);
  } else {
    std::printf(", uncapped");
  }
  std::printf(", thermal %s\n", config.thermal.enabled ? "on" : "off");
  std::printf("# timeline: %s (staggered %.0f ms/device)\n",
              opts.timeline.c_str(), kStaggerS * 1e3);

  analysis::Table table({"device", "energy (J)", "avg W", "completion (s)",
                         "backlog (ms)", "peak T (C)", "throttled",
                         "clamped"});
  for (std::size_t i = 0; i < result.devices.size(); ++i) {
    const core::FleetDeviceSummary& device = result.devices[i];
    char label[32];
    std::snprintf(label, sizeof label, "gpu%zu", i);
    table.add_row(label,
                  {device.energy_j, device.avg_power_w, device.completion_s,
                   device.backlog_max_s * 1e3, device.peak_temperature_c,
                   device.throttled_slices, device.budget_clamped_slices},
                  2);
  }
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const core::FleetResult& uncapped = uncapped_run.get();
  if (result.truncated) {
    std::printf(
        "\nWARNING: a device hit the slice-cap backstop with work still "
        "queued;\nenergy/completion under-count the unserved tail\n");
  }
  std::printf(
      "\nfleet summary (%d seed(s)):\n"
      "  energy        %.2f J (std %.2f)   avg %.1f W   peak %.1f W\n"
      "  completion    %.3f s   max backlog %.1f ms   transitions %.1f\n"
      "  SLO backlog   p99 across devices %.1f ms\n"
      "  over-cap      %.1f slice(s) (idle-floor physics)\n"
      "  vs uncapped   %.2f J energy, %.3f s completion, peak %.1f W\n",
      result.seeds, result.energy_j, result.energy_std_j, result.avg_power_w,
      result.peak_power_w, result.completion_s, result.backlog_max_s * 1e3,
      result.transitions, result.backlog_p99_s * 1e3, result.over_cap_slices,
      uncapped.energy_j, uncapped.completion_s, uncapped.peak_power_w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string error;
  if (!parse_args(argc, argv, opts, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return usage(argv[0]);
  }
  // Flags win over the GPUPOWER_TRACE / GPUPOWER_METRICS environment:
  // apply them before any engine construction runs obs::init_from_env(),
  // which only fills still-default knobs.
  if (!opts.trace_out.empty()) core::obs::set_trace_path(opts.trace_out);
  if (!opts.metrics_out.empty()) core::obs::set_metrics_enabled(true);
  if (opts.command == "discovery") return cmd_discovery();
  if (opts.command == "dmon") return cmd_dmon(opts);
  if (opts.command == "sweep") return cmd_sweep(opts);
  if (opts.command == "features") return cmd_features(opts);
  if (opts.command == "predict") return cmd_predict(opts);
  if (opts.command == "dvfs") return cmd_dvfs(opts);
  if (opts.command == "fleet") return cmd_fleet(opts);
  if (opts.command == "run") return cmd_run(opts);
  if (opts.command == "validate") return cmd_validate(opts);
  if (opts.command == "serve") return cmd_serve(opts);
  if (opts.command == "top") return cmd_top(opts);
  std::fprintf(stderr, "error: unknown command '%s'\n", opts.command.c_str());
  return usage(argv[0]);
}
