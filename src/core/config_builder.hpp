// ExperimentConfigBuilder: fluent, validating construction of
// ExperimentConfig — the front door of the ExperimentEngine API.  Composes
// GPU model, datatype, problem size, seeds, and the input pattern given
// either as a PatternSpec or as a pattern-DSL string (core/pattern_dsl.hpp),
// so callers never hand-assemble configs or hand-parse DSL.
//
//   const auto config = ExperimentConfigBuilder()
//                           .gpu(gpusim::GpuModel::kA100PCIe)
//                           .dtype("fp16t")
//                           .n(2048)
//                           .seeds(10)
//                           .pattern("gaussian(sigma=210) | sparsity(25%)")
//                           .build();
//
// Errors (bad DSL, out-of-range sizes, unknown dtype names) are collected
// rather than thrown: check `valid()` / `error()`, or use `try_build()`.
// The first error encountered wins, pointing at the root cause.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/dvfs_experiment.hpp"
#include "core/env.hpp"
#include "core/experiment.hpp"
#include "core/fleet_experiment.hpp"

namespace gpupower::core {

class ExperimentConfigBuilder {
 public:
  ExperimentConfigBuilder() = default;

  ExperimentConfigBuilder& gpu(gpupower::gpusim::GpuModel model);
  ExperimentConfigBuilder& dtype(gpupower::numeric::DType dtype);
  /// Parses "fp32" / "fp16" / "fp16t" / "int8"; unknown names record an
  /// error.
  ExperimentConfigBuilder& dtype(std::string_view name);
  ExperimentConfigBuilder& n(std::size_t n);
  ExperimentConfigBuilder& seeds(int seeds);
  /// 0 keeps the paper default (20k FP16-T, 10k others).
  ExperimentConfigBuilder& iterations(std::size_t iterations);
  ExperimentConfigBuilder& base_seed(std::uint64_t seed);
  ExperimentConfigBuilder& pattern(const PatternSpec& spec);
  /// Parses a pattern-DSL string; parse failures record the parser's
  /// message and byte offset.
  ExperimentConfigBuilder& pattern(std::string_view dsl);
  ExperimentConfigBuilder& sampling(const gpupower::gpusim::SamplingPlan& plan);
  ExperimentConfigBuilder& sampler(const telemetry::SamplerConfig& config);
  ExperimentConfigBuilder& variation(
      const gpupower::gpusim::ProcessVariation& variation);
  /// Applies the GPUPOWER_* environment knobs (n, seeds, sampling plan)
  /// through the validating setters, so out-of-range values recorded into a
  /// BenchEnv by hand (e.g. from CLI flags) surface as builder errors.
  ExperimentConfigBuilder& env(const BenchEnv& env);

  [[nodiscard]] bool valid() const noexcept { return error_.empty(); }
  /// First validation error, empty when valid().
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// The assembled config.  Call only when valid(); on an invalid builder
  /// this still returns the partially-assembled config, so prefer
  /// try_build() when the inputs are untrusted.
  [[nodiscard]] ExperimentConfig build() const { return config_; }
  /// std::nullopt when any setter recorded an error.
  [[nodiscard]] std::optional<ExperimentConfig> try_build() const;

 private:
  void fail(std::string message);

  ExperimentConfig config_;
  std::string error_;
};

/// Fluent, validating construction of DvfsConfig — the front door of the
/// DVFS timeline API.  Wraps an ExperimentConfig (hand over a built one, or
/// inherit the builder's defaults) and adds the governor, timeline, slice,
/// and P-state knobs, with the governor and timeline DSLs parsed and
/// validated in place.  Error handling matches ExperimentConfigBuilder:
/// first error wins, check valid()/error() or use try_build().
///
///   const auto config = DvfsConfigBuilder()
///                           .experiment(experiment_config)
///                           .governor("utilization(up=80%, down=30%)")
///                           .timeline("burst(period=0.2, duty=30%, dur=2)")
///                           .slice(0.01)
///                           .pstates(5)
///                           .build();
class DvfsConfigBuilder {
 public:
  DvfsConfigBuilder() = default;

  DvfsConfigBuilder& experiment(const ExperimentConfig& config);
  DvfsConfigBuilder& governor(const gpupower::gpusim::dvfs::GovernorConfig& config);
  /// Parses the governor DSL (fixed | utilization | oracle).
  DvfsConfigBuilder& governor(std::string_view dsl);
  DvfsConfigBuilder& timeline(const gpupower::gpusim::dvfs::WorkloadTimeline& timeline);
  /// Parses the timeline DSL (constant | idle | burst | ramp stages).
  DvfsConfigBuilder& timeline(std::string_view dsl);
  /// Appends a phase pattern the timeline references by index (the DSL's
  /// `pattern=K` stage key; K is the append order).
  DvfsConfigBuilder& add_phase_pattern(const PatternSpec& spec);
  /// Parses a pattern-DSL string and appends it.
  DvfsConfigBuilder& add_phase_pattern(std::string_view dsl);
  /// Replay time step in seconds, [1e-6, 10].
  DvfsConfigBuilder& slice(double slice_s);
  /// P-state table depth, [1, 16]; 1 is the DVFS-disabled degenerate case.
  DvfsConfigBuilder& pstates(int count);

  /// A timeline is required: a builder that never received one is invalid
  /// (there is no sensible default workload to replay).  A timeline phase
  /// referencing a pattern index beyond the added phase patterns is a
  /// dangling cross-reference, also invalid.
  [[nodiscard]] bool valid() const noexcept {
    return error_.empty() && !config_.timeline.empty() &&
           config_.timeline.max_pattern_index() <
               static_cast<int>(config_.phase_patterns.size());
  }
  [[nodiscard]] const std::string& error() const noexcept;

  [[nodiscard]] DvfsConfig build() const { return config_; }
  [[nodiscard]] std::optional<DvfsConfig> try_build() const;

 private:
  void fail(std::string message);

  DvfsConfig config_;
  std::string error_;
};

/// Fluent, validating construction of FleetConfig — the front door of the
/// fleet power-capping API.  Wraps an ExperimentConfig (the shared working
/// point), collects timelines and devices by append order, and adds the
/// allocator/cap, thermal model, and replay knobs, with every DSL parsed
/// and validated in place.  Error handling matches the other builders:
/// first error wins, check valid()/error() or use try_build().
///
///   const auto config = FleetConfigBuilder()
///                           .experiment(experiment_config)
///                           .add_timeline("burst(period=0.4, duty=30%, dur=2)")
///                           .add_device(gpusim::GpuModel::kA100PCIe,
///                                       "utilization(up=80%, down=30%)")
///                           .add_device(gpusim::GpuModel::kA100PCIe,
///                                       "utilization(up=80%, down=30%)")
///                           .allocator("proportional")
///                           .cap(450.0)
///                           .thermal(thermal_config)
///                           .build();
class FleetConfigBuilder {
 public:
  FleetConfigBuilder() = default;

  FleetConfigBuilder& experiment(const ExperimentConfig& config);
  /// Appends a timeline; devices reference timelines by append order.
  FleetConfigBuilder& add_timeline(
      const gpupower::gpusim::dvfs::WorkloadTimeline& timeline);
  FleetConfigBuilder& add_timeline(std::string_view dsl);
  FleetConfigBuilder& add_device(const FleetDeviceConfig& device);
  /// Appends a device with its governor given as DSL; `timeline` indexes
  /// the add_timeline order.
  FleetConfigBuilder& add_device(gpupower::gpusim::GpuModel gpu,
                                 std::string_view governor_dsl,
                                 int timeline = 0, int priority = 0);
  /// Appends `count` identical devices, each replaying its own copy of
  /// `timeline` delayed by i * stagger_s (an idle prefix) with priority
  /// count - i — the phase-shifted fleet shape where allocation policy
  /// actually matters (synchronised bursts degenerate every allocator to
  /// uniform).  Shared by `gpowerctl fleet` and `fig_fleet_capping` so
  /// the CLI and the committed benchmark mean the same thing by "a
  /// staggered fleet".
  FleetConfigBuilder& add_staggered_devices(
      const gpupower::gpusim::dvfs::WorkloadTimeline& timeline, int count,
      double stagger_s, gpupower::gpusim::GpuModel gpu,
      std::string_view governor_dsl);
  FleetConfigBuilder& allocator(
      const gpupower::gpusim::fleet::AllocatorConfig& config);
  /// Parses "uniform" | "proportional" | "priority" | "greedy" (keeps the
  /// current cap).
  FleetConfigBuilder& allocator(std::string_view policy);
  /// Shared fleet power cap in watts; infinity = uncapped.
  FleetConfigBuilder& cap(double cap_w);
  FleetConfigBuilder& thermal(
      const gpupower::gpusim::fleet::ThermalConfig& config);
  /// Appends a phase pattern every timeline can reference by index.
  FleetConfigBuilder& add_phase_pattern(const PatternSpec& spec);
  FleetConfigBuilder& add_phase_pattern(std::string_view dsl);
  /// Replay time step in seconds, [1e-6, 10].
  FleetConfigBuilder& slice(double slice_s);
  /// P-state table depth, [1, 16].
  FleetConfigBuilder& pstates(int count);

  /// Valid iff no setter recorded an error and validate_fleet_config
  /// accepts the assembled cross-references.
  [[nodiscard]] bool valid() const noexcept;
  [[nodiscard]] std::string error() const;

  [[nodiscard]] FleetConfig build() const { return config_; }
  [[nodiscard]] std::optional<FleetConfig> try_build() const;

 private:
  void fail(std::string message);

  FleetConfig config_;
  std::string error_;
};

/// Canonical cache key for a config: the pattern serialised through
/// `to_dsl` (human-readable) plus every scalar field that influences the
/// result — including the pattern's raw scalars — at "%.17g" precision so
/// distinct configs never collide.  Two configs with equal keys produce
/// bit-identical ExperimentResults.
[[nodiscard]] std::string canonical_config_key(const ExperimentConfig& config);

/// One pattern's raw scalars at "%.17g" precision — the `praw` fragment of
/// canonical_config_key, reused by the DVFS/fleet keys for the per-phase
/// pattern lists.
[[nodiscard]] std::string pattern_raw_key(const PatternSpec& pattern);

}  // namespace gpupower::core
