#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gpupower::core {
namespace {

[[noreturn]] void die(const char* name, const char* raw, const char* expect) {
  std::fprintf(stderr, "gpupower: invalid %s='%s' (expected %s)\n", name, raw,
               expect);
  std::exit(2);
}

long read_long(const char* name, long fallback, long min, long max,
               const char* expect) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < min || v > max) {
    die(name, raw, expect);
  }
  return v;
}

double read_double(const char* name, double fallback, double min, double max,
                   const char* expect) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(v > min) || !(v <= max)) {
    die(name, raw, expect);
  }
  return v;
}

}  // namespace

BenchEnv read_bench_env() {
  BenchEnv env;
  env.n = static_cast<std::size_t>(read_long(
      "GPUPOWER_N", 512, 64, 65536, "integer matrix size in [64, 65536]"));
  env.seeds = static_cast<int>(read_long("GPUPOWER_SEEDS", 2, 1, 10000,
                                         "integer seed count in [1, 10000]"));
  env.tiles = static_cast<std::size_t>(
      read_long("GPUPOWER_TILES", 12, 0, 1000000,
                "integer tile budget in [0, 1000000]; 0 = exact walk"));
  env.k_fraction = read_double("GPUPOWER_KFRAC", 0.5, 0.0, 1.0,
                               "fraction in (0, 1]");
  env.workers = static_cast<int>(
      read_long("GPUPOWER_WORKERS", 0, 0, 256,
                "worker count in [0, 256]; 0 = hardware concurrency"));
  env.csv = std::getenv("GPUPOWER_CSV") != nullptr;
  return env;
}

bool env_is_set(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0';
}

StoreEnv read_store_env() {
  StoreEnv env;
  const char* dir = std::getenv("GPUPOWER_STORE_DIR");
  if (dir != nullptr) env.dir = dir;

  const char* raw = std::getenv("GPUPOWER_STORE");
  bool on = true;
  if (raw != nullptr && *raw != '\0') {
    const std::string value(raw);
    if (value == "on") {
      on = true;
    } else if (value == "off") {
      on = false;
    } else {
      die("GPUPOWER_STORE", raw, "'on' or 'off'");
    }
  }
  if (on && raw != nullptr && *raw != '\0' && env.dir.empty()) {
    // An explicit 'on' with nowhere to store is a misconfiguration, not a
    // silent no-op.
    die("GPUPOWER_STORE", raw, "GPUPOWER_STORE_DIR to also be set");
  }
  env.enabled = on && !env.dir.empty();
  env.max_bytes = static_cast<std::size_t>(
      read_long("GPUPOWER_STORE_MAX_BYTES", 0, 0, 1ll << 62,
                "integer byte budget >= 0; 0 = unlimited"));
  return env;
}

ObsEnv read_obs_env() {
  ObsEnv env;
  const char* trace = std::getenv("GPUPOWER_TRACE");
  if (trace != nullptr) env.trace_path = trace;

  const char* raw = std::getenv("GPUPOWER_METRICS");
  if (raw != nullptr && *raw != '\0') {
    const std::string value(raw);
    if (value == "on") {
      env.metrics = true;
    } else if (value == "off") {
      env.metrics = false;
    } else {
      die("GPUPOWER_METRICS", raw, "'on' or 'off'");
    }
    env.metrics_set = true;
  }
  return env;
}

}  // namespace gpupower::core
