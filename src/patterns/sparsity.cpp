#include "patterns/sparsity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "patterns/placement.hpp"
#include "patterns/rng.hpp"

namespace gpupower::patterns {

void sparsify(std::vector<float>& data, double fraction, std::uint64_t seed) {
  const std::size_t n = data.size();
  const auto k = static_cast<std::size_t>(
      std::llround(std::clamp(fraction, 0.0, 1.0) * static_cast<double>(n)));
  if (k == 0) return;

  // Partial Fisher-Yates: choose k distinct positions.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.uniform_below(n - i);
    std::swap(idx[i], idx[j]);
    data[idx[i]] = 0.0f;
  }
}

void sparsify_after_sort(std::vector<float>& data, double fraction,
                         std::uint64_t seed) {
  full_sort(data);
  sparsify(data, fraction, seed);
}

void sparsify_2_4(std::vector<float>& data) {
  const std::size_t groups = data.size() / 4;
  for (std::size_t g = 0; g < groups; ++g) {
    float* p = data.data() + g * 4;
    // Indices of the two smallest magnitudes within the group of four.
    std::size_t order[4] = {0, 1, 2, 3};
    std::stable_sort(order, order + 4, [&](std::size_t a, std::size_t b) {
      return std::fabs(p[a]) < std::fabs(p[b]);
    });
    p[order[0]] = 0.0f;
    p[order[1]] = 0.0f;
  }
}

double measured_sparsity(const std::vector<float>& data) {
  if (data.empty()) return 0.0;
  const auto zeros = static_cast<double>(
      std::count(data.begin(), data.end(), 0.0f));
  return zeros / static_cast<double>(data.size());
}

}  // namespace gpupower::patterns
