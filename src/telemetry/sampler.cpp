#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "patterns/rng.hpp"

namespace gpupower::telemetry {

double min_duration_s(const SamplerConfig& cfg, std::size_t min_samples) {
  return cfg.warmup_trim_s +
         cfg.period_s * static_cast<double>(min_samples);
}

PowerTrace sample_run(const gpupower::gpusim::PowerReport& report,
                      std::size_t iterations, const SamplerConfig& cfg) {
  PowerTrace trace;
  const double duration =
      std::max(report.realized_iteration_s * static_cast<double>(iterations),
               min_duration_s(cfg));
  patterns::Xoshiro256 rng(cfg.seed);
  const double steady = report.total_w;
  const double idle = report.idle_w;
  for (double t = 0.0; t <= duration; t += cfg.period_s) {
    // First-order thermal/electrical ramp from idle toward steady state.
    const double ramp = 1.0 - std::exp(-t / std::max(cfg.ramp_tau_s, 1e-6));
    const double true_w = idle + (steady - idle) * ramp;
    const double measured = true_w + rng.gaussian(0.0, cfg.noise_sigma_w);
    trace.push(t, measured);
  }
  return trace;
}

double reported_power_w(const PowerTrace& trace, const SamplerConfig& cfg) {
  return trace.trimmed(cfg.warmup_trim_s).mean_w();
}

}  // namespace gpupower::telemetry
