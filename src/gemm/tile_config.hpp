// CUTLASS-style tiling hierarchy.  The kernels decompose the output into
// threadblock tiles, each threadblock iterates over K-slices of the A and B
// operands, and within a slice work is issued either as per-thread FMA
// streams (SIMT kernels: FP32, FP16) or as tensor-core MMA fragments
// (FP16-T, INT8).  The traversal order defined here is shared between the
// compute kernel and the power simulator's activity walker, because operand
// bus toggle counts depend on exactly this streaming order.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dtype.hpp"

namespace gpupower::gemm {

/// Shape of one tile level, in elements of the output (M, N) and the inner
/// dimension (K).
struct TileShape {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// Tensor-core MMA instruction shape (per-instruction fragment).
struct MmaShape {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// Per-datatype kernel tiling configuration, mirroring the default CUTLASS
/// device-level GEMM configurations for each data path.
struct TileConfig {
  TileShape threadblock;
  TileShape warp;
  MmaShape mma;          ///< 1x1x1 for SIMT paths
  bool tensor_core = false;

  [[nodiscard]] static TileConfig for_dtype(gpupower::numeric::DType t) noexcept {
    using gpupower::numeric::DType;
    switch (t) {
      case DType::kFP32:
        // cutlass_simt_sgemm_128x128_8x2
        return {{128, 128, 8}, {64, 32, 8}, {1, 1, 1}, false};
      case DType::kFP16:
        // SIMT half path
        return {{128, 128, 8}, {64, 32, 8}, {1, 1, 1}, false};
      case DType::kFP16T:
        // cutlass_tensorop_h16816gemm_128x128_32x4 (HMMA m16n8k16)
        return {{128, 128, 32}, {64, 64, 32}, {16, 8, 16}, true};
      case DType::kINT8:
        // cutlass_tensorop_i16832gemm (IMMA m16n8k32)
        return {{128, 128, 64}, {64, 64, 64}, {16, 8, 32}, true};
    }
    return {{128, 128, 8}, {64, 32, 8}, {1, 1, 1}, false};
  }
};

/// One threadblock tile's coordinates in the output grid.
struct TileCoord {
  std::size_t row = 0;  ///< starting output row
  std::size_t col = 0;  ///< starting output column
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Enumerates threadblock tiles covering an n x m output, in the row-major
/// rasterisation order CUTLASS's default threadblock swizzle approximates.
[[nodiscard]] inline std::vector<TileCoord> enumerate_tiles(
    std::size_t n, std::size_t m, const TileShape& tb) {
  std::vector<TileCoord> tiles;
  for (std::size_t r = 0; r < n; r += tb.m) {
    for (std::size_t c = 0; c < m; c += tb.n) {
      tiles.push_back(TileCoord{r, c, std::min(tb.m, n - r), std::min(tb.n, m - c)});
    }
  }
  return tiles;
}

}  // namespace gpupower::gemm
