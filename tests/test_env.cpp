#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gpupower::core {
namespace {

class EnvGuard {
 public:
  ~EnvGuard() {
    unsetenv("GPUPOWER_N");
    unsetenv("GPUPOWER_SEEDS");
    unsetenv("GPUPOWER_TILES");
    unsetenv("GPUPOWER_KFRAC");
    unsetenv("GPUPOWER_CSV");
  }
};

TEST(BenchEnvTest, Defaults) {
  EnvGuard guard;
  const BenchEnv env = read_bench_env();
  EXPECT_EQ(env.n, 512u);
  EXPECT_EQ(env.seeds, 2);
  EXPECT_EQ(env.tiles, 12u);
  EXPECT_DOUBLE_EQ(env.k_fraction, 0.5);
  EXPECT_FALSE(env.csv);
}

TEST(BenchEnvTest, ReadsOverrides) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "2048", 1);
  setenv("GPUPOWER_SEEDS", "10", 1);
  setenv("GPUPOWER_TILES", "0", 1);
  setenv("GPUPOWER_KFRAC", "1.0", 1);
  setenv("GPUPOWER_CSV", "1", 1);
  const BenchEnv env = read_bench_env();
  EXPECT_EQ(env.n, 2048u);
  EXPECT_EQ(env.seeds, 10);
  EXPECT_EQ(env.tiles, 0u);  // 0 = exact walk
  EXPECT_DOUBLE_EQ(env.k_fraction, 1.0);
  EXPECT_TRUE(env.csv);
}

TEST(BenchEnvTest, RejectsGarbageAndClamps) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "potato", 1);
  setenv("GPUPOWER_SEEDS", "-3", 1);
  setenv("GPUPOWER_KFRAC", "0", 1);  // non-positive -> default
  const BenchEnv env = read_bench_env();
  EXPECT_EQ(env.n, 512u);
  EXPECT_GE(env.seeds, 1);
  EXPECT_DOUBLE_EQ(env.k_fraction, 0.5);

  setenv("GPUPOWER_N", "8", 1);  // below the floor
  EXPECT_GE(read_bench_env().n, 64u);
}

TEST(BenchEnvTest, ApplyConfiguresExperiment) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "256", 1);
  setenv("GPUPOWER_SEEDS", "4", 1);
  setenv("GPUPOWER_TILES", "6", 1);
  const BenchEnv env = read_bench_env();
  ExperimentConfig config;
  env.apply(config);
  EXPECT_EQ(config.n, 256u);
  EXPECT_EQ(config.seeds, 4);
  EXPECT_EQ(config.sampling.max_tiles, 6u);
}

}  // namespace
}  // namespace gpupower::core
