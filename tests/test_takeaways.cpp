// Integration suite: the paper's takeaways T1-T15 as executable assertions.
// Each test reproduces one Section IV observation at reduced scale (128-192
// matrices, exact activity walk) and checks the *direction* of the effect —
// the reproduction contract is shapes and orderings, not absolute watts.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/figures.hpp"

namespace gpupower::core {
namespace {

using gpupower::numeric::DType;

constexpr std::size_t kN = 128;

double power_of(const PatternSpec& spec, DType dtype, std::size_t n = kN) {
  ExperimentConfig config;
  config.dtype = dtype;
  config.n = n;
  config.seeds = 3;
  config.pattern = spec;
  config.sampler.noise_sigma_w = 0.0;  // directional checks want no noise
  return run_experiment(config).power_w;
}

TEST(Takeaways, T1_StddevDoesNotSignificantlyChangePower) {
  // Fig. 3a: vary sigma over four orders of magnitude at mean 0.
  PatternSpec lo = baseline_gaussian_spec();
  lo.sigma = 4.0;
  PatternSpec hi = baseline_gaussian_spec();
  hi.sigma = 16384.0;
  for (const DType dtype : {DType::kFP16, DType::kFP32}) {
    const double p_lo = power_of(lo, dtype);
    const double p_hi = power_of(hi, dtype);
    EXPECT_NEAR(p_lo, p_hi, 0.08 * p_lo)
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T2_LargerMeanReducesFpPower) {
  // Fig. 3b: mean 4096 with sigma 1 versus mean 0.
  PatternSpec baseline = baseline_gaussian_spec();
  baseline.sigma = 1.0;
  PatternSpec shifted = baseline;
  shifted.mean = 4096.0;
  for (const DType dtype : {DType::kFP16, DType::kFP16T}) {
    EXPECT_LT(power_of(shifted, dtype), power_of(baseline, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T3_SmallValueSetsReducePower) {
  PatternSpec small_set = baseline_gaussian_spec();
  small_set.value = PatternSpec::Value::kValueSet;
  small_set.set_size = 2;
  PatternSpec large_set = small_set;
  large_set.set_size = 4096;
  for (const DType dtype : {DType::kFP16, DType::kFP16T, DType::kINT8}) {
    EXPECT_LT(power_of(small_set, dtype), power_of(large_set, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T4_SimilarBitsUseLessPower) {
  // Fig. 4a: constant fill (0 flips) vs heavily flipped bits.
  PatternSpec constant = baseline_gaussian_spec();
  constant.value = PatternSpec::Value::kConstant;
  PatternSpec flipped = constant;
  flipped.bitop = PatternSpec::BitOp::kFlipRandom;
  flipped.bit_fraction = 0.5;
  for (const DType dtype : gpupower::numeric::kAllDTypes) {
    EXPECT_LT(power_of(constant, dtype), power_of(flipped, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T5_MoreRandomLsbsMorePower) {
  PatternSpec base = baseline_gaussian_spec();
  base.value = PatternSpec::Value::kConstant;
  base.bitop = PatternSpec::BitOp::kRandomizeLow;
  double prev = 0.0;
  for (const double frac : {0.0, 0.25, 0.5, 1.0}) {
    PatternSpec spec = base;
    spec.bit_fraction = frac;
    const double p = power_of(spec, DType::kFP16);
    EXPECT_GT(p, prev) << "fraction " << frac;
    prev = p;
  }
}

TEST(Takeaways, T6_MoreRandomMsbsMorePower) {
  PatternSpec base = baseline_gaussian_spec();
  base.value = PatternSpec::Value::kConstant;
  base.bitop = PatternSpec::BitOp::kRandomizeHigh;
  PatternSpec few = base, many = base;
  few.bit_fraction = 0.125;
  many.bit_fraction = 0.75;
  for (const DType dtype : {DType::kFP16, DType::kFP16T}) {
    EXPECT_LT(power_of(base, dtype), power_of(few, dtype));
    EXPECT_LT(power_of(few, dtype), power_of(many, dtype));
  }
}

TEST(Takeaways, T7_Fp16TensorIsMostPowerHungry) {
  // Fig. 4 observation, at full occupancy so datapath rates dominate.
  const PatternSpec spec = baseline_gaussian_spec();
  ExperimentConfig config;
  config.n = 256;
  config.seeds = 2;
  config.pattern = spec;
  config.sampling = gpupower::gpusim::SamplingPlan::fast(16, 0.5);
  // Compare at the paper's shape via the calculator's full-occupancy
  // regime: use 2048 with sampling.
  config.n = 2048;
  double fp16t = 0.0;
  for (const DType dtype : gpupower::numeric::kAllDTypes) {
    config.dtype = dtype;
    const double p = run_experiment(config).power_w;
    if (dtype == DType::kFP16T) {
      fp16t = p;
    }
  }
  for (const DType dtype : {DType::kFP32, DType::kFP16, DType::kINT8}) {
    config.dtype = dtype;
    EXPECT_LT(run_experiment(config).power_w, fp16t)
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T8_SortingIntoRowsReducesPower) {
  PatternSpec unsorted = baseline_gaussian_spec();
  unsorted.transpose_b = false;
  PatternSpec sorted = unsorted;
  sorted.place = PatternSpec::Place::kSortRows;
  sorted.sort_percent = 100.0;
  for (const DType dtype : gpupower::numeric::kAllDTypes) {
    EXPECT_LT(power_of(sorted, dtype), power_of(unsorted, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T9_AlignedSortingReducesMoreThanSorting) {
  PatternSpec sorted_rows = baseline_gaussian_spec();
  sorted_rows.place = PatternSpec::Place::kSortRows;
  sorted_rows.sort_percent = 100.0;
  sorted_rows.transpose_b = false;  // Fig. 5a
  PatternSpec aligned = sorted_rows;
  aligned.transpose_b = true;  // Fig. 5b
  for (const DType dtype : {DType::kFP16, DType::kFP16T}) {
    EXPECT_LT(power_of(aligned, dtype), power_of(sorted_rows, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T10_ColumnSortingReducesPower) {
  PatternSpec unsorted = baseline_gaussian_spec();
  unsorted.transpose_b = false;
  PatternSpec sorted = unsorted;
  sorted.place = PatternSpec::Place::kSortColumns;
  sorted.sort_percent = 100.0;
  EXPECT_LT(power_of(sorted, DType::kFP16), power_of(unsorted, DType::kFP16));
}

TEST(Takeaways, T11_IntraRowSortingHelpsLessThanFullSorting) {
  PatternSpec within = baseline_gaussian_spec();
  within.place = PatternSpec::Place::kSortWithinRows;
  within.sort_percent = 100.0;
  PatternSpec full = baseline_gaussian_spec();
  full.place = PatternSpec::Place::kSortRows;
  full.sort_percent = 100.0;
  const PatternSpec baseline = baseline_gaussian_spec();
  const double p_within = power_of(within, DType::kFP16);
  const double p_full = power_of(full, DType::kFP16);
  const double p_base = power_of(baseline, DType::kFP16);
  EXPECT_LT(p_within, p_base);  // intra-row sorting still helps...
  EXPECT_LT(p_full, p_within);  // ...but less than sorting fully
}

TEST(Takeaways, T12_SparsityReducesPower) {
  const PatternSpec dense = baseline_gaussian_spec();
  PatternSpec sparse = dense;
  sparse.sparsity = 0.9;
  for (const DType dtype : gpupower::numeric::kAllDTypes) {
    EXPECT_LT(power_of(sparse, dtype), power_of(dense, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T13_SparsityOnSortedInputsPeaksMidway) {
  // Fig. 6b: the hump — mid sparsity draws more power than either endpoint
  // for FP datatypes.
  PatternSpec base = baseline_gaussian_spec();
  base.place = PatternSpec::Place::kFullSort;
  PatternSpec mid = base;
  mid.sparsity = 0.35;
  PatternSpec full = base;
  full.sparsity = 1.0;
  for (const DType dtype : {DType::kFP16, DType::kFP16T}) {
    const double p0 = power_of(base, dtype);
    const double p35 = power_of(mid, dtype);
    const double p100 = power_of(full, dtype);
    EXPECT_GT(p35, p0) << gpupower::numeric::name(dtype);
    EXPECT_GT(p35, p100) << gpupower::numeric::name(dtype);
  }
  // FP32's 23-bit mantissa leaves sorted neighbours less bit-similar, so its
  // hump is shallower and peaks earlier; check it at a larger size where the
  // sorted stream is smooth enough to expose it.
  {
    PatternSpec early = base;
    early.sparsity = 0.20;
    const double p0 = power_of(base, DType::kFP32, 384);
    const double p20 = power_of(early, DType::kFP32, 384);
    const double p100 = power_of(full, DType::kFP32, 384);
    EXPECT_GT(p20, p0);
    EXPECT_GT(p20, p100);
  }
}

TEST(Takeaways, T14_ZeroingLsbsReducesPower) {
  const PatternSpec base = baseline_gaussian_spec();
  PatternSpec zeroed = base;
  zeroed.bitop = PatternSpec::BitOp::kZeroLow;
  zeroed.bit_fraction = 0.5;
  for (const DType dtype : gpupower::numeric::kAllDTypes) {
    EXPECT_LT(power_of(zeroed, dtype), power_of(base, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, T15_ZeroingMsbsReducesPower) {
  const PatternSpec base = baseline_gaussian_spec();
  PatternSpec zeroed = base;
  zeroed.bitop = PatternSpec::BitOp::kZeroHigh;
  zeroed.bit_fraction = 0.25;
  for (const DType dtype : {DType::kFP16, DType::kFP16T, DType::kINT8}) {
    EXPECT_LT(power_of(zeroed, dtype), power_of(base, dtype))
        << gpupower::numeric::name(dtype);
  }
}

TEST(Takeaways, Fig1_RuntimeIsInputIndependent) {
  // Identical shapes, wildly different inputs: identical iteration time.
  ExperimentConfig config;
  config.dtype = DType::kFP16;
  config.n = kN;
  config.seeds = 1;
  config.pattern = baseline_gaussian_spec();
  const double t_random = run_experiment(config).iteration_s;
  config.pattern.sparsity = 1.0;
  const double t_zero = run_experiment(config).iteration_s;
  EXPECT_DOUBLE_EQ(t_random, t_zero);
}

TEST(Takeaways, Fig8_AlignmentAndWeightCorrelateWithPower) {
  // Build the Fig. 8 scatter over a few sweeps and check the directional
  // correlations for FP16 (imperfect but present, per the paper).
  std::vector<double> alignment, weight, power;
  for (const auto fig : {FigureId::kFig4aRandomBitFlips,
                         FigureId::kFig6cLsbZeroed, FigureId::kFig6aSparsity}) {
    for (const auto& point : figure_sweep(fig)) {
      ExperimentConfig config;
      config.dtype = DType::kFP16;
      config.n = kN;
      config.seeds = 1;
      config.pattern = point.spec;
      const auto result = run_experiment(config);
      alignment.push_back(result.alignment);
      weight.push_back(result.weight_fraction);
      power.push_back(result.power_w);
    }
  }
  // Higher alignment <-> lower power; higher weight <-> higher power.
  double sxy_a = 0.0, sxy_w = 0.0;
  const double pm = [&] {
    double s = 0.0;
    for (const double p : power) s += p;
    return s / static_cast<double>(power.size());
  }();
  double am = 0.0, wm = 0.0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    am += alignment[i];
    wm += weight[i];
  }
  am /= static_cast<double>(power.size());
  wm /= static_cast<double>(power.size());
  for (std::size_t i = 0; i < power.size(); ++i) {
    sxy_a += (alignment[i] - am) * (power[i] - pm);
    sxy_w += (weight[i] - wm) * (power[i] - pm);
  }
  EXPECT_LT(sxy_a, 0.0);
  EXPECT_GT(sxy_w, 0.0);
}

}  // namespace
}  // namespace gpupower::core
