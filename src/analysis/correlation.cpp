#include "analysis/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace gpupower::analysis {
namespace {

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const auto rx = ranks(x.subspan(0, n));
  const auto ry = ranks(y.subspan(0, n));
  return pearson(rx, ry);
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

}  // namespace gpupower::analysis
