// Campaign DAGs (core/dag/): parse-time validation names the offending
// node and path (cycles, unknown `$ref` nodes, nested dags, duplicate
// names); run-time `$ref` resolution errors name the node and missing
// path; a diamond's shared upstream is computed exactly once through the
// engine cache (counters pinned); search nodes bisect deterministically
// and fail with pointed errors when the predicate cannot hold or the
// interval cannot close; and a dag run is bit-identical to the
// equivalent hand-sequenced submits, independent of worker count.
#include "core/dag/dag.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/scenario.hpp"
#include "core/spec.hpp"

namespace gpupower::core {
namespace {

/// A cheap static run document; placeholder fields are overridden by
/// substitutions in the tests below.
std::string static_run(const std::string& pattern, int base_seed) {
  return std::string(R"__({"scenario": "static", "experiment": {)__"
                     R"__("gpu": "a100", "dtype": "fp16", "n": 64, )__"
                     R"__("seeds": 2, "base_seed": )__") +
         std::to_string(base_seed) + R"__(, "pattern": ")__" + pattern +
         R"__(", "sampling": {"tiles": 6, "k_fraction": 0.5}}})__";
}

/// A one-device fleet run document with a numeric power cap — the search
/// tests bisect over "cap_w" (avg_power_w is monotone in the cap).
std::string fleet_run(const std::string& cap_w) {
  return std::string(
             R"__({"scenario": "fleet", "experiment": {)__"
             R"__("gpu": "a100", "dtype": "fp16", "n": 64, "seeds": 2, )__"
             R"__("pattern": "gaussian(sigma=210) | sparsity(25%)", )__"
             R"__("sampling": {"tiles": 6, "k_fraction": 0.5}}, )__"
             R"__("timelines": )__"
             R"__(["burst(period=0.2, duty=30%, high=100%, low=5%, )__"
             R"__(dur=0.5)"], )__"
             R"__("devices": [{"gpu": "a100", )__"
             R"__("governor": "utilization(up=80%, down=30%)"}], )__"
             R"__("cap_w": )__") +
         cap_w + R"__(, "slice_s": 0.01, "pstates": 5})__";
}

std::string dag_text(const std::vector<std::string>& nodes) {
  std::string text = R"__({"scenario": "dag", "name": "t", "nodes": [)__";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) text += ", ";
    text += nodes[i];
  }
  return text + "]}";
}

SpecParseResult parse_text(const std::string& text) {
  return parse_scenario_spec_text(text);
}

// --- parse-time validation --------------------------------------------------

TEST(DagSpec, CycleFailsNamingANode) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "b.result.seeds"}]})__",
      std::string(R"__({"name": "b", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "a.result.seeds"}]})__",
  }));
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("dependency cycle"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("'a'"), std::string::npos) << parsed.error;
}

TEST(DagSpec, UnknownRefNodeFailsNamingTheNode) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "oracle.result.power_w"}]})__",
  }));
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("unknown node 'oracle'"), std::string::npos)
      << parsed.error;
}

TEST(DagSpec, DuplicateNodeNameFails) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 7) + "}",
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 8) + "}",
  }));
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("duplicate node name 'a'"), std::string::npos)
      << parsed.error;
}

TEST(DagSpec, NestedDagInsideANodeIsRejected) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          dag_text({std::string(R"__({"name": "b", "run": )__") +
                    static_run("gaussian(sigma=210)", 7) + "}"}) +
          "}",
  }));
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("nested dag specs are not supported"),
            std::string::npos)
      << parsed.error;
}

TEST(DagSpec, DagCannotBeACampaignBase) {
  const SpecParseResult parsed = parse_text(
      std::string(R"__({"scenario": "campaign", "base": )__") +
      dag_text({std::string(R"__({"name": "a", "run": )__") +
                static_run("gaussian(sigma=210)", 7) + "}"}) +
      R"__(, "axes": [{"field": "experiment.n", "values": [64]}]})__");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("cannot nest inside another spec's base"),
            std::string::npos)
      << parsed.error;
}

TEST(DagSpec, UnknownRefPathFailsAtRunTimeNamingNodeAndPath) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 42) + "}",
      std::string(R"__({"name": "b", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "a.result.nope_metric"}]})__",
  }));
  ASSERT_TRUE(parsed.ok) << parsed.error;  // path validity is run-time
  ExperimentEngine engine(EngineOptions::with_workers(2));
  dag::DagRun run;
  std::string error;
  EXPECT_FALSE(dag::run_dag(engine, *parsed.spec.dag, run, error));
  EXPECT_NE(error.find("node 'b'"), std::string::npos) << error;
  EXPECT_NE(error.find("has no value at 'nope_metric'"), std::string::npos)
      << error;
}

// --- diamond dedup ----------------------------------------------------------

// a -> {b, c} -> d: b and c patch the same `$ref` value into identical
// bases, so their configs collapse to one canonical key and the engine
// computes the pair exactly once.
TEST(DagRun, DiamondSharedUpstreamComputesOnce) {
  const SpecParseResult parsed = parse_text(dag_text({
      std::string(R"__({"name": "a", "run": )__") +
          static_run("gaussian(sigma=210)", 42) + "}",
      std::string(R"__({"name": "b", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "a.result.seeds"}]})__",
      std::string(R"__({"name": "c", "run": )__") +
          static_run("gaussian(sigma=210)", 7) +
          R"__(, "substitutions": )__"
          R"__([{"field": "experiment.base_seed", )__"
          R"__("$ref": "a.result.seeds"}]})__",
      R"__({"name": "d", )__"
      R"__("reduce": {"op": "mean", "over": "b", "metric": "power_w"}})__",
  }));
  ASSERT_TRUE(parsed.ok) << parsed.error;

  ExperimentEngine engine(EngineOptions::with_workers(4));
  dag::DagRun run;
  std::string error;
  std::vector<std::string> finalized;
  ASSERT_TRUE(dag::run_dag(engine, *parsed.spec.dag, run, error,
                           [&](const dag::DagNodeRun& node) {
                             finalized.push_back(node.name);
                           }))
      << error;

  // Finalisation order is the declaration order — a pure function of the
  // graph, not of completion timing.
  EXPECT_EQ(finalized, (std::vector<std::string>{"a", "b", "c", "d"}));

  // b and c share one canonical key and one computed job; a is its own.
  ASSERT_EQ(run.nodes.size(), 4u);
  EXPECT_EQ(run.nodes[1].key, run.nodes[2].key);
  EXPECT_NE(run.nodes[0].key, run.nodes[1].key);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.jobs_computed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);

  // Identical configs, identical bytes.
  ASSERT_EQ(run.nodes[1].points.size(), 1u);
  ASSERT_EQ(run.nodes[2].points.size(), 1u);
  EXPECT_EQ(scenario_result_to_json(run.nodes[1].points[0].result).dump(),
            scenario_result_to_json(run.nodes[2].points[0].result).dump());

  // The reduce folds b's one point.
  const analysis::JsonValue* value = run.nodes[3].doc.find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_DOUBLE_EQ(value->as_number(),
                   run.nodes[1].points[0].result.static_result().power_w);
}

// --- bit-identity vs hand-sequenced submits ---------------------------------

std::string grid_campaign_text() {
  return std::string(
             R"__({"scenario": "campaign", "name": "grid", "base": )__") +
         static_run("gaussian(sigma=210)", 42) +
         R"__(, "axes": [{"field": "experiment.pattern", "values": )__"
         R"__(["gaussian(sigma=210)", "gaussian(sigma=100)"]}]})__";
}

std::string provisioning_dag_text() {
  return dag_text({
      std::string(R"__({"name": "calibrate", "run": )__") +
          static_run("gaussian(sigma=210)", 42) + "}",
      std::string(R"__({"name": "grid", "run": )__") + grid_campaign_text() +
          "}",
      R"__({"name": "regret", "reduce": {"op": "regret", "over": "grid", )__"
      R"__("baseline": "calibrate", "metric": "power_w"}})__",
  });
}

void run_provisioning_dag(int workers, dag::DagRun& out) {
  const SpecParseResult parsed = parse_text(provisioning_dag_text());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExperimentEngine engine(EngineOptions::with_workers(workers));
  std::string error;
  ASSERT_TRUE(dag::run_dag(engine, *parsed.spec.dag, out, error)) << error;
}

TEST(DagRun, BitIdenticalToHandSequencedSubmitsAcrossWorkerCounts) {
  dag::DagRun serial;
  dag::DagRun threaded;
  run_provisioning_dag(1, serial);
  run_provisioning_dag(4, threaded);
  if (HasFatalFailure()) return;

  // Hand-sequenced reference: the same documents submitted directly.
  ExperimentEngine engine(EngineOptions::with_workers(2));
  const SpecParseResult calibrate =
      parse_text(static_run("gaussian(sigma=210)", 42));
  ASSERT_TRUE(calibrate.ok) << calibrate.error;
  const ScenarioHandle calibrate_handle = engine.submit(calibrate.spec.config);
  const SpecParseResult grid = parse_text(grid_campaign_text());
  ASSERT_TRUE(grid.ok) << grid.error;
  CampaignRun reference;
  std::string error;
  ASSERT_TRUE(submit_campaign(engine, grid.spec, reference, error)) << error;
  engine.wait_all();

  for (const dag::DagRun* run : {&serial, &threaded}) {
    ASSERT_EQ(run->nodes.size(), 3u);
    ASSERT_EQ(run->nodes[0].points.size(), 1u);
    EXPECT_EQ(scenario_result_to_json(run->nodes[0].points[0].result).dump(),
              scenario_result_to_json(calibrate_handle.get()).dump());
    ASSERT_EQ(run->nodes[1].points.size(), reference.points.size());
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      EXPECT_EQ(run->nodes[1].points[i].label, reference.points[i].label);
      EXPECT_EQ(
          scenario_result_to_json(run->nodes[1].points[i].result).dump(),
          scenario_result_to_json(reference.handles[i].get()).dump());
    }
  }
  // The whole run — including the derived reduce document — is
  // byte-stable under worker-count variation.
  for (std::size_t n = 0; n < serial.nodes.size(); ++n) {
    EXPECT_EQ(serial.nodes[n].doc.dump(), threaded.nodes[n].doc.dump());
    EXPECT_EQ(serial.nodes[n].key, threaded.nodes[n].key);
  }
}

// --- search nodes -----------------------------------------------------------

double uncapped_avg_power() {
  const SpecParseResult parsed = parse_text(fleet_run("10000"));
  EXPECT_TRUE(parsed.ok) << parsed.error;
  ExperimentEngine engine(EngineOptions::with_workers(2));
  const ScenarioHandle handle = engine.submit(parsed.spec.config);
  return handle.get().fleet().avg_power_w;
}

std::string search_dag_text(const std::string& target,
                            const std::string& tolerance,
                            const std::string& max_iterations) {
  return dag_text({
      std::string(R"__({"name": "tightest", "search": {"base": )__") +
          fleet_run("10000") +
          R"__(, "field": "cap_w", "lo": 1, "hi": 10000, )__"
          R"__("metric": "avg_power_w", "predicate": ">=", "target": )__" +
          target + R"__(, "tolerance": )__" + tolerance +
          R"__(, "max_iterations": )__" + max_iterations + "}}",
  });
}

TEST(DagSearch, ConvergesToTheTightestCapDeterministically) {
  const double target = 0.95 * uncapped_avg_power();
  const SpecParseResult parsed =
      parse_text(search_dag_text(std::to_string(target), "500", "32"));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  dag::DagRun serial;
  dag::DagRun threaded;
  const auto execute = [&](int workers, dag::DagRun& out) {
    ExperimentEngine engine(EngineOptions::with_workers(workers));
    std::string error;
    ASSERT_TRUE(dag::run_dag(engine, *parsed.spec.dag, out, error)) << error;
  };
  execute(1, serial);
  execute(4, threaded);
  if (HasFatalFailure()) return;

  ASSERT_EQ(serial.nodes.size(), 1u);
  const analysis::JsonValue* value = serial.nodes[0].doc.find("value");
  ASSERT_NE(value, nullptr);
  EXPECT_GE(value->as_number(), 1.0);
  EXPECT_LE(value->as_number(), 10000.0);
  // The accepted point satisfies the predicate.
  const analysis::JsonValue* result = serial.nodes[0].doc.find("result");
  ASSERT_NE(result, nullptr);
  const analysis::JsonValue* metric = result->find("avg_power_w");
  ASSERT_NE(metric, nullptr);
  EXPECT_GE(metric->as_number(), target);
  // Deterministic bisection: identical bytes under worker variation.
  EXPECT_EQ(serial.nodes[0].doc.dump(), threaded.nodes[0].doc.dump());
  EXPECT_EQ(serial.nodes[0].key, threaded.nodes[0].key);
}

TEST(DagSearch, FailsWhenThePredicateDoesNotHoldAtHi) {
  const SpecParseResult parsed =
      parse_text(search_dag_text("1e9", "500", "32"));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExperimentEngine engine(EngineOptions::with_workers(2));
  dag::DagRun run;
  std::string error;
  EXPECT_FALSE(dag::run_dag(engine, *parsed.spec.dag, run, error));
  EXPECT_NE(error.find("node 'tightest'"), std::string::npos) << error;
  EXPECT_NE(error.find("does not hold at hi"), std::string::npos) << error;
}

TEST(DagSearch, ReportsNonConvergenceAtTheIterationCap) {
  const double target = 0.95 * uncapped_avg_power();
  const SpecParseResult parsed =
      parse_text(search_dag_text(std::to_string(target), "0.001", "1"));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExperimentEngine engine(EngineOptions::with_workers(2));
  dag::DagRun run;
  std::string error;
  EXPECT_FALSE(dag::run_dag(engine, *parsed.spec.dag, run, error));
  EXPECT_NE(error.find("did not converge within 1 iterations"),
            std::string::npos)
      << error;
}

}  // namespace
}  // namespace gpupower::core
