// Fig. 7: generalization across GPUs.  Replays four FP16 experiments —
// distribution mean, most-significant-bit randomization, sorted-into-rows,
// and general sparsity — on the V100, A100, H100, and Quadro RTX 6000
// models.  Following the paper, the RTX 6000 runs at 512x512 (it throttles
// at 2048x2048; this bench prints the throttle check) while the HBM parts
// use the configured size.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "fig_harness.hpp"

namespace {

using namespace gpupower;

struct Panel {
  const char* title;
  core::FigureId figure;
};

constexpr Panel kPanels[] = {
    {"distribution mean", core::FigureId::kFig3bDistributionMean},
    {"most significant bits randomized", core::FigureId::kFig4cMsbRandomized},
    {"sorted into rows", core::FigureId::kFig5aSortedRows},
    {"general sparsity", core::FigureId::kFig6aSparsity},
};

constexpr gpusim::GpuModel kGpus[] = {
    gpusim::GpuModel::kV100SXM2, gpusim::GpuModel::kA100PCIe,
    gpusim::GpuModel::kH100SXM, gpusim::GpuModel::kRTX6000};

}  // namespace

int main() {
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(env,
                        "Fig. 7: FP16 experiments across NVIDIA GPUs "
                        "(V100 / A100 / H100 / RTX 6000)");

  // The paper's RTX 6000 protocol deviation: 512x512 because 2048x2048
  // throttles.  Demonstrate the throttle first.
  {
    core::ExperimentConfig config;
    config.gpu = gpusim::GpuModel::kRTX6000;
    config.dtype = numeric::DType::kFP16;
    config.pattern = core::baseline_gaussian_spec();
    env.apply(config);
    config.n = 2048;
    config.seeds = 1;
    const auto at2048 = core::run_experiment(config);
    std::printf(
        "RTX 6000 at 2048x2048: %.1f W, throttled=%s (clock frac %.3f) — "
        "matching the paper, Fig. 7 uses 512x512 for this card.\n\n",
        at2048.power_w, at2048.throttled ? "yes" : "no", at2048.clock_frac);
  }

  for (const Panel& panel : kPanels) {
    std::printf("--- %s (FP16) ---\n", panel.title);
    const auto sweep = core::figure_sweep(panel.figure);
    std::vector<std::string> headers{
        std::string(core::figure_axis(panel.figure))};
    for (const auto gpu : kGpus) {
      headers.emplace_back(gpusim::name(gpu));
    }
    analysis::Table table(std::move(headers));
    for (const auto& point : sweep) {
      std::vector<double> row;
      for (const auto gpu : kGpus) {
        core::ExperimentConfig config;
        config.gpu = gpu;
        config.dtype = numeric::DType::kFP16;
        config.pattern = point.spec;
        env.apply(config);
        if (gpu == gpusim::GpuModel::kRTX6000) config.n = 512;
        row.push_back(core::run_experiment(config).power_w);
      }
      table.add_row(point.label, row, 1);
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape: V100/A100/H100 trends consistent; RTX 6000 flatter\n"
      "(smaller 512x512 grid leaves SMs idle, compressing the data-dependent\n"
      "share — the paper attributes this to its age/GDDR6/lower TDP).\n");
  return 0;
}
