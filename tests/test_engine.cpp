#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/config_builder.hpp"
#include "core/figures.hpp"

namespace gpupower::core {
namespace {

ExperimentConfig small_config(gpupower::numeric::DType dtype =
                                  gpupower::numeric::DType::kFP16) {
  ExperimentConfig config;
  config.dtype = dtype;
  config.n = 64;
  config.seeds = 2;
  config.sampling = gpupower::gpusim::SamplingPlan::fast(6, 0.5);
  config.pattern = baseline_gaussian_spec();
  return config;
}

EngineOptions four_workers() {
  EngineOptions options;
  options.workers = 4;
  return options;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.power_std_w, b.power_std_w);
  EXPECT_DOUBLE_EQ(a.iteration_s, b.iteration_s);
  EXPECT_DOUBLE_EQ(a.energy_per_iter_j, b.energy_per_iter_j);
  EXPECT_DOUBLE_EQ(a.alignment, b.alignment);
  EXPECT_DOUBLE_EQ(a.weight_fraction, b.weight_fraction);
  EXPECT_DOUBLE_EQ(a.rails.fetch_w, b.rails.fetch_w);
  EXPECT_DOUBLE_EQ(a.rails.operand_w, b.rails.operand_w);
  EXPECT_DOUBLE_EQ(a.rails.multiply_w, b.rails.multiply_w);
  EXPECT_DOUBLE_EQ(a.rails.accum_w, b.rails.accum_w);
  EXPECT_DOUBLE_EQ(a.rails.issue_w, b.rails.issue_w);
  EXPECT_EQ(a.throttled, b.throttled);
  EXPECT_DOUBLE_EQ(a.clock_frac, b.clock_frac);
  EXPECT_EQ(a.seeds, b.seeds);
}

// The acceptance criterion: a full-figure sweep through the engine with >=4
// worker threads is bit-identical to the serial run_experiment path.
TEST(ExperimentEngine, FullFigureSweepMatchesSerialBitwise) {
  ExperimentEngine engine(four_workers());
  ASSERT_GE(engine.workers(), 4);

  const ExperimentConfig base = small_config();
  const SweepRun run = engine.submit_sweep(FigureId::kFig6aSparsity, base);
  engine.wait_all();

  const auto points = figure_sweep(FigureId::kFig6aSparsity);
  ASSERT_EQ(run.points.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ExperimentConfig config = base;
    config.pattern = points[i].spec;
    const ExperimentResult serial = run_experiment(config);
    expect_identical(run.handles[i].get(), serial);
  }
}

// Seed replicas fan across threads; the reduction must still fold them in
// seed order.  More seeds than workers forces interleaving.
TEST(ExperimentEngine, ManySeedsMatchSerialBitwise) {
  ExperimentEngine engine(four_workers());
  ExperimentConfig config = small_config();
  config.seeds = 7;
  const ExperimentResult parallel = engine.submit(config).get();
  expect_identical(parallel, run_experiment(config));
}

TEST(ExperimentEngine, WorkerCountDoesNotChangeResults) {
  EngineOptions one;
  one.workers = 1;
  ExperimentEngine serial_engine(one);
  ExperimentEngine parallel_engine(four_workers());
  const ExperimentConfig config = small_config();
  expect_identical(serial_engine.submit(config).get(),
                   parallel_engine.submit(config).get());
}

// The acceptance criterion: resubmitting the same sweep point reports a
// cache hit.
TEST(ExperimentEngine, DuplicateSubmitHitsCache) {
  ExperimentEngine engine(four_workers());
  const ExperimentConfig config = small_config();

  const ExperimentHandle first = engine.submit(config);
  const ExperimentHandle second = engine.submit(config);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.jobs_computed, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
  expect_identical(first.get(), second.get());
}

TEST(ExperimentEngine, DuplicatedSweepIsComputedOnce) {
  ExperimentEngine engine(four_workers());
  const ExperimentConfig base = small_config();

  const SweepRun first = engine.submit_sweep(FigureId::kFig3cValueSet, base);
  const SweepRun second = engine.submit_sweep(FigureId::kFig3cValueSet, base);
  engine.wait_all();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2 * first.points.size());
  EXPECT_EQ(stats.jobs_computed, first.points.size());
  EXPECT_EQ(stats.cache_hits, second.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    expect_identical(first.handles[i].get(), second.handles[i].get());
  }
}

TEST(ExperimentEngine, DistinctConfigsMissCache) {
  ExperimentEngine engine(four_workers());
  ExperimentConfig config = small_config();
  (void)engine.submit(config);
  config.base_seed = 1234;
  (void)engine.submit(config);
  config.n = 128;
  (void)engine.submit(config);
  config.dtype = gpupower::numeric::DType::kINT8;
  (void)engine.submit(config);
  engine.wait_all();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.jobs_computed, 4u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(ExperimentEngine, CacheCanBeDisabled) {
  EngineOptions options = four_workers();
  options.cache_enabled = false;
  ExperimentEngine engine(options);
  const ExperimentConfig config = small_config();
  const ExperimentHandle first = engine.submit(config);
  const ExperimentHandle second = engine.submit(config);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.jobs_computed, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  // Still bit-identical: independent computations of the same config.
  expect_identical(first.get(), second.get());
}

TEST(ExperimentEngine, ClearCacheForcesRecompute) {
  ExperimentEngine engine(four_workers());
  const ExperimentConfig config = small_config();
  const ExperimentHandle first = engine.submit(config);
  engine.clear_cache();
  const ExperimentHandle second = engine.submit(config);
  EXPECT_EQ(engine.stats().jobs_computed, 2u);
  expect_identical(first.get(), second.get());
}

TEST(ExperimentEngine, WaitAllCompletesEverything) {
  ExperimentEngine engine(four_workers());
  std::vector<ExperimentHandle> handles;
  for (const auto dtype : gpupower::numeric::kAllDTypes) {
    handles.push_back(engine.submit(small_config(dtype)));
  }
  engine.wait_all();
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle.ready());
    EXPECT_GT(handle.get().power_w, 0.0);
  }
  EXPECT_EQ(engine.stats().replicas_run, 4u * 2u);
}

TEST(ExperimentEngine, SubmitBatchPreservesOrder) {
  ExperimentEngine engine(four_workers());
  std::vector<ExperimentConfig> configs;
  for (const auto dtype : gpupower::numeric::kAllDTypes) {
    configs.push_back(small_config(dtype));
  }
  const auto handles = engine.submit_batch(configs);
  ASSERT_EQ(handles.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(handles[i].config().dtype, configs[i].dtype);
    expect_identical(handles[i].get(), run_experiment(configs[i]));
  }
}

TEST(ExperimentEngine, SweepRunCollectPairsPointsWithResults) {
  ExperimentEngine engine(four_workers());
  const SweepRun run =
      engine.submit_sweep(FigureId::kFig6aSparsity, small_config());
  const auto entries = run.collect();
  const auto points = figure_sweep(FigureId::kFig6aSparsity);
  ASSERT_EQ(entries.size(), points.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].point.label, points[i].label);
    EXPECT_GT(entries[i].result.power_w, 0.0);
  }
}

TEST(ExperimentEngine, SweepRunExportsJson) {
  ExperimentEngine engine(four_workers());
  const SweepRun run =
      engine.submit_sweep(FigureId::kFig3cValueSet, small_config());
  const std::string json = run.to_json().dump();
  EXPECT_NE(json.find("\"figure\""), std::string::npos);
  EXPECT_NE(json.find("series"), std::string::npos);
}

TEST(ExperimentEngine, RejectsZeroSeedConfig) {
  // A zero-seed job used to "complete" instantly with an all-zero result;
  // it must be rejected loudly instead.
  ExperimentEngine engine(four_workers());
  ExperimentConfig config = small_config();
  config.seeds = 0;
  EXPECT_THROW((void)engine.submit(config), std::invalid_argument);
  config.seeds = -1;
  EXPECT_THROW((void)engine.submit(config), std::invalid_argument);
  engine.wait_all();  // nothing outstanding; must not hang
}

TEST(ExperimentHandle, InvalidHandleThrowsInsteadOfUB) {
  // A default-constructed handle has no job; get()/ready()/config() used to
  // dereference null.
  ExperimentHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_THROW((void)handle.get(), std::logic_error);
  EXPECT_THROW((void)handle.ready(), std::logic_error);
  EXPECT_THROW((void)handle.config(), std::logic_error);

  // A real handle stays valid after copies.
  ExperimentEngine engine(four_workers());
  const ExperimentHandle live = engine.submit(small_config());
  const ExperimentHandle copy = live;
  engine.wait_all();
  EXPECT_TRUE(copy.valid());
  EXPECT_TRUE(copy.ready());
  EXPECT_GT(copy.get().power_w, 0.0);
}

TEST(ExperimentEngine, EngineOutlivesManySubmissions) {
  // Stress the queue with more jobs than workers to exercise interleaving.
  ExperimentEngine engine(four_workers());
  std::vector<ExperimentHandle> handles;
  for (int i = 0; i < 12; ++i) {
    ExperimentConfig config = small_config();
    config.base_seed = static_cast<std::uint64_t>(i);
    handles.push_back(engine.submit(config));
  }
  engine.wait_all();
  for (const auto& handle : handles) EXPECT_TRUE(handle.ready());
  EXPECT_EQ(engine.stats().jobs_computed, 12u);
}

}  // namespace
}  // namespace gpupower::core
