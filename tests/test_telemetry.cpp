#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/nvml.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"

namespace gpupower::telemetry {
namespace {

PowerTrace ramp_trace() {
  PowerTrace t;
  for (int i = 0; i <= 20; ++i) {
    t.push(0.1 * i, 100.0 + 10.0 * i);
  }
  return t;
}

TEST(Trace, TrimDropsWarmup) {
  const auto t = ramp_trace();
  const auto trimmed = t.trimmed(0.5);
  ASSERT_FALSE(trimmed.empty());
  EXPECT_GE(trimmed.samples().front().t_s, 0.5);
  EXPECT_EQ(trimmed.size(), 16u);  // samples at 0.5 .. 2.0
}

TEST(Trace, Statistics) {
  PowerTrace t;
  t.push(0.0, 100.0);
  t.push(0.1, 200.0);
  t.push(0.2, 300.0);
  EXPECT_DOUBLE_EQ(t.mean_w(), 200.0);
  EXPECT_DOUBLE_EQ(t.min_w(), 100.0);
  EXPECT_DOUBLE_EQ(t.max_w(), 300.0);
  EXPECT_NEAR(t.stddev_w(), 100.0, 1e-9);
}

TEST(Trace, EnergyIsTrapezoidalIntegral) {
  PowerTrace t;
  t.push(0.0, 100.0);
  t.push(1.0, 100.0);
  t.push(2.0, 200.0);
  EXPECT_DOUBLE_EQ(t.energy_j(), 100.0 + 150.0);
}

TEST(Trace, CsvOutput) {
  PowerTrace t;
  t.push(0.0, 123.5);
  std::ostringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(), "t_s,power_w\n0,123.5\n");
}

TEST(Sampler, TraceRampsFromIdleToSteady) {
  gpusim::PowerReport report;
  report.total_w = 250.0;
  report.idle_w = 50.0;
  report.realized_iteration_s = 1e-4;
  SamplerConfig cfg;
  cfg.noise_sigma_w = 0.0;  // deterministic for the shape check
  const auto trace = sample_run(report, 20000, cfg);
  ASSERT_GT(trace.size(), 10u);
  // First sample starts at idle; late samples approach steady state.
  EXPECT_NEAR(trace.samples().front().power_w, 50.0, 1.0);
  EXPECT_NEAR(trace.samples().back().power_w, 250.0, 1.0);
}

TEST(Sampler, ReportedPowerTrimsWarmup) {
  gpusim::PowerReport report;
  report.total_w = 250.0;
  report.idle_w = 50.0;
  report.realized_iteration_s = 1e-4;
  SamplerConfig cfg;
  cfg.noise_sigma_w = 0.0;
  const auto trace = sample_run(report, 20000, cfg);
  // Untrimmed mean is dragged down by the ramp; the trimmed reduction must
  // sit close to the steady level.
  EXPECT_LT(trace.mean_w(), reported_power_w(trace, cfg));
  EXPECT_NEAR(reported_power_w(trace, cfg), 250.0, 2.0);
}

TEST(Sampler, MinimumDurationGuaranteesSamples) {
  gpusim::PowerReport report;
  report.total_w = 200.0;
  report.idle_w = 50.0;
  report.realized_iteration_s = 1e-6;
  const SamplerConfig cfg;
  // Even a 10-iteration run must produce enough samples past the trim.
  const auto trace = sample_run(report, 10, cfg);
  EXPECT_GE(trace.trimmed(cfg.warmup_trim_s).size(), 10u);
}

TEST(Sampler, NoiseIsSeedDeterministic) {
  gpusim::PowerReport report;
  report.total_w = 200.0;
  report.idle_w = 50.0;
  report.realized_iteration_s = 1e-4;
  SamplerConfig cfg;
  cfg.seed = 99;
  const auto a = sample_run(report, 10000, cfg);
  const auto b = sample_run(report, 10000, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].power_w, b.samples()[i].power_w);
  }
}

TEST(Nvml, DeviceQueries) {
  std::optional<nvml::Device> dev;
  ASSERT_EQ(nvml::device_get_handle_by_index(0, dev), nvml::Return::kSuccess);
  ASSERT_TRUE(dev.has_value());

  std::string name;
  EXPECT_EQ(dev->name(name), nvml::Return::kSuccess);
  EXPECT_NE(name.find("A100"), std::string::npos);

  std::uint32_t mw = 0;
  EXPECT_EQ(dev->power_usage_mw(mw), nvml::Return::kSuccess);
  EXPECT_NEAR(mw, 52000u, 1000u);  // idle with no workload attached

  std::uint32_t limit = 0;
  EXPECT_EQ(dev->enforced_power_limit_mw(limit), nvml::Return::kSuccess);
  EXPECT_EQ(limit, 300000u);

  std::uint32_t util = 1;
  EXPECT_EQ(dev->utilization_gpu_pct(util), nvml::Return::kSuccess);
  EXPECT_EQ(util, 0u);

  gpusim::PowerReport report;
  report.total_w = 250.0;
  report.utilization = 0.985;
  report.temperature_c = 61.0;
  report.effective_clock_frac = 0.9;
  dev->set_workload(report);
  EXPECT_EQ(dev->power_usage_mw(mw), nvml::Return::kSuccess);
  EXPECT_EQ(mw, 250000u);
  EXPECT_EQ(dev->utilization_gpu_pct(util), nvml::Return::kSuccess);
  EXPECT_EQ(util, 99u);  // rounds 98.5
  std::uint32_t deg = 0;
  EXPECT_EQ(dev->temperature_c(deg), nvml::Return::kSuccess);
  EXPECT_EQ(deg, 61u);
  std::uint32_t mhz = 0;
  EXPECT_EQ(dev->clock_info_mhz(mhz), nvml::Return::kSuccess);
  EXPECT_EQ(mhz, 1269u);  // 1410 * 0.9
}

TEST(Nvml, OutOfRangeIndex) {
  std::optional<nvml::Device> dev;
  EXPECT_EQ(nvml::device_get_handle_by_index(99, dev),
            nvml::Return::kNotFound);
  EXPECT_FALSE(dev.has_value());
}

TEST(Nvml, ErrorStrings) {
  EXPECT_STREQ(nvml::error_string(nvml::Return::kSuccess), "Success");
  EXPECT_STREQ(nvml::error_string(nvml::Return::kNotFound), "Not Found");
}

}  // namespace
}  // namespace gpupower::telemetry
