#include "numeric/int8.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gpupower::numeric {
namespace {

TEST(Int8, RoundToNearest) {
  EXPECT_EQ(int8_value_t(0.4f).value(), 0);
  EXPECT_EQ(int8_value_t(0.6f).value(), 1);
  EXPECT_EQ(int8_value_t(-0.6f).value(), -1);
  EXPECT_EQ(int8_value_t(42.49f).value(), 42);
  EXPECT_EQ(int8_value_t(42.51f).value(), 43);
}

TEST(Int8, Saturation) {
  EXPECT_EQ(int8_value_t(1000.0f).value(), 127);
  EXPECT_EQ(int8_value_t(-1000.0f).value(), -128);
  EXPECT_EQ(int8_value_t(127.4f).value(), 127);
  EXPECT_EQ(int8_value_t(-128.4f).value(), -128);
}

TEST(Int8, NaNQuantizesToZero) {
  EXPECT_EQ(int8_value_t(std::nanf("")).value(), 0);
}

TEST(Int8, TwosComplementBits) {
  EXPECT_EQ(int8_value_t(-1.0f).bits(), 0xFFu);
  EXPECT_EQ(int8_value_t(-128.0f).bits(), 0x80u);
  EXPECT_EQ(int8_value_t(127.0f).bits(), 0x7Fu);
  EXPECT_EQ(int8_value_t(0.0f).bits(), 0x00u);
}

TEST(Int8, FromBitsRoundTrip) {
  for (int raw = 0; raw < 256; ++raw) {
    const auto v = int8_value_t::from_bits(static_cast<std::uint8_t>(raw));
    EXPECT_EQ(v.bits(), static_cast<std::uint8_t>(raw));
    EXPECT_EQ(int8_value_t(v.to_float()).value(), v.value());
  }
}

TEST(Int8, Ordering) {
  EXPECT_TRUE(int8_value_t(-5.0f) < int8_value_t(3.0f));
  EXPECT_FALSE(int8_value_t(3.0f) < int8_value_t(-5.0f));
  EXPECT_EQ(int8_value_t(7.0f), int8_value_t(7.2f));
}

}  // namespace
}  // namespace gpupower::numeric
