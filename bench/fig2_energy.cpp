// Fig. 2: average iteration energy by datatype for GEMM filled with
// Gaussian random variables (mean 0, stddev 210 FP / 25 INT8).  Energy
// tracks runtime (FP32 slowest => most energy per iteration) even though
// power ordering differs — the paper's argument for reporting power.  The
// four datatype runs execute concurrently on the ExperimentEngine.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(
      env, "Fig. 2: average iteration energy, Gaussian random inputs");

  core::ExperimentEngine engine = bench::make_engine(env);
  std::vector<core::ExperimentHandle> handles;
  for (const auto dtype : numeric::kAllDTypes) {
    handles.push_back(engine.submit(core::ExperimentConfigBuilder()
                                        .dtype(dtype)
                                        .env(env)
                                        .pattern(core::baseline_gaussian_spec())
                                        .build()));
  }
  engine.wait_all();

  analysis::Table table(
      {"datatype", "energy/iter (mJ)", "iter (ms)", "power (W)"});
  for (std::size_t d = 0; d < std::size(numeric::kAllDTypes); ++d) {
    const auto& result = handles[d].get();
    table.add_row(std::string(numeric::name(numeric::kAllDTypes[d])),
                  {result.energy_per_iter_j * 1e3, result.iteration_s * 1e3,
                   result.power_w},
                  3);
  }
  table.print(std::cout);
  bench::print_engine_stats(engine);
  return 0;
}
