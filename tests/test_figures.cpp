#include "core/figures.hpp"

#include <gtest/gtest.h>

namespace gpupower::core {
namespace {

class FigureSweep : public ::testing::TestWithParam<FigureId> {};

TEST_P(FigureSweep, IsWellFormed) {
  const auto sweep = figure_sweep(GetParam());
  ASSERT_GE(sweep.size(), 6u);
  for (const auto& point : sweep) {
    EXPECT_FALSE(point.label.empty());
    EXPECT_FALSE(point.spec.describe().empty());
  }
  // x values are strictly increasing along the sweep.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].x, sweep[i - 1].x);
  }
  EXPECT_FALSE(figure_name(GetParam()).empty());
  EXPECT_FALSE(figure_axis(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllFigures, FigureSweep,
                         ::testing::ValuesIn(kAllFigures));

TEST(Figures, Fig5TransposeProtocol) {
  // Section IV-C: 5a and 5c consume B untransposed; 5b and 5d aligned.
  for (const auto& p : figure_sweep(FigureId::kFig5aSortedRows)) {
    EXPECT_FALSE(p.spec.transpose_b);
  }
  for (const auto& p : figure_sweep(FigureId::kFig5bSortedAligned)) {
    EXPECT_TRUE(p.spec.transpose_b);
  }
  for (const auto& p : figure_sweep(FigureId::kFig5cSortedColumns)) {
    EXPECT_FALSE(p.spec.transpose_b);
  }
  for (const auto& p : figure_sweep(FigureId::kFig5dSortedWithinRows)) {
    EXPECT_TRUE(p.spec.transpose_b);
  }
}

TEST(Figures, Fig4StartsFromConstantFill) {
  for (const auto fig :
       {FigureId::kFig4aRandomBitFlips, FigureId::kFig4bLsbRandomized,
        FigureId::kFig4cMsbRandomized}) {
    const auto sweep = figure_sweep(fig);
    for (const auto& p : sweep) {
      EXPECT_EQ(p.spec.value, PatternSpec::Value::kConstant);
    }
    // First point touches no bits: the pure constant-fill baseline.
    EXPECT_DOUBLE_EQ(sweep.front().spec.bit_fraction, 0.0);
  }
}

TEST(Figures, Fig6bSortsBeforeSparsity) {
  for (const auto& p : figure_sweep(FigureId::kFig6bSparsityAfterSort)) {
    EXPECT_EQ(p.spec.place, PatternSpec::Place::kFullSort);
  }
}

TEST(Figures, Fig3bHoldsSigmaAtOne) {
  for (const auto& p : figure_sweep(FigureId::kFig3bDistributionMean)) {
    EXPECT_DOUBLE_EQ(p.spec.sigma, 1.0);
  }
}

TEST(Figures, BaselineSpecIsPaperDefault) {
  const PatternSpec spec = baseline_gaussian_spec();
  EXPECT_EQ(spec.value, PatternSpec::Value::kGaussian);
  EXPECT_DOUBLE_EQ(spec.mean, 0.0);
  EXPECT_LT(spec.sigma, 0.0);  // negative: per-dtype paper default
  EXPECT_TRUE(spec.transpose_b);
  EXPECT_EQ(spec.place, PatternSpec::Place::kNone);
  EXPECT_DOUBLE_EQ(spec.sparsity, 0.0);
}

TEST(Figures, DescribeMentionsComponents) {
  PatternSpec spec;
  spec.place = PatternSpec::Place::kSortRows;
  spec.sort_percent = 40.0;
  spec.sparsity = 0.5;
  spec.bitop = PatternSpec::BitOp::kZeroLow;
  spec.bit_fraction = 0.25;
  const auto text = spec.describe();
  EXPECT_NE(text.find("sort_rows"), std::string::npos);
  EXPECT_NE(text.find("sparsity"), std::string::npos);
  EXPECT_NE(text.find("zero_lsb"), std::string::npos);
}

}  // namespace
}  // namespace gpupower::core
