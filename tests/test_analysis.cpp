#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "analysis/correlation.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"

namespace gpupower::analysis {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, DegenerateCases) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, Ci95UsesStudentTCriticalValues) {
  // Regression: ci95_halfwidth used the normal 1.96 for every n; at the
  // paper's 10 seeds the Student-t value is 2.262, so CIs were ~13% too
  // narrow.  Critical values: n=2 -> dof 1 -> 12.706; n=10 -> dof 9 ->
  // 2.262; n=31 -> dof 30 -> normal fallback 1.96.
  EXPECT_DOUBLE_EQ(t_critical_95(2), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(10), 2.262);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.045);
  EXPECT_DOUBLE_EQ(t_critical_95(31), 1.96);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);

  for (const std::size_t n : {std::size_t{2}, std::size_t{10}, std::size_t{31}}) {
    RunningStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(i % 2 == 0 ? 1.0 : -1.0);
    const double normal_halfwidth =
        1.96 * s.stddev() / std::sqrt(static_cast<double>(n));
    EXPECT_DOUBLE_EQ(s.ci95_halfwidth(),
                     t_critical_95(n) * s.stddev() /
                         std::sqrt(static_cast<double>(n)))
        << "n=" << n;
    // Strictly wider than the old normal interval in the small-n regime,
    // identical once the fallback kicks in.
    if (n <= 30) {
      EXPECT_GT(s.ci95_halfwidth(), normal_halfwidth) << "n=" << n;
    } else {
      EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), normal_halfwidth) << "n=" << n;
    }
  }
}

TEST(Stats, SpanHelpers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
}

TEST(Correlation, PearsonPerfectAndAnti) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Correlation, PearsonDegenerate) {
  const std::vector<double> constant{3, 3, 3};
  const std::vector<double> x{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Correlation, SpearmanIsRankBased) {
  // Monotonic but non-linear: Spearman 1, Pearson < 1.
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(TableTest, AlignedMarkdownOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| beta  | 2.5   |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "1"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\nx,1\n");
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream ss;
  t.print(ss);  // must not crash; missing cells render empty
  EXPECT_NE(ss.str().find("only"), std::string::npos);
}

TEST(Fixed, Formatting) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace gpupower::analysis
