// Regenerates fig6a of "Input-Dependent Power Usage in GPUs" (SC'24):
// see core/figures.cpp for the sweep definition; runs batched on the
// ExperimentEngine (bench/fig_harness.hpp).
#include "fig_harness.hpp"

int main() {
  return gpupower::bench::run_figure(gpupower::core::FigureId::kFig6aSparsity);
}
