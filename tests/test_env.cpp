#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gpupower::core {
namespace {

class EnvGuard {
 public:
  ~EnvGuard() {
    unsetenv("GPUPOWER_N");
    unsetenv("GPUPOWER_SEEDS");
    unsetenv("GPUPOWER_TILES");
    unsetenv("GPUPOWER_KFRAC");
    unsetenv("GPUPOWER_WORKERS");
    unsetenv("GPUPOWER_CSV");
  }
};

TEST(BenchEnvTest, Defaults) {
  EnvGuard guard;
  const BenchEnv env = read_bench_env();
  EXPECT_EQ(env.n, 512u);
  EXPECT_EQ(env.seeds, 2);
  EXPECT_EQ(env.tiles, 12u);
  EXPECT_DOUBLE_EQ(env.k_fraction, 0.5);
  EXPECT_EQ(env.workers, 0);
  EXPECT_FALSE(env.csv);
}

TEST(BenchEnvTest, ReadsOverrides) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "2048", 1);
  setenv("GPUPOWER_SEEDS", "10", 1);
  setenv("GPUPOWER_TILES", "0", 1);
  setenv("GPUPOWER_KFRAC", "1.0", 1);
  setenv("GPUPOWER_WORKERS", "8", 1);
  setenv("GPUPOWER_CSV", "1", 1);
  const BenchEnv env = read_bench_env();
  EXPECT_EQ(env.n, 2048u);
  EXPECT_EQ(env.seeds, 10);
  EXPECT_EQ(env.tiles, 0u);  // 0 = exact walk
  EXPECT_DOUBLE_EQ(env.k_fraction, 1.0);
  EXPECT_EQ(env.workers, 8);
  EXPECT_TRUE(env.csv);
}

// A typo'd knob must fail loudly (one-line error, exit 2), never silently
// misconfigure a run.
using BenchEnvDeathTest = ::testing::Test;

TEST(BenchEnvDeathTest, MalformedNDies) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "potato", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_N='potato'");
}

TEST(BenchEnvDeathTest, OutOfRangeNDies) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "8", 1);  // below the N=64 floor
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_N='8'");
}

TEST(BenchEnvDeathTest, NegativeSeedsDie) {
  EnvGuard guard;
  setenv("GPUPOWER_SEEDS", "-3", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_SEEDS='-3'");
}

TEST(BenchEnvDeathTest, ZeroKfracDies) {
  EnvGuard guard;
  setenv("GPUPOWER_KFRAC", "0", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_KFRAC='0'");
}

TEST(BenchEnvDeathTest, KfracAboveOneDies) {
  EnvGuard guard;
  setenv("GPUPOWER_KFRAC", "1.5", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_KFRAC='1.5'");
}

TEST(BenchEnvDeathTest, TrailingJunkDies) {
  EnvGuard guard;
  setenv("GPUPOWER_SEEDS", "4x", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_SEEDS='4x'");
}

TEST(BenchEnvDeathTest, WorkersOutOfRangeDies) {
  EnvGuard guard;
  setenv("GPUPOWER_WORKERS", "10000", 1);
  EXPECT_EXIT((void)read_bench_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_WORKERS='10000'");
}

// --- the result-store knobs (GPUPOWER_STORE_DIR / GPUPOWER_STORE) --------

class StoreEnvGuard {
 public:
  ~StoreEnvGuard() {
    unsetenv("GPUPOWER_STORE_DIR");
    unsetenv("GPUPOWER_STORE");
  }
};

TEST(StoreEnvTest, DisabledByDefault) {
  StoreEnvGuard guard;
  const StoreEnv env = read_store_env();
  EXPECT_FALSE(env.enabled);
  EXPECT_TRUE(env.dir.empty());
}

TEST(StoreEnvTest, DirAloneEnables) {
  StoreEnvGuard guard;
  setenv("GPUPOWER_STORE_DIR", "/tmp/gpupower_store_env_test", 1);
  const StoreEnv env = read_store_env();
  EXPECT_TRUE(env.enabled);
  EXPECT_EQ(env.dir, "/tmp/gpupower_store_env_test");
}

TEST(StoreEnvTest, ExplicitOffWinsOverDir) {
  StoreEnvGuard guard;
  setenv("GPUPOWER_STORE_DIR", "/tmp/gpupower_store_env_test", 1);
  setenv("GPUPOWER_STORE", "off", 1);
  EXPECT_FALSE(read_store_env().enabled);
}

TEST(BenchEnvDeathTest, MalformedStoreDies) {
  StoreEnvGuard guard;
  setenv("GPUPOWER_STORE", "maybe", 1);
  EXPECT_EXIT((void)read_store_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_STORE='maybe'");
}

TEST(BenchEnvDeathTest, StoreOnWithoutDirDies) {
  StoreEnvGuard guard;
  setenv("GPUPOWER_STORE", "on", 1);
  EXPECT_EXIT((void)read_store_env(), ::testing::ExitedWithCode(2),
              "GPUPOWER_STORE_DIR");
}

// --- the observability knobs (GPUPOWER_TRACE / GPUPOWER_METRICS) ---------

class ObsEnvGuard {
 public:
  ~ObsEnvGuard() {
    unsetenv("GPUPOWER_TRACE");
    unsetenv("GPUPOWER_METRICS");
  }
};

TEST(ObsEnvTest, UnsetMeansNoTraceAndMetricsUntouched) {
  ObsEnvGuard guard;
  const ObsEnv env = read_obs_env();
  EXPECT_TRUE(env.trace_path.empty());
  EXPECT_FALSE(env.metrics_set);
}

TEST(ObsEnvTest, TracePathIsCopiedVerbatim) {
  ObsEnvGuard guard;
  setenv("GPUPOWER_TRACE", "/tmp/gpupower_trace_env_test.json", 1);
  const ObsEnv env = read_obs_env();
  EXPECT_EQ(env.trace_path, "/tmp/gpupower_trace_env_test.json");
  EXPECT_FALSE(env.metrics_set);  // trace alone leaves the metrics knob
}

TEST(ObsEnvTest, MetricsOnAndOffAreBothExplicit) {
  ObsEnvGuard guard;
  setenv("GPUPOWER_METRICS", "on", 1);
  ObsEnv env = read_obs_env();
  EXPECT_TRUE(env.metrics_set);
  EXPECT_TRUE(env.metrics);
  setenv("GPUPOWER_METRICS", "off", 1);
  env = read_obs_env();
  EXPECT_TRUE(env.metrics_set);  // explicit off still counts as configured
  EXPECT_FALSE(env.metrics);
}

TEST(BenchEnvDeathTest, MalformedMetricsDies) {
  ObsEnvGuard guard;
  setenv("GPUPOWER_METRICS", "verbose", 1);
  EXPECT_EXIT((void)read_obs_env(), ::testing::ExitedWithCode(2),
              "invalid GPUPOWER_METRICS='verbose'");
}

TEST(BenchEnvTest, ApplyConfiguresExperiment) {
  EnvGuard guard;
  setenv("GPUPOWER_N", "256", 1);
  setenv("GPUPOWER_SEEDS", "4", 1);
  setenv("GPUPOWER_TILES", "6", 1);
  const BenchEnv env = read_bench_env();
  ExperimentConfig config;
  env.apply(config);
  EXPECT_EQ(config.n, 256u);
  EXPECT_EQ(config.seeds, 4);
  EXPECT_EQ(config.sampling.max_tiles, 6u);
}

}  // namespace
}  // namespace gpupower::core
