// Power traces: timestamped samples as a DCGM field poller would record
// them, with the trimming and averaging pipeline the paper applies
// (100 ms samples, first 500 ms discarded as warmup).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace gpupower::telemetry {

struct PowerSample {
  double t_s = 0.0;
  double power_w = 0.0;
};

class PowerTrace {
 public:
  PowerTrace() = default;
  explicit PowerTrace(std::vector<PowerSample> samples)
      : samples_(std::move(samples)) {}

  void push(double t_s, double power_w) { samples_.push_back({t_s, power_w}); }

  [[nodiscard]] const std::vector<PowerSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Returns a trace with every sample earlier than `trim_s` dropped
  /// (the paper's 500 ms warmup trim).
  [[nodiscard]] PowerTrace trimmed(double trim_s) const;

  [[nodiscard]] double mean_w() const;
  [[nodiscard]] double stddev_w() const;
  [[nodiscard]] double min_w() const;
  [[nodiscard]] double max_w() const;

  /// Trapezoidal energy integral over the trace span, in joules.
  [[nodiscard]] double energy_j() const;

  /// Writes "t_s,power_w" rows with a header.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<PowerSample> samples_;
};

}  // namespace gpupower::telemetry
