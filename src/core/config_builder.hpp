// ExperimentConfigBuilder: fluent, validating construction of
// ExperimentConfig — the front door of the ExperimentEngine API.  Composes
// GPU model, datatype, problem size, seeds, and the input pattern given
// either as a PatternSpec or as a pattern-DSL string (core/pattern_dsl.hpp),
// so callers never hand-assemble configs or hand-parse DSL.
//
//   const auto config = ExperimentConfigBuilder()
//                           .gpu(gpusim::GpuModel::kA100PCIe)
//                           .dtype("fp16t")
//                           .n(2048)
//                           .seeds(10)
//                           .pattern("gaussian(sigma=210) | sparsity(25%)")
//                           .build();
//
// Errors (bad DSL, out-of-range sizes, unknown dtype names) are collected
// rather than thrown: check `valid()` / `error()`, or use `try_build()`.
// The first error encountered wins, pointing at the root cause.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/env.hpp"
#include "core/experiment.hpp"

namespace gpupower::core {

class ExperimentConfigBuilder {
 public:
  ExperimentConfigBuilder() = default;

  ExperimentConfigBuilder& gpu(gpupower::gpusim::GpuModel model);
  ExperimentConfigBuilder& dtype(gpupower::numeric::DType dtype);
  /// Parses "fp32" / "fp16" / "fp16t" / "int8"; unknown names record an
  /// error.
  ExperimentConfigBuilder& dtype(std::string_view name);
  ExperimentConfigBuilder& n(std::size_t n);
  ExperimentConfigBuilder& seeds(int seeds);
  /// 0 keeps the paper default (20k FP16-T, 10k others).
  ExperimentConfigBuilder& iterations(std::size_t iterations);
  ExperimentConfigBuilder& base_seed(std::uint64_t seed);
  ExperimentConfigBuilder& pattern(const PatternSpec& spec);
  /// Parses a pattern-DSL string; parse failures record the parser's
  /// message and byte offset.
  ExperimentConfigBuilder& pattern(std::string_view dsl);
  ExperimentConfigBuilder& sampling(const gpupower::gpusim::SamplingPlan& plan);
  ExperimentConfigBuilder& sampler(const telemetry::SamplerConfig& config);
  ExperimentConfigBuilder& variation(
      const gpupower::gpusim::ProcessVariation& variation);
  /// Applies the GPUPOWER_* environment knobs (n, seeds, sampling plan)
  /// through the validating setters, so out-of-range values recorded into a
  /// BenchEnv by hand (e.g. from CLI flags) surface as builder errors.
  ExperimentConfigBuilder& env(const BenchEnv& env);

  [[nodiscard]] bool valid() const noexcept { return error_.empty(); }
  /// First validation error, empty when valid().
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// The assembled config.  Call only when valid(); on an invalid builder
  /// this still returns the partially-assembled config, so prefer
  /// try_build() when the inputs are untrusted.
  [[nodiscard]] ExperimentConfig build() const { return config_; }
  /// std::nullopt when any setter recorded an error.
  [[nodiscard]] std::optional<ExperimentConfig> try_build() const;

 private:
  void fail(std::string message);

  ExperimentConfig config_;
  std::string error_;
};

/// Canonical cache key for a config: the pattern serialised through
/// `to_dsl` (human-readable) plus every scalar field that influences the
/// result — including the pattern's raw scalars — at "%.17g" precision so
/// distinct configs never collide.  Two configs with equal keys produce
/// bit-identical ExperimentResults.
[[nodiscard]] std::string canonical_config_key(const ExperimentConfig& config);

}  // namespace gpupower::core
