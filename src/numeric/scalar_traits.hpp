// Uniform compile-time interface over the element types used by the GEMM
// kernels and the activity model: raw-bit extraction, float round-trips, and
// the matching DType tag.
#pragma once

#include <bit>
#include <cstdint>

#include "numeric/dtype.hpp"
#include "numeric/float16.hpp"
#include "numeric/int8.hpp"

namespace gpupower::numeric {

template <typename T>
struct scalar_traits;

template <>
struct scalar_traits<float> {
  using bits_type = std::uint32_t;
  static constexpr int kBits = 32;
  static constexpr DType kDType = DType::kFP32;
  static bits_type to_bits(float v) noexcept { return std::bit_cast<bits_type>(v); }
  static float from_bits(bits_type b) noexcept { return std::bit_cast<float>(b); }
  static float to_float(float v) noexcept { return v; }
  static float from_float(float v) noexcept { return v; }
  static bool is_zero(float v) noexcept { return v == 0.0f; }
};

template <>
struct scalar_traits<float16_t> {
  using bits_type = std::uint16_t;
  static constexpr int kBits = 16;
  static constexpr DType kDType = DType::kFP16;
  static bits_type to_bits(float16_t v) noexcept { return v.bits(); }
  static float16_t from_bits(bits_type b) noexcept { return float16_t::from_bits(b); }
  static float to_float(float16_t v) noexcept { return v.to_float(); }
  static float16_t from_float(float v) noexcept { return float16_t(v); }
  static bool is_zero(float16_t v) noexcept { return v.is_zero(); }
};

template <>
struct scalar_traits<int8_value_t> {
  using bits_type = std::uint8_t;
  static constexpr int kBits = 8;
  static constexpr DType kDType = DType::kINT8;
  static bits_type to_bits(int8_value_t v) noexcept { return v.bits(); }
  static int8_value_t from_bits(bits_type b) noexcept {
    return int8_value_t::from_bits(b);
  }
  static float to_float(int8_value_t v) noexcept { return v.to_float(); }
  static int8_value_t from_float(float v) noexcept { return int8_value_t(v); }
  static bool is_zero(int8_value_t v) noexcept { return v.is_zero(); }
};

/// Accumulator type used by each element type's GEMM pipeline.  FP16 kernels
/// accumulate in FP32 (both SIMT HFMA2-with-F32-accumulate and tensor-core
/// HMMA configurations the paper's CUTLASS kernels use); INT8 accumulates in
/// INT32 exactly.
template <typename T>
struct accumulator_for {
  using type = float;
};
template <>
struct accumulator_for<int8_value_t> {
  using type = std::int32_t;
};

template <typename T>
using accumulator_t = typename accumulator_for<T>::type;

}  // namespace gpupower::numeric
