#include "core/scenario.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/config_builder.hpp"
#include "core/report.hpp"

namespace gpupower::core {
namespace {

[[noreturn]] void throw_kind_mismatch(const char* accessor,
                                      ScenarioKind actual) {
  throw std::logic_error(std::string("ScenarioConfig/Result::") + accessor +
                         "(): scenario holds a " + std::string(name(actual)) +
                         " value");
}

/// Moves the typed replicas out of their variant slots; the engine clears
/// the slots right after the reduction, so the move is safe.
template <typename Replica>
std::vector<Replica> take_replicas(std::span<ScenarioReplica> replicas) {
  std::vector<Replica> typed;
  typed.reserve(replicas.size());
  for (ScenarioReplica& replica : replicas) {
    typed.push_back(std::get<Replica>(std::move(replica)));
  }
  return typed;
}

std::string validate_seeds(int seeds) {
  if (seeds <= 0) {
    return "experiment.seeds must be >= 1, got " + std::to_string(seeds);
  }
  return {};
}

// --- static experiment hooks -----------------------------------------------

std::string static_validate(const ScenarioConfig& config) {
  return validate_seeds(config.static_config().seeds);
}

std::string static_key(const ScenarioConfig& config) {
  return canonical_config_key(config.static_config());
}

ScenarioReplica static_replica(const ScenarioConfig& config, int seed_index) {
  return run_seed_replica(config.static_config(), seed_index);
}

ScenarioResult static_reduce(const ScenarioConfig& config,
                             std::span<ScenarioReplica> replicas) {
  return reduce_replicas(config.static_config(),
                         take_replicas<SeedReplicaResult>(replicas));
}

analysis::JsonValue static_json(const ScenarioConfig& config,
                                const ScenarioResult& result) {
  return to_json(config.static_config(), result.static_result());
}

// --- DVFS hooks ------------------------------------------------------------

std::string dvfs_validate(const ScenarioConfig& config) {
  return validate_dvfs_config(config.dvfs());
}

std::string dvfs_key(const ScenarioConfig& config) {
  return canonical_dvfs_key(config.dvfs());
}

ScenarioReplica dvfs_replica(const ScenarioConfig& config, int seed_index) {
  return run_dvfs_seed_replica(config.dvfs(), seed_index);
}

ScenarioResult dvfs_reduce(const ScenarioConfig& config,
                           std::span<ScenarioReplica> replicas) {
  return reduce_dvfs_replicas(
      config.dvfs(),
      take_replicas<gpupower::gpusim::dvfs::ReplayResult>(replicas));
}

analysis::JsonValue dvfs_json(const ScenarioConfig& config,
                              const ScenarioResult& result) {
  return dvfs_to_json(config.dvfs(), result.dvfs());
}

// --- fleet hooks -----------------------------------------------------------

std::string fleet_validate(const ScenarioConfig& config) {
  const std::string seeds = validate_seeds(config.fleet().experiment.seeds);
  if (!seeds.empty()) return seeds;
  return validate_fleet_config(config.fleet());
}

std::string fleet_key(const ScenarioConfig& config) {
  return canonical_fleet_key(config.fleet());
}

ScenarioReplica fleet_replica(const ScenarioConfig& config, int seed_index) {
  return run_fleet_seed_replica(config.fleet(), seed_index);
}

ScenarioResult fleet_reduce(const ScenarioConfig& config,
                            std::span<ScenarioReplica> replicas) {
  return reduce_fleet_replicas(
      config.fleet(),
      take_replicas<gpupower::gpusim::fleet::FleetRun>(replicas));
}

analysis::JsonValue fleet_json(const ScenarioConfig& config,
                               const ScenarioResult& result) {
  return fleet_to_json(config.fleet(), result.fleet());
}

constexpr ScenarioKindInfo kRegistry[kScenarioKindCount] = {
    {ScenarioKind::kStatic, "static", &static_validate, &static_key,
     &static_replica, &static_reduce, &static_json},
    {ScenarioKind::kDvfs, "dvfs", &dvfs_validate, &dvfs_key, &dvfs_replica,
     &dvfs_reduce, &dvfs_json},
    {ScenarioKind::kFleet, "fleet", &fleet_validate, &fleet_key,
     &fleet_replica, &fleet_reduce, &fleet_json},
};

}  // namespace

std::string_view name(ScenarioKind kind) noexcept {
  return kRegistry[static_cast<std::size_t>(kind)].name;
}

bool parse_scenario_kind(std::string_view text, ScenarioKind& out) noexcept {
  for (const ScenarioKindInfo& info : kRegistry) {
    if (text == info.name) {
      out = info.kind;
      return true;
    }
  }
  if (text == "experiment") {  // the spec-file alias for "static"
    out = ScenarioKind::kStatic;
    return true;
  }
  return false;
}

const ExperimentConfig& ScenarioConfig::static_config() const {
  if (kind() != ScenarioKind::kStatic) {
    throw_kind_mismatch("static_config", kind());
  }
  return std::get<ExperimentConfig>(value_);
}

const DvfsConfig& ScenarioConfig::dvfs() const {
  if (kind() != ScenarioKind::kDvfs) throw_kind_mismatch("dvfs", kind());
  return std::get<DvfsConfig>(value_);
}

const FleetConfig& ScenarioConfig::fleet() const {
  if (kind() != ScenarioKind::kFleet) throw_kind_mismatch("fleet", kind());
  return std::get<FleetConfig>(value_);
}

const ExperimentConfig& ScenarioConfig::experiment() const noexcept {
  switch (kind()) {
    case ScenarioKind::kDvfs:
      return std::get<DvfsConfig>(value_).experiment;
    case ScenarioKind::kFleet:
      return std::get<FleetConfig>(value_).experiment;
    case ScenarioKind::kStatic:
      break;
  }
  return std::get<ExperimentConfig>(value_);
}

const ExperimentResult& ScenarioResult::static_result() const {
  if (!valid() || kind() != ScenarioKind::kStatic) {
    throw_kind_mismatch("static_result", kind());
  }
  return std::get<ExperimentResult>(value_);
}

const DvfsResult& ScenarioResult::dvfs() const {
  if (!valid() || kind() != ScenarioKind::kDvfs) {
    throw_kind_mismatch("dvfs", kind());
  }
  return std::get<DvfsResult>(value_);
}

const FleetResult& ScenarioResult::fleet() const {
  if (!valid() || kind() != ScenarioKind::kFleet) {
    throw_kind_mismatch("fleet", kind());
  }
  return std::get<FleetResult>(value_);
}

const ScenarioKindInfo& scenario_kind_info(ScenarioKind kind) noexcept {
  return kRegistry[static_cast<std::size_t>(kind)];
}

std::string validate_scenario(const ScenarioConfig& config) {
  return scenario_kind_info(config.kind()).validate(config);
}

std::string canonical_scenario_key(const ScenarioConfig& config) {
  const ScenarioKindInfo& info = scenario_kind_info(config.kind());
  // '\x1f' (unit separator) cannot appear in a kind name, so keys of
  // different kinds can never collide even if a kind's key embedded
  // another kind's spelling.
  return std::string(info.name) + '\x1f' + info.canonical_key(config);
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  const ScenarioKindInfo& info = scenario_kind_info(config.kind());
  const std::string problem = info.validate(config);
  if (!problem.empty()) {
    throw std::invalid_argument("run_scenario: " + problem);
  }
  std::vector<ScenarioReplica> replicas;
  replicas.reserve(static_cast<std::size_t>(config.seeds()));
  for (int s = 0; s < config.seeds(); ++s) {
    replicas.push_back(info.run_replica(config, s));
  }
  return info.reduce(config, replicas);
}

analysis::JsonValue scenario_to_json(const ScenarioConfig& config,
                                     const ScenarioResult& result) {
  return scenario_kind_info(config.kind()).to_json(config, result);
}

}  // namespace gpupower::core
