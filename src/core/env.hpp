// Environment-variable configuration shared by the bench binaries, so a
// single knob set scales every figure harness between CI speed and
// paper-fidelity runs:
//   GPUPOWER_N      matrix dimension (default 512; paper 2048)
//   GPUPOWER_SEEDS  seeds per configuration (default 2; paper 10)
//   GPUPOWER_TILES  sampled warp tiles, 0 = exact walk (default 12)
//   GPUPOWER_KFRAC  fraction of K-slices walked (default 0.5)
//   GPUPOWER_CSV    when set, benches also print CSV blocks
#pragma once

#include <cstddef>

#include "core/experiment.hpp"

namespace gpupower::core {

struct BenchEnv {
  std::size_t n = 512;
  int seeds = 2;
  std::size_t tiles = 12;
  double k_fraction = 0.5;
  bool csv = false;

  /// Applies the environment knobs onto an ExperimentConfig.
  void apply(ExperimentConfig& config) const {
    config.n = n;
    config.seeds = seeds;
    config.sampling.max_tiles = tiles;
    config.sampling.k_fraction = k_fraction;
  }
};

/// Reads the GPUPOWER_* variables (invalid values fall back to defaults).
[[nodiscard]] BenchEnv read_bench_env();

}  // namespace gpupower::core
