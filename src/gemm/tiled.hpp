// CUTLASS-style tiled GEMM with a compile-time observer hook.
//
// The kernel decomposes the output into threadblock tiles and walks operands
// in the order a real tiled kernel streams them: per K-slice tile fetches
// (memory hierarchy), per-thread FMA operand streams (SIMT datapaths) or
// MMA fragment issue (tensor cores), and accumulator register updates.  An
// Observer receives one event per physical wire/datapath activity so the
// power simulator can count bit toggles on exactly the streams the hardware
// would see.  With the default NullObserver every hook compiles away and
// this is a plain blocked GEMM.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "gemm/matrix.hpp"
#include "gemm/problem.hpp"
#include "gemm/tile_config.hpp"
#include "numeric/scalar_traits.hpp"

namespace gpupower::gemm {

/// No-op observer: the compute-only configuration.
struct NullObserver {
  static constexpr bool kEnabled = false;
  void fetch_a(std::uint32_t, int) noexcept {}
  void fetch_b(std::uint32_t, int) noexcept {}
  void operand_a(std::uint32_t, int) noexcept {}
  void operand_b(std::uint32_t, int) noexcept {}
  void mac_pair(std::uint32_t, std::uint32_t, int) noexcept {}
  void acc_update(std::uint64_t, std::uint64_t) noexcept {}
};

namespace detail {

template <typename Acc>
[[nodiscard]] inline std::uint64_t acc_bits(Acc v) noexcept {
  if constexpr (std::is_same_v<Acc, float>) {
    return std::bit_cast<std::uint32_t>(v);
  } else {
    return static_cast<std::uint32_t>(v);
  }
}

}  // namespace detail

/// Processes one threadblock tile: accumulates A[tile.rows x K-range] * op(B)
/// into `acc` (row-major tile.rows x tile.cols, zero-initialised by the
/// caller), emitting observer events along the way.  `k_begin`/`k_end`
/// restrict the inner-dimension range so the activity estimator can walk a
/// sampled subset of K-slices; the defaults cover the full problem.
template <typename T, typename Observer>
void process_tile(const GemmProblem& problem, const Matrix<T>& a,
                  const Matrix<T>& b_storage, const TileCoord& tile,
                  const TileConfig& config,
                  std::vector<gpupower::numeric::accumulator_t<T>>& acc,
                  Observer& obs, std::size_t k_begin = 0,
                  std::size_t k_end = static_cast<std::size_t>(-1)) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using Acc = gpupower::numeric::accumulator_t<T>;
  constexpr int kWidth = traits::kBits;

  assert(acc.size() == tile.rows * tile.cols);
  const std::size_t kTotal = std::min(k_end, problem.k);
  const std::size_t kStep = config.threadblock.k;

  for (std::size_t k0 = k_begin; k0 < kTotal; k0 += kStep) {
    const std::size_t k1 = std::min(k0 + kStep, kTotal);

    // Tile fetch: the A slice streams row-major, the B slice streams in
    // storage order (row-major over the stored buffer), modelling the wide
    // load pattern global->shared memory copies use.
    if constexpr (Observer::kEnabled) {
      for (std::size_t i = 0; i < tile.rows; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
          obs.fetch_a(static_cast<std::uint32_t>(
                          traits::to_bits(a.at(tile.row + i, k))),
                      kWidth);
        }
      }
      for (std::size_t j = 0; j < tile.cols; ++j) {
        for (std::size_t k = k0; k < k1; ++k) {
          obs.fetch_b(static_cast<std::uint32_t>(traits::to_bits(
                          b_element(b_storage, problem, k, tile.col + j))),
                      kWidth);
        }
      }
    }

    if (!config.tensor_core) {
      // SIMT path: each logical thread owns one output element and streams
      // its operands k-contiguously through the FMA pipeline, updating its
      // accumulator register every MAC.
      for (std::size_t i = 0; i < tile.rows; ++i) {
        for (std::size_t j = 0; j < tile.cols; ++j) {
          Acc sum = acc[i * tile.cols + j];
          for (std::size_t k = k0; k < k1; ++k) {
            const T av = a.at(tile.row + i, k);
            const T bv = b_element(b_storage, problem, k, tile.col + j);
            const auto ab = static_cast<std::uint32_t>(traits::to_bits(av));
            const auto bb = static_cast<std::uint32_t>(traits::to_bits(bv));
            if constexpr (Observer::kEnabled) {
              obs.operand_a(ab, kWidth);
              obs.operand_b(bb, kWidth);
              obs.mac_pair(ab, bb, kWidth);
            }
            Acc next;
            if constexpr (std::is_same_v<Acc, float>) {
              next = sum + traits::to_float(av) * traits::to_float(bv);
            } else {
              next = sum + static_cast<Acc>(traits::to_float(av)) *
                               static_cast<Acc>(traits::to_float(bv));
            }
            if constexpr (Observer::kEnabled) {
              obs.acc_update(detail::acc_bits(sum), detail::acc_bits(next));
            }
            sum = next;
          }
          acc[i * tile.cols + j] = sum;
        }
      }
    } else {
      // Tensor-core path: MMA fragments.  Operand registers are loaded once
      // per fragment and reused across the fragment's outputs (the key
      // operand-reuse property of MMA units), every product still exercises
      // the multiplier array, and each output's accumulator register is
      // written once per MMA instruction (the k-depth dot product reduces
      // internally).
      const std::size_t fm = config.mma.m;
      const std::size_t fn = config.mma.n;
      const std::size_t fk = config.mma.k;
      for (std::size_t kk = k0; kk < k1; kk += fk) {
        const std::size_t kend = std::min(kk + fk, k1);
        for (std::size_t i0 = 0; i0 < tile.rows; i0 += fm) {
          const std::size_t iend = std::min(i0 + fm, tile.rows);
          for (std::size_t j0 = 0; j0 < tile.cols; j0 += fn) {
            const std::size_t jend = std::min(j0 + fn, tile.cols);
            // Fragment operand issue.
            if constexpr (Observer::kEnabled) {
              for (std::size_t i = i0; i < iend; ++i) {
                for (std::size_t k = kk; k < kend; ++k) {
                  obs.operand_a(static_cast<std::uint32_t>(
                                    traits::to_bits(a.at(tile.row + i, k))),
                                kWidth);
                }
              }
              for (std::size_t j = j0; j < jend; ++j) {
                for (std::size_t k = kk; k < kend; ++k) {
                  obs.operand_b(
                      static_cast<std::uint32_t>(traits::to_bits(
                          b_element(b_storage, problem, k, tile.col + j))),
                      kWidth);
                }
              }
            }
            // Dot-product array + single accumulator write per output.
            for (std::size_t i = i0; i < iend; ++i) {
              for (std::size_t j = j0; j < jend; ++j) {
                Acc dot{};
                for (std::size_t k = kk; k < kend; ++k) {
                  const T av = a.at(tile.row + i, k);
                  const T bv = b_element(b_storage, problem, k, tile.col + j);
                  if constexpr (Observer::kEnabled) {
                    obs.mac_pair(
                        static_cast<std::uint32_t>(traits::to_bits(av)),
                        static_cast<std::uint32_t>(traits::to_bits(bv)),
                        kWidth);
                  }
                  if constexpr (std::is_same_v<Acc, float>) {
                    dot += traits::to_float(av) * traits::to_float(bv);
                  } else {
                    dot += static_cast<Acc>(traits::to_float(av)) *
                           static_cast<Acc>(traits::to_float(bv));
                  }
                }
                Acc& slot = acc[i * tile.cols + j];
                const Acc next = slot + dot;
                if constexpr (Observer::kEnabled) {
                  obs.acc_update(detail::acc_bits(slot), detail::acc_bits(next));
                }
                slot = next;
              }
            }
          }
        }
      }
    }
  }
}

/// Full device-level GEMM: D = alpha * A * op(B) + beta * C over all
/// threadblock tiles, with the CUTLASS-default linear-combination epilogue.
template <typename T, typename Observer = NullObserver>
void tiled_gemm(const GemmProblem& problem, const Matrix<T>& a,
                const Matrix<T>& b_storage,
                const Matrix<gpupower::numeric::accumulator_t<T>>& c,
                Matrix<gpupower::numeric::accumulator_t<T>>& d,
                const TileConfig& config, Observer& obs) {
  using Acc = gpupower::numeric::accumulator_t<T>;
  assert(a.rows() == problem.n && a.cols() == problem.k);
  if (d.rows() != problem.n || d.cols() != problem.m) {
    d = Matrix<Acc>(problem.n, problem.m);
  }
  std::vector<Acc> acc;
  for (const TileCoord& tile :
       enumerate_tiles(problem.n, problem.m, config.threadblock)) {
    acc.assign(tile.rows * tile.cols, Acc{});
    process_tile(problem, a, b_storage, tile, config, acc, obs);
    for (std::size_t i = 0; i < tile.rows; ++i) {
      for (std::size_t j = 0; j < tile.cols; ++j) {
        const float accumulated = static_cast<float>(acc[i * tile.cols + j]);
        const float source = static_cast<float>(c.at(tile.row + i, tile.col + j));
        d.at(tile.row + i, tile.col + j) = static_cast<Acc>(
            problem.alpha * accumulated + problem.beta * source);
      }
    }
  }
}

/// Compute-only convenience overload.
template <typename T>
void tiled_gemm(const GemmProblem& problem, const Matrix<T>& a,
                const Matrix<T>& b_storage,
                const Matrix<gpupower::numeric::accumulator_t<T>>& c,
                Matrix<gpupower::numeric::accumulator_t<T>>& d,
                const TileConfig& config) {
  NullObserver obs;
  tiled_gemm(problem, a, b_storage, c, d, config, obs);
}

}  // namespace gpupower::gemm
