// Declarative JSON scenario specs: the file format that drives the whole
// simulator without writing C++.  A spec names a scenario kind and its
// fields; `gpowerctl run <spec.json>` (and any code calling
// parse_scenario_spec + ExperimentEngine::submit) executes it.  The
// `campaign` form grid-sweeps *arbitrary* named fields — cap level x
// allocator, governor threshold x dtype, seeds, ... — and fans the
// cross-product through the engine as one deduplicated batch, the generic
// form of the figure-only submit_sweep.
//
// Single-scenario shape (every field optional unless noted; unknown keys
// are rejected with an error naming the key):
//
//   { "scenario": "dvfs",                  // "static" | "dvfs" | "fleet"
//     "experiment": {
//       "gpu": "a100",                     // a100 | h100 | v100 | rtx6000
//       "dtype": "fp16t", "n": 512, "seeds": 2,
//       "pattern": "gaussian(sigma=210) | sparsity(25%)",
//       "sampling": {"tiles": 12, "k_fraction": 0.5},
//       "base_seed": 42, "iterations": 0 },
//     "governor": "utilization(up=80%, down=30%)",   // DSL or object form
//     "timeline": "burst(period=0.2, duty=30%, dur=2)",   // required (dvfs)
//     "phase_patterns": ["gaussian(sigma=100)"],
//     "slice_s": 0.01, "pstates": 5 }
//
// Fleet adds "timelines": [...], "devices": [{"gpu", "governor",
// "timeline", "priority"}], "staggered": {"timeline", "count",
// "stagger_s", "gpu", "governor"}, "allocator", "cap_w" (null =
// uncapped), and "thermal": {...}.
//
// Campaign shape:
//
//   { "scenario": "campaign",
//     "name": "fleet_capping",             // bench-document name
//     "protocol": "...",                   // copied verbatim to bench docs
//     "base": { ...any single-scenario spec... },
//     "axes": [
//       {"field": "allocator", "values": ["uniform", "proportional"]},
//       {"field": "cap_w", "values": [{"value": 415.2, "label": "0.50"}]},
//       {"field": "experiment.pattern", "figure": "fig6a"} ] }
//
// Axis `field` is a dotted path into the base document; each grid point
// patches the fields, re-parses, and submits.  A "figure" axis expands to
// the named paper figure's sweep points (pattern DSL values + labels).
//
// A fourth form, `"scenario": "dag"`, chains dependent scenarios and
// campaigns into one study graph with `$ref` result substitutions — see
// core/dag/dag.hpp for the node grammar.  parse_scenario_spec fills
// ScenarioSpec::dag for that form.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/json.hpp"
#include "core/engine.hpp"
#include "core/scenario.hpp"

namespace gpupower::core {

namespace dag {
struct DagSpec;
}  // namespace dag

/// One campaign axis value: the JSON payload patched into the base
/// document plus its display label (campaign point labels join axis labels
/// with '@').
struct CampaignAxisValue {
  analysis::JsonValue value;
  std::string label;
};

struct CampaignAxis {
  std::string field;  ///< dotted path into the base spec document
  std::vector<CampaignAxisValue> values;
};

/// A parsed spec: one scenario (config), a campaign grid (base document +
/// axes, expanded by expand_campaign), or a dag study (dag != nullptr,
/// executed by dag::run_dag).
struct ScenarioSpec {
  bool campaign = false;
  std::string name;      ///< campaign/dag name (bench documents); may be empty
  std::string protocol;  ///< campaign protocol string for bench documents
  ScenarioConfig config;
  analysis::JsonValue base;
  std::vector<CampaignAxis> axes;
  std::shared_ptr<const dag::DagSpec> dag;  ///< set for the "dag" form
};

struct SpecParseResult {
  bool ok = false;
  ScenarioSpec spec;
  /// Names the offending key (dotted path) when !ok, e.g.
  /// "experiment.dtype: unknown dtype 'f16'".
  std::string error;
};

/// Parses a spec document.  Strict: unknown keys, wrong JSON kinds, bad
/// DSL, and dangling cross-references all fail with a pointed error.
[[nodiscard]] SpecParseResult parse_scenario_spec(
    const analysis::JsonValue& doc);

/// json_parse + parse_scenario_spec (JSON syntax errors carry the byte
/// offset).
[[nodiscard]] SpecParseResult parse_scenario_spec_text(
    std::string_view json_text);

/// Reads and parses a spec file.
[[nodiscard]] SpecParseResult load_scenario_spec(const std::string& path);

/// Serialises any ScenarioConfig to its single-scenario spec document.
/// Exact: parse_scenario_spec(spec_to_json(c)) yields a config with an
/// identical canonical key (numbers are emitted at full round-trip
/// precision) — the migration path from hand-built configs to spec files.
[[nodiscard]] analysis::JsonValue spec_to_json(const ScenarioConfig& config);

/// One expanded campaign grid point.
struct CampaignPoint {
  std::string label;  ///< axis value labels joined with '@'
  std::vector<std::pair<std::string, std::string>> coords;  ///< field, label
  ScenarioConfig config;
};

/// Expands the cross product of a campaign's axes over its base document
/// (row-major: the first axis varies slowest).  Returns false with `error`
/// naming the offending axis/key; `out` is cleared first.
[[nodiscard]] bool expand_campaign(const ScenarioSpec& spec,
                                   std::vector<CampaignPoint>& out,
                                   std::string& error);

/// An expanded campaign in flight: handles are index-aligned with points,
/// and so are outcomes — how each point's submit was satisfied (computed /
/// cache hit / store hit), for callers doing per-client attribution
/// (serve's per-session counters).
struct CampaignRun {
  std::vector<CampaignPoint> points;
  std::vector<ScenarioHandle> handles;
  std::vector<ExperimentEngine::SubmitOutcome> outcomes;
};

/// expand_campaign + one engine submission per point (duplicates attach to
/// cached jobs) — the shared driver behind `gpowerctl run`, the campaign
/// benches, and the examples.  Submission is non-blocking; call
/// engine.wait_all() or block on the handles.  Returns false with `error`
/// on expansion failure.
[[nodiscard]] bool submit_campaign(ExperimentEngine& engine,
                                   const ScenarioSpec& spec, CampaignRun& out,
                                   std::string& error);

namespace detail {
/// The dotted-path document patch campaign axes expand with, shared with
/// dag `$ref` substitutions: rebuilds `in` with `path` set to `leaf`
/// (missing intermediate objects are created; an existing non-object on
/// the path fails with `error` naming the segment).
[[nodiscard]] bool set_spec_path(const analysis::JsonValue& in,
                                 std::string_view path,
                                 const analysis::JsonValue& leaf,
                                 analysis::JsonValue& out, std::string& error);
}  // namespace detail

}  // namespace gpupower::core
