#include "gpusim/fleet/allocator.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace gpupower::gpusim::fleet {
namespace {

std::size_t active_count(std::span<const DeviceDemand> demands) {
  std::size_t count = 0;
  for (const DeviceDemand& demand : demands) {
    if (demand.active) ++count;
  }
  return count;
}

/// Demand-blind equal split: cap / N for every active device.  Grants can
/// exceed a device's demand (the unused headroom is simply not drawn);
/// they still sum to exactly the cap.
class UniformAllocator final : public PowerAllocator {
 public:
  void allocate(std::span<const DeviceDemand> demands, double cap_w,
                std::span<double> budgets) override {
    const std::size_t n = active_count(demands);
    const double share =
        n > 0 ? cap_w / static_cast<double>(n) : cap_w;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      budgets[i] = demands[i].active ? share : 0.0;
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "uniform";
  }
};

/// Shares scale with demand: when total demand fits, everyone gets what it
/// asked for; otherwise each device gets cap * demand / total.
class ProportionalAllocator final : public PowerAllocator {
 public:
  void allocate(std::span<const DeviceDemand> demands, double cap_w,
                std::span<double> budgets) override {
    double total = 0.0;
    for (const DeviceDemand& demand : demands) {
      if (demand.active) total += demand.demand_w;
    }
    const double scale = total > cap_w && total > 0.0 ? cap_w / total : 1.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      budgets[i] = demands[i].active ? demands[i].demand_w * scale : 0.0;
    }
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "proportional";
  }
};

/// Fill in a deterministic order: first every active device's idle floor
/// (a parked device draws it regardless, so leaving it unfunded only
/// manufactures over-cap slices), then each device's demand above the
/// floor until the cap runs out.  The ordering predicate is the only
/// difference between the priority policy and the greedy oracle.
template <typename Better>
void ordered_fill(std::span<const DeviceDemand> demands, double cap_w,
                  std::span<double> budgets, Better better) {
  std::vector<std::size_t> order;
  order.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    budgets[i] = 0.0;
    if (demands[i].active) order.push_back(i);
  }
  // stable_sort + index tiebreak: allocation order (and therefore every
  // budget) is deterministic for identical demand vectors.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return better(demands[a], demands[b]);
                   });
  double remaining = cap_w;
  for (const std::size_t i : order) {
    const double grant =
        std::min(std::max(demands[i].floor_w, 0.0), remaining);
    budgets[i] = grant;
    remaining -= grant;
    if (remaining <= 0.0) break;
  }
  for (const std::size_t i : order) {
    if (remaining <= 0.0) break;
    const double extra = std::min(
        std::max(demands[i].demand_w - budgets[i], 0.0), remaining);
    budgets[i] += extra;
    remaining -= extra;
  }
}

class PriorityAllocator final : public PowerAllocator {
 public:
  void allocate(std::span<const DeviceDemand> demands, double cap_w,
                std::span<double> budgets) override {
    ordered_fill(demands, cap_w, budgets,
                 [](const DeviceDemand& a, const DeviceDemand& b) {
                   return a.priority > b.priority;
                 });
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "priority";
  }
};

/// Clairvoyant greedy baseline: devices that turn a watt into the most
/// completed work get filled first — served-work-per-joule weighted by how
/// much work is actually waiting (an efficient but idle device should not
/// hoard budget).
class GreedyOracleAllocator final : public PowerAllocator {
 public:
  void allocate(std::span<const DeviceDemand> demands, double cap_w,
                std::span<double> budgets) override {
    ordered_fill(demands, cap_w, budgets,
                 [](const DeviceDemand& a, const DeviceDemand& b) {
                   return a.pending_work_s * a.efficiency_s_per_j >
                          b.pending_work_s * b.efficiency_s_per_j;
                 });
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "greedy";
  }
};

}  // namespace

std::unique_ptr<PowerAllocator> make_allocator(const AllocatorConfig& config) {
  switch (config.policy) {
    case AllocatorConfig::Policy::kUniform:
      return std::make_unique<UniformAllocator>();
    case AllocatorConfig::Policy::kProportional:
      return std::make_unique<ProportionalAllocator>();
    case AllocatorConfig::Policy::kPriority:
      return std::make_unique<PriorityAllocator>();
    case AllocatorConfig::Policy::kGreedyOracle:
      return std::make_unique<GreedyOracleAllocator>();
  }
  return std::make_unique<ProportionalAllocator>();
}

bool parse_allocator_policy(std::string_view name,
                            AllocatorConfig::Policy& policy) {
  if (name == "uniform") {
    policy = AllocatorConfig::Policy::kUniform;
  } else if (name == "proportional") {
    policy = AllocatorConfig::Policy::kProportional;
  } else if (name == "priority") {
    policy = AllocatorConfig::Policy::kPriority;
  } else if (name == "greedy" || name == "oracle") {
    policy = AllocatorConfig::Policy::kGreedyOracle;
  } else {
    return false;
  }
  return true;
}

std::string_view name(AllocatorConfig::Policy policy) noexcept {
  switch (policy) {
    case AllocatorConfig::Policy::kUniform:
      return "uniform";
    case AllocatorConfig::Policy::kProportional:
      return "proportional";
    case AllocatorConfig::Policy::kPriority:
      return "priority";
    case AllocatorConfig::Policy::kGreedyOracle:
      return "greedy";
  }
  return "proportional";
}

}  // namespace gpupower::gpusim::fleet
