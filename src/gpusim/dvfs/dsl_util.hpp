// Shared lexing helpers for the small stage-style DSLs in the DVFS
// subsystem (governor specs, timeline specs).  Header-only and internal to
// src/gpusim/dvfs — the public grammar lives in the owning headers.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdio>
#include <string>
#include <string_view>
#include <system_error>

namespace gpupower::gpusim::dvfs::detail {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos >= text.size();
  }
  [[nodiscard]] bool accept(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

inline std::string read_ident(Cursor& cursor) {
  cursor.skip_ws();
  std::string out;
  while (cursor.pos < cursor.text.size()) {
    const char c = cursor.text[cursor.pos];
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') break;
    out.push_back(c);
    ++cursor.pos;
  }
  return out;
}

/// Parses a number with an optional '%' suffix (percent divides by 100).
/// Bounded by the view's end (std::from_chars, like the pattern DSL) — a
/// string_view over a larger or non-NUL-terminated buffer never reads
/// past its logical end.
inline bool read_number(Cursor& cursor, double& value) {
  cursor.skip_ws();
  const char* begin = cursor.text.data() + cursor.pos;
  const char* end = cursor.text.data() + cursor.text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{}) return false;
  cursor.pos += static_cast<std::size_t>(ptr - begin);
  if (cursor.pos < cursor.text.size() && cursor.text[cursor.pos] == '%') {
    ++cursor.pos;
    value /= 100.0;
  }
  return true;
}

inline std::string format_compact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Full round-trip precision, for cache keys.
inline std::string format_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace gpupower::gpusim::dvfs::detail
