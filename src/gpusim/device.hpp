// Device descriptors for the GPUs the paper measures: A100 PCIe (primary
// testbed, Section III), plus H100 SXM5, V100 SXM2, and Quadro RTX 6000 for
// the generalization study (Section IV-E, Fig. 7).  Specifications follow
// the public NVIDIA datasheets; per-event energy coefficients are calibrated
// so the simulated A100 reproduces the paper's reported power levels.
#pragma once

#include <string_view>

#include "gpusim/energy_model.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::gpusim {

enum class GpuModel {
  kA100PCIe,   ///< NVIDIA A100 PCIe 40GB, TDP 300 W (paper's main testbed)
  kH100SXM,    ///< NVIDIA H100 80GB HBM3, TDP 700 W
  kV100SXM2,   ///< NVIDIA Tesla V100-SXM2-32GB, TDP 300 W
  kRTX6000,    ///< NVIDIA Quadro RTX 6000 24GB, TDP 260 W
};

inline constexpr GpuModel kAllGpuModels[] = {
    GpuModel::kA100PCIe, GpuModel::kH100SXM, GpuModel::kV100SXM2,
    GpuModel::kRTX6000};

enum class MemoryKind { kHBM2, kHBM2e, kHBM3, kGDDR6 };

struct DeviceDescriptor {
  std::string_view name;
  GpuModel model{};
  int sm_count = 0;
  double boost_clock_ghz = 0.0;
  double tdp_w = 0.0;
  double idle_w = 0.0;          ///< power at zero activity, fans/VRs/leakage
  MemoryKind memory{};
  double mem_bandwidth_gbs = 0.0;

  /// Peak dense math throughput by datapath, in TFLOP/s (TOP/s for INT8).
  double fp32_tflops = 0.0;
  double fp16_tflops = 0.0;      ///< SIMT half pipeline
  double fp16_tc_tflops = 0.0;   ///< tensor-core HMMA
  double int8_tc_tops = 0.0;     ///< tensor-core IMMA (DP4A-equivalent on V100)

  EnergyModel energy;

  /// Thermal model: steady-state junction temperature rises by
  /// `thermal_resistance_c_per_w` degrees per watt over 30 C ambient, and
  /// leakage grows by `leakage_per_c` (fraction of idle_w) per degree over
  /// the 40 C reference point.
  double thermal_resistance_c_per_w = 0.12;
  double leakage_per_c = 0.004;

  [[nodiscard]] double peak_tflops(gpupower::numeric::DType t) const noexcept {
    using gpupower::numeric::DType;
    switch (t) {
      case DType::kFP32:
        return fp32_tflops;
      case DType::kFP16:
        return fp16_tflops;
      case DType::kFP16T:
        return fp16_tc_tflops;
      case DType::kINT8:
        return int8_tc_tops;
    }
    return fp32_tflops;
  }
};

/// Returns the descriptor for a GPU model (static storage).
[[nodiscard]] const DeviceDescriptor& device(GpuModel model) noexcept;

[[nodiscard]] std::string_view name(GpuModel model) noexcept;
[[nodiscard]] std::string_view name(MemoryKind kind) noexcept;

}  // namespace gpupower::gpusim
