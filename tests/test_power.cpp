#include "gpusim/power.hpp"

#include <gtest/gtest.h>

#include "gpusim/activity.hpp"
#include "patterns/distributions.hpp"

namespace gpupower::gpusim {
namespace {

using gemm::GemmProblem;
using gpupower::numeric::DType;
using gpupower::numeric::float16_t;

ActivityTotals gaussian_activity(std::size_t n, DType dtype) {
  const auto values = patterns::gaussian_fill(n * n, 0.0, 210.0, 1);
  const auto values_b = patterns::gaussian_fill(n * n, 0.0, 210.0, 2);
  const auto a = gemm::materialize<float16_t>(values, n, n);
  const auto b = gemm::materialize<float16_t>(values_b, n, n);
  return estimate_activity(GemmProblem::square(n), a, b,
                           gemm::TileConfig::for_dtype(dtype))
      .totals;
}

TEST(MathInstructions, PerDatapath) {
  EXPECT_DOUBLE_EQ(math_instructions(DType::kFP32, 4096.0), 4096.0);
  EXPECT_DOUBLE_EQ(math_instructions(DType::kFP16, 4096.0), 2048.0);
  EXPECT_DOUBLE_EQ(math_instructions(DType::kFP16T, 2048.0), 1.0);
  EXPECT_DOUBLE_EQ(math_instructions(DType::kINT8, 4096.0), 1.0);
}

TEST(IterationTime, InputIndependentAndThroughputOrdered) {
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const auto p = GemmProblem::square(2048);
  const double t32 = calc.iteration_time_s(p, DType::kFP32);
  const double t16 = calc.iteration_time_s(p, DType::kFP16);
  const double t16t = calc.iteration_time_s(p, DType::kFP16T);
  const double t8 = calc.iteration_time_s(p, DType::kINT8);
  // Fig. 1 ordering: FP32 slowest, INT8 fastest.
  EXPECT_GT(t32, t16);
  EXPECT_GT(t16, t16t);
  EXPECT_GT(t16t, t8);
  // A100 FP32 2048^3 at ~17.4 TFLOP/s sustained: just under a millisecond.
  EXPECT_NEAR(t32, 0.99e-3, 0.1e-3);
}

TEST(IterationTime, OccupancyStretchesSmallProblems) {
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const double full = calc.iteration_time_s(GemmProblem::square(2048),
                                            DType::kFP32);
  const double small = calc.iteration_time_s(GemmProblem::square(512),
                                             DType::kFP32);
  // 512^2 = 16 threadblocks on 108 SMs: per-FLOP time stretches by the
  // occupancy deficit rather than shrinking with the cube of the size.
  const double flops_ratio = 64.0;  // (2048/512)^3
  EXPECT_GT(small * flops_ratio, full * 3.0);
}

TEST(Power, RailsSumToDynamic) {
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const auto totals = gaussian_activity(256, DType::kFP16);
  const auto report =
      calc.evaluate(GemmProblem::square(256), DType::kFP16, totals);
  EXPECT_NEAR(report.dynamic_w, report.rails.total(), 1e-9);
  EXPECT_NEAR(report.total_w,
              report.dynamic_w + report.idle_w + report.leakage_w, 1e-9);
  EXPECT_GT(report.temperature_c, 30.0);
  EXPECT_GT(report.energy_j, 0.0);
}

TEST(Power, ZeroActivityIsIdlePlusLeakage) {
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const ActivityTotals empty;
  const auto report =
      calc.evaluate(GemmProblem::square(256), DType::kFP16, empty);
  EXPECT_DOUBLE_EQ(report.dynamic_w, 0.0);
  EXPECT_NEAR(report.total_w, report.idle_w + report.leakage_w, 1e-9);
  EXPECT_FALSE(report.throttled);
}

TEST(Power, A100DoesNotThrottleAt2048) {
  // The paper chose 2048 as the largest power of two that does not
  // consistently throttle the A100.
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const auto totals = gaussian_activity(256, DType::kFP16T);
  // Scale the 256^3 walk up to the 2048^3 problem.
  ActivityTotals scaled = totals;
  scaled.scale_by(512.0);  // (2048/256)^3
  const auto report =
      calc.evaluate(GemmProblem::square(2048), DType::kFP16T, scaled);
  EXPECT_FALSE(report.throttled);
  EXPECT_LT(report.total_w, 300.0);
  EXPECT_GT(report.total_w, 150.0);  // well above idle: a real workload
}

TEST(Power, ThrottleClampsToTdp) {
  // Inflate activity until the device must throttle; total power must pin
  // at TDP and the clock fraction drop below 1.
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  auto totals = gaussian_activity(256, DType::kFP16T);
  totals.scale_by(4096.0);
  const auto report =
      calc.evaluate(GemmProblem::square(2048), DType::kFP16T, totals);
  EXPECT_TRUE(report.throttled);
  EXPECT_NEAR(report.total_w, 300.0, 1.0);
  EXPECT_LT(report.effective_clock_frac, 1.0);
  EXPECT_GT(report.realized_iteration_s, report.iteration_s);
}

TEST(Power, UtilizationMatchesPaperAtFullOccupancy) {
  const PowerCalculator calc(device(GpuModel::kA100PCIe));
  const auto totals = gaussian_activity(256, DType::kFP16);
  const auto full =
      calc.evaluate(GemmProblem::square(2048), DType::kFP16, totals);
  EXPECT_NEAR(full.utilization, 0.985, 1e-6);
  const auto partial =
      calc.evaluate(GemmProblem::square(512), DType::kFP16, totals);
  EXPECT_LT(partial.utilization, 0.5);
}

}  // namespace
}  // namespace gpupower::gpusim
