// Shared harness for the figure-regeneration benches: one bench binary per
// paper figure, each printing the figure's series (power in watts per sweep
// point, one column per datatype) exactly as the paper plots them.
//
// The harness runs on the ExperimentEngine: every (sweep point x datatype)
// cell is submitted up front, fans out across the worker pool, and shared
// points (e.g. the baseline column that several figures repeat) are served
// from the engine cache.  Results are bit-identical to the serial path.
//
// Environment knobs (see core/env.hpp): GPUPOWER_N, GPUPOWER_SEEDS,
// GPUPOWER_TILES, GPUPOWER_KFRAC, GPUPOWER_WORKERS, GPUPOWER_CSV.  Defaults
// favour CI speed; GPUPOWER_N=2048 GPUPOWER_SEEDS=10 reproduces the paper's
// protocol.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/figures.hpp"
#include "core/obs/obs.hpp"

namespace gpupower::bench {

inline void print_preamble(const core::BenchEnv& env, std::string_view title) {
  std::printf("%s\n", std::string(title).c_str());
  std::printf(
      "  protocol: %zux%zu GEMM on simulated A100 PCIe, %d seed(s), "
      "%zu sampled warp tiles, k-fraction %.2f\n",
      env.n, env.n, env.seeds, env.tiles, env.k_fraction);
  if (env.n < 2048) {
    std::printf(
        "  note: N<2048 leaves SMs idle (partial occupancy), deflating "
        "absolute watts;\n"
        "  run GPUPOWER_N=2048 GPUPOWER_SEEDS=10 for paper-protocol "
        "levels.\n");
  }
  std::printf("\n");
}

inline core::ExperimentEngine make_engine(const core::BenchEnv& env) {
  // Bench engines always run with the metrics registry armed: the timing
  // breakdown (compute/queue-wait/store seconds) is part of what a bench
  // exists to measure, and the armed cost is a relaxed atomic per event.
  core::obs::set_metrics_enabled(true);
  core::EngineOptions options;
  options.workers = env.workers;
  return core::ExperimentEngine(options);
}

inline void print_engine_stats(const core::ExperimentEngine& engine) {
  std::printf("\nengine: %s\n", core::engine_stats_line(engine).c_str());
}

/// Runs a figure's sweep for all four datatypes through the engine and
/// prints the series table.  Returns the process exit code.
inline int run_figure(core::FigureId id) {
  // One span over the whole figure (submit fan-out through table print):
  // with GPUPOWER_TRACE set the per-scenario engine spans nest under it.
  core::obs::Span figure_span("bench.figure");
  const core::BenchEnv env = core::read_bench_env();
  print_preamble(env, core::figure_name(id));

  core::ExperimentEngine engine = make_engine(env);

  // One sweep per datatype, all in flight at once.
  std::vector<core::SweepRun> runs;
  for (const auto dtype : numeric::kAllDTypes) {
    const core::ExperimentConfig base =
        core::ExperimentConfigBuilder().dtype(dtype).env(env).build();
    runs.push_back(engine.submit_sweep(id, base));
  }
  engine.wait_all();

  std::vector<std::string> headers{std::string(core::figure_axis(id))};
  for (const auto dtype : numeric::kAllDTypes) {
    headers.push_back(std::string(numeric::name(dtype)) + " (W)");
  }
  analysis::Table table(std::move(headers));

  const std::size_t n_points = runs.front().points.size();
  for (std::size_t p = 0; p < n_points; ++p) {
    std::vector<double> row;
    for (const core::SweepRun& run : runs) {
      row.push_back(run.handles[p].get().power_w);
    }
    table.add_row(runs.front().points[p].label, row, 1);
  }

  table.print(std::cout);
  if (env.csv) {
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  }
  print_engine_stats(engine);
  return 0;
}

}  // namespace gpupower::bench
