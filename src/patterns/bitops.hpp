// Bit-level input transforms for the bit-similarity (Fig. 4) and bit-level
// sparsity (Figs. 6c/6d) experiments.  These act on the *storage bits of the
// target datatype*, so they are templated over element types and applied
// after numeric conversion — flipping "bit 3" of an FP16 value is a
// different physical event than flipping bit 3 of the FP32 original.
#pragma once

#include <cstdint>
#include <span>

#include "numeric/bits.hpp"
#include "numeric/scalar_traits.hpp"
#include "patterns/rng.hpp"

namespace gpupower::patterns {

/// Fig. 4a: flips `flips` random bit positions in every element (positions
/// drawn without replacement per element).  flips=0 leaves the constant fill
/// intact; flips=width yields fully complemented (still deterministic) bits.
template <typename T>
void flip_random_bits(std::span<T> data, int flips, std::uint64_t seed) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using W = typename traits::bits_type;
  constexpr int kWidth = traits::kBits;
  if (flips <= 0) return;
  if (flips > kWidth) flips = kWidth;
  Xoshiro256 rng(seed);
  for (auto& elem : data) {
    W bits = traits::to_bits(elem);
    // Partial Fisher-Yates over bit positions.
    int positions[64];
    for (int i = 0; i < kWidth; ++i) positions[i] = i;
    for (int i = 0; i < flips; ++i) {
      const int j = i + static_cast<int>(rng.uniform_below(
                            static_cast<std::uint64_t>(kWidth - i)));
      std::swap(positions[i], positions[j]);
      bits ^= static_cast<W>(W{1} << positions[i]);
    }
    elem = traits::from_bits(bits);
  }
}

/// Fig. 4b: replaces the `count` least significant bits of every element
/// with uniformly random bits.
template <typename T>
void randomize_low_bits(std::span<T> data, int count, std::uint64_t seed) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using W = typename traits::bits_type;
  constexpr int kWidth = traits::kBits;
  if (count <= 0) return;
  if (count > kWidth) count = kWidth;
  const W mask = gpupower::numeric::low_mask<W>(count);
  Xoshiro256 rng(seed);
  for (auto& elem : data) {
    W bits = traits::to_bits(elem);
    bits = static_cast<W>((bits & static_cast<W>(~mask)) |
                          (static_cast<W>(rng.next()) & mask));
    elem = traits::from_bits(bits);
  }
}

/// Fig. 4c: replaces the `count` most significant bits with random bits.
template <typename T>
void randomize_high_bits(std::span<T> data, int count, std::uint64_t seed) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using W = typename traits::bits_type;
  constexpr int kWidth = traits::kBits;
  if (count <= 0) return;
  if (count > kWidth) count = kWidth;
  const W high_mask =
      static_cast<W>(gpupower::numeric::low_mask<W>(count) << (kWidth - count));
  Xoshiro256 rng(seed);
  for (auto& elem : data) {
    W bits = traits::to_bits(elem);
    bits = static_cast<W>((bits & static_cast<W>(~high_mask)) |
                          (static_cast<W>(rng.next()) & high_mask));
    elem = traits::from_bits(bits);
  }
}

/// Fig. 6c: zeroes the `count` least significant bits of every element.
template <typename T>
void zero_low_bits(std::span<T> data, int count) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using W = typename traits::bits_type;
  constexpr int kWidth = traits::kBits;
  if (count <= 0) return;
  if (count > kWidth) count = kWidth;
  const W mask = static_cast<W>(~gpupower::numeric::low_mask<W>(count));
  for (auto& elem : data) {
    elem = traits::from_bits(static_cast<W>(traits::to_bits(elem) & mask));
  }
}

/// Fig. 6d: zeroes the `count` most significant bits of every element.
template <typename T>
void zero_high_bits(std::span<T> data, int count) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using W = typename traits::bits_type;
  constexpr int kWidth = traits::kBits;
  if (count <= 0) return;
  if (count > kWidth) count = kWidth;
  const W mask = static_cast<W>(
      ~static_cast<W>(gpupower::numeric::low_mask<W>(count) << (kWidth - count)));
  for (auto& elem : data) {
    elem = traits::from_bits(static_cast<W>(traits::to_bits(elem) & mask));
  }
}

}  // namespace gpupower::patterns
