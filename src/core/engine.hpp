// ExperimentEngine: the batched, cached, parallel front end to the
// experiment pipeline — the long-lived subsystem that replaces one-shot
// `run_experiment` calls for every sweep-scale workload (14 figures x 4
// datatypes x sweep points x 10 seeds in the paper's full protocol).
//
//   ExperimentEngine engine;                       // worker pool sized to HW
//   auto handle = engine.submit(config);           // non-blocking
//   auto sweep  = engine.submit_sweep(FigureId::kFig6aSparsity, base);
//   engine.wait_all();
//   const ExperimentResult& r = handle.get();      // blocks if still running
//   auto entries = sweep.collect();                // [SweepPoint, Result]...
//   auto json    = sweep.to_json();                // analysis/json export
//
// Guarantees:
//  - Results are bit-identical to the serial `run_experiment` path: seed
//    replicas derive independent RNG streams, the engine computes them in
//    parallel and folds them in seed order through the same
//    `reduce_replicas` arithmetic.
//  - Submissions are de-duplicated through an in-engine cache keyed by
//    `canonical_config_key` (pattern in DSL form + every scalar field), so
//    sweeps sharing points — e.g. every figure's baseline column — are
//    computed once.  In-flight duplicates attach to the running job.
//  - `submit` never blocks; per-seed tasks fan out across a fixed worker
//    pool shared by all outstanding jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/json.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/fleet_experiment.hpp"
#include "core/report.hpp"

namespace gpupower::core {

namespace detail {
struct ExperimentJob;
struct DvfsJob;
struct FleetJob;
struct EngineState;
}  // namespace detail

struct EngineOptions {
  /// Worker threads; 0 sizes the pool to the hardware concurrency.
  int workers = 0;
  /// When false, every submission is computed even if an identical config
  /// was already run (the cache also stops de-duplicating in-flight work).
  bool cache_enabled = true;
};

struct EngineStats {
  std::uint64_t submitted = 0;     ///< total submit() calls
  std::uint64_t cache_hits = 0;    ///< submits served by an existing job
  std::uint64_t jobs_computed = 0; ///< unique configs actually scheduled
  std::uint64_t replicas_run = 0;  ///< seed-replica tasks executed

  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return submitted - cache_hits;
  }
};

/// Lightweight, copyable reference to a submitted experiment.  Handles to
/// the same (cached) config share the underlying job and result.  Calling
/// get()/ready()/config() on a default-constructed handle throws
/// std::logic_error (check valid() first).
class ExperimentHandle {
 public:
  ExperimentHandle() = default;

  /// Blocks until the experiment finishes; rethrows any worker exception.
  /// The reference stays valid as long as any handle to the job exists.
  [[nodiscard]] const ExperimentResult& get() const;
  /// True once the result is available (non-blocking).
  [[nodiscard]] bool ready() const;
  /// The config this handle was submitted with.
  [[nodiscard]] const ExperimentConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit ExperimentHandle(std::shared_ptr<detail::ExperimentJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ExperimentJob> job_;
};

/// Reference to a submitted DVFS timeline experiment — same semantics as
/// ExperimentHandle (shared cached jobs, blocking get(), logic_error on a
/// default-constructed handle).
class DvfsHandle {
 public:
  DvfsHandle() = default;

  /// Blocks until the replay finishes; rethrows any worker exception.
  [[nodiscard]] const DvfsResult& get() const;
  [[nodiscard]] bool ready() const;
  [[nodiscard]] const DvfsConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit DvfsHandle(std::shared_ptr<detail::DvfsJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::DvfsJob> job_;
};

/// Reference to a submitted fleet experiment — same semantics as the other
/// handles (shared cached jobs, blocking get(), logic_error on a
/// default-constructed handle).
class FleetHandle {
 public:
  FleetHandle() = default;

  /// Blocks until the fleet replay finishes; rethrows any worker exception.
  [[nodiscard]] const FleetResult& get() const;
  [[nodiscard]] bool ready() const;
  [[nodiscard]] const FleetConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit FleetHandle(std::shared_ptr<detail::FleetJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::FleetJob> job_;
};

/// A figure sweep in flight: one handle per sweep point, in sweep order.
struct SweepRun {
  FigureId figure{};
  ExperimentConfig base;          ///< shared scalars (pattern varies per point)
  std::vector<SweepPoint> points;
  std::vector<ExperimentHandle> handles;

  /// Blocks until every point finishes; pairs each with its sweep point.
  [[nodiscard]] std::vector<SweepEntry> collect() const;
  /// Structured export: collect() fed through core/report.hpp's
  /// sweep_to_json.
  [[nodiscard]] analysis::JsonValue to_json() const;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions options = {});
  ~ExperimentEngine();

  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// Enqueues one experiment (never blocks).  Identical configs — by
  /// canonical_config_key — share one computation and one result.  Throws
  /// std::invalid_argument when config.seeds <= 0 (a zero-seed job would
  /// silently reduce to an all-zero result).
  ExperimentHandle submit(const ExperimentConfig& config);

  /// Enqueues a batch; handles are in input order.
  std::vector<ExperimentHandle> submit_batch(
      const std::vector<ExperimentConfig>& configs);

  /// Enqueues every sweep point of a paper figure.  `base` supplies the
  /// scalars (gpu, dtype, n, seeds, sampling...); each point's PatternSpec
  /// overrides `base.pattern`.
  SweepRun submit_sweep(FigureId id, const ExperimentConfig& base);

  /// Enqueues one DVFS timeline experiment (never blocks).  Seed replicas
  /// fan out across the same worker pool as classic experiments and reduce
  /// in seed order, so results are independent of the worker count.
  /// De-duplicated by canonical_dvfs_key like submit().  Throws
  /// std::invalid_argument on seeds <= 0, a non-positive slice, or an
  /// empty timeline.
  DvfsHandle submit_dvfs(const DvfsConfig& config);

  /// Enqueues a batch of DVFS experiments; handles are in input order.
  std::vector<DvfsHandle> submit_dvfs_batch(
      const std::vector<DvfsConfig>& configs);

  /// Enqueues one fleet power-capping experiment (never blocks).  Seed
  /// replicas fan out across the shared worker pool — each replica steps
  /// its whole fleet in lockstep — and reduce in seed order, so results
  /// are independent of the worker count.  De-duplicated by
  /// canonical_fleet_key like submit().  Throws std::invalid_argument on
  /// seeds <= 0 or a config validate_fleet_config rejects.
  FleetHandle submit_fleet(const FleetConfig& config);

  /// Enqueues a batch of fleet experiments; handles are in input order.
  std::vector<FleetHandle> submit_fleet_batch(
      const std::vector<FleetConfig>& configs);

  /// Blocks until every outstanding job has finished.
  void wait_all();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] int workers() const noexcept;

  /// Drops completed results from the cache (outstanding handles keep
  /// their jobs alive); resets no counters.
  void clear_cache();

 private:
  std::shared_ptr<detail::EngineState> state_;
};

}  // namespace gpupower::core
