#include "patterns/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gpupower::patterns {
namespace {

TEST(Distributions, GaussianMoments) {
  const auto data = gaussian_fill(100000, 0.0, 210.0, 42);
  const BufferStats stats = compute_stats(data);
  EXPECT_NEAR(stats.mean, 0.0, 3.0);
  EXPECT_NEAR(stats.stddev, 210.0, 3.0);
}

TEST(Distributions, GaussianShiftedMean) {
  const auto data = gaussian_fill(50000, 1024.0, 1.0, 42);
  const BufferStats stats = compute_stats(data);
  EXPECT_NEAR(stats.mean, 1024.0, 0.1);
  EXPECT_NEAR(stats.stddev, 1.0, 0.05);
}

TEST(Distributions, GaussianDeterministicPerSeed) {
  EXPECT_EQ(gaussian_fill(100, 0.0, 1.0, 7), gaussian_fill(100, 0.0, 1.0, 7));
  EXPECT_NE(gaussian_fill(100, 0.0, 1.0, 7), gaussian_fill(100, 0.0, 1.0, 8));
}

TEST(Distributions, ValueSetHasExactlySetSizeUniques) {
  const auto data = value_set_fill(20000, 16, 0.0, 210.0, 42);
  std::set<float> uniques(data.begin(), data.end());
  EXPECT_EQ(uniques.size(), 16u);
}

TEST(Distributions, ValueSetSizeOneIsConstant) {
  const auto data = value_set_fill(1000, 1, 0.0, 210.0, 42);
  for (const float v : data) EXPECT_EQ(v, data[0]);
}

TEST(Distributions, ValueSetSamplesUniformly) {
  const auto data = value_set_fill(64000, 4, 0.0, 210.0, 42);
  std::set<float> uniques(data.begin(), data.end());
  ASSERT_EQ(uniques.size(), 4u);
  for (const float u : uniques) {
    const auto count = std::count(data.begin(), data.end(), u);
    EXPECT_NEAR(static_cast<double>(count), 16000.0, 800.0);
  }
}

TEST(Distributions, ConstantFillIsOneGaussianDraw) {
  const auto data = constant_random_fill(500, 0.0, 210.0, 42);
  for (const float v : data) EXPECT_EQ(v, data[0]);
  // Different seeds give different constants (Fig. 4: A and B differ).
  const auto other = constant_random_fill(500, 0.0, 210.0, 43);
  EXPECT_NE(data[0], other[0]);
}

TEST(Distributions, UniformFillRange) {
  const auto data = uniform_fill(10000, -2.0, 2.0, 42);
  const BufferStats stats = compute_stats(data);
  EXPECT_GE(stats.min, -2.0f);
  EXPECT_LT(stats.max, 2.0f);
  EXPECT_NEAR(stats.mean, 0.0, 0.1);
}

TEST(Distributions, StatsCountsZeros) {
  const std::vector<float> data{0.0f, 1.0f, 0.0f, -1.0f};
  EXPECT_EQ(compute_stats(data).zeros, 2u);
  EXPECT_EQ(compute_stats({}).zeros, 0u);
}

}  // namespace
}  // namespace gpupower::patterns
