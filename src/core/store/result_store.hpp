// ResultStore: the content-addressed on-disk result store that makes the
// experiment engine's cache survive the process.  Entries are keyed by the
// kind-prefixed `canonical_scenario_key` — stable across processes because
// the key serialisation round-trips every double exactly — and hold the
// kind's full-fidelity result JSON (scenario_result_to_json), so a store
// hit reproduces the original reduction bit-identically.
//
// Layout: one file per entry under the store directory,
//
//   <dir>/<fnv1a64(key) as 16 hex digits>.json
//   { "gpupower_store": 1, "kind": "fleet", "key": "<canonical key>",
//     "result": { ... } }
//
// The full canonical key is stored inside the entry and verified on every
// read, so a (vanishingly unlikely) filename-hash collision degrades to a
// miss, never to a wrong result.
//
// Durability and corruption tolerance:
//  - writes go to a temp file in the same directory, are fsync'd, then
//    renamed over the final path — readers never observe a torn entry, and
//    an interrupted writer leaves at worst a stale .tmp file;
//  - any load failure (missing file, truncated/garbled JSON, schema or key
//    mismatch, codec rejection) is a miss: the engine recomputes and
//    rewrites.  The store never throws on bad data.
//
// Concurrency: safe for any number of threads and processes sharing one
// directory.  Two writers racing on the same key both write identical
// bytes (deterministic results), and rename is atomic, so the last one
// wins harmlessly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/scenario.hpp"

namespace gpupower::core {

struct StoreOptions {
  /// Store directory (created on first save).  Empty disables the store.
  std::string dir;
  /// Entry-size budget in bytes, enforced by oldest-mtime-first eviction
  /// when the store opens (see evict()); 0 = unlimited.
  std::size_t max_bytes = 0;
};

class ResultStore {
 public:
  /// A default-constructed store is disabled: every load misses, every
  /// save is a no-op.
  ResultStore() = default;
  explicit ResultStore(StoreOptions options);

  [[nodiscard]] bool enabled() const noexcept { return !options_.dir.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return options_.dir; }

  /// Entry file path for a canonical key (valid even when disabled).
  [[nodiscard]] std::string entry_path(std::string_view canonical_key) const;

  /// Looks the key up; true and fills `out` only when the entry exists, is
  /// intact, carries the exact key, and parses through the kind's result
  /// codec.  Everything else — including a corrupt file — is a miss.
  [[nodiscard]] bool load(std::string_view canonical_key, ScenarioKind kind,
                          ScenarioResult& out) const;

  /// Persists a completed result under its key (atomic temp-file+rename,
  /// fsync'd).  Returns false when the store is disabled or the write
  /// fails; failures are non-fatal by design (the result stays in memory).
  bool save(std::string_view canonical_key, const ScenarioResult& result) const;

  /// Sweeps orphaned writer temp files (`*.json.tmp.<pid>.<n>`) that a
  /// crashed or killed writer left behind.  Only files older than
  /// `min_age` go — a live writer's temp file exists for milliseconds
  /// between create and rename, so the default margin can never race one.
  /// Returns the number removed; never throws (sweep failures are
  /// ignored, the litter is retried on the next open).  Runs
  /// automatically when a store opens on an existing directory.
  std::size_t compact(
      std::chrono::seconds min_age = std::chrono::minutes(10)) const;

  /// LRU size cap: while the store's entry files total more than
  /// `max_bytes`, removes oldest-mtime entries (filename breaks ties, so
  /// the sweep order is deterministic).  An evicted entry is only a
  /// future store miss — the engine recomputes and rewrites it.  Returns
  /// the number of entries removed; never throws.  Runs automatically on
  /// open when StoreOptions::max_bytes is set
  /// (GPUPOWER_STORE_MAX_BYTES), under a `store.evict` span with the
  /// removals in the `store.evictions` counter.
  std::size_t evict(std::size_t max_bytes) const;

 private:
  StoreOptions options_;
};

/// FNV-1a 64-bit hash (the store's filename hash; exposed for tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Atomically replaces `path` with `text`: writes a sibling temp file,
/// fsyncs it, and renames it over the target, so readers (and interrupted
/// runs) never observe a torn file.  Creates missing parent directories.
/// Returns false with the failing step in `error` (pass nullptr to ignore).
bool atomic_write_text(const std::string& path, std::string_view text,
                       std::string* error = nullptr);

}  // namespace gpupower::core
