// ExperimentRunner: reproduces the paper's measurement protocol end to end.
// For each seed replica it builds the spec'd inputs, simulates the GEMM
// kernel's power, replays the run through the DCGM-like sampler (100 ms
// samples, 500 ms warmup trim), and averages the reported power across
// seeds — exactly the pipeline behind every figure in Section IV.
#pragma once

#include <cstdint>
#include <optional>

#include "core/pattern_spec.hpp"
#include "gpusim/power.hpp"
#include "gpusim/simulator.hpp"
#include "telemetry/sampler.hpp"

namespace gpupower::core {

struct ExperimentConfig {
  gpupower::gpusim::GpuModel gpu = gpupower::gpusim::GpuModel::kA100PCIe;
  gpupower::numeric::DType dtype = gpupower::numeric::DType::kFP16;
  std::size_t n = 2048;
  PatternSpec pattern;
  int seeds = 10;           ///< paper: 10 seeds per configuration
  std::size_t iterations = 0;  ///< 0 = paper default (20k FP16-T, 10k others)
  std::uint64_t base_seed = 42;
  gpupower::gpusim::SamplingPlan sampling;  ///< exact by default
  telemetry::SamplerConfig sampler;
  std::optional<gpupower::gpusim::ProcessVariation> variation;

  [[nodiscard]] std::size_t effective_iterations() const noexcept {
    if (iterations != 0) return iterations;
    return dtype == gpupower::numeric::DType::kFP16T ? 20000 : 10000;
  }
};

struct ExperimentResult {
  double power_w = 0.0;        ///< mean of per-seed DCGM-style averages
  double power_std_w = 0.0;    ///< across seeds
  double iteration_s = 0.0;    ///< realized (post-throttle) iteration time
  double energy_per_iter_j = 0.0;
  double alignment = 0.0;      ///< Fig. 8 feature, averaged across seeds
  double weight_fraction = 0.0;
  gpupower::gpusim::RailPower rails;  ///< averaged across seeds
  bool throttled = false;
  double clock_frac = 1.0;
  int seeds = 0;
};

/// Runs one experiment configuration (all seed replicas).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace gpupower::core
