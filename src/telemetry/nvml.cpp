#include "telemetry/nvml.hpp"

#include <cmath>

namespace gpupower::telemetry::nvml {

const char* error_string(Return r) noexcept {
  switch (r) {
    case Return::kSuccess:
      return "Success";
    case Return::kUninitialized:
      return "Uninitialized";
    case Return::kInvalidArgument:
      return "Invalid Argument";
    case Return::kNotFound:
      return "Not Found";
  }
  return "Unknown Error";
}

Return Device::power_usage_mw(std::uint32_t& mw) const {
  const double w = workload_ ? workload_->total_w : sim_.descriptor().idle_w;
  mw = static_cast<std::uint32_t>(std::lround(w * 1000.0));
  return Return::kSuccess;
}

Return Device::enforced_power_limit_mw(std::uint32_t& mw) const {
  mw = static_cast<std::uint32_t>(std::lround(sim_.descriptor().tdp_w * 1000.0));
  return Return::kSuccess;
}

Return Device::temperature_c(std::uint32_t& deg) const {
  const double t = workload_ ? workload_->temperature_c : 33.0;
  deg = static_cast<std::uint32_t>(std::lround(t));
  return Return::kSuccess;
}

Return Device::clock_info_mhz(std::uint32_t& mhz) const {
  const double frac = workload_ ? workload_->effective_clock_frac : 1.0;
  mhz = static_cast<std::uint32_t>(
      std::lround(sim_.descriptor().boost_clock_ghz * frac * 1000.0));
  return Return::kSuccess;
}

Return Device::utilization_gpu_pct(std::uint32_t& pct) const {
  pct = workload_
            ? static_cast<std::uint32_t>(std::lround(workload_->utilization * 100.0))
            : 0u;
  return Return::kSuccess;
}

Return Device::name(std::string& out) const {
  out = std::string(sim_.descriptor().name);
  return Return::kSuccess;
}

Return device_get_handle_by_index(unsigned index, std::optional<Device>& out) {
  using gpupower::gpusim::GpuModel;
  switch (index) {
    case 0:
      out.emplace(GpuModel::kA100PCIe);
      return Return::kSuccess;
    case 1:
      out.emplace(GpuModel::kH100SXM);
      return Return::kSuccess;
    case 2:
      out.emplace(GpuModel::kV100SXM2);
      return Return::kSuccess;
    case 3:
      out.emplace(GpuModel::kRTX6000);
      return Return::kSuccess;
    default:
      out.reset();
      return Return::kNotFound;
  }
}

}  // namespace gpupower::telemetry::nvml
