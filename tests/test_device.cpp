#include "gpusim/device.hpp"

#include <gtest/gtest.h>

namespace gpupower::gpusim {
namespace {

class DeviceSweep : public ::testing::TestWithParam<GpuModel> {};

TEST_P(DeviceSweep, DescriptorIsPhysicallySane) {
  const DeviceDescriptor& dev = device(GetParam());
  EXPECT_FALSE(dev.name.empty());
  EXPECT_GT(dev.sm_count, 0);
  EXPECT_GT(dev.boost_clock_ghz, 0.5);
  EXPECT_LT(dev.boost_clock_ghz, 3.0);
  EXPECT_GT(dev.tdp_w, dev.idle_w);
  EXPECT_GT(dev.mem_bandwidth_gbs, 100.0);
  EXPECT_GT(dev.fp32_tflops, 0.0);
  EXPECT_GE(dev.fp16_tflops, dev.fp32_tflops);
  EXPECT_GT(dev.fp16_tc_tflops, dev.fp16_tflops);
  EXPECT_GT(dev.energy.scale, 0.0);
  EXPECT_GT(dev.thermal_resistance_c_per_w, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllGpus, DeviceSweep,
                         ::testing::ValuesIn(kAllGpuModels));

TEST(Device, PaperTdps) {
  EXPECT_DOUBLE_EQ(device(GpuModel::kA100PCIe).tdp_w, 300.0);
  EXPECT_DOUBLE_EQ(device(GpuModel::kH100SXM).tdp_w, 700.0);
  EXPECT_DOUBLE_EQ(device(GpuModel::kV100SXM2).tdp_w, 300.0);
  EXPECT_DOUBLE_EQ(device(GpuModel::kRTX6000).tdp_w, 260.0);
}

TEST(Device, MemoryTechnologies) {
  // The paper singles out the RTX 6000 as the GDDR6 (non-HBM) part.
  EXPECT_EQ(device(GpuModel::kRTX6000).memory, MemoryKind::kGDDR6);
  EXPECT_EQ(device(GpuModel::kA100PCIe).memory, MemoryKind::kHBM2e);
  EXPECT_EQ(device(GpuModel::kH100SXM).memory, MemoryKind::kHBM3);
  EXPECT_EQ(device(GpuModel::kV100SXM2).memory, MemoryKind::kHBM2);
}

TEST(Device, PeakThroughputSelection) {
  using gpupower::numeric::DType;
  const auto& a100 = device(GpuModel::kA100PCIe);
  EXPECT_DOUBLE_EQ(a100.peak_tflops(DType::kFP32), 19.5);
  EXPECT_DOUBLE_EQ(a100.peak_tflops(DType::kFP16), 78.0);
  EXPECT_DOUBLE_EQ(a100.peak_tflops(DType::kFP16T), 312.0);
  EXPECT_DOUBLE_EQ(a100.peak_tflops(DType::kINT8), 624.0);
}

TEST(Device, ProcessCornerOrdering) {
  // Newer processes cost less energy per event: H100 < A100 < V100/Turing.
  EXPECT_LT(device(GpuModel::kH100SXM).energy.scale,
            device(GpuModel::kA100PCIe).energy.scale);
  EXPECT_GT(device(GpuModel::kV100SXM2).energy.scale,
            device(GpuModel::kA100PCIe).energy.scale);
  EXPECT_GT(device(GpuModel::kRTX6000).energy.scale,
            device(GpuModel::kV100SXM2).energy.scale);
}

TEST(Device, Names) {
  EXPECT_EQ(name(MemoryKind::kGDDR6), "GDDR6");
  EXPECT_EQ(name(MemoryKind::kHBM3), "HBM3");
  EXPECT_NE(name(GpuModel::kA100PCIe).find("A100"), std::string_view::npos);
}

}  // namespace
}  // namespace gpupower::gpusim
