// Kernel launch descriptors: names and pipeline characteristics of the
// CUTLASS kernel each datatype setup maps to.  The runtime model in gpusim
// uses the per-datatype pipeline throughput to derive iteration time, which
// the paper shows is input-independent (Fig. 1).
#pragma once

#include <string_view>

#include "gemm/tile_config.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::gemm {

struct KernelDesc {
  std::string_view name;         ///< CUTLASS-style kernel identifier
  gpupower::numeric::DType dtype;
  TileConfig tiles;
  /// Fraction of the device's peak math throughput this kernel sustains on
  /// large square problems (CUTLASS kernels on 2048^2 reach ~85-95%).
  double efficiency;
};

/// Returns the kernel the experiment harness launches for a datatype.
[[nodiscard]] KernelDesc kernel_for(gpupower::numeric::DType dtype) noexcept;

}  // namespace gpupower::gemm
