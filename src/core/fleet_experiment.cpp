#include "core/fleet_experiment.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/config_builder.hpp"
#include "gpusim/dvfs/dsl_util.hpp"
#include "gpusim/simulator.hpp"
#include "patterns/rng.hpp"

namespace gpupower::core {
namespace {

namespace dvfs = gpupower::gpusim::dvfs;
namespace fleet = gpupower::gpusim::fleet;

using dvfs::detail::format_exact;

/// The timeline whose phases reference the largest pattern index — the one
/// replica_activity_variants validates the variant table against.
const dvfs::WorkloadTimeline& widest_timeline(const FleetConfig& config) {
  const dvfs::WorkloadTimeline* widest = &config.timelines.front();
  int max_ref = widest->max_pattern_index();
  for (const dvfs::WorkloadTimeline& timeline : config.timelines) {
    const int ref = timeline.max_pattern_index();
    if (ref > max_ref) {
      max_ref = ref;
      widest = &timeline;
    }
  }
  return *widest;
}

/// Quantile by linear interpolation between order statistics (the
/// numpy-default "linear" method); q in [0, 1].
double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace

std::string validate_fleet_config(const FleetConfig& config) {
  if (config.devices.empty()) return "fleet has no devices";
  if (config.timelines.empty()) return "fleet has no timelines";
  for (std::size_t i = 0; i < config.timelines.size(); ++i) {
    if (config.timelines[i].empty()) {
      return "timeline " + std::to_string(i) + " has no phases";
    }
    const int max_ref = config.timelines[i].max_pattern_index();
    if (max_ref >= static_cast<int>(config.phase_patterns.size())) {
      return "timeline " + std::to_string(i) + " references phase pattern " +
             std::to_string(max_ref) + " but only " +
             std::to_string(config.phase_patterns.size()) +
             " phase pattern(s) are configured";
    }
  }
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const int timeline = config.devices[i].timeline;
    if (timeline < 0 ||
        timeline >= static_cast<int>(config.timelines.size())) {
      return "device " + std::to_string(i) + " references timeline " +
             std::to_string(timeline) + " but only " +
             std::to_string(config.timelines.size()) +
             " timeline(s) are configured";
    }
  }
  if (config.slice_s <= 0.0) return "slice_s must be > 0";
  if (config.pstates < 1 || config.pstates > 16) {
    return "pstates must be in [1, 16], got " +
           std::to_string(config.pstates);
  }
  if (!(config.allocator.cap_w > 0.0)) {
    return "allocator cap must be positive (infinity = uncapped)";
  }
  if (config.thermal.enabled) {
    if (!(config.thermal.tau_s > 0.0)) return "thermal tau must be > 0";
    if (!(config.thermal.trip_c > config.thermal.release_c)) {
      return "thermal trip temperature must exceed the release temperature "
             "(the hysteresis gap prevents throttle flapping)";
    }
  }
  return {};
}

fleet::FleetRun run_fleet_seed_replica(const FleetConfig& config,
                                       int seed_index) {
  const std::string problem_text = validate_fleet_config(config);
  if (!problem_text.empty()) {
    throw std::invalid_argument("run_fleet_seed_replica: " + problem_text);
  }

  const gemm::GemmProblem problem{config.experiment.n, config.experiment.n,
                                  config.experiment.n, 1.0f, 0.0f,
                                  config.experiment.pattern.transpose_b};
  // Activity once per seed, shared across every device: the walk depends
  // on the inputs, the tile config (dtype), and the sampling plan — not on
  // which GPU model consumes the totals (the remaining panel-reuse item
  // from the PR 3 note, closed here by construction).
  const gpupower::gpusim::GpuSimulator activity_sim(
      config.experiment.gpu, replica_sim_options(config.experiment,
                                                 seed_index));
  const std::vector<gpupower::gpusim::ActivityTotals> variants =
      replica_activity_variants(activity_sim, config.experiment,
                                config.phase_patterns,
                                widest_timeline(config), problem, seed_index);
  const std::span<const gpupower::gpusim::ActivityTotals> variant_span(
      variants);

  // Per-device replayers: descriptor (with per-seed variation — device 0
  // keeps the experiment's instance so a one-device fleet matches the DVFS
  // pipeline bit for bit; further devices land on distinct silicon),
  // P-state table, and per-variant steady-state reports.
  std::vector<dvfs::TimelineReplayer> replayers;
  std::vector<std::unique_ptr<dvfs::Governor>> governors;
  replayers.reserve(config.devices.size());
  governors.reserve(config.devices.size());
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const FleetDeviceConfig& device = config.devices[i];
    gpupower::gpusim::SimOptions options =
        replica_sim_options(config.experiment, seed_index);
    if (options.variation && i > 0) {
      options.variation->instance = patterns::derive_seed(
          patterns::derive_seed(options.variation->instance, 0xF1EE7u),
          static_cast<std::uint64_t>(i));
    }
    const gpupower::gpusim::GpuSimulator sim(device.gpu, options);
    const dvfs::PStateTable table =
        config.pstates <= 1
            ? dvfs::PStateTable::boost_only(sim.descriptor())
            : dvfs::PStateTable::for_device(sim.descriptor(), config.pstates);
    replayers.emplace_back(sim.descriptor(), problem,
                           config.experiment.dtype, variant_span, table);
    governors.push_back(dvfs::make_governor(device.governor));
  }

  std::vector<fleet::FleetSimulator::Device> devices;
  devices.reserve(config.devices.size());
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    fleet::FleetSimulator::Device device;
    device.replayer = &replayers[i];
    device.timeline = &config.timelines[static_cast<std::size_t>(
        config.devices[i].timeline)];
    device.governor = governors[i].get();
    device.priority = config.devices[i].priority;
    devices.push_back(device);
  }

  const fleet::FleetSimulator simulator(config.allocator, config.thermal);
  return simulator.run(devices, config.slice_s);
}

FleetResult reduce_fleet_replicas(
    const FleetConfig& config,
    std::span<const fleet::FleetRun> replicas) {
  analysis::RunningStats energy, avg_power, peak_power, completion, duration;
  analysis::RunningStats backlog_max, backlog_p99, mean_backlog, transitions,
      over_cap;
  FleetResult result;
  result.devices.resize(config.devices.size());
  std::vector<analysis::RunningStats> dev_energy(config.devices.size());
  std::vector<analysis::RunningStats> dev_avg(config.devices.size());
  std::vector<analysis::RunningStats> dev_peak(config.devices.size());
  std::vector<analysis::RunningStats> dev_completion(config.devices.size());
  std::vector<analysis::RunningStats> dev_backlog_max(config.devices.size());
  std::vector<analysis::RunningStats> dev_mean_backlog(config.devices.size());
  std::vector<analysis::RunningStats> dev_transitions(config.devices.size());
  std::vector<analysis::RunningStats> dev_temp(config.devices.size());
  std::vector<analysis::RunningStats> dev_throttled(config.devices.size());
  std::vector<analysis::RunningStats> dev_clamped(config.devices.size());

  for (const fleet::FleetRun& replica : replicas) {
    energy.add(replica.energy_j);
    avg_power.add(replica.avg_power_w);
    peak_power.add(replica.peak_power_w);
    completion.add(replica.completion_s);
    duration.add(replica.duration_s);
    backlog_max.add(replica.backlog_max_s);
    {
      std::vector<double> device_worst;
      device_worst.reserve(replica.devices.size());
      for (const fleet::FleetDeviceRun& device : replica.devices) {
        device_worst.push_back(device.replay.backlog_max_s);
      }
      backlog_p99.add(quantile(std::move(device_worst), 0.99));
    }
    mean_backlog.add(replica.mean_backlog_s);
    transitions.add(static_cast<double>(replica.transitions));
    over_cap.add(static_cast<double>(replica.over_cap_slices));
    result.truncated = result.truncated || replica.truncated;
    for (std::size_t i = 0;
         i < replica.devices.size() && i < result.devices.size(); ++i) {
      const fleet::FleetDeviceRun& device = replica.devices[i];
      dev_energy[i].add(device.replay.energy_j);
      dev_avg[i].add(device.replay.avg_power_w);
      dev_peak[i].add(device.replay.peak_power_w);
      dev_completion[i].add(device.replay.completion_s);
      dev_backlog_max[i].add(device.replay.backlog_max_s);
      dev_mean_backlog[i].add(device.replay.mean_backlog_s);
      dev_transitions[i].add(static_cast<double>(device.replay.transitions));
      dev_temp[i].add(device.peak_temperature_c);
      dev_throttled[i].add(static_cast<double>(device.throttled_slices));
      dev_clamped[i].add(static_cast<double>(device.budget_clamped_slices));
    }
  }

  result.energy_j = energy.mean();
  result.energy_std_j = energy.stddev();
  result.avg_power_w = avg_power.mean();
  result.peak_power_w = peak_power.mean();
  result.completion_s = completion.mean();
  result.duration_s = duration.mean();
  result.backlog_max_s = backlog_max.mean();
  result.backlog_p99_s = backlog_p99.mean();
  result.mean_backlog_s = mean_backlog.mean();
  result.transitions = transitions.mean();
  result.over_cap_slices = over_cap.mean();
  result.seeds = config.experiment.seeds;
  for (std::size_t i = 0; i < result.devices.size(); ++i) {
    FleetDeviceSummary& device = result.devices[i];
    device.energy_j = dev_energy[i].mean();
    device.avg_power_w = dev_avg[i].mean();
    device.peak_power_w = dev_peak[i].mean();
    device.completion_s = dev_completion[i].mean();
    device.backlog_max_s = dev_backlog_max[i].mean();
    device.mean_backlog_s = dev_mean_backlog[i].mean();
    device.transitions = dev_transitions[i].mean();
    device.peak_temperature_c = dev_temp[i].mean();
    device.throttled_slices = dev_throttled[i].mean();
    device.budget_clamped_slices = dev_clamped[i].mean();
  }
  if (!replicas.empty()) result.trace = replicas.front();
  return result;
}

FleetResult run_fleet(const FleetConfig& config) {
  if (config.experiment.seeds <= 0) {
    throw std::invalid_argument(
        "run_fleet: experiment.seeds must be >= 1, got " +
        std::to_string(config.experiment.seeds));
  }
  std::vector<fleet::FleetRun> replicas;
  replicas.reserve(static_cast<std::size_t>(config.experiment.seeds));
  for (int s = 0; s < config.experiment.seeds; ++s) {
    replicas.push_back(run_fleet_seed_replica(config, s));
  }
  return reduce_fleet_replicas(config, replicas);
}

std::string canonical_fleet_key(const FleetConfig& config) {
  std::string key = canonical_config_key(config.experiment);
  key += "|alloc=" +
         std::to_string(static_cast<int>(config.allocator.policy)) + ":" +
         format_exact(config.allocator.cap_w);
  key += "|thermal=";
  if (config.thermal.enabled) {
    key += format_exact(config.thermal.ambient_c) + ":" +
           format_exact(config.thermal.tau_s) + ":" +
           format_exact(config.thermal.trip_c) + ":" +
           format_exact(config.thermal.release_c) + ":" +
           std::to_string(config.thermal.throttle_pstate) + ":" +
           format_exact(config.thermal.initial_c);
  } else {
    key += "off";
  }
  key += "|slice=" + format_exact(config.slice_s);
  key += "|pstates=" + std::to_string(config.pstates);
  for (const dvfs::WorkloadTimeline& timeline : config.timelines) {
    key += "|tl=" + canonical_timeline_key(timeline);
  }
  for (const FleetDeviceConfig& device : config.devices) {
    key += "|dev=";
    key += gpupower::gpusim::name(device.gpu);
    key += ':';
    key += canonical_governor_key(device.governor);
    key += ':';
    key += std::to_string(device.timeline);
    key += ':';
    key += std::to_string(device.priority);
  }
  for (const PatternSpec& pattern : config.phase_patterns) {
    key += "|pp=" + pattern_raw_key(pattern);
  }
  return key;
}

}  // namespace gpupower::core
