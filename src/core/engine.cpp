#include "core/engine.hpp"

#include "core/annotations.hpp"
#include "core/obs/obs.hpp"
#include "core/store/result_store.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

namespace gpupower::core {
namespace detail {

/// One type-erased multi-replica job: one result slot per seed (disjoint
/// writes), an atomic countdown that triggers the in-seed-order reduction
/// through the kind's registry hook, and the done/error latch handles
/// block on.
///
/// Synchronisation map (enforced by -Wthread-safety under clang):
///  - `done`/`result`/`error` are guarded by `mutex`;
///  - `config` and `cache_key` are written once before the job is
///    published to the cache and immutable afterwards — unguarded;
///  - `replicas` slots are written by exactly one worker each (disjoint
///    indices) and read only by the reduction after the `remaining`
///    acq_rel countdown hits zero — unguarded, ordered by the atomic.
struct ScenarioJob {
  ScenarioConfig config;
  /// Kind-prefixed canonical key; empty when the cache is disabled (no
  /// key is ever computed).  Doubles as the store key for the write-back.
  std::string cache_key;
  /// Interned canonical key for span args (obs::intern — outlives the
  /// job, so late trace flushes never dangle); nullptr when tracing was
  /// off at submit time.  Written once before publish, unguarded.
  const char* trace_key = nullptr;
  std::vector<ScenarioReplica> replicas;
  std::atomic<int> remaining{0};

  mutable Mutex mutex;
  mutable CondVar cv;
  bool done GPUPOWER_GUARDED_BY(mutex) = false;
  ScenarioResult result GPUPOWER_GUARDED_BY(mutex);
  std::exception_ptr error GPUPOWER_GUARDED_BY(mutex);
};

struct EngineState {
  EngineOptions options;    ///< immutable after the constructor
  int worker_count = 1;     ///< immutable after the constructor
  std::vector<std::thread> threads;  ///< constructor/destructor only

  Mutex queue_mutex;
  CondVar queue_cv;
  /// One task per seed replica.
  std::deque<std::function<void()>> queue GPUPOWER_GUARDED_BY(queue_mutex);
  bool stop GPUPOWER_GUARDED_BY(queue_mutex) = false;

  Mutex done_mutex;
  CondVar done_cv;
  std::uint64_t outstanding GPUPOWER_GUARDED_BY(done_mutex) = 0;

  mutable Mutex cache_mutex;
  /// One cache for every kind; keys are kind-prefixed
  /// (canonical_scenario_key), so kinds can never collide.
  std::unordered_map<std::string, std::shared_ptr<ScenarioJob>> cache
      GPUPOWER_GUARDED_BY(cache_mutex);
  EngineStats stats GPUPOWER_GUARDED_BY(cache_mutex);
  std::atomic<std::uint64_t> replicas_run[kScenarioKindCount] = {};
  std::atomic<std::uint64_t> store_writes[kScenarioKindCount] = {};
  /// Per-kind stage timings in ns, accumulated by workers only while the
  /// obs metrics switch is on (relaxed — folded into stats() snapshots).
  std::atomic<std::int64_t> compute_ns[kScenarioKindCount] = {};
  std::atomic<std::int64_t> queue_wait_ns[kScenarioKindCount] = {};
  std::atomic<std::int64_t> reduce_ns[kScenarioKindCount] = {};
  std::atomic<std::int64_t> store_read_ns[kScenarioKindCount] = {};
  std::atomic<std::int64_t> store_write_ns[kScenarioKindCount] = {};

  /// The persistent store, when one is attached AND the cache is enabled
  /// (a cache-less engine recomputes by contract, so it must not read
  /// stale results either).  nullptr otherwise.
  [[nodiscard]] const ResultStore* store() const noexcept {
    return options.cache_enabled && options.store && options.store->enabled()
               ? options.store.get()
               : nullptr;
  }
};

namespace {

/// Per-kind span names (indexed by ScenarioKind) — ring buffers store the
/// pointer, so these must be static literals, one per kind.
constexpr const char* kReplicaSpanName[kScenarioKindCount] = {
    "replica.static", "replica.dvfs", "replica.fleet"};
constexpr const char* kReduceSpanName[kScenarioKindCount] = {
    "reduce.static", "reduce.dvfs", "reduce.fleet"};
/// Kind names as guaranteed-null-terminated literals for span args (the
/// registry's string_view spelling is not contractually terminated).
constexpr const char* kKindArgName[kScenarioKindCount] = {"static", "dvfs",
                                                          "fleet"};

/// One timestamp serves both the trace span and the metrics sum; 0 means
/// "everything off, take no clock reads" (obs::now_ns is never 0).
std::int64_t obs_begin() {
  return obs::tracing_enabled() || obs::metrics_enabled() ? obs::now_ns() : 0;
}

/// Closes an interval opened by obs_begin(): records the span (no-op when
/// tracing is off, args attached when given) and accumulates the duration
/// into `sink_ns` (when metrics are on).
void obs_end(const char* span_name, std::int64_t start_ns,
             std::atomic<std::int64_t>& sink_ns,
             const obs::SpanArgs& args = obs::SpanArgs()) {
  if (start_ns == 0) return;
  const std::int64_t end_ns = obs::now_ns();
  obs::record_span(span_name, start_ns, end_ns, args);
  if (obs::metrics_enabled()) {
    sink_ns.fetch_add(end_ns - start_ns, std::memory_order_relaxed);
  }
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::gauge("engine.queue_depth");
  return gauge;
}

/// Post-completion write-back to the persistent store.  Runs after
/// `done` was published under the job mutex and every waiter was
/// notified; no thread writes `result`/`error` past that point, so the
/// lock-free reads here are safe — this escape hatch records that
/// publish-then-freeze protocol for the static analysis (holding the
/// lock instead would stall get() waiters behind the disk write).
void persist_finished_job(EngineState& state, const ScenarioJob& job)
    GPUPOWER_NO_THREAD_SAFETY_ANALYSIS {
  if (const ResultStore* store = state.store();
      store != nullptr && !job.cache_key.empty() && !job.error &&
      job.result.valid()) {
    const std::size_t kind_index =
        static_cast<std::size_t>(job.config.kind());
    // The store.write trace span is recorded inside ResultStore::save;
    // here only the per-kind metrics sum is taken.
    const std::int64_t t0 =
        obs::metrics_enabled() ? obs::now_ns() : std::int64_t{0};
    if (store->save(job.cache_key, job.result)) {
      state.store_writes[kind_index].fetch_add(1, std::memory_order_relaxed);
    }
    if (t0 != 0) {
      state.store_write_ns[kind_index].fetch_add(
          obs::now_ns() - t0, std::memory_order_relaxed);
    }
  }
}

/// Reduces and publishes a finished job, then retires it from the
/// outstanding count.  The registry reduce hook runs under the job lock
/// exactly once and consumes the replica slots.
void finish_job(EngineState& state, const std::shared_ptr<ScenarioJob>& job) {
  const std::size_t kind_index = static_cast<std::size_t>(job->config.kind());
  {
    MutexLock lock(job->mutex);
    if (!job->error) {
      const std::int64_t t0 = obs_begin();
      try {
        job->result = scenario_kind_info(job->config.kind())
                          .reduce(job->config, job->replicas);
      } catch (...) {
        job->error = std::current_exception();
      }
      obs::SpanArgs reduce_args;
      if (job->trace_key != nullptr) {
        reduce_args.arg("key", job->trace_key)
            .arg("replicas", static_cast<std::int64_t>(job->replicas.size()));
      }
      obs_end(kReduceSpanName[kind_index], t0, state.reduce_ns[kind_index],
              reduce_args);
    }
    // All writers are done (remaining hit zero) and the reduction has
    // consumed the replicas; release them now — cached DVFS/fleet jobs
    // would otherwise pin every seed's full per-slice trace for the
    // engine's lifetime.
    job->replicas.clear();
    job->replicas.shrink_to_fit();
    job->done = true;
  }
  job->cv.notify_all();
  // Persist before retiring from the outstanding count: wait_all()
  // returning must imply every result is durably in the store, so a warm
  // engine (or process) started right after it cannot race a write still
  // in flight and recompute.  job->done is already published — waiters are
  // not delayed by the disk write.
  persist_finished_job(state, *job);
  {
    MutexLock lock(state.done_mutex);
    --state.outstanding;
    if (state.outstanding == 0) state.done_cv.notify_all();
  }
}

/// One seed replica of `job`: runs the kind's replica hook, stores into
/// the seed's disjoint slot, and finishes the job when the countdown hits
/// zero.
void run_replica_task(EngineState& state,
                      const std::shared_ptr<ScenarioJob>& job,
                      int seed_index, std::int64_t enqueue_ns) {
  const ScenarioKindInfo& info = scenario_kind_info(job->config.kind());
  const std::size_t kind_index = static_cast<std::size_t>(info.kind);
  // The queue-wait interval opened at enqueue time closes now that a
  // worker picked the task up (0 = observability was off at submit).
  obs_end("queue.wait", enqueue_ns, state.queue_wait_ns[kind_index]);
  const std::int64_t t0 = obs_begin();
  try {
    // Disjoint slots: no lock needed for the write, the job's atomic
    // countdown orders it before the reduction.
    job->replicas[static_cast<std::size_t>(seed_index)] =
        info.run_replica(job->config, seed_index);
  } catch (...) {
    MutexLock lock(job->mutex);
    if (!job->error) job->error = std::current_exception();
  }
  if (t0 != 0) {
    const std::int64_t end_ns = obs::now_ns();
    obs::SpanArgs replica_args;
    if (job->trace_key != nullptr) {
      replica_args.arg("key", job->trace_key).arg("seed", seed_index);
    }
    obs::record_span(kReplicaSpanName[kind_index], t0, end_ns, replica_args);
    if (obs::metrics_enabled()) {
      state.compute_ns[kind_index].fetch_add(end_ns - t0,
                                             std::memory_order_relaxed);
      static obs::Histogram& latency =
          obs::histogram("engine.replica_latency_ns");
      latency.record(end_ns - t0);
    }
  }
  state.replicas_run[static_cast<std::size_t>(info.kind)].fetch_add(
      1, std::memory_order_relaxed);

  if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    finish_job(state, job);
  }
}

void worker_loop(const std::shared_ptr<EngineState>& state) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(state->queue_mutex);
      while (!state->stop && state->queue.empty()) {
        state->queue_cv.wait(state->queue_mutex);
      }
      if (state->queue.empty()) return;  // stop requested, queue drained
      task = std::move(state->queue.front());
      state->queue.pop_front();
      if (obs::metrics_enabled()) {
        queue_depth_gauge().set(
            static_cast<std::int64_t>(state->queue.size()));
      }
    }
    task();
  }
}

}  // namespace
}  // namespace detail

namespace {

[[noreturn]] void throw_invalid_handle(const char* cls,
                                         const char* method) {
  throw std::logic_error(std::string(cls) + "::" + method +
                         "() on a default-constructed (invalid) handle; "
                         "obtain handles from the ExperimentEngine submit "
                         "methods");
}

// Shared bodies for the handle types (the public classes stay concrete;
// only the implementations are generic).
const ScenarioResult& handle_get(
    const std::shared_ptr<detail::ScenarioJob>& job, const char* cls) {
  if (!job) throw_invalid_handle(cls, "get");
  detail::ScenarioJob& j = *job;
  MutexLock lock(j.mutex);
  while (!j.done) j.cv.wait(j.mutex);
  if (j.error) std::rethrow_exception(j.error);
  // Returning a reference past the critical section is safe: once `done`
  // is published the result is frozen — finish_job never touches it
  // again, and the job object outlives every handle.
  return j.result;
}

bool handle_ready(const std::shared_ptr<detail::ScenarioJob>& job,
                  const char* cls) {
  if (!job) throw_invalid_handle(cls, "ready");
  MutexLock lock(job->mutex);
  return job->done;
}

const ScenarioConfig& handle_config(
    const std::shared_ptr<detail::ScenarioJob>& job, const char* cls) {
  if (!job) throw_invalid_handle(cls, "config");
  return job->config;
}

}  // namespace

const ScenarioResult& ScenarioHandle::get() const {
  return handle_get(job_, "ScenarioHandle");
}

bool ScenarioHandle::ready() const {
  return handle_ready(job_, "ScenarioHandle");
}

const ScenarioConfig& ScenarioHandle::config() const {
  return handle_config(job_, "ScenarioHandle");
}

ScenarioKind ScenarioHandle::kind() const {
  return handle_config(job_, "ScenarioHandle").kind();
}

const ExperimentResult& ExperimentHandle::get() const {
  return handle_get(job_, "ExperimentHandle").static_result();
}

bool ExperimentHandle::ready() const {
  return handle_ready(job_, "ExperimentHandle");
}

const ExperimentConfig& ExperimentHandle::config() const {
  return handle_config(job_, "ExperimentHandle").static_config();
}

const DvfsResult& DvfsHandle::get() const {
  return handle_get(job_, "DvfsHandle").dvfs();
}

bool DvfsHandle::ready() const { return handle_ready(job_, "DvfsHandle"); }

const DvfsConfig& DvfsHandle::config() const {
  return handle_config(job_, "DvfsHandle").dvfs();
}

const FleetResult& FleetHandle::get() const {
  return handle_get(job_, "FleetHandle").fleet();
}

bool FleetHandle::ready() const { return handle_ready(job_, "FleetHandle"); }

const FleetConfig& FleetHandle::config() const {
  return handle_config(job_, "FleetHandle").fleet();
}

std::vector<SweepEntry> SweepRun::collect() const {
  std::vector<SweepEntry> entries;
  entries.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    entries.push_back({points[i], handles[i].get()});
  }
  return entries;
}

analysis::JsonValue SweepRun::to_json() const {
  const std::vector<SweepEntry> entries = collect();
  return sweep_to_json(figure, base, entries);
}

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : state_(std::make_shared<detail::EngineState>()) {
  // Every engine binary honours GPUPOWER_TRACE / GPUPOWER_METRICS without
  // touching its main(); explicit gpowerctl flags were applied earlier
  // and win (init_from_env is once-per-process and defers to them).
  obs::init_from_env();
  state_->options = options;
  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  state_->worker_count = std::clamp(workers, 1, 256);
  state_->threads.reserve(static_cast<std::size_t>(state_->worker_count));
  for (int i = 0; i < state_->worker_count; ++i) {
    state_->threads.emplace_back(detail::worker_loop, state_);
  }
}

ExperimentEngine::~ExperimentEngine() {
  wait_all();
  {
    MutexLock lock(state_->queue_mutex);
    state_->stop = true;
  }
  state_->queue_cv.notify_all();
  for (std::thread& thread : state_->threads) thread.join();
}

/// The one submit path every family funnels through: validate through the
/// kind's registry hook, consult memory cache -> store -> compute, then
/// fan the seed replicas out as queue tasks.  The canonical key is only
/// computed when the cache is enabled (key serialisation is not free — a
/// DVFS key spells out every timeline phase); the store is only consulted
/// when the cache is (a cache-less engine recomputes by contract).
std::shared_ptr<detail::ScenarioJob> ExperimentEngine::submit_job(
    ScenarioConfig config, SubmitOutcome* outcome) {
  obs::Span submit_span("engine.submit");
  if (outcome != nullptr) *outcome = SubmitOutcome::kComputed;
  const ScenarioKindInfo& info = scenario_kind_info(config.kind());
  const std::string problem = info.validate(config);
  if (!problem.empty()) {
    // Reject malformed configs before scheduling: a worker throwing later
    // would surface the same message, but only at get() time (and cache
    // the poisoned job).
    throw std::invalid_argument("ExperimentEngine::submit(" +
                                std::string(info.name) + "): " + problem);
  }
  const int seeds = config.seeds();
  const std::size_t kind_index = static_cast<std::size_t>(info.kind);
  detail::EngineState& state = *state_;

  // Fully initialise the job before publishing it to the cache, so a
  // concurrent duplicate submit sees a consistent object.
  auto job = std::make_shared<detail::ScenarioJob>();
  job->config = std::move(config);
  if (state.options.cache_enabled) {
    job->cache_key = canonical_scenario_key(job->config);
  }
  if (obs::tracing_enabled()) {
    // Attribution survives the job (interned), and is computed even for a
    // cache-less engine — a trace without scenario identity is useless.
    job->trace_key = obs::intern(state.options.cache_enabled
                                     ? job->cache_key
                                     : canonical_scenario_key(job->config));
    submit_span.args(obs::SpanArgs()
                         .arg("key", job->trace_key)
                         .arg("kind", detail::kKindArgName[kind_index]));
  }
  job->replicas.resize(static_cast<std::size_t>(seeds));
  job->remaining.store(seeds, std::memory_order_relaxed);

  {
    MutexLock lock(state.cache_mutex);
    ++state.stats.submitted;
    ++state.stats.by_kind[kind_index].submitted;
    if (state.options.cache_enabled) {
      const auto it = state.cache.find(job->cache_key);
      if (it != state.cache.end()) {
        ++state.stats.cache_hits;
        ++state.stats.by_kind[kind_index].cache_hits;
        if (outcome != nullptr) *outcome = SubmitOutcome::kCacheHit;
        return it->second;
      }
    }
  }

  // Store lookup happens outside the cache lock — entry files can be
  // large, and a disk read must not serialise unrelated submits.  Two
  // threads racing the same key both load identical bytes; the
  // try_emplace below picks one winner.
  if (const ResultStore* store = state.store(); store != nullptr) {
    ScenarioResult loaded;
    // The store.read trace span is recorded inside ResultStore::load;
    // here only the per-kind metrics sum is taken.
    const std::int64_t read_t0 =
        obs::metrics_enabled() ? obs::now_ns() : std::int64_t{0};
    const bool loaded_ok = store->load(job->cache_key, info.kind, loaded);
    if (read_t0 != 0) {
      state.store_read_ns[kind_index].fetch_add(
          obs::now_ns() - read_t0, std::memory_order_relaxed);
    }
    if (loaded_ok) {
      {
        // The job is unpublished (no other thread can see it yet), but
        // taking its uncontended lock is free and keeps the guarded-field
        // invariant unconditional.
        MutexLock job_lock(job->mutex);
        job->result = std::move(loaded);
        job->done = true;
      }
      job->remaining.store(0, std::memory_order_relaxed);
      job->replicas.clear();
      job->replicas.shrink_to_fit();
      MutexLock lock(state.cache_mutex);
      const auto [it, inserted] = state.cache.try_emplace(job->cache_key, job);
      if (!inserted) {
        ++state.stats.cache_hits;
        ++state.stats.by_kind[kind_index].cache_hits;
        if (outcome != nullptr) *outcome = SubmitOutcome::kCacheHit;
        return it->second;
      }
      ++state.stats.store_hits;
      ++state.stats.by_kind[kind_index].store_hits;
      if (outcome != nullptr) *outcome = SubmitOutcome::kStoreHit;
      return job;
    }
  }

  {
    MutexLock lock(state.cache_mutex);
    if (state.options.cache_enabled) {
      const auto [it, inserted] = state.cache.try_emplace(job->cache_key, job);
      if (!inserted) {
        ++state.stats.cache_hits;
        ++state.stats.by_kind[kind_index].cache_hits;
        if (outcome != nullptr) *outcome = SubmitOutcome::kCacheHit;
        return it->second;
      }
    }
    ++state.stats.jobs_computed;
    ++state.stats.by_kind[kind_index].jobs_computed;
  }

  {
    MutexLock lock(state.done_mutex);
    ++state.outstanding;
  }
  {
    MutexLock lock(state.queue_mutex);
    // One timestamp for the whole batch: each task's queue-wait span
    // opens here and closes when a worker dequeues it (0 = obs off).
    const std::int64_t enqueue_ns = detail::obs_begin();
    for (int s = 0; s < seeds; ++s) {
      state.queue.push_back([&state, job, s, enqueue_ns] {
        detail::run_replica_task(state, job, s, enqueue_ns);
      });
    }
    if (obs::metrics_enabled()) {
      detail::queue_depth_gauge().set(
          static_cast<std::int64_t>(state.queue.size()));
    }
  }
  state.queue_cv.notify_all();
  return job;
}

ScenarioHandle ExperimentEngine::submit(ScenarioConfig config) {
  return ScenarioHandle(submit_job(std::move(config), nullptr));
}

ScenarioHandle ExperimentEngine::submit(ScenarioConfig config,
                                        SubmitOutcome* outcome) {
  return ScenarioHandle(submit_job(std::move(config), outcome));
}

std::vector<ScenarioHandle> ExperimentEngine::submit_batch(
    const std::vector<ScenarioConfig>& configs) {
  std::vector<ScenarioHandle> handles;
  handles.reserve(configs.size());
  for (const ScenarioConfig& config : configs) {
    handles.push_back(submit(config));
  }
  return handles;
}

ExperimentHandle ExperimentEngine::submit(const ExperimentConfig& config) {
  return ExperimentHandle(submit_job(ScenarioConfig(config), nullptr));
}

std::vector<ExperimentHandle> ExperimentEngine::submit_batch(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentHandle> handles;
  handles.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    handles.push_back(submit(config));
  }
  return handles;
}

SweepRun ExperimentEngine::submit_sweep(FigureId id,
                                        const ExperimentConfig& base) {
  SweepRun run;
  run.figure = id;
  run.base = base;
  run.points = figure_sweep(id);
  run.handles.reserve(run.points.size());
  for (const SweepPoint& point : run.points) {
    ExperimentConfig config = base;
    config.pattern = point.spec;
    run.handles.push_back(submit(config));
  }
  return run;
}

DvfsHandle ExperimentEngine::submit_dvfs(const DvfsConfig& config) {
  return DvfsHandle(submit_job(ScenarioConfig(config), nullptr));
}

std::vector<DvfsHandle> ExperimentEngine::submit_dvfs_batch(
    const std::vector<DvfsConfig>& configs) {
  std::vector<DvfsHandle> handles;
  handles.reserve(configs.size());
  for (const DvfsConfig& config : configs) {
    handles.push_back(submit_dvfs(config));
  }
  return handles;
}

FleetHandle ExperimentEngine::submit_fleet(const FleetConfig& config) {
  return FleetHandle(submit_job(ScenarioConfig(config), nullptr));
}

std::vector<FleetHandle> ExperimentEngine::submit_fleet_batch(
    const std::vector<FleetConfig>& configs) {
  std::vector<FleetHandle> handles;
  handles.reserve(configs.size());
  for (const FleetConfig& config : configs) {
    handles.push_back(submit_fleet(config));
  }
  return handles;
}

void ExperimentEngine::wait_all() {
  MutexLock lock(state_->done_mutex);
  while (state_->outstanding != 0) {
    state_->done_cv.wait(state_->done_mutex);
  }
}

EngineStats ExperimentEngine::stats() const {
  constexpr double kNsToSeconds = 1e-9;
  MutexLock lock(state_->cache_mutex);
  EngineStats stats = state_->stats;
  stats.replicas_run = 0;
  stats.store_writes = 0;
  for (std::size_t k = 0; k < kScenarioKindCount; ++k) {
    EngineKindStats& kind = stats.by_kind[k];
    kind.replicas_run = state_->replicas_run[k].load(std::memory_order_relaxed);
    stats.replicas_run += kind.replicas_run;
    kind.store_writes = state_->store_writes[k].load(std::memory_order_relaxed);
    stats.store_writes += kind.store_writes;

    kind.compute_seconds =
        static_cast<double>(
            state_->compute_ns[k].load(std::memory_order_relaxed)) *
        kNsToSeconds;
    kind.queue_wait_seconds =
        static_cast<double>(
            state_->queue_wait_ns[k].load(std::memory_order_relaxed)) *
        kNsToSeconds;
    kind.reduce_seconds =
        static_cast<double>(
            state_->reduce_ns[k].load(std::memory_order_relaxed)) *
        kNsToSeconds;
    kind.store_read_seconds =
        static_cast<double>(
            state_->store_read_ns[k].load(std::memory_order_relaxed)) *
        kNsToSeconds;
    kind.store_write_seconds =
        static_cast<double>(
            state_->store_write_ns[k].load(std::memory_order_relaxed)) *
        kNsToSeconds;
    stats.compute_seconds += kind.compute_seconds;
    stats.queue_wait_seconds += kind.queue_wait_seconds;
    stats.reduce_seconds += kind.reduce_seconds;
    stats.store_read_seconds += kind.store_read_seconds;
    stats.store_write_seconds += kind.store_write_seconds;
  }
  return stats;
}

int ExperimentEngine::workers() const noexcept { return state_->worker_count; }

analysis::JsonValue ExperimentEngine::metrics_json() const {
  using analysis::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("gpupower_metrics", JsonValue::integer(1));
  doc.set("engine", engine_stats_json(stats(), workers()));
  doc.set("obs", obs::registry_json());
  return doc;
}

void ExperimentEngine::clear_cache() {
  MutexLock lock(state_->cache_mutex);
  state_->cache.clear();
}

std::string engine_stats_line(const ExperimentEngine& engine) {
  const EngineStats stats = engine.stats();
  std::string line = std::to_string(engine.workers()) + " worker(s), " +
                     std::to_string(stats.submitted) + " submitted, " +
                     std::to_string(stats.jobs_computed) + " computed, " +
                     std::to_string(stats.cache_hits) + " cache hit(s)";
  // Store traffic only prints when it occurred, so store-less runs keep
  // the historical line byte-for-byte.
  if (stats.store_hits != 0 || stats.store_writes != 0) {
    line += ", " + std::to_string(stats.store_hits) + " store hit(s), " +
            std::to_string(stats.store_writes) + " store write(s)";
  }
  // Per-kind breakdown (where the time went), only for kinds that ran.
  for (const auto kind : kAllScenarioKinds) {
    const EngineKindStats& k = stats.of(kind);
    if (k.submitted == 0) continue;
    line += " | ";
    line += name(kind);
    line += ": " + std::to_string(k.jobs_computed) + " computed, " +
            std::to_string(k.replicas_run) + " replica(s)";
    if (k.store_hits != 0 || k.store_writes != 0) {
      line += ", " + std::to_string(k.store_hits) + " store hit(s), " +
              std::to_string(k.store_writes) + " store write(s)";
    }
  }
  return line;
}

namespace {

/// The counter + timing fields shared by the aggregate and per-kind
/// objects; `fill` must mirror the EngineKindStats field list.
analysis::JsonValue kind_stats_json(const EngineKindStats& k) {
  using analysis::JsonValue;
  JsonValue out = JsonValue::object();
  out.set("submitted", JsonValue::integer(static_cast<long long>(k.submitted)));
  out.set("cache_hits",
          JsonValue::integer(static_cast<long long>(k.cache_hits)));
  out.set("jobs_computed",
          JsonValue::integer(static_cast<long long>(k.jobs_computed)));
  out.set("replicas_run",
          JsonValue::integer(static_cast<long long>(k.replicas_run)));
  out.set("store_hits",
          JsonValue::integer(static_cast<long long>(k.store_hits)));
  out.set("store_writes",
          JsonValue::integer(static_cast<long long>(k.store_writes)));
  // Hit ratio of the lookups that reached the store: every store consult
  // either hits or falls through to a compute.
  const double lookups =
      static_cast<double>(k.store_hits) + static_cast<double>(k.jobs_computed);
  out.set("store_hit_ratio",
          JsonValue::number(
              lookups > 0.0 ? static_cast<double>(k.store_hits) / lookups
                            : 0.0));
  out.set("compute_seconds", JsonValue::number(k.compute_seconds));
  out.set("queue_wait_seconds", JsonValue::number(k.queue_wait_seconds));
  out.set("reduce_seconds", JsonValue::number(k.reduce_seconds));
  out.set("store_read_seconds", JsonValue::number(k.store_read_seconds));
  out.set("store_write_seconds", JsonValue::number(k.store_write_seconds));
  return out;
}

}  // namespace

analysis::JsonValue engine_stats_json(const EngineStats& stats, int workers) {
  using analysis::JsonValue;
  // The aggregate view reuses the per-kind schema (the aggregate fields
  // are the sums by construction).
  EngineKindStats total;
  total.submitted = stats.submitted;
  total.cache_hits = stats.cache_hits;
  total.jobs_computed = stats.jobs_computed;
  total.replicas_run = stats.replicas_run;
  total.store_hits = stats.store_hits;
  total.store_writes = stats.store_writes;
  total.compute_seconds = stats.compute_seconds;
  total.queue_wait_seconds = stats.queue_wait_seconds;
  total.reduce_seconds = stats.reduce_seconds;
  total.store_read_seconds = stats.store_read_seconds;
  total.store_write_seconds = stats.store_write_seconds;

  JsonValue out = kind_stats_json(total);
  JsonValue by_kind = analysis::JsonValue::object();
  for (const auto kind : kAllScenarioKinds) {
    by_kind.set(name(kind), kind_stats_json(stats.of(kind)));
  }
  JsonValue doc = JsonValue::object();
  doc.set("workers", JsonValue::integer(workers));
  // Splice the aggregate fields after "workers", then the breakdown.
  for (const std::string& key : out.keys()) {
    doc.set(key, *out.find(key));
  }
  doc.set("by_kind", std::move(by_kind));
  return doc;
}

}  // namespace gpupower::core
