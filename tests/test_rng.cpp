#include "patterns/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace gpupower::patterns {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowIsUnbiased) {
  Xoshiro256 rng(11);
  int counts[7] = {};
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformBelowZeroAndOne) {
  Xoshiro256 rng(13);
  EXPECT_EQ(rng.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, DeriveSeedSeparatesStreams) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  const auto t0 = derive_seed(43, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, t0);
  // Deterministic.
  EXPECT_EQ(derive_seed(42, 0), s0);
}

TEST(Rng, SplitMixExpandsNonZero) {
  SplitMix64 sm(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(sm.next());
  EXPECT_EQ(values.size(), 16u);  // no repeats in the first draws
}

}  // namespace
}  // namespace gpupower::patterns
