// ExperimentEngine: the batched, cached, parallel front end to the
// experiment pipeline — the long-lived subsystem that replaces one-shot
// `run_experiment` calls for every sweep-scale workload (14 figures x 4
// datatypes x sweep points x 10 seeds in the paper's full protocol).
//
// Every submission — classic static experiment, DVFS timeline replay,
// power-capped fleet — goes through ONE type-erased entry point:
//
//   ExperimentEngine engine;                       // worker pool sized to HW
//   auto any   = engine.submit(ScenarioConfig(fleet_config));  // any kind
//   auto handle = engine.submit(config);           // typed wrapper, same path
//   auto sweep  = engine.submit_sweep(FigureId::kFig6aSparsity, base);
//   engine.wait_all();
//   const FleetResult& f = any.get().fleet();
//   const ExperimentResult& r = handle.get();      // blocks if still running
//   auto entries = sweep.collect();                // [SweepPoint, Result]...
//
// The typed submit/submit_dvfs/submit_fleet families are thin wrappers over
// submit(ScenarioConfig) — same cache, same replica pool, same seed-order
// reduction — so they are bit-identical to the type-erased path by
// construction.  New scenario kinds plug in through the registry in
// core/scenario.hpp without touching the engine.
//
// Guarantees:
//  - Results are bit-identical to the serial reference paths: seed replicas
//    derive independent RNG streams, the engine computes them in parallel
//    and folds them in seed order through the kind's reduce hook.
//  - Submissions are de-duplicated through an in-engine cache keyed by
//    `canonical_scenario_key` (kind-prefixed), so sweeps sharing points —
//    e.g. every figure's baseline column — are computed once.  In-flight
//    duplicates attach to the running job.
//  - `submit` never blocks; per-seed tasks fan out across a fixed worker
//    pool shared by all outstanding jobs of every kind.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/json.hpp"
#include "core/figures.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace gpupower::core {

class ResultStore;

namespace detail {
struct ScenarioJob;
struct EngineState;
}  // namespace detail

struct EngineOptions {
  /// Worker threads; 0 sizes the pool to the hardware concurrency.
  int workers = 0;
  /// When false, every submission is computed even if an identical config
  /// was already run (the cache also stops de-duplicating in-flight work).
  /// Disabling the cache also bypasses the store below.
  bool cache_enabled = true;
  /// Optional persistent result store (core/store/result_store.hpp):
  /// submit() consults memory cache -> store -> compute, and completed
  /// jobs write back before they retire, so wait_all() implies every
  /// result is on disk.  Shareable between engines (and, through the
  /// directory, between processes).
  std::shared_ptr<ResultStore> store;

  /// Options with an explicit pool size and everything else defaulted —
  /// the common test/tool spelling that stays valid as fields are added
  /// (brace-init with a partial field list trips
  /// -Wmissing-field-initializers).
  [[nodiscard]] static EngineOptions with_workers(int workers) {
    EngineOptions options;
    options.workers = workers;
    return options;
  }
};

/// One scenario kind's slice of the engine counters — how a campaign run
/// reports where the time went.  The *_seconds fields are cumulative
/// thread-time per pipeline stage, accumulated only while the obs metrics
/// switch is on (core/obs/obs.hpp: gpowerctl --trace-out/--metrics-out,
/// GPUPOWER_TRACE/GPUPOWER_METRICS, serve); they read 0.0 otherwise.
struct EngineKindStats {
  std::uint64_t submitted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t jobs_computed = 0;
  std::uint64_t replicas_run = 0;
  std::uint64_t store_hits = 0;    ///< submits served from the on-disk store
  std::uint64_t store_writes = 0;  ///< completed jobs persisted to the store

  double compute_seconds = 0.0;      ///< replica hook time, summed per task
  double queue_wait_seconds = 0.0;   ///< enqueue -> worker-pickup, per task
  double reduce_seconds = 0.0;       ///< seed-order reduction time
  double store_read_seconds = 0.0;   ///< store lookup time (hits and misses)
  double store_write_seconds = 0.0;  ///< store write-back time
};

struct EngineStats {
  std::uint64_t submitted = 0;     ///< total submit() calls, every kind
  std::uint64_t cache_hits = 0;    ///< submits served by an existing job
  std::uint64_t jobs_computed = 0; ///< unique configs actually scheduled
  std::uint64_t replicas_run = 0;  ///< seed-replica tasks executed
  std::uint64_t store_hits = 0;    ///< submits served from the on-disk store
  std::uint64_t store_writes = 0;  ///< completed jobs persisted to the store

  double compute_seconds = 0.0;      ///< sums of the per-kind timings below
  double queue_wait_seconds = 0.0;
  double reduce_seconds = 0.0;
  double store_read_seconds = 0.0;
  double store_write_seconds = 0.0;

  /// Per-kind breakdown; the aggregate fields above are the sums.
  EngineKindStats by_kind[kScenarioKindCount];

  [[nodiscard]] const EngineKindStats& of(ScenarioKind kind) const noexcept {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return submitted - cache_hits;
  }
};

/// Lightweight, copyable reference to any submitted scenario.  Handles to
/// the same (cached) config share the underlying job and result.  Calling
/// get()/ready()/config() on a default-constructed handle throws
/// std::logic_error (check valid() first).
class ScenarioHandle {
 public:
  ScenarioHandle() = default;

  /// Blocks until the scenario finishes; rethrows any worker exception.
  /// The reference stays valid as long as any handle to the job exists.
  [[nodiscard]] const ScenarioResult& get() const;
  /// True once the result is available (non-blocking).
  [[nodiscard]] bool ready() const;
  /// The config this handle was submitted with.
  [[nodiscard]] const ScenarioConfig& config() const;
  /// Scenario kind (throws std::logic_error on an invalid handle).
  [[nodiscard]] ScenarioKind kind() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  friend class ExperimentHandle;
  friend class DvfsHandle;
  friend class FleetHandle;
  explicit ScenarioHandle(std::shared_ptr<detail::ScenarioJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ScenarioJob> job_;
};

/// Typed view of a static-experiment job — a thin wrapper over the shared
/// type-erased job (same cache entry, same result storage).
class ExperimentHandle {
 public:
  ExperimentHandle() = default;

  /// Blocks until the experiment finishes; rethrows any worker exception.
  [[nodiscard]] const ExperimentResult& get() const;
  [[nodiscard]] bool ready() const;
  [[nodiscard]] const ExperimentConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit ExperimentHandle(std::shared_ptr<detail::ScenarioJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ScenarioJob> job_;
};

/// Typed view of a DVFS timeline job — same semantics as ExperimentHandle.
class DvfsHandle {
 public:
  DvfsHandle() = default;

  /// Blocks until the replay finishes; rethrows any worker exception.
  [[nodiscard]] const DvfsResult& get() const;
  [[nodiscard]] bool ready() const;
  [[nodiscard]] const DvfsConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit DvfsHandle(std::shared_ptr<detail::ScenarioJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ScenarioJob> job_;
};

/// Typed view of a fleet job — same semantics as the other handles.
class FleetHandle {
 public:
  FleetHandle() = default;

  /// Blocks until the fleet replay finishes; rethrows any worker exception.
  [[nodiscard]] const FleetResult& get() const;
  [[nodiscard]] bool ready() const;
  [[nodiscard]] const FleetConfig& config() const;
  [[nodiscard]] bool valid() const noexcept { return job_ != nullptr; }

 private:
  friend class ExperimentEngine;
  explicit FleetHandle(std::shared_ptr<detail::ScenarioJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ScenarioJob> job_;
};

/// A figure sweep in flight: one handle per sweep point, in sweep order.
struct SweepRun {
  FigureId figure{};
  ExperimentConfig base;          ///< shared scalars (pattern varies per point)
  std::vector<SweepPoint> points;
  std::vector<ExperimentHandle> handles;

  /// Blocks until every point finishes; pairs each with its sweep point.
  [[nodiscard]] std::vector<SweepEntry> collect() const;
  /// Structured export: collect() fed through core/report.hpp's
  /// sweep_to_json.
  [[nodiscard]] analysis::JsonValue to_json() const;
};

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions options = {});
  ~ExperimentEngine();

  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  /// How a submit was satisfied — reported through the out-param overload
  /// below so a caller (serve's per-session accounting) can attribute
  /// dedup/store traffic per client without diffing racy engine-wide
  /// stats snapshots.
  enum class SubmitOutcome {
    kComputed,  ///< scheduled fresh replica work (or joined its in-flight job)
    kCacheHit,  ///< served by an already-cached job, nothing scheduled
    kStoreHit,  ///< loaded from the persistent store, nothing scheduled
  };

  /// The one submission entry point: enqueues any scenario kind (never
  /// blocks).  Identical configs — by canonical_scenario_key — share one
  /// computation and one result.  Throws std::invalid_argument when the
  /// kind's validator rejects the config (zero seeds, empty timeline,
  /// dangling cross-references, ...).
  ScenarioHandle submit(ScenarioConfig config);

  /// As above, reporting how the submit was satisfied (outcome may be
  /// nullptr).
  ScenarioHandle submit(ScenarioConfig config, SubmitOutcome* outcome);

  /// Enqueues a batch of scenarios; handles are in input order.
  std::vector<ScenarioHandle> submit_batch(
      const std::vector<ScenarioConfig>& configs);

  /// Typed wrapper over submit(ScenarioConfig) for classic experiments.
  ExperimentHandle submit(const ExperimentConfig& config);

  /// Enqueues a batch; handles are in input order.
  std::vector<ExperimentHandle> submit_batch(
      const std::vector<ExperimentConfig>& configs);

  /// Enqueues every sweep point of a paper figure.  `base` supplies the
  /// scalars (gpu, dtype, n, seeds, sampling...); each point's PatternSpec
  /// overrides `base.pattern`.  (Campaign specs — core/spec.hpp — are the
  /// generic grid form of this.)
  SweepRun submit_sweep(FigureId id, const ExperimentConfig& base);

  /// Typed wrapper over submit(ScenarioConfig) for DVFS timeline replays.
  DvfsHandle submit_dvfs(const DvfsConfig& config);

  /// Enqueues a batch of DVFS experiments; handles are in input order.
  std::vector<DvfsHandle> submit_dvfs_batch(
      const std::vector<DvfsConfig>& configs);

  /// Typed wrapper over submit(ScenarioConfig) for fleet experiments.
  FleetHandle submit_fleet(const FleetConfig& config);

  /// Enqueues a batch of fleet experiments; handles are in input order.
  std::vector<FleetHandle> submit_fleet_batch(
      const std::vector<FleetConfig>& configs);

  /// Blocks until every outstanding job has finished.
  void wait_all();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] int workers() const noexcept;

  /// Stable JSON metrics document: `{"gpupower_metrics":1, "engine":
  /// engine_stats_json(stats(), workers()), "obs": obs::registry_json()}`
  /// — the one schema shared by `gpowerctl --metrics-out` and serve
  /// `stats` events, so dashboards never see two spellings.  Timing
  /// fields are zero unless the obs metrics switch is on.
  [[nodiscard]] analysis::JsonValue metrics_json() const;

  /// Drops completed results from the cache (outstanding handles keep
  /// their jobs alive); resets no counters.
  void clear_cache();

 private:
  std::shared_ptr<detail::ScenarioJob> submit_job(ScenarioConfig config,
                                                  SubmitOutcome* outcome);

  std::shared_ptr<detail::EngineState> state_;
};

/// One-line human summary of an engine's counters — "4 worker(s), 12
/// submitted, 12 computed, 0 cache hit(s) | fleet: 12 computed, 24
/// replica(s)" — shared by the bench harness and gpowerctl so the
/// per-kind breakdown prints identically everywhere.  Store traffic
/// appends as ", N store hit(s), M store write(s)" (aggregate and
/// per-kind) only when it occurred, so store-less runs print unchanged.
[[nodiscard]] std::string engine_stats_line(const ExperimentEngine& engine);

/// EngineStats as a stable JSON object: the aggregate counters and timing
/// fields plus a "by_kind" object keyed by kind name (every kind present,
/// fixed key order), prefixed with "workers".  Embedded by the bench
/// documents (tools/bench_export) and by metrics_json(), so the two
/// exports can never drift apart.
[[nodiscard]] analysis::JsonValue engine_stats_json(const EngineStats& stats,
                                                    int workers);

}  // namespace gpupower::core
