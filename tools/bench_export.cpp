#include "tools/bench_export.hpp"

#include <cstdio>
#include <utility>

#include "core/store/result_store.hpp"

namespace gpupower::tools {

analysis::JsonValue bench_document(const std::string& bench,
                                   const std::string& protocol,
                                   const std::vector<BenchCase>& cases,
                                   const analysis::JsonValue* engine_stats) {
  analysis::JsonValue doc = analysis::JsonValue::object();
  doc.set("bench", analysis::JsonValue::string(bench));
  doc.set("schema", analysis::JsonValue::integer(1));
  doc.set("protocol", analysis::JsonValue::string(protocol));
  analysis::JsonValue case_array = analysis::JsonValue::array();
  for (const BenchCase& c : cases) {
    analysis::JsonValue entry = analysis::JsonValue::object();
    entry.set("name", analysis::JsonValue::string(c.name));
    analysis::JsonValue metrics = analysis::JsonValue::object();
    for (const BenchMetric& m : c.metrics) {
      metrics.set(m.name, analysis::JsonValue::number(m.value));
    }
    entry.set("metrics", std::move(metrics));
    case_array.push(std::move(entry));
  }
  doc.set("cases", std::move(case_array));
  if (engine_stats != nullptr) {
    // Observability context, not trajectory data: the comparison gate
    // walks only the baseline's cases, so this block is inert to
    // --compare by construction.
    doc.set("engine_stats", *engine_stats);
  }
  return doc;
}

bool write_bench_json(const std::string& path,
                      const analysis::JsonValue& doc) {
  // Atomic temp-file + rename: a crash or concurrent reader never sees a
  // half-written trajectory document.
  return core::atomic_write_text(path, doc.dump(/*pretty=*/true) + "\n");
}

bool read_bench_json(const std::string& path, analysis::JsonValue& doc,
                     std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(f);

  analysis::JsonParseResult parsed = analysis::json_parse(text);
  if (!parsed.ok) {
    error = path + ": JSON error at offset " +
            std::to_string(parsed.error_pos) + ": " + parsed.error;
    return false;
  }
  if (parsed.value.find("bench") == nullptr ||
      parsed.value.find("cases") == nullptr ||
      !parsed.value.find("cases")->is_array()) {
    error = path + ": not a bench document (missing bench/cases)";
    return false;
  }
  doc = std::move(parsed.value);
  return true;
}

namespace {

/// Wall-time metrics gate the comparison; bigger is worse.
bool is_gated_metric(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ms") == 0;
}

/// Energy metrics are deterministic model outputs: any drift beyond the
/// tolerance (either direction) means the model changed under the
/// committed document.
bool is_energy_metric(const std::string& name) {
  return name.size() > 2 && name.compare(name.size() - 2, 2, "_j") == 0;
}

const analysis::JsonValue* find_case(const analysis::JsonValue& cases,
                                     const std::string& name) {
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const analysis::JsonValue* entry_name = cases.at(i).find("name");
    if (entry_name != nullptr && entry_name->as_string() == name) {
      return &cases.at(i);
    }
  }
  return nullptr;
}

}  // namespace

CompareResult compare_bench_documents(const analysis::JsonValue& baseline,
                                      const analysis::JsonValue& fresh,
                                      const CompareOptions& options) {
  CompareResult result;
  const analysis::JsonValue* base_bench = baseline.find("bench");
  const analysis::JsonValue* fresh_bench = fresh.find("bench");
  if (base_bench == nullptr || fresh_bench == nullptr ||
      base_bench->as_string() != fresh_bench->as_string()) {
    result.error = "bench names differ (comparing different benchmarks?)";
    return result;
  }
  const analysis::JsonValue* base_cases = baseline.find("cases");
  const analysis::JsonValue* fresh_cases = fresh.find("cases");
  if (base_cases == nullptr || fresh_cases == nullptr) {
    result.error = "missing cases array";
    return result;
  }
  const analysis::JsonValue* base_protocol = baseline.find("protocol");
  const analysis::JsonValue* fresh_protocol = fresh.find("protocol");
  result.protocols_match =
      base_protocol != nullptr && fresh_protocol != nullptr &&
      base_protocol->as_string() == fresh_protocol->as_string();
  // Speedup gating scope: the aggregate case when present, else every case.
  const bool have_gate_case =
      !options.speedup_gate_case.empty() &&
      find_case(*base_cases, options.speedup_gate_case) != nullptr;

  for (std::size_t i = 0; i < base_cases->size(); ++i) {
    const analysis::JsonValue& base_case = base_cases->at(i);
    const analysis::JsonValue* name = base_case.find("name");
    if (name == nullptr) {
      result.error = "baseline case without a name";
      return result;
    }
    const analysis::JsonValue* fresh_case =
        find_case(*fresh_cases, name->as_string());
    if (fresh_case == nullptr) {
      result.error = "case '" + name->as_string() + "' missing from fresh run";
      return result;
    }
    const analysis::JsonValue* base_metrics = base_case.find("metrics");
    const analysis::JsonValue* fresh_metrics = fresh_case->find("metrics");
    if (base_metrics == nullptr || fresh_metrics == nullptr) continue;

    // Compare every baseline metric, in baseline order.  A metric the
    // baseline has but the fresh run lacks makes the documents
    // incomparable (like a missing case) — silently skipping it would let
    // emitter drift turn the gate into a permanent no-op.
    for (const std::string& metric : base_metrics->keys()) {
      const analysis::JsonValue* base_value = base_metrics->find(metric);
      const analysis::JsonValue* fresh_value = fresh_metrics->find(metric);
      if (base_value == nullptr) continue;
      if (fresh_value == nullptr) {
        result.regressed = false;
        result.deltas.clear();
        result.error = "metric '" + metric + "' of case '" +
                       name->as_string() + "' missing from fresh run";
        result.ok = false;
        return result;
      }
      MetricDelta delta;
      delta.case_name = name->as_string();
      delta.metric = metric;
      delta.baseline = base_value->as_number();
      delta.fresh = fresh_value->as_number();
      delta.ratio = delta.baseline != 0.0 ? delta.fresh / delta.baseline : 1.0;
      if (metric == "speedup") {
        // Machine-relative, but still shape-dependent: gates only on a
        // like-for-like protocol (and, when an aggregate case exists,
        // only there); lower is worse.
        const bool in_scope =
            !have_gate_case || name->as_string() == options.speedup_gate_case;
        delta.regressed = result.protocols_match && in_scope &&
                          delta.ratio < 1.0 - options.tolerance;
      } else if (is_gated_metric(metric)) {
        // Machine-absolute wall time: opt-in, same protocol; higher is
        // worse.
        delta.regressed = options.gate_walltime && result.protocols_match &&
                          delta.ratio > 1.0 + options.tolerance;
      } else if (is_energy_metric(metric)) {
        // Deterministic model output: symmetric drift gate on a matching
        // protocol — a changed model must regenerate the committed
        // baseline, not slide past it.
        delta.regressed = options.gate_energy && result.protocols_match &&
                          (delta.ratio > 1.0 + options.tolerance ||
                           delta.ratio < 1.0 - options.tolerance);
      }
      result.regressed = result.regressed || delta.regressed;
      result.deltas.push_back(std::move(delta));
    }
  }
  result.ok = true;
  return result;
}

}  // namespace gpupower::tools
