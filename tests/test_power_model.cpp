#include "core/power_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <vector>

#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "patterns/distributions.hpp"

namespace gpupower::core {
namespace {

using gpupower::numeric::DType;
using gpupower::numeric::float16_t;

TEST(Features, ZeroMatrices) {
  gemm::Matrix<float16_t> a(32, 32), b(32, 32);
  const auto f = extract_features(a, b);
  EXPECT_DOUBLE_EQ(f.weight_fraction, 0.0);
  EXPECT_DOUBLE_EQ(f.neighbor_toggles, 0.0);
  EXPECT_DOUBLE_EQ(f.zero_fraction, 1.0);
  EXPECT_DOUBLE_EQ(f.alignment, 1.0);  // all bits equal (all zero)
  EXPECT_DOUBLE_EQ(f.significand_activity, 0.0);
}

TEST(Features, RandomMatricesLandMidRange) {
  const auto values_a = patterns::gaussian_fill(1024, 0.0, 210.0, 1);
  const auto values_b = patterns::gaussian_fill(1024, 0.0, 210.0, 2);
  const auto a = gemm::materialize<float16_t>(values_a, 32, 32);
  const auto b = gemm::materialize<float16_t>(values_b, 32, 32);
  const auto f = extract_features(a, b);
  EXPECT_GT(f.weight_fraction, 0.2);
  EXPECT_LT(f.weight_fraction, 0.6);
  EXPECT_GT(f.neighbor_toggles, 0.2);
  EXPECT_GT(f.alignment, 0.3);
  EXPECT_LT(f.alignment, 0.8);
  EXPECT_LT(f.zero_fraction, 0.01);
  EXPECT_GT(f.significand_activity, 0.0);
}

TEST(Features, SortingReducesNeighborToggles) {
  auto values = patterns::gaussian_fill(1024, 0.0, 210.0, 1);
  const auto random_m = gemm::materialize<float16_t>(values, 32, 32);
  std::sort(values.begin(), values.end());
  const auto sorted_m = gemm::materialize<float16_t>(values, 32, 32);
  const auto f_random = extract_features(random_m, random_m);
  const auto f_sorted = extract_features(sorted_m, sorted_m);
  EXPECT_LT(f_sorted.neighbor_toggles, f_random.neighbor_toggles);
}

TEST(PowerModel, RecoversSyntheticLinearFunction) {
  // Build samples from a known linear model; fit must recover it.
  std::vector<PowerSample> samples;
  patterns::Xoshiro256 rng(5);
  const double true_w[DataFeatures::kCount] = {40.0, 120.0, -30.0,
                                               -50.0, 200.0, 10.0};
  for (int i = 0; i < 200; ++i) {
    PowerSample s;
    s.features.weight_fraction = rng.uniform();
    s.features.neighbor_toggles = rng.uniform();
    s.features.alignment = rng.uniform();
    s.features.zero_fraction = rng.uniform();
    s.features.significand_activity = rng.uniform();
    s.features.exponent_weight = rng.uniform();
    const auto v = s.features.vector();
    s.power_w = 100.0;
    for (std::size_t k = 0; k < DataFeatures::kCount; ++k) {
      s.power_w += true_w[k] * v[k];
    }
    samples.push_back(s);
  }
  const auto model = InputDependentPowerModel::fit(samples);
  EXPECT_NEAR(model.intercept(), 100.0, 0.5);
  for (std::size_t k = 0; k < DataFeatures::kCount; ++k) {
    EXPECT_NEAR(model.weights()[k], true_w[k], 0.5) << "weight " << k;
  }
  EXPECT_GT(model.r2(samples), 0.999);
}

TEST(PowerModel, PredictsSimulatedPowerAcrossPatterns) {
  // The Section V deliverable: train on simulated experiments, predict power
  // from cheap input statistics alone with useful accuracy.
  std::vector<PowerSample> samples;
  const std::size_t n = 128;
  for (const auto fig :
       {FigureId::kFig3bDistributionMean, FigureId::kFig5bSortedAligned,
        FigureId::kFig6aSparsity, FigureId::kFig4bLsbRandomized,
        FigureId::kFig6cLsbZeroed}) {
    for (const auto& point : figure_sweep(fig)) {
      ExperimentConfig config;
      config.dtype = DType::kFP16;
      config.n = n;
      config.seeds = 1;
      config.pattern = point.spec;
      const auto result = run_experiment(config);
      const auto inputs =
          build_inputs<float16_t>(point.spec, DType::kFP16, n, 42);
      PowerSample s;
      s.features = extract_features(inputs.a, inputs.b);
      s.power_w = result.power_w;
      samples.push_back(s);
    }
  }
  ASSERT_GE(samples.size(), 30u);
  const auto model = InputDependentPowerModel::fit(samples);
  EXPECT_GT(model.r2(samples), 0.7);

  // Prediction error on the training distribution stays within a few watts.
  double worst = 0.0;
  for (const auto& s : samples) {
    worst = std::max(worst, std::fabs(model.predict(s.features) - s.power_w));
  }
  EXPECT_LT(worst, 12.0);
}

TEST(PowerModel, FitRequiresEnoughSamples) {
  // Underdetermined fit degrades gracefully to a zero model rather than UB.
  std::vector<PowerSample> two(2);
  two[0].power_w = 100.0;
  two[1].power_w = 200.0;
  const auto model = InputDependentPowerModel::fit(two);
  (void)model.predict(two[0].features);  // must not crash
}

}  // namespace
}  // namespace gpupower::core
