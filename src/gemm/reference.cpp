#include "gemm/reference.hpp"

#include <cassert>

namespace gpupower::gemm {

template <typename T>
void reference_gemm(const GemmProblem& problem, const Matrix<T>& a,
                    const Matrix<T>& b_storage,
                    const Matrix<gpupower::numeric::accumulator_t<T>>& c,
                    Matrix<gpupower::numeric::accumulator_t<T>>& d) {
  using traits = gpupower::numeric::scalar_traits<T>;
  using Acc = gpupower::numeric::accumulator_t<T>;

  assert(a.rows() == problem.n && a.cols() == problem.k);
  assert(c.rows() == problem.n && c.cols() == problem.m);
  if (d.rows() != problem.n || d.cols() != problem.m) {
    d = Matrix<Acc>(problem.n, problem.m);
  }

  for (std::size_t i = 0; i < problem.n; ++i) {
    for (std::size_t j = 0; j < problem.m; ++j) {
      Acc acc{};
      for (std::size_t k = 0; k < problem.k; ++k) {
        const float av = traits::to_float(a.at(i, k));
        const float bv = traits::to_float(b_element(b_storage, problem, k, j));
        if constexpr (std::is_same_v<Acc, float>) {
          acc += av * bv;
        } else {
          acc += static_cast<Acc>(av) * static_cast<Acc>(bv);
        }
      }
      const float source = static_cast<float>(c.at(i, j));
      const float result =
          problem.alpha * static_cast<float>(acc) + problem.beta * source;
      d.at(i, j) = static_cast<Acc>(result);
    }
  }
}

template void reference_gemm<float>(const GemmProblem&, const Matrix<float>&,
                                    const Matrix<float>&, const Matrix<float>&,
                                    Matrix<float>&);
template void reference_gemm<gpupower::numeric::float16_t>(
    const GemmProblem&, const Matrix<gpupower::numeric::float16_t>&,
    const Matrix<gpupower::numeric::float16_t>&, const Matrix<float>&,
    Matrix<float>&);
template void reference_gemm<gpupower::numeric::int8_value_t>(
    const GemmProblem&, const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<gpupower::numeric::int8_value_t>&,
    const Matrix<std::int32_t>&, Matrix<std::int32_t>&);

}  // namespace gpupower::gemm
