#include "patterns/sparsity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "patterns/distributions.hpp"

namespace gpupower::patterns {
namespace {

TEST(Sparsity, ExactFraction) {
  auto data = gaussian_fill(1000, 10.0, 1.0, 42);  // mean 10: no natural zeros
  sparsify(data, 0.37, 7);
  EXPECT_NEAR(measured_sparsity(data), 0.37, 1e-9);
}

TEST(Sparsity, ZeroFractionIsIdentity) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  const auto original = data;
  sparsify(data, 0.0, 7);
  EXPECT_EQ(data, original);
}

TEST(Sparsity, FullFractionZeroesEverything) {
  auto data = gaussian_fill(256, 0.0, 210.0, 42);
  sparsify(data, 1.0, 7);
  EXPECT_DOUBLE_EQ(measured_sparsity(data), 1.0);
}

TEST(Sparsity, NonZeroedValuesUntouched) {
  auto data = gaussian_fill(512, 10.0, 1.0, 42);
  const auto original = data;
  sparsify(data, 0.5, 7);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != 0.0f) {
      EXPECT_EQ(data[i], original[i]);
    }
  }
}

TEST(Sparsity, SeedSelectsDifferentPositions) {
  auto a = gaussian_fill(512, 10.0, 1.0, 42);
  auto b = a;
  sparsify(a, 0.5, 1);
  sparsify(b, 0.5, 2);
  EXPECT_NE(a, b);
}

TEST(Sparsity, AfterSortSortsFirst) {
  auto data = gaussian_fill(400, 10.0, 1.0, 42);
  sparsify_after_sort(data, 0.25, 7);
  // Removing the zeros, the remaining values must be ascending (they were
  // sorted before sparsification).
  std::vector<float> nonzero;
  for (const float v : data) {
    if (v != 0.0f) nonzero.push_back(v);
  }
  EXPECT_TRUE(std::is_sorted(nonzero.begin(), nonzero.end()));
  EXPECT_NEAR(measured_sparsity(data), 0.25, 1e-9);
}

TEST(Sparsity, TwoFourStructure) {
  auto data = gaussian_fill(64, 10.0, 1.0, 42);
  const auto original = data;
  sparsify_2_4(data);
  for (std::size_t g = 0; g < 16; ++g) {
    int zeros = 0;
    float max_zeroed = 0.0f;
    float min_kept = 1e30f;
    for (std::size_t i = 0; i < 4; ++i) {
      const float v = data[g * 4 + i];
      if (v == 0.0f) {
        ++zeros;
        max_zeroed = std::max(max_zeroed, std::fabs(original[g * 4 + i]));
      } else {
        min_kept = std::min(min_kept, std::fabs(v));
      }
    }
    EXPECT_EQ(zeros, 2) << "group " << g;
    // The two smallest magnitudes were the ones pruned.
    EXPECT_LE(max_zeroed, min_kept) << "group " << g;
  }
}

class SparsityFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SparsityFractionSweep, RealizedFractionIsRounded) {
  const double fraction = GetParam();
  auto data = gaussian_fill(777, 10.0, 1.0, 42);
  sparsify(data, fraction, 7);
  const auto expected = static_cast<double>(std::llround(fraction * 777)) / 777.0;
  EXPECT_NEAR(measured_sparsity(data), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SparsityFractionSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.333, 0.5, 0.75,
                                           0.9, 1.0));

}  // namespace
}  // namespace gpupower::patterns
