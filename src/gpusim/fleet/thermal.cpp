#include "gpusim/fleet/thermal.hpp"

#include <algorithm>
#include <cmath>

namespace gpupower::gpusim::fleet {

ThermalState::ThermalState(const ThermalConfig& config, double r_c_per_w)
    : config_(config),
      r_c_per_w_(std::max(r_c_per_w, 0.0)),
      temperature_c_(config.initial_c >= 0.0 ? config.initial_c
                                             : config.ambient_c),
      // A die that boots above the trip point throttles from slice 0.
      throttling_(temperature_c_ >= config.trip_c) {}

void ThermalState::step(double power_w, double dt_s) {
  if (dt_s <= 0.0) return;
  const double target_c =
      config_.ambient_c + r_c_per_w_ * std::max(power_w, 0.0);
  // Exact discretisation of dT/dt = (target - T) / tau: unconditionally
  // stable for any slice length, monotone toward the target, and
  // deterministic (a fixed-dt recurrence of doubles).
  const double tau = std::max(config_.tau_s, 1e-6);
  const double decay = std::exp(-dt_s / tau);
  temperature_c_ = target_c + (temperature_c_ - target_c) * decay;

  // Hysteresis latch: trip at/above trip_c, release only at/below
  // release_c.  With release < trip the latch cannot flap on slice noise.
  if (temperature_c_ >= config_.trip_c) {
    throttling_ = true;
  } else if (throttling_ && temperature_c_ <= config_.release_c) {
    throttling_ = false;
  }
}

}  // namespace gpupower::gpusim::fleet
