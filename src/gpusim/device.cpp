#include "gpusim/device.hpp"

namespace gpupower::gpusim {
namespace {

// Energy coefficients are expressed at the A100's 7 nm process corner; other
// devices apply `scale` for their process/voltage point.  GDDR6 devices pay
// more per fetch toggle than HBM parts (longer, unterminated board traces vs
// in-package interposer wires) but have far fewer memory channels; the wider
// effect in the paper — the RTX 6000's flatter input-dependence (Fig. 7) —
// comes from its lower TDP headroom and older, higher-leakage 12 nm process
// (larger input-independent share of total power).
EnergyModel a100_energy() {
  EnergyModel e;
  e.scale = 1.0;
  return e;
}

EnergyModel h100_energy() {
  EnergyModel e;
  // 4 nm process: lower switched capacitance per event, but the device runs
  // far more events per second; net power is much higher.
  e.scale = 0.72;
  e.fetch_toggle_pj = 0.26;
  return e;
}

EnergyModel v100_energy() {
  EnergyModel e;
  // 12 nm: every event costs more than on the A100.
  e.scale = 1.55;
  return e;
}

EnergyModel rtx6000_energy() {
  EnergyModel e;
  // 12 nm Turing at an aggressive boost point, GDDR6 board memory: high
  // per-event energy against a 260 W limit, so full-occupancy 2048^2 GEMMs
  // push into the TDP throttle (the paper had to drop to 512^2 on this
  // card).
  e.scale = 3.10;
  e.fetch_toggle_pj = 0.45;
  return e;
}

const DeviceDescriptor kA100{
    .name = "NVIDIA A100 PCIe 40GB",
    .model = GpuModel::kA100PCIe,
    .sm_count = 108,
    .boost_clock_ghz = 1.410,
    .tdp_w = 300.0,
    .idle_w = 52.0,
    .memory = MemoryKind::kHBM2e,
    .mem_bandwidth_gbs = 1555.0,
    .fp32_tflops = 19.5,
    .fp16_tflops = 78.0,
    .fp16_tc_tflops = 312.0,
    .int8_tc_tops = 624.0,
    .energy = a100_energy(),
    .thermal_resistance_c_per_w = 0.12,
    .leakage_per_c = 0.004,
};

const DeviceDescriptor kH100{
    .name = "NVIDIA H100 80GB HBM3",
    .model = GpuModel::kH100SXM,
    .sm_count = 132,
    .boost_clock_ghz = 1.980,
    .tdp_w = 700.0,
    .idle_w = 72.0,
    .memory = MemoryKind::kHBM3,
    .mem_bandwidth_gbs = 3350.0,
    .fp32_tflops = 67.0,
    .fp16_tflops = 134.0,
    .fp16_tc_tflops = 989.0,
    .int8_tc_tops = 1979.0,
    .energy = h100_energy(),
    .thermal_resistance_c_per_w = 0.06,
    .leakage_per_c = 0.004,
};

const DeviceDescriptor kV100{
    .name = "NVIDIA Tesla V100-SXM2-32GB",
    .model = GpuModel::kV100SXM2,
    .sm_count = 80,
    .boost_clock_ghz = 1.530,
    .tdp_w = 300.0,
    .idle_w = 42.0,
    .memory = MemoryKind::kHBM2,
    .mem_bandwidth_gbs = 900.0,
    .fp32_tflops = 15.7,
    .fp16_tflops = 31.4,
    .fp16_tc_tflops = 125.0,
    .int8_tc_tops = 62.8,  // DP4A path; Volta tensor cores are FP16-only
    .energy = v100_energy(),
    .thermal_resistance_c_per_w = 0.11,
    .leakage_per_c = 0.005,
};

const DeviceDescriptor kRTX6000Desc{
    .name = "NVIDIA Quadro RTX 6000 24GB",
    .model = GpuModel::kRTX6000,
    .sm_count = 72,
    .boost_clock_ghz = 1.770,
    .tdp_w = 260.0,
    .idle_w = 38.0,
    .memory = MemoryKind::kGDDR6,
    .mem_bandwidth_gbs = 672.0,
    .fp32_tflops = 16.3,
    .fp16_tflops = 32.6,
    .fp16_tc_tflops = 130.5,
    .int8_tc_tops = 261.0,
    .energy = rtx6000_energy(),
    .thermal_resistance_c_per_w = 0.14,
    .leakage_per_c = 0.006,
};

}  // namespace

const DeviceDescriptor& device(GpuModel model) noexcept {
  switch (model) {
    case GpuModel::kA100PCIe:
      return kA100;
    case GpuModel::kH100SXM:
      return kH100;
    case GpuModel::kV100SXM2:
      return kV100;
    case GpuModel::kRTX6000:
      return kRTX6000Desc;
  }
  return kA100;
}

std::string_view name(GpuModel model) noexcept { return device(model).name; }

std::string_view name(MemoryKind kind) noexcept {
  switch (kind) {
    case MemoryKind::kHBM2:
      return "HBM2";
    case MemoryKind::kHBM2e:
      return "HBM2e";
    case MemoryKind::kHBM3:
      return "HBM3";
    case MemoryKind::kGDDR6:
      return "GDDR6";
  }
  return "?";
}

}  // namespace gpupower::gpusim
