#include "core/dag/dag.hpp"

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/obs/obs.hpp"
#include "core/spec.hpp"
#include "gpusim/dvfs/dsl_util.hpp"

namespace gpupower::core::dag {
namespace {

using analysis::JsonValue;
using gpupower::gpusim::dvfs::detail::format_exact;

/// Node-count guard: a dag bigger than this is a generator bug, not a
/// study (each node can itself be a 4096-point campaign).
constexpr std::size_t kMaxDagNodes = 256;
constexpr int kMaxSearchIterations = 64;

struct Ctx {
  std::string error;

  bool fail(std::string_view where, std::string_view message) {
    if (error.empty()) {
      error = where.empty()
                  ? std::string(message)
                  : std::string(where) + ": " + std::string(message);
    }
    return false;
  }
};

bool check_keys(const JsonValue& obj, std::string_view where,
                std::initializer_list<std::string_view> allowed, Ctx& ctx) {
  for (const std::string& key : obj.keys()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string expected;
      for (const std::string_view candidate : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += candidate;
      }
      return ctx.fail(where, "unknown key '" + key +
                                 "' (expected one of: " + expected + ")");
    }
  }
  return true;
}

bool read_string(const JsonValue* v, std::string_view where, Ctx& ctx,
                 std::string& out) {
  if (v == nullptr || !v->is_string()) {
    return ctx.fail(where, "expected a string");
  }
  out = v->as_string();
  return true;
}

bool read_number(const JsonValue* v, std::string_view where, Ctx& ctx,
                 double& out) {
  if (v == nullptr || !v->is_number()) {
    return ctx.fail(where, "expected a number");
  }
  out = v->as_number();
  return true;
}

std::string node_where(std::size_t index, std::string_view name) {
  std::string where = "nodes[" + std::to_string(index) + "]";
  if (!name.empty()) {
    where += " '";
    where += name;
    where += "'";
  }
  return where;
}

/// Walks a dotted path through a result document; segments index arrays
/// numerically ("points.0.result.power_w").  Returns nullptr when any
/// segment is missing, leaving `missing` naming the unreachable prefix.
const JsonValue* get_path(const JsonValue& doc, std::string_view path,
                          std::string& missing) {
  const JsonValue* cur = &doc;
  std::size_t pos = 0;
  std::string walked;
  for (;;) {
    const std::size_t dot = path.find('.', pos);
    const std::string_view seg = path.substr(
        pos, (dot == std::string_view::npos ? path.size() : dot) - pos);
    if (!walked.empty()) walked += '.';
    walked += seg;
    if (seg.empty()) {
      missing = walked;
      return nullptr;
    }
    if (cur->is_array()) {
      std::size_t index = 0;
      bool numeric = true;
      for (const char c : seg) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        index = index * 10 + static_cast<std::size_t>(c - '0');
      }
      if (!numeric || index >= cur->size()) {
        missing = walked;
        return nullptr;
      }
      cur = &cur->at(index);
    } else if (cur->is_object()) {
      cur = cur->find(seg);
      if (cur == nullptr) {
        missing = walked;
        return nullptr;
      }
    } else {
      missing = walked;
      return nullptr;
    }
    if (dot == std::string_view::npos) return cur;
    pos = dot + 1;
  }
}

// --- parsing ----------------------------------------------------------------

/// Shallow pre-pass classification so refs and reduce targets can be
/// validated against nodes declared later in the array.
struct NodeSketch {
  std::string name;
  DagNodeKind kind = DagNodeKind::kScenario;
};

bool parse_ref(const JsonValue* v, std::string_view where, Ctx& ctx,
               const std::vector<NodeSketch>& sketches, std::size_t self,
               DagRef& out) {
  std::string text;
  if (!read_string(v, where, ctx, text)) return false;
  out.raw = text;
  const std::string quoted = "$ref '" + text + "'";
  const std::size_t first = text.find('.');
  if (first == std::string_view::npos) {
    return ctx.fail(where,
                    quoted + " must be 'node_name.result.dotted.path'");
  }
  const std::string node_name = text.substr(0, first);
  const std::size_t second = text.find('.', first + 1);
  const std::string result_seg =
      text.substr(first + 1, (second == std::string_view::npos
                                  ? text.size()
                                  : second) -
                                 first - 1);
  if (node_name.empty() || result_seg != "result" ||
      second == std::string_view::npos || second + 1 >= text.size()) {
    return ctx.fail(where,
                    quoted + " must be 'node_name.result.dotted.path'");
  }
  out.path = text.substr(second + 1);
  bool found = false;
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    if (sketches[i].name == node_name) {
      out.node = i;
      found = true;
      break;
    }
  }
  if (!found) {
    return ctx.fail(where,
                    quoted + " references unknown node '" + node_name + "'");
  }
  if (out.node == self) {
    return ctx.fail(where, quoted + " references the node itself");
  }
  return true;
}

bool parse_substitutions(const JsonValue* v, std::string_view where, Ctx& ctx,
                         const std::vector<NodeSketch>& sketches,
                         std::size_t self,
                         std::vector<DagSubstitution>& out) {
  if (v == nullptr) return true;
  if (!v->is_array()) {
    return ctx.fail(where, "expected an array of substitution objects");
  }
  for (std::size_t i = 0; i < v->size(); ++i) {
    const std::string entry_where =
        std::string(where) + "[" + std::to_string(i) + "]";
    const JsonValue& entry = v->at(i);
    if (!entry.is_object()) {
      return ctx.fail(entry_where, "expected an object");
    }
    if (!check_keys(entry, entry_where, {"field", "$ref"}, ctx)) return false;
    DagSubstitution sub;
    if (!read_string(entry.find("field"), entry_where + ".field", ctx,
                     sub.field)) {
      return false;
    }
    if (sub.field.empty()) {
      return ctx.fail(entry_where + ".field", "must not be empty");
    }
    if (sub.field == "scenario") {
      return ctx.fail(entry_where + ".field",
                      "a substitution cannot patch the scenario kind");
    }
    if (!parse_ref(entry.find("$ref"), entry_where + ".$ref", ctx, sketches,
                   self, sub.ref)) {
      return false;
    }
    out.push_back(std::move(sub));
  }
  return true;
}

/// Run-node documents (and search bases) must parse stand-alone, the same
/// contract campaign bases have: substitutions override fields that
/// already hold valid placeholder values.
bool validate_run_doc(const JsonValue& doc, std::string_view where, Ctx& ctx,
                      bool allow_campaign, DagNodeKind& kind_out) {
  if (!doc.is_object()) return ctx.fail(where, "expected a spec object");
  const JsonValue* scenario = doc.find("scenario");
  if (scenario != nullptr && scenario->is_string() &&
      scenario->as_string() == "dag") {
    return ctx.fail(where, "nested dag specs are not supported");
  }
  const SpecParseResult parsed = parse_scenario_spec(doc);
  if (!parsed.ok) return ctx.fail(where, parsed.error);
  if (parsed.spec.campaign) {
    if (!allow_campaign) {
      return ctx.fail(where, "must be a single-scenario spec (not a campaign)");
    }
    kind_out = DagNodeKind::kCampaign;
  } else {
    kind_out = DagNodeKind::kScenario;
  }
  return true;
}

bool parse_reduce(const JsonValue& v, std::string_view where, Ctx& ctx,
                  const std::vector<NodeSketch>& sketches, std::size_t self,
                  DagReduce& out) {
  if (!v.is_object()) return ctx.fail(where, "expected an object");
  if (!check_keys(v, where, {"op", "over", "baseline", "metric"}, ctx)) {
    return false;
  }
  if (!read_string(v.find("op"), std::string(where) + ".op", ctx, out.op)) {
    return false;
  }
  if (out.op != "regret" && out.op != "min" && out.op != "max" &&
      out.op != "mean" && out.op != "sum") {
    return ctx.fail(std::string(where) + ".op",
                    "unknown op '" + out.op +
                        "' (expected regret | min | max | mean | sum)");
  }
  std::string over_name;
  if (!read_string(v.find("over"), std::string(where) + ".over", ctx,
                   over_name)) {
    return false;
  }
  bool found = false;
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    if (sketches[i].name == over_name) {
      out.over = i;
      found = true;
      break;
    }
  }
  if (!found) {
    return ctx.fail(std::string(where) + ".over",
                    "references unknown node '" + over_name + "'");
  }
  if (out.over == self) {
    return ctx.fail(std::string(where) + ".over",
                    "references the node itself");
  }
  if (sketches[out.over].kind != DagNodeKind::kScenario &&
      sketches[out.over].kind != DagNodeKind::kCampaign) {
    return ctx.fail(std::string(where) + ".over",
                    "node '" + over_name + "' is not a run node");
  }
  if (const JsonValue* baseline = v.find("baseline")) {
    if (out.op != "regret") {
      return ctx.fail(std::string(where) + ".baseline",
                      "only meaningful for op 'regret'");
    }
    std::string baseline_name;
    if (!read_string(baseline, std::string(where) + ".baseline", ctx,
                     baseline_name)) {
      return false;
    }
    found = false;
    for (std::size_t i = 0; i < sketches.size(); ++i) {
      if (sketches[i].name == baseline_name) {
        out.baseline = i;
        found = true;
        break;
      }
    }
    if (!found) {
      return ctx.fail(std::string(where) + ".baseline",
                      "references unknown node '" + baseline_name + "'");
    }
    if (out.baseline == self) {
      return ctx.fail(std::string(where) + ".baseline",
                      "references the node itself");
    }
    if (sketches[out.baseline].kind != DagNodeKind::kScenario) {
      return ctx.fail(std::string(where) + ".baseline",
                      "node '" + baseline_name +
                          "' is not a single-scenario run node");
    }
    out.has_baseline = true;
  } else if (out.op == "regret") {
    return ctx.fail(std::string(where) + ".baseline",
                    "required for op 'regret' (the oracle node)");
  }
  if (!read_string(v.find("metric"), std::string(where) + ".metric", ctx,
                   out.metric)) {
    return false;
  }
  if (out.metric.empty()) {
    return ctx.fail(std::string(where) + ".metric", "must not be empty");
  }
  return true;
}

bool parse_search(const JsonValue& v, std::string_view where, Ctx& ctx,
                  const std::vector<NodeSketch>& sketches, std::size_t self,
                  DagSearch& out) {
  if (!v.is_object()) return ctx.fail(where, "expected an object");
  if (!check_keys(v, where,
                  {"base", "field", "lo", "hi", "metric", "predicate",
                   "target", "tolerance", "max_iterations", "substitutions"},
                  ctx)) {
    return false;
  }
  const JsonValue* base = v.find("base");
  if (base == nullptr) {
    return ctx.fail(std::string(where) + ".base",
                    "required (the single-scenario spec to bisect)");
  }
  DagNodeKind base_kind;
  if (!validate_run_doc(*base, std::string(where) + ".base", ctx,
                        /*allow_campaign=*/false, base_kind)) {
    return false;
  }
  out.base = *base;
  if (!read_string(v.find("field"), std::string(where) + ".field", ctx,
                   out.field)) {
    return false;
  }
  if (out.field.empty() || out.field == "scenario") {
    return ctx.fail(std::string(where) + ".field",
                    "must be a dotted numeric field of the base spec");
  }
  if (!read_number(v.find("lo"), std::string(where) + ".lo", ctx, out.lo)) {
    return false;
  }
  if (!read_number(v.find("hi"), std::string(where) + ".hi", ctx, out.hi)) {
    return false;
  }
  if (!(out.lo < out.hi)) {
    return ctx.fail(std::string(where) + ".lo", "must be < hi");
  }
  if (!read_string(v.find("metric"), std::string(where) + ".metric", ctx,
                   out.metric)) {
    return false;
  }
  if (out.metric.empty()) {
    return ctx.fail(std::string(where) + ".metric", "must not be empty");
  }
  if (!read_string(v.find("predicate"), std::string(where) + ".predicate",
                   ctx, out.predicate)) {
    return false;
  }
  if (out.predicate != "<=" && out.predicate != ">=") {
    return ctx.fail(std::string(where) + ".predicate",
                    "unknown predicate '" + out.predicate +
                        "' (expected <= | >=)");
  }
  if (!read_number(v.find("target"), std::string(where) + ".target", ctx,
                   out.target)) {
    return false;
  }
  if (!read_number(v.find("tolerance"), std::string(where) + ".tolerance",
                   ctx, out.tolerance)) {
    return false;
  }
  if (!(out.tolerance > 0.0)) {
    return ctx.fail(std::string(where) + ".tolerance",
                    "must be a positive interval width");
  }
  if (const JsonValue* iterations = v.find("max_iterations")) {
    double value = 0.0;
    if (!read_number(iterations, std::string(where) + ".max_iterations", ctx,
                     value)) {
      return false;
    }
    if (value < 1.0 || value > static_cast<double>(kMaxSearchIterations) ||
        value != static_cast<double>(static_cast<int>(value))) {
      return ctx.fail(std::string(where) + ".max_iterations",
                      "expected an integer in [1, " +
                          std::to_string(kMaxSearchIterations) + "]");
    }
    out.max_iterations = static_cast<int>(value);
  }
  if (!parse_substitutions(v.find("substitutions"),
                           std::string(where) + ".substitutions", ctx,
                           sketches, self, out.substitutions)) {
    return false;
  }
  return true;
}

/// Deterministic topological order: repeatedly take the lowest-index node
/// whose dependencies are all scheduled (Kahn with declaration-order
/// tie-break).  Returns false naming a node on the cycle.
bool topo_order(const std::vector<DagNode>& nodes,
                std::vector<std::size_t>& order, Ctx& ctx) {
  order.clear();
  std::vector<bool> done(nodes.size(), false);
  while (order.size() < nodes.size()) {
    bool progressed = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (const std::size_t dep : nodes[i].deps) {
        if (!done[dep]) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      done[i] = true;
      order.push_back(i);
      progressed = true;
    }
    if (!progressed) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!done[i]) {
          return ctx.fail(node_where(i, nodes[i].name),
                          "part of a dependency cycle");
        }
      }
    }
  }
  return true;
}

void add_dep(std::vector<std::size_t>& deps, std::size_t index) {
  for (const std::size_t existing : deps) {
    if (existing == index) return;
  }
  deps.push_back(index);
}

}  // namespace

std::string_view name(DagNodeKind kind) {
  switch (kind) {
    case DagNodeKind::kScenario:
      return "scenario";
    case DagNodeKind::kCampaign:
      return "campaign";
    case DagNodeKind::kReduce:
      return "reduce";
    case DagNodeKind::kSearch:
      return "search";
  }
  return "scenario";
}

bool parse_dag(const JsonValue& doc, DagSpec& out, std::string& error) {
  Ctx ctx;
  out = DagSpec();
  auto finish = [&](bool ok) {
    if (!ok) error = ctx.error;
    return ok;
  };
  if (!doc.is_object()) {
    return finish(ctx.fail("", "spec must be a JSON object"));
  }
  if (!check_keys(doc, "spec", {"scenario", "name", "nodes"}, ctx)) {
    return finish(false);
  }
  if (const JsonValue* v = doc.find("name")) {
    if (!read_string(v, "name", ctx, out.name)) return finish(false);
  }
  const JsonValue* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->size() == 0) {
    return finish(
        ctx.fail("nodes", "required (a non-empty array of node objects)"));
  }
  if (nodes->size() > kMaxDagNodes) {
    return finish(ctx.fail(
        "nodes", "dag has " + std::to_string(nodes->size()) +
                     " nodes (max " + std::to_string(kMaxDagNodes) + ")"));
  }

  // Pre-pass: names and kinds, so refs can point forward in the array.
  std::vector<NodeSketch> sketches(nodes->size());
  for (std::size_t i = 0; i < nodes->size(); ++i) {
    const JsonValue& entry = nodes->at(i);
    if (!entry.is_object()) {
      return finish(ctx.fail(node_where(i, ""), "expected a node object"));
    }
    if (!read_string(entry.find("name"), node_where(i, "") + ".name", ctx,
                     sketches[i].name)) {
      return finish(false);
    }
    if (sketches[i].name.empty()) {
      return finish(ctx.fail(node_where(i, "") + ".name", "must not be empty"));
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (sketches[j].name == sketches[i].name) {
        return finish(ctx.fail(node_where(i, ""), "duplicate node name '" +
                                                      sketches[i].name + "'"));
      }
    }
    const bool has_run = entry.find("run") != nullptr;
    const bool has_reduce = entry.find("reduce") != nullptr;
    const bool has_search = entry.find("search") != nullptr;
    if (static_cast<int>(has_run) + static_cast<int>(has_reduce) +
            static_cast<int>(has_search) !=
        1) {
      return finish(
          ctx.fail(node_where(i, sketches[i].name),
                   "needs exactly one of 'run', 'reduce', or 'search'"));
    }
    if (has_reduce) {
      sketches[i].kind = DagNodeKind::kReduce;
    } else if (has_search) {
      sketches[i].kind = DagNodeKind::kSearch;
    } else {
      const JsonValue* run = entry.find("run");
      const JsonValue* scenario =
          run->is_object() ? run->find("scenario") : nullptr;
      sketches[i].kind = (scenario != nullptr && scenario->is_string() &&
                          scenario->as_string() == "campaign")
                             ? DagNodeKind::kCampaign
                             : DagNodeKind::kScenario;
    }
  }

  out.nodes.resize(nodes->size());
  for (std::size_t i = 0; i < nodes->size(); ++i) {
    const JsonValue& entry = nodes->at(i);
    DagNode& node = out.nodes[i];
    node.name = sketches[i].name;
    node.kind = sketches[i].kind;
    const std::string where = node_where(i, node.name);
    if (!check_keys(entry, where,
                    {"name", "run", "reduce", "search", "substitutions"},
                    ctx)) {
      return finish(false);
    }
    switch (node.kind) {
      case DagNodeKind::kScenario:
      case DagNodeKind::kCampaign: {
        DagNodeKind parsed_kind;
        if (!validate_run_doc(*entry.find("run"), where + ".run", ctx,
                              /*allow_campaign=*/true, parsed_kind)) {
          return finish(false);
        }
        node.kind = parsed_kind;
        node.run = *entry.find("run");
        if (!parse_substitutions(entry.find("substitutions"),
                                 where + ".substitutions", ctx, sketches, i,
                                 node.substitutions)) {
          return finish(false);
        }
        for (const DagSubstitution& sub : node.substitutions) {
          add_dep(node.deps, sub.ref.node);
        }
        break;
      }
      case DagNodeKind::kReduce: {
        if (entry.find("substitutions") != nullptr) {
          return finish(ctx.fail(where + ".substitutions",
                                 "not supported on a reduce node"));
        }
        if (!parse_reduce(*entry.find("reduce"), where + ".reduce", ctx,
                          sketches, i, node.reduce)) {
          return finish(false);
        }
        add_dep(node.deps, node.reduce.over);
        if (node.reduce.has_baseline) add_dep(node.deps, node.reduce.baseline);
        break;
      }
      case DagNodeKind::kSearch: {
        if (entry.find("substitutions") != nullptr) {
          return finish(ctx.fail(
              where + ".substitutions",
              "belongs inside the 'search' object on a search node"));
        }
        if (!parse_search(*entry.find("search"), where + ".search", ctx,
                          sketches, i, node.search)) {
          return finish(false);
        }
        for (const DagSubstitution& sub : node.search.substitutions) {
          add_dep(node.deps, sub.ref.node);
        }
        break;
      }
    }
  }
  if (!topo_order(out.nodes, out.order, ctx)) return finish(false);
  return finish(true);
}

// --- execution --------------------------------------------------------------

namespace {

/// Per-node in-flight state: handles between schedule and finalise.
struct NodeState {
  bool scheduled = false;
  bool finalized = false;
  std::vector<ScenarioHandle> handles;
};

class DagExecutor {
 public:
  DagExecutor(ExperimentEngine& engine, const DagSpec& spec, DagRun& out,
              const DagNodeCallback& on_node)
      : engine_(engine), spec_(spec), out_(out), on_node_(on_node) {}

  bool run(std::string& error) {
    out_.nodes.clear();
    out_.nodes.resize(spec_.nodes.size());
    states_.assign(spec_.nodes.size(), NodeState());
    for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
      out_.nodes[i].name = spec_.nodes[i].name;
      out_.nodes[i].kind = spec_.nodes[i].kind;
    }
    // Ready-node schedule: walk the deterministic topological order,
    // submitting every run node's points as its dependencies retire
    // (resolving a $ref forces the upstream node to finalise).  Reduce
    // and search nodes run inline at finalise time, so independent run
    // nodes scheduled later still overlap them on the worker pool.
    for (const std::size_t index : spec_.order) {
      const DagNode& node = spec_.nodes[index];
      if (node.kind == DagNodeKind::kScenario ||
          node.kind == DagNodeKind::kCampaign) {
        if (!schedule(index, error)) return false;
      }
    }
    for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
      if (!finalize(i, error)) return false;
    }
    return true;
  }

 private:
  bool node_fail(std::size_t index, std::string_view message,
                 std::string& error) {
    error = "node '" + spec_.nodes[index].name + "': " + std::string(message);
    return false;
  }

  bool resolve_ref(std::size_t index, const DagRef& ref, JsonValue& value,
                   std::string& error) {
    if (!finalize(ref.node, error)) return false;
    std::string missing;
    const JsonValue* found =
        get_path(out_.nodes[ref.node].doc, ref.path, missing);
    if (found == nullptr) {
      return node_fail(index,
                       "$ref '" + ref.raw + "': node '" +
                           spec_.nodes[ref.node].name + "' has no value at '" +
                           missing + "'",
                       error);
    }
    value = *found;
    return true;
  }

  bool patch_substitutions(std::size_t index,
                           const std::vector<DagSubstitution>& subs,
                           JsonValue& doc, std::string& error) {
    for (const DagSubstitution& sub : subs) {
      JsonValue value;
      if (!resolve_ref(index, sub.ref, value, error)) return false;
      JsonValue patched;
      std::string patch_error;
      if (!detail::set_spec_path(doc, sub.field, value, patched,
                                 patch_error)) {
        return node_fail(index,
                         "substitution '" + sub.field + "': " + patch_error,
                         error);
      }
      doc = std::move(patched);
    }
    return true;
  }

  bool schedule(std::size_t index, std::string& error) {
    const DagNode& node = spec_.nodes[index];
    DagNodeRun& run = out_.nodes[index];
    NodeState& state = states_[index];
    obs::Span span("dag.schedule");
    JsonValue doc = node.run;
    if (!patch_substitutions(index, node.substitutions, doc, error)) {
      return false;
    }
    const SpecParseResult parsed = parse_scenario_spec(doc);
    if (!parsed.ok) return node_fail(index, parsed.error, error);
    try {
      if (parsed.spec.campaign) {
        CampaignRun campaign;
        std::string campaign_error;
        if (!submit_campaign(engine_, parsed.spec, campaign, campaign_error)) {
          return node_fail(index, campaign_error, error);
        }
        run.points.resize(campaign.points.size());
        state.handles = std::move(campaign.handles);
        for (std::size_t p = 0; p < campaign.points.size(); ++p) {
          run.points[p].label = std::move(campaign.points[p].label);
          run.points[p].config = std::move(campaign.points[p].config);
          run.points[p].outcome = campaign.outcomes[p];
        }
      } else {
        DagNodePoint point;
        point.label = node.name;
        point.config = parsed.spec.config;
        state.handles.push_back(
            engine_.submit(parsed.spec.config, &point.outcome));
        run.points.push_back(std::move(point));
      }
    } catch (const std::invalid_argument& rejected) {
      return node_fail(index, rejected.what(), error);
    }
    run.key = canonical_scenario_key(run.points.front().config);
    state.scheduled = true;
    if (obs::tracing_enabled()) {
      span.args(obs::SpanArgs()
                    .arg("node", obs::intern(node.name))
                    .arg("key", obs::intern(run.key)));
    }
    return true;
  }

  bool finalize(std::size_t index, std::string& error) {
    NodeState& state = states_[index];
    if (state.finalized) return true;
    const DagNode& node = spec_.nodes[index];
    DagNodeRun& run = out_.nodes[index];
    obs::Span span("dag.node");
    bool ok = true;
    switch (node.kind) {
      case DagNodeKind::kScenario:
      case DagNodeKind::kCampaign: {
        // Topological scheduling guarantees every dependency was
        // scheduled before anything downstream asks for its result.
        for (std::size_t p = 0; p < state.handles.size(); ++p) {
          run.points[p].result = state.handles[p].get();
        }
        state.handles.clear();
        if (node.kind == DagNodeKind::kScenario) {
          run.doc = scenario_result_to_json(run.points.front().result);
        } else {
          JsonValue points = JsonValue::array();
          for (const DagNodePoint& point : run.points) {
            JsonValue entry = JsonValue::object();
            entry.set("label", JsonValue::string(point.label))
                .set("result", scenario_result_to_json(point.result));
            points.push(std::move(entry));
          }
          run.doc = JsonValue::object();
          run.doc.set("points", std::move(points));
        }
        break;
      }
      case DagNodeKind::kReduce:
        ok = finalize_reduce(index, error);
        break;
      case DagNodeKind::kSearch:
        ok = finalize_search(index, error);
        break;
    }
    if (!ok) return false;
    state.finalized = true;
    if (obs::tracing_enabled()) {
      span.args(obs::SpanArgs()
                    .arg("node", obs::intern(node.name))
                    .arg("key", obs::intern(run.key)));
    }
    if (on_node_) on_node_(run);
    return true;
  }

  bool point_metric(std::size_t index, const DagNodeRun& upstream,
                    const DagNodePoint& point, std::string_view metric,
                    double& value, std::string& error) {
    const JsonValue doc = scenario_result_to_json(point.result);
    std::string missing;
    const JsonValue* found = get_path(doc, metric, missing);
    if (found == nullptr || !found->is_number()) {
      return node_fail(index,
                       "metric '" + std::string(metric) + "' of node '" +
                           upstream.name + "' point '" + point.label +
                           "' is missing or not a number",
                       error);
    }
    value = found->as_number();
    return true;
  }

  bool finalize_reduce(std::size_t index, std::string& error) {
    const DagReduce& reduce = spec_.nodes[index].reduce;
    DagNodeRun& run = out_.nodes[index];
    if (!finalize(reduce.over, error)) return false;
    if (reduce.has_baseline && !finalize(reduce.baseline, error)) {
      return false;
    }
    const DagNodeRun& over = out_.nodes[reduce.over];
    double baseline = 0.0;
    if (reduce.has_baseline) {
      const DagNodeRun& oracle = out_.nodes[reduce.baseline];
      if (!point_metric(index, oracle, oracle.points.front(), reduce.metric,
                        baseline, error)) {
        return false;
      }
    }
    JsonValue points = JsonValue::array();
    double aggregate = 0.0;
    bool first = true;
    for (const DagNodePoint& point : over.points) {
      double value = 0.0;
      if (!point_metric(index, over, point, reduce.metric, value, error)) {
        return false;
      }
      if (reduce.op == "regret") value -= baseline;
      JsonValue entry = JsonValue::object();
      entry.set("label", JsonValue::string(point.label))
          .set("value", JsonValue::number(value));
      points.push(std::move(entry));
      if (reduce.op == "mean" || reduce.op == "sum") {
        aggregate += value;
      } else if (reduce.op == "min") {
        aggregate = first ? value : (value < aggregate ? value : aggregate);
      } else {  // max, and regret reports the worst (max) regret
        aggregate = first ? value : (value > aggregate ? value : aggregate);
      }
      first = false;
    }
    if (reduce.op == "mean" && !over.points.empty()) {
      aggregate /= static_cast<double>(over.points.size());
    }
    run.doc = JsonValue::object();
    run.doc.set("op", JsonValue::string(reduce.op))
        .set("over", JsonValue::string(over.name))
        .set("metric", JsonValue::string(reduce.metric));
    if (reduce.has_baseline) {
      run.doc.set("baseline",
                  JsonValue::string(out_.nodes[reduce.baseline].name))
          .set("baseline_value", JsonValue::number(baseline));
    }
    run.doc.set("points", std::move(points))
        .set("value", JsonValue::number(aggregate));
    // Reduce nodes never touch the engine; the attribution key is
    // synthetic but stable, mirroring canonical-key field separators.
    run.key = "dag-reduce\x1f" + reduce.op + "\x1f" + over.name + "\x1f" +
              reduce.metric;
    return true;
  }

  bool finalize_search(std::size_t index, std::string& error) {
    const DagSearch& search = spec_.nodes[index].search;
    DagNodeRun& run = out_.nodes[index];
    JsonValue base = search.base;
    if (!patch_substitutions(index, search.substitutions, base, error)) {
      return false;
    }
    const std::string predicate_text = search.metric + " " + search.predicate +
                                       " " + format_exact(search.target);
    std::size_t accepted = 0;
    // Evaluate the field at x: patch, parse, submit (deduplicated by
    // canonical key), block, and read the metric.
    auto evaluate = [&](double x, double& metric, std::size_t& point_index,
                        std::string& eval_error) {
      JsonValue doc;
      std::string patch_error;
      if (!detail::set_spec_path(base, search.field, JsonValue::number(x),
                                 doc, patch_error)) {
        return node_fail(index,
                         "search field '" + search.field + "': " + patch_error,
                         eval_error);
      }
      const SpecParseResult parsed = parse_scenario_spec(doc);
      if (!parsed.ok) {
        return node_fail(index,
                         "search point " + search.field + "=" +
                             format_exact(x) + ": " + parsed.error,
                         eval_error);
      }
      DagNodePoint point;
      point.label = search.field + "=" + format_exact(x);
      point.config = parsed.spec.config;
      ScenarioHandle handle;
      try {
        handle = engine_.submit(parsed.spec.config, &point.outcome);
      } catch (const std::invalid_argument& rejected) {
        return node_fail(index,
                         "search point " + point.label + ": " +
                             rejected.what(),
                         eval_error);
      }
      point.result = handle.get();
      point_index = run.points.size();
      run.points.push_back(std::move(point));
      return point_metric(index, run, run.points.back(), search.metric,
                          metric, eval_error);
    };
    auto holds = [&](double metric) {
      return search.predicate == "<=" ? metric <= search.target
                                      : metric >= search.target;
    };

    double lo = search.lo;
    double hi = search.hi;
    double metric = 0.0;
    std::size_t point_index = 0;
    if (!evaluate(hi, metric, point_index, error)) return false;
    if (!holds(metric)) {
      return node_fail(index,
                       "search predicate '" + predicate_text +
                           "' does not hold at hi=" + format_exact(hi) +
                           " (metric = " + format_exact(metric) + ")",
                       error);
    }
    accepted = point_index;
    if (!evaluate(lo, metric, point_index, error)) return false;
    int iterations = 0;
    if (holds(metric)) {
      hi = lo;
      accepted = point_index;
    } else {
      while (hi - lo > search.tolerance) {
        if (iterations >= search.max_iterations) {
          return node_fail(
              index,
              "search did not converge within " +
                  std::to_string(search.max_iterations) +
                  " iterations (interval [" + format_exact(lo) + ", " +
                  format_exact(hi) + "] wider than tolerance " +
                  format_exact(search.tolerance) + ")",
              error);
        }
        const double mid = 0.5 * (lo + hi);
        ++iterations;
        if (!evaluate(mid, metric, point_index, error)) return false;
        if (holds(metric)) {
          hi = mid;
          accepted = point_index;
        } else {
          lo = mid;
        }
      }
    }
    run.doc = JsonValue::object();
    run.doc.set("field", JsonValue::string(search.field))
        .set("value", JsonValue::number(hi))
        .set("iterations", JsonValue::integer(iterations))
        .set("result", scenario_result_to_json(run.points[accepted].result));
    run.key = canonical_scenario_key(run.points[accepted].config);
    return true;
  }

  ExperimentEngine& engine_;
  const DagSpec& spec_;
  DagRun& out_;
  const DagNodeCallback& on_node_;
  std::vector<NodeState> states_;
};

}  // namespace

bool run_dag(ExperimentEngine& engine, const DagSpec& spec, DagRun& out,
             std::string& error, const DagNodeCallback& on_node) {
  DagExecutor executor(engine, spec, out, on_node);
  return executor.run(error);
}

}  // namespace gpupower::core::dag
