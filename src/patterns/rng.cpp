#include "patterns/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace gpupower::patterns {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::gaussian() noexcept {
  if (cached_gaussian_) {
    const double v = *cached_gaussian_;
    cached_gaussian_.reset();
    return v;
  }
  // Box-Muller; u1 in (0, 1] to keep the log finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  return r * std::cos(theta);
}

double Xoshiro256::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  SplitMix64 sm(base ^ (0xA5A5A5A55A5A5A5Aull + stream * 0x9E3779B97F4A7C15ull));
  sm.next();
  return sm.next();
}

}  // namespace gpupower::patterns
