#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gpupower::analysis {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.stddev();
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace gpupower::analysis
