#include "gpusim/activity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "patterns/rng.hpp"

namespace gpupower::gpusim {
namespace {

/// K-slice ranges to walk: evenly strided coverage of `fraction` of the
/// slices, deterministic phase from the seed so different experiments sample
/// the same way.
std::vector<std::pair<std::size_t, std::size_t>> select_k_ranges(
    std::size_t k_total, std::size_t k_step, double fraction,
    std::uint64_t seed) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  const std::size_t slices = (k_total + k_step - 1) / k_step;
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto wanted = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(slices)));
  wanted = std::clamp<std::size_t>(wanted, 1, slices);
  if (wanted == slices) {
    ranges.emplace_back(0, k_total);
    return ranges;
  }
  const double stride = static_cast<double>(slices) / static_cast<double>(wanted);
  patterns::Xoshiro256 rng(seed);
  const double phase = rng.uniform() * stride;
  for (std::size_t i = 0; i < wanted; ++i) {
    const auto slice = std::min<std::size_t>(
        slices - 1, static_cast<std::size_t>(phase + stride * static_cast<double>(i)));
    const std::size_t begin = slice * k_step;
    ranges.emplace_back(begin, std::min(begin + k_step, k_total));
  }
  // De-duplicate in case rounding produced repeats.
  ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
  return ranges;
}

template <typename T>
ActivityEstimate estimate_impl(const gemm::GemmProblem& problem,
                               const gemm::Matrix<T>& a,
                               const gemm::Matrix<T>& b_storage,
                               const gemm::TileConfig& config,
                               const SamplingPlan& plan) {
  using Acc = gpupower::numeric::accumulator_t<T>;
  ActivityEstimate est;
  ActivityCounters counters;
  std::vector<Acc> acc;

  if (plan.max_tiles == 0) {
    // Exact: full threadblock walk.
    const auto tiles =
        gemm::enumerate_tiles(problem.n, problem.m, config.threadblock);
    for (const auto& tile : tiles) {
      acc.assign(tile.rows * tile.cols, Acc{});
      gemm::process_tile(problem, a, b_storage, tile, config, acc, counters);
    }
    est.totals = counters.totals();
    est.tiles_walked = est.tiles_total = tiles.size();
    return est;
  }

  // Sampled: warp-tile quanta, stratified over the raster order.
  gemm::TileShape quantum = config.warp;
  quantum.k = config.threadblock.k;
  const auto tiles = gemm::enumerate_tiles(problem.n, problem.m, quantum);
  est.tiles_total = tiles.size();

  std::vector<std::size_t> chosen;
  if (tiles.size() <= plan.max_tiles) {
    chosen.resize(tiles.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) chosen[i] = i;
  } else {
    patterns::Xoshiro256 rng(patterns::derive_seed(plan.seed, 1));
    const double stride =
        static_cast<double>(tiles.size()) / static_cast<double>(plan.max_tiles);
    for (std::size_t i = 0; i < plan.max_tiles; ++i) {
      const double lo = stride * static_cast<double>(i);
      const double hi = stride * static_cast<double>(i + 1);
      const auto idx = std::min<std::size_t>(
          tiles.size() - 1,
          static_cast<std::size_t>(lo + rng.uniform() * (hi - lo)));
      chosen.push_back(idx);
    }
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
    est.sampled = true;
  }

  const auto k_ranges = select_k_ranges(problem.k, config.threadblock.k,
                                        plan.k_fraction, plan.seed);
  std::size_t k_walked = 0;
  for (const auto& [b, e] : k_ranges) k_walked += e - b;
  est.k_coverage =
      static_cast<double>(k_walked) / static_cast<double>(problem.k);
  if (est.k_coverage < 1.0) est.sampled = true;

  for (const std::size_t idx : chosen) {
    const auto& tile = tiles[idx];
    acc.assign(tile.rows * tile.cols, Acc{});
    for (const auto& [kb, ke] : k_ranges) {
      gemm::process_tile(problem, a, b_storage, tile, config, acc, counters,
                         kb, ke);
    }
  }
  est.tiles_walked = chosen.size();

  est.totals = counters.totals();
  // Scale sampled counts to the full problem.  Output coverage scales by
  // tile count (quanta are equal-sized except at the ragged edge, which the
  // stratified pick samples proportionally); K coverage scales linearly.
  const double scale =
      (static_cast<double>(est.tiles_total) /
       static_cast<double>(std::max<std::size_t>(est.tiles_walked, 1))) /
      std::max(est.k_coverage, 1e-12);
  if (scale != 1.0) est.totals.scale_by(scale);
  return est;
}

}  // namespace

template <typename T>
ActivityEstimate estimate_activity(const gemm::GemmProblem& problem,
                                   const gemm::Matrix<T>& a,
                                   const gemm::Matrix<T>& b_storage,
                                   const gemm::TileConfig& config,
                                   const SamplingPlan& plan) {
  return estimate_impl(problem, a, b_storage, config, plan);
}

template ActivityEstimate estimate_activity<float>(
    const gemm::GemmProblem&, const gemm::Matrix<float>&,
    const gemm::Matrix<float>&, const gemm::TileConfig&, const SamplingPlan&);
template ActivityEstimate estimate_activity<gpupower::numeric::float16_t>(
    const gemm::GemmProblem&, const gemm::Matrix<gpupower::numeric::float16_t>&,
    const gemm::Matrix<gpupower::numeric::float16_t>&, const gemm::TileConfig&,
    const SamplingPlan&);
template ActivityEstimate estimate_activity<gpupower::numeric::int8_value_t>(
    const gemm::GemmProblem&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::TileConfig&, const SamplingPlan&);

}  // namespace gpupower::gpusim
