// Fleet-scale power-capped replay: N simulated devices (heterogeneous
// descriptors allowed) step their own workload timelines in lockstep time
// slices under a shared datacenter power budget.  Each slice:
//
//   1. every active device plans its next slice (timeline sample +
//      governor decision) through its dvfs::DeviceCursor,
//   2. the allocator divides the shared cap across the devices' demands,
//   3. each device steps under its granted budget and thermal throttle —
//      the budget clamps the P-state choice through the existing replay
//      machinery (deepen until the state's steady-state power fits),
//   4. the per-device RC thermal state integrates the slice's power
//      (heat-up toward ambient + R*P, cool-down in gaps) and its throttle
//      hysteresis feeds back into the next slice's clamp.
//
// A fleet of one device with an infinite cap and the thermal model off is
// bit-identical to TimelineReplayer::replay — the equivalence the test
// suite pins — because the per-slice arithmetic *is* the single-device
// cursor, not a reimplementation.
//
// Everything is deterministic: devices are stepped in index order, the
// allocator is a pure function of the demand vector, and the thermal
// recurrence is a scalar double chain — identical inputs give identical
// fleet traces on any engine worker count.
#pragma once

#include <span>
#include <vector>

#include "gpusim/dvfs/replay.hpp"
#include "gpusim/fleet/allocator.hpp"
#include "gpusim/fleet/thermal.hpp"

namespace gpupower::gpusim::fleet {

/// One device's complete fleet replay: the standard replay summary plus
/// the fleet-only per-slice series (die temperature, granted budget) and
/// clamp counters.
struct FleetDeviceRun {
  dvfs::ReplayResult replay;
  /// Die temperature at each slice's end; empty when the thermal model is
  /// off.
  std::vector<double> temperature_c;
  /// Budget granted by the allocator each slice; empty when uncapped.
  std::vector<double> budget_w;
  double peak_temperature_c = 0.0;
  int throttled_slices = 0;       ///< slices spent under the thermal clamp
  int budget_clamped_slices = 0;  ///< slices the budget forced a deeper state
};

/// One seed's fleet replay: per-device runs plus the aggregate series and
/// summary the capacity-planning question actually asks about.
struct FleetRun {
  std::vector<FleetDeviceRun> devices;
  std::vector<double> fleet_power_w;  ///< aggregate power per slice
  double slice_s = 0.0;
  double cap_w = 0.0;           ///< infinity when uncapped
  double duration_s = 0.0;      ///< fleet horizon (slowest device)
  double energy_j = 0.0;        ///< fleet total
  double avg_power_w = 0.0;     ///< energy / fleet duration
  double peak_power_w = 0.0;    ///< max per-slice aggregate
  double completion_s = 0.0;    ///< last device's last served work
  double backlog_max_s = 0.0;   ///< worst single-device backlog
  double mean_backlog_s = 0.0;  ///< mean over devices of their time-average
  int transitions = 0;          ///< total P-state changes across devices
  /// Slices where realized aggregate power exceeded the cap anyway: a
  /// starved budget cannot push a device below its deepest-state idle
  /// floor, so the fleet over-draws instead of violating physics.
  int over_cap_slices = 0;
  bool truncated = false;       ///< any device hit the slice-cap backstop
};

class FleetSimulator {
 public:
  /// One simulated device: replayer (P-state table + per-variant power
  /// reports), its workload timeline, its governor, and its allocation
  /// priority.  All borrowed; must outlive run().
  struct Device {
    const dvfs::TimelineReplayer* replayer = nullptr;
    const dvfs::WorkloadTimeline* timeline = nullptr;
    dvfs::Governor* governor = nullptr;
    int priority = 0;
  };

  FleetSimulator(const AllocatorConfig& allocator, const ThermalConfig& thermal)
      : allocator_(allocator), thermal_(thermal) {}

  /// Steps all devices in lockstep until every one has drained (or hit
  /// the per-device slice backstop).  Single-threaded and deterministic.
  [[nodiscard]] FleetRun run(std::span<const Device> devices, double slice_s,
                             bool drain_backlog = true) const;

 private:
  AllocatorConfig allocator_;
  ThermalConfig thermal_;
};

}  // namespace gpupower::gpusim::fleet
