// Structured export of experiment results: turns ExperimentConfig/Result
// pairs (and whole figure sweeps) into JSON for downstream analysis and
// archival — the artifact format `gpowerctl sweep --json` and scripts can
// consume.
#pragma once

#include <span>

#include "analysis/json.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/fleet_experiment.hpp"

namespace gpupower::core {

/// One experiment's config + result as a JSON object (pattern serialised in
/// DSL form, rails broken out, protocol recorded).
[[nodiscard]] analysis::JsonValue to_json(const ExperimentConfig& config,
                                          const ExperimentResult& result);

/// A whole figure sweep: {figure, axis, series: [{x, label, result...}]}.
struct SweepEntry {
  SweepPoint point;
  ExperimentResult result;
};

[[nodiscard]] analysis::JsonValue sweep_to_json(FigureId id,
                                                const ExperimentConfig& base,
                                                std::span<const SweepEntry> entries);

/// A DVFS timeline experiment: config (governor/timeline in DSL form),
/// across-seed summary, and the representative per-slice trace.
[[nodiscard]] analysis::JsonValue dvfs_to_json(const DvfsConfig& config,
                                               const DvfsResult& result);

/// A fleet power-capping experiment: config (devices, allocator, thermal),
/// fleet-aggregate summary + per-slice aggregate power series, and one
/// entry per device with its across-seed summary and representative
/// per-slice trace (power/pstate/backlog, plus temperature and budget when
/// the thermal model / cap are on).
[[nodiscard]] analysis::JsonValue fleet_to_json(const FleetConfig& config,
                                                const FleetResult& result);

}  // namespace gpupower::core
