// DVFS timeline-replay suite: the timeline DSL, the degenerate-case
// guarantee (one-state replay == the static power model, bit for bit),
// replay determinism through the engine at different worker counts, the
// utilization-trace round trip, and the backlog/latency accounting.
#include "gpusim/dvfs/replay.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/config_builder.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/pattern_dsl.hpp"
#include "core/pattern_spec.hpp"
#include "gpusim/dvfs/timeline.hpp"
#include "gpusim/simulator.hpp"

namespace gpupower::gpusim::dvfs {
namespace {

using core::DvfsConfig;
using core::DvfsResult;

// --- timeline DSL ---------------------------------------------------------

TEST(TimelineDsl, BurstProducesTheSquareWave) {
  const auto parsed =
      parse_timeline("burst(period=0.2, duty=25%, high=1, low=10%, dur=0.6)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& phases = parsed.timeline.phases();
  ASSERT_EQ(phases.size(), 6u);
  EXPECT_DOUBLE_EQ(parsed.timeline.duration_s(), 0.6);
  EXPECT_DOUBLE_EQ(phases[0].duration_s, 0.05);
  EXPECT_DOUBLE_EQ(phases[0].utilization, 1.0);
  EXPECT_DOUBLE_EQ(phases[1].duration_s, 0.15);
  EXPECT_DOUBLE_EQ(phases[1].utilization, 0.10);
}

TEST(TimelineDsl, StagesConcatenateInTime) {
  const auto parsed = parse_timeline(
      "constant(util=60%, dur=0.5) | idle(dur=0.25) | "
      "ramp(from=0, to=1, steps=4, dur=1)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const WorkloadTimeline& timeline = parsed.timeline;
  EXPECT_DOUBLE_EQ(timeline.duration_s(), 1.75);
  EXPECT_DOUBLE_EQ(timeline.offered_at(0.1), 0.60);
  EXPECT_DOUBLE_EQ(timeline.offered_at(0.6), 0.0);
  EXPECT_DOUBLE_EQ(timeline.offered_at(0.80), 0.0);       // ramp step 1
  EXPECT_DOUBLE_EQ(timeline.offered_at(1.74), 1.0);       // ramp step 4
  EXPECT_DOUBLE_EQ(timeline.offered_at(2.0), 0.0);        // past the end
  EXPECT_DOUBLE_EQ(timeline.offered_at(-0.1), 0.0);
}

TEST(TimelineDsl, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_timeline("").ok);
  EXPECT_FALSE(parse_timeline("squiggle(dur=1)").ok);
  EXPECT_FALSE(parse_timeline("burst(perd=0.1)").ok);
  EXPECT_FALSE(parse_timeline("constant(util=50%, dur=0)").ok);
  EXPECT_FALSE(parse_timeline("idle(dur=1) constant(dur=1)").ok);
  const auto failed = parse_timeline("idle(dur=1) | ");
  EXPECT_FALSE(failed.ok);
}

TEST(TimelineDsl, CanonicalFormRoundTrips) {
  const auto first =
      parse_timeline("burst(period=0.3, duty=40%, high=90%, low=5%, dur=1)");
  ASSERT_TRUE(first.ok);
  const auto second = parse_timeline(to_dsl(first.timeline));
  ASSERT_TRUE(second.ok) << second.error;
  ASSERT_EQ(first.timeline.phases().size(), second.timeline.phases().size());
  for (std::size_t i = 0; i < first.timeline.phases().size(); ++i) {
    EXPECT_DOUBLE_EQ(first.timeline.phases()[i].duration_s,
                     second.timeline.phases()[i].duration_s);
    EXPECT_DOUBLE_EQ(first.timeline.phases()[i].utilization,
                     second.timeline.phases()[i].utilization);
  }
}

TEST(TimelineDsl, PhasesCarryPatternIndices) {
  const auto parsed = parse_timeline(
      "constant(util=60%, dur=0.3, pattern=1) | constant(util=60%, dur=0.3)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  // Equal-utilization neighbours with different pattern overrides must NOT
  // merge — they are different inputs at equal load.
  ASSERT_EQ(parsed.timeline.phases().size(), 2u);
  EXPECT_EQ(parsed.timeline.phases()[0].pattern, 1);
  EXPECT_EQ(parsed.timeline.phases()[1].pattern, -1);
  EXPECT_EQ(parsed.timeline.pattern_at(0.1), 1);
  EXPECT_EQ(parsed.timeline.pattern_at(0.4), -1);
  EXPECT_EQ(parsed.timeline.pattern_at(0.9), -1);  // past the end
  EXPECT_EQ(parsed.timeline.max_pattern_index(), 1);

  // The canonical form round-trips the pattern key.
  const auto second = parse_timeline(to_dsl(parsed.timeline));
  ASSERT_TRUE(second.ok) << second.error;
  ASSERT_EQ(second.timeline.phases().size(), 2u);
  EXPECT_EQ(second.timeline.phases()[0].pattern, 1);
  EXPECT_EQ(second.timeline.phases()[1].pattern, -1);

  // Pattern-free timelines keep the historical canonical form.
  const auto plain = parse_timeline("constant(util=60%, dur=0.3)");
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(to_dsl(plain.timeline).find("pattern"), std::string::npos);
  EXPECT_EQ(plain.timeline.max_pattern_index(), -1);

  EXPECT_FALSE(parse_timeline("idle(dur=1, pattern=1.5)").ok);
  EXPECT_FALSE(parse_timeline("idle(dur=1, pattern=-3)").ok);
}

// --- shared fixture -------------------------------------------------------

DvfsConfig small_dvfs_config() {
  DvfsConfig config;
  config.experiment.dtype = gpupower::numeric::DType::kFP16;
  config.experiment.n = 64;
  config.experiment.seeds = 3;
  config.experiment.sampling = SamplingPlan::fast(6, 0.5);
  config.experiment.pattern = core::PatternSpec{};
  config.slice_s = 0.01;
  config.pstates = 5;
  config.governor.policy = GovernorConfig::Policy::kUtilization;
  config.timeline =
      parse_timeline("burst(period=0.1, duty=30%, high=1, low=10%, dur=0.5)")
          .timeline;
  return config;
}

/// Activity + descriptor for one seed replica, through the same pipeline
/// run_dvfs_seed_replica uses.
struct WorkingPoint {
  DeviceDescriptor dev;
  gemm::GemmProblem problem;
  ActivityTotals activity;
};

WorkingPoint working_point(const DvfsConfig& config) {
  const GpuSimulator sim(config.experiment.gpu,
                         core::replica_sim_options(config.experiment, 0));
  const gemm::GemmProblem problem{config.experiment.n, config.experiment.n,
                                  config.experiment.n, 1.0f, 0.0f, true};
  const auto inputs = core::build_inputs<gpupower::numeric::float16_t>(
      config.experiment.pattern, config.experiment.dtype, config.experiment.n,
      42);
  const auto est =
      sim.activity(problem, config.experiment.dtype, inputs.a, inputs.b);
  return {sim.descriptor(), problem, est.totals};
}

// --- the degenerate case: one-state DVFS == the static model --------------

TEST(DvfsReplay, BoostOperatingPointIsBitIdenticalToStaticEvaluate) {
  const DvfsConfig config = small_dvfs_config();
  const WorkingPoint wp = working_point(config);
  const PowerCalculator calc(wp.dev);

  const PowerReport classic =
      calc.evaluate(wp.problem, config.experiment.dtype, wp.activity);
  const PowerReport at_boost = calc.evaluate_at(
      wp.problem, config.experiment.dtype, wp.activity, OperatingPoint{});
  EXPECT_EQ(classic.iteration_s, at_boost.iteration_s);
  EXPECT_EQ(classic.realized_iteration_s, at_boost.realized_iteration_s);
  EXPECT_EQ(classic.effective_clock_frac, at_boost.effective_clock_frac);
  EXPECT_EQ(classic.throttled, at_boost.throttled);
  EXPECT_EQ(classic.total_w, at_boost.total_w);
  EXPECT_EQ(classic.dynamic_w, at_boost.dynamic_w);
  EXPECT_EQ(classic.idle_w, at_boost.idle_w);
  EXPECT_EQ(classic.leakage_w, at_boost.leakage_w);
  EXPECT_EQ(classic.energy_j, at_boost.energy_j);
  EXPECT_EQ(classic.rails.fetch_w, at_boost.rails.fetch_w);
  EXPECT_EQ(classic.rails.operand_w, at_boost.rails.operand_w);
  EXPECT_EQ(classic.rails.multiply_w, at_boost.rails.multiply_w);
  EXPECT_EQ(classic.rails.accum_w, at_boost.rails.accum_w);
  EXPECT_EQ(classic.rails.issue_w, at_boost.rails.issue_w);
}

TEST(DvfsReplay, OneStateSaturatedReplayReproducesStaticPowerExactly) {
  const DvfsConfig config = small_dvfs_config();
  const WorkingPoint wp = working_point(config);
  const PowerCalculator calc(wp.dev);
  const PowerReport classic =
      calc.evaluate(wp.problem, config.experiment.dtype, wp.activity);

  const PStateTable table = PStateTable::boost_only(wp.dev);
  const TimelineReplayer replayer(wp.dev, wp.problem, config.experiment.dtype,
                                  wp.activity, table);
  const auto governor =
      make_governor(GovernorConfig{GovernorConfig::Policy::kFixed});
  const ReplayResult replay = replayer.replay(
      WorkloadTimeline::constant(1.0, 0.2), *governor, 0.01);

  ASSERT_EQ(replay.slices.size(), 20u);
  for (const ReplaySlice& slice : replay.slices) {
    // Saturated one-state slices ARE the static model: exactly 1.0
    // utilization at exactly the static total power.
    EXPECT_EQ(slice.utilization, 1.0);
    EXPECT_EQ(slice.power_w, classic.total_w);
    EXPECT_EQ(slice.pstate, 0);
    EXPECT_EQ(slice.clock_frac, classic.effective_clock_frac);
  }
  EXPECT_EQ(replay.peak_power_w, classic.total_w);
  EXPECT_NEAR(replay.energy_j, classic.total_w * 0.2,
              1e-9 * classic.total_w);
  EXPECT_EQ(replay.transitions, 0);
}

// --- determinism through the engine ---------------------------------------

void expect_identical(const DvfsResult& a, const DvfsResult& b) {
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.energy_std_j, b.energy_std_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.backlog_max_s, b.backlog_max_s);
  EXPECT_EQ(a.mean_backlog_s, b.mean_backlog_s);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.seeds, b.seeds);
  ASSERT_EQ(a.trace.slices.size(), b.trace.slices.size());
  for (std::size_t i = 0; i < a.trace.slices.size(); ++i) {
    EXPECT_EQ(a.trace.slices[i].power_w, b.trace.slices[i].power_w);
    EXPECT_EQ(a.trace.slices[i].pstate, b.trace.slices[i].pstate);
    EXPECT_EQ(a.trace.slices[i].backlog_s, b.trace.slices[i].backlog_s);
  }
}

TEST(DvfsReplay, EngineReplayIsDeterministicAcrossWorkerCounts) {
  const DvfsConfig config = small_dvfs_config();
  const DvfsResult serial = core::run_dvfs(config);

  // 1 worker, N workers, and (when set) the GPUPOWER_WORKERS count the
  // acceptance protocol sweeps — all bit-identical to the serial loop.
  std::vector<int> worker_counts{1, 4};
  if (const int workers = core::read_bench_env().workers; workers >= 1) {
    worker_counts.push_back(workers);
  }
  for (const int workers : worker_counts) {
    core::EngineOptions options;
    options.workers = workers;
    core::ExperimentEngine engine(options);
    const core::DvfsHandle handle = engine.submit_dvfs(config);
    expect_identical(serial, handle.get());
  }
}

TEST(DvfsReplay, EngineCachesIdenticalSubmissions) {
  core::ExperimentEngine engine(core::EngineOptions::with_workers(2));
  const DvfsConfig config = small_dvfs_config();
  const core::DvfsHandle first = engine.submit_dvfs(config);
  const core::DvfsHandle second = engine.submit_dvfs(config);
  engine.wait_all();
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(&first.get(), &second.get());

  // A different governor is a different job.
  DvfsConfig oracle = config;
  oracle.governor.policy = GovernorConfig::Policy::kOracle;
  (void)engine.submit_dvfs(oracle);
  engine.wait_all();
  EXPECT_EQ(engine.stats().jobs_computed, 2u);
}

TEST(DvfsReplay, CacheKeySeparatesGovernorsBeyondDisplayPrecision) {
  // The cache key must use full-precision governor fields, not the %g
  // display form — configs differing past 6 significant digits are
  // different experiments.
  DvfsConfig a = small_dvfs_config();
  a.governor.boost_util = 0.80000004;
  DvfsConfig b = a;
  b.governor.boost_util = 0.80000008;
  EXPECT_EQ(to_dsl(a.governor), to_dsl(b.governor));  // same display form
  EXPECT_NE(core::canonical_dvfs_key(a), core::canonical_dvfs_key(b));
}

TEST(DvfsReplay, EngineRejectsDegenerateConfigs) {
  core::ExperimentEngine engine(core::EngineOptions::with_workers(1));
  DvfsConfig config = small_dvfs_config();
  config.experiment.seeds = 0;
  EXPECT_THROW((void)engine.submit_dvfs(config), std::invalid_argument);
  config = small_dvfs_config();
  config.slice_s = 0.0;
  EXPECT_THROW((void)engine.submit_dvfs(config), std::invalid_argument);
  config = small_dvfs_config();
  config.timeline = WorkloadTimeline{};
  EXPECT_THROW((void)engine.submit_dvfs(config), std::invalid_argument);
}

// --- utilization-trace round trip -----------------------------------------

TEST(DvfsReplay, TimelineSurvivesTheUtilTraceRoundTrip) {
  const WorkloadTimeline original =
      parse_timeline("burst(period=0.1, duty=50%, high=80%, low=20%, dur=0.4)")
          .timeline;
  // Sample on a grid that divides every phase boundary, rebuild, and the
  // schedule is unchanged (equal-utilization neighbours re-merge).
  const telemetry::UtilTrace trace = original.to_util_trace(0.01);
  const WorkloadTimeline rebuilt = WorkloadTimeline::from_trace(trace);
  ASSERT_EQ(rebuilt.phases().size(), original.phases().size());
  for (std::size_t i = 0; i < original.phases().size(); ++i) {
    EXPECT_NEAR(rebuilt.phases()[i].duration_s,
                original.phases()[i].duration_s, 1e-9);
    EXPECT_DOUBLE_EQ(rebuilt.phases()[i].utilization,
                     original.phases()[i].utilization);
  }
}

TEST(DvfsReplay, RecordedReplayUtilizationDrivesAnEquivalentReplay) {
  const DvfsConfig config = small_dvfs_config();
  const WorkingPoint wp = working_point(config);
  const PStateTable table = PStateTable::for_device(wp.dev, config.pstates);
  const TimelineReplayer replayer(wp.dev, wp.problem, config.experiment.dtype,
                                  wp.activity, table);

  // Record a max-clock replay's realized utilization (what DCGM would log),
  // then replay the recording: offered == realized at max clock, so the
  // recorded trace must reproduce the original energy.
  GovernorConfig fixed;
  fixed.policy = GovernorConfig::Policy::kFixed;
  const auto governor = make_governor(fixed);
  const ReplayResult original =
      replayer.replay(config.timeline, *governor, config.slice_s);
  const telemetry::UtilTrace recorded = original.util_trace();

  const WorkloadTimeline rebuilt = WorkloadTimeline::from_trace(recorded);
  const ReplayResult replayed =
      replayer.replay(rebuilt, *governor, config.slice_s);
  EXPECT_NEAR(replayed.energy_j, original.energy_j,
              1e-9 * original.energy_j);
  EXPECT_NEAR(replayed.work_completed_s, original.work_completed_s, 1e-9);
}

TEST(DvfsReplay, UtilTraceCsvRoundTrips) {
  telemetry::UtilTrace trace;
  trace.push(0.1, 0.25);
  trace.push(0.2, 1.0);
  trace.push(0.3, 0.0);
  std::stringstream csv;
  trace.write_csv(csv);

  telemetry::UtilTrace parsed;
  ASSERT_TRUE(telemetry::UtilTrace::read_csv(csv, parsed));
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.samples()[i].t_s, trace.samples()[i].t_s);
    EXPECT_DOUBLE_EQ(parsed.samples()[i].utilization,
                     trace.samples()[i].utilization);
  }
}

TEST(DvfsReplay, TrailingPartialSliceStillReceivesItsLoad) {
  // A timeline whose duration is not a multiple of slice_s (the norm for
  // trace-driven replay): the final partial slice must contribute its
  // offered work instead of sampling past the end.
  const DvfsConfig config = small_dvfs_config();
  const WorkingPoint wp = working_point(config);
  const PStateTable table = PStateTable::boost_only(wp.dev);
  const TimelineReplayer replayer(wp.dev, wp.problem, config.experiment.dtype,
                                  wp.activity, table);
  const auto governor =
      make_governor(GovernorConfig{GovernorConfig::Policy::kFixed});

  const ReplayResult replay = replayer.replay(
      WorkloadTimeline::constant(1.0, 0.015), *governor, 0.01);
  EXPECT_NEAR(replay.work_offered_s, 0.015, 1e-12);
  EXPECT_NEAR(replay.work_completed_s, 0.015, 1e-9);
  EXPECT_NEAR(replay.completion_s, 0.015, 1e-9);
}

TEST(TimelineDsl, SingleStepRampTakesTheMidpoint) {
  const auto parsed = parse_timeline("ramp(from=0, to=1, steps=1, dur=1)");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.timeline.phases().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.timeline.phases()[0].utilization, 0.5);
}

// --- per-phase input patterns ---------------------------------------------

TEST(DvfsReplay, PhasePatternEqualToBaseIsBitIdentical) {
  // A phase override pointing at a pattern identical to the experiment's
  // base pattern must reproduce the pattern-free replay bit for bit: the
  // variant's activity walk sees the same inputs and the same seed.
  DvfsConfig baseline = small_dvfs_config();
  baseline.timeline = parse_timeline("constant(util=80%, dur=0.3)").timeline;

  DvfsConfig overridden = baseline;
  overridden.phase_patterns = {baseline.experiment.pattern};
  overridden.timeline =
      parse_timeline("constant(util=80%, dur=0.3, pattern=0)").timeline;

  expect_identical(core::run_dvfs(baseline), core::run_dvfs(overridden));
}

TEST(DvfsReplay, SparsePhasePatternLowersPowerInItsPhase) {
  // Activity — not just load — varies over time: a 90%-sparse phase
  // toggles far fewer wires than the Gaussian base at the same offered
  // utilization, so its slices draw less power.
  DvfsConfig config = small_dvfs_config();
  config.experiment.seeds = 1;
  config.governor.policy = GovernorConfig::Policy::kFixed;
  config.governor.fixed_pstate = 0;
  const auto sparse = core::parse_pattern("gaussian() | sparsity(90%)");
  ASSERT_TRUE(sparse.ok) << sparse.error;
  config.phase_patterns = {sparse.spec};
  config.timeline =
      parse_timeline(
          "constant(util=1, dur=0.2) | constant(util=1, dur=0.2, pattern=0)")
          .timeline;

  const DvfsResult result = core::run_dvfs(config);
  const auto& slices = result.trace.slices;
  ASSERT_GE(slices.size(), 40u);
  // Compare a slice well inside each phase (same P-state, same load).
  const double base_power = slices[5].power_w;
  const double sparse_power = slices[25].power_w;
  EXPECT_EQ(slices[5].pstate, slices[25].pstate);
  EXPECT_LT(sparse_power, base_power);
}

TEST(DvfsReplay, PhasePatternsSeparateCacheKeysAndValidate) {
  DvfsConfig plain = small_dvfs_config();
  DvfsConfig with_pattern = plain;
  with_pattern.phase_patterns = {plain.experiment.pattern};
  EXPECT_NE(core::canonical_dvfs_key(plain),
            core::canonical_dvfs_key(with_pattern));

  // A timeline referencing a pattern index with no configured pattern is
  // rejected.
  DvfsConfig dangling = plain;
  dangling.timeline =
      parse_timeline("constant(util=1, dur=0.1, pattern=0)").timeline;
  EXPECT_THROW((void)core::run_dvfs(dangling), std::invalid_argument);
}

// --- backlog / latency accounting -----------------------------------------

TEST(DvfsReplay, DeepStateBuildsBacklogAndPaysTheDrainTail) {
  const DvfsConfig config = small_dvfs_config();
  const WorkingPoint wp = working_point(config);
  const PStateTable table = PStateTable::for_device(wp.dev, 5, 0.40);
  const TimelineReplayer replayer(wp.dev, wp.problem, config.experiment.dtype,
                                  wp.activity, table);

  GovernorConfig parked;
  parked.policy = GovernorConfig::Policy::kFixed;
  parked.fixed_pstate = 4;  // 0.40 clock against a saturating load
  const auto governor = make_governor(parked);
  const WorkloadTimeline saturating = WorkloadTimeline::constant(1.0, 0.3);
  const ReplayResult replay =
      replayer.replay(saturating, *governor, 0.01);

  EXPECT_GT(replay.backlog_max_s, 0.0);
  // All offered work eventually completes, past the timeline's end.
  EXPECT_NEAR(replay.work_completed_s, replay.work_offered_s, 1e-9);
  EXPECT_GT(replay.completion_s, saturating.duration_s());
  // 0.3 s of boost-clock work at a 0.40 clock takes ~0.75 s.
  EXPECT_NEAR(replay.completion_s, 0.3 / 0.40, 0.02);
  EXPECT_LT(replay.slices.back().backlog_s, 1e-9);
}

TEST(DvfsReplay, UtilizationGovernorSavesEnergyOnBurstyLoad) {
  // The acceptance-criteria scenario: on a bursty timeline the threshold
  // governor must beat fixed-max-clock energy while the backlog it adds
  // stays bounded.
  DvfsConfig config = small_dvfs_config();
  config.governor = GovernorConfig{};  // utilization policy defaults
  config.timeline =
      parse_timeline("burst(period=0.2, duty=30%, high=1, low=20%, dur=2)")
          .timeline;
  const DvfsResult governed = core::run_dvfs(config);

  DvfsConfig fixed_config = config;
  fixed_config.governor.policy = GovernorConfig::Policy::kFixed;
  fixed_config.governor.fixed_pstate = 0;
  const DvfsResult fixed_max = core::run_dvfs(fixed_config);

  DvfsConfig oracle_config = config;
  oracle_config.governor.policy = GovernorConfig::Policy::kOracle;
  const DvfsResult oracle = core::run_dvfs(oracle_config);

  EXPECT_LT(governed.energy_j, fixed_max.energy_j);
  EXPECT_LE(oracle.energy_j, governed.energy_j);
  EXPECT_GT(governed.transitions, 0.0);
  EXPECT_LT(governed.backlog_max_s, 0.05);
}

}  // namespace
}  // namespace gpupower::gpusim::dvfs
