// Persistent-store replay latency: the cold/warm campaign pair that the
// result store (core/store/result_store.hpp) exists for.  Phase 1 runs the
// committed examples/specs/fleet_capping.json campaign against a fresh
// store directory (every point computed and written back); phase 2 replays
// the identical campaign on a NEW engine sharing the same directory and
// must serve every point from disk — zero replicas, zero computed jobs.
//
// The bench is its own acceptance gate: it exits nonzero when the cold
// pass fails to persist every point, when the warm pass recomputes
// anything, or when any warm result is not bit-identical (by canonical
// JSON dump) to its cold twin.
//
// Emits BENCH_store.json (tools/bench_export): the campaign energy_j sum
// is a deterministic model output and gates symmetrically in CI; wall
// times are machine-absolute and stay informational.
//
// Flags: --spec FILE (default examples/specs/fleet_capping.json),
//        --out FILE (default BENCH_store.json),
//        --store-dir DIR (default: fresh directory under the system tmp,
//        removed on exit).
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/obs/obs.hpp"
#include "core/scenario.hpp"
#include "core/spec.hpp"
#include "core/store/result_store.hpp"
#include "tools/bench_export.hpp"

namespace {

using namespace gpupower;

struct PhaseOutcome {
  double wall_ms = 0.0;
  int workers = 0;  ///< resolved engine pool size (not the env request)
  core::EngineStats stats;
  std::vector<std::string> dumps;  ///< canonical result JSON per point
  double energy_j = 0.0;           ///< sum over campaign points
};

// Every kind reports an energy; the campaign sum is the gated model output.
double summary_energy_j(const core::ScenarioResult& result) {
  switch (result.kind()) {
    case core::ScenarioKind::kStatic:
      return result.static_result().energy_per_iter_j;
    case core::ScenarioKind::kDvfs:
      return result.dvfs().energy_j;
    case core::ScenarioKind::kFleet:
      return result.fleet().energy_j;
  }
  return 0.0;
}

/// Runs the whole campaign on a fresh engine sharing `store`, and snapshots
/// the counters plus every result's canonical JSON dump.
bool run_phase(const core::ScenarioSpec& spec,
               std::shared_ptr<core::ResultStore> store, int workers,
               PhaseOutcome& outcome, std::string& error) {
  core::EngineOptions options;
  options.workers = workers;
  options.store = std::move(store);
  core::ExperimentEngine engine(options);

  const core::obs::StopWatch watch;
  core::CampaignRun run;
  if (!core::submit_campaign(engine, spec, run, error)) return false;
  engine.wait_all();
  outcome.wall_ms = watch.ms();

  outcome.workers = engine.workers();
  outcome.stats = engine.stats();
  for (const core::ScenarioHandle& handle : run.handles) {
    const core::ScenarioResult& result = handle.get();
    outcome.dumps.push_back(core::scenario_result_to_json(result).dump());
    outcome.energy_j += summary_energy_j(result);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path = "examples/specs/fleet_capping.json";
  std::string out_path = "BENCH_store.json";
  std::string store_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    }
  }

  // Arm the metrics registry so the per-kind timing breakdown in the
  // embedded engine_stats block below is live, not all-zero.
  core::obs::set_metrics_enabled(true);
  const core::BenchEnv env = core::read_bench_env();
  const bool temp_store = store_dir.empty();
  if (temp_store) {
    store_dir = (std::filesystem::temp_directory_path() /
                 ("gpupower_store_bench_" +
                  std::to_string(static_cast<long>(::getpid()))))
                    .string();
  }

  const core::SpecParseResult parsed = core::load_scenario_spec(spec_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "fig_store_latency: %s\n", parsed.error.c_str());
    return 2;
  }
  if (!parsed.spec.campaign) {
    std::fprintf(stderr, "fig_store_latency: %s is not a campaign spec\n",
                 spec_path.c_str());
    return 2;
  }

  std::printf("Store replay latency — cold vs warm campaign (%s)\n",
              spec_path.c_str());
  std::printf("  store: %s\n\n", store_dir.c_str());

  // Cold: fresh directory, every point computed and persisted.
  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  PhaseOutcome cold;
  std::string error;
  if (!run_phase(parsed.spec,
                 std::make_shared<core::ResultStore>(
                     core::StoreOptions{store_dir}),
                 env.workers, cold, error)) {
    std::fprintf(stderr, "fig_store_latency: cold: %s\n", error.c_str());
    return 2;
  }

  // Warm: a brand-new engine (empty memory cache) over the same directory.
  PhaseOutcome warm;
  if (!run_phase(parsed.spec,
                 std::make_shared<core::ResultStore>(
                     core::StoreOptions{store_dir}),
                 env.workers, warm, error)) {
    std::fprintf(stderr, "fig_store_latency: warm: %s\n", error.c_str());
    return 2;
  }
  if (temp_store) std::filesystem::remove_all(store_dir, ec);

  const std::size_t points = cold.dumps.size();
  std::printf("cold: %8.1f ms  (%llu computed, %llu replicas, %llu writes)\n",
              cold.wall_ms,
              static_cast<unsigned long long>(cold.stats.jobs_computed),
              static_cast<unsigned long long>(cold.stats.replicas_run),
              static_cast<unsigned long long>(cold.stats.store_writes));
  std::printf("warm: %8.1f ms  (%llu computed, %llu replicas, %llu hits)\n",
              warm.wall_ms,
              static_cast<unsigned long long>(warm.stats.jobs_computed),
              static_cast<unsigned long long>(warm.stats.replicas_run),
              static_cast<unsigned long long>(warm.stats.store_hits));

  // Acceptance: the warm pass must be a pure replay...
  bool ok = true;
  if (cold.stats.store_writes != points) {
    std::fprintf(stderr,
                 "FAIL: cold pass persisted %llu of %zu points\n",
                 static_cast<unsigned long long>(cold.stats.store_writes),
                 points);
    ok = false;
  }
  if (warm.stats.jobs_computed != 0 || warm.stats.replicas_run != 0) {
    std::fprintf(stderr,
                 "FAIL: warm pass recomputed (%llu jobs, %llu replicas)\n",
                 static_cast<unsigned long long>(warm.stats.jobs_computed),
                 static_cast<unsigned long long>(warm.stats.replicas_run));
    ok = false;
  }
  if (warm.stats.store_hits != points) {
    std::fprintf(stderr, "FAIL: warm pass hit the store %llu of %zu times\n",
                 static_cast<unsigned long long>(warm.stats.store_hits),
                 points);
    ok = false;
  }
  // ...and bit-identical to the cold one, point by point.
  for (std::size_t i = 0; i < points; ++i) {
    if (cold.dumps[i] != warm.dumps[i]) {
      std::fprintf(stderr, "FAIL: point %zu differs cold vs warm\n", i);
      ok = false;
    }
  }
  std::printf("replay parity: %zu/%zu points bit-identical, warm replicas "
              "%llu\n",
              points, points,
              static_cast<unsigned long long>(warm.stats.replicas_run));

  // Machine-independent protocol: the spec embeds its own shape string.
  const std::string protocol =
      parsed.spec.protocol + ", cold->warm store replay";
  std::vector<tools::BenchCase> cases;
  cases.push_back(
      {"cold",
       {{"wall_ms", cold.wall_ms},
        {"replicas", static_cast<double>(cold.stats.replicas_run)},
        {"store_writes", static_cast<double>(cold.stats.store_writes)}}});
  cases.push_back(
      {"warm",
       {{"wall_ms", warm.wall_ms},
        {"replicas", static_cast<double>(warm.stats.replicas_run)},
        {"store_hits", static_cast<double>(warm.stats.store_hits)}}});
  cases.push_back({"campaign",
                   {{"points", static_cast<double>(points)},
                    {"energy_j", cold.energy_j}}});
  // Observability context per phase (timing breakdown, hit ratios) rides
  // along as a non-gated top-level block — --compare walks only cases.
  analysis::JsonValue engine_stats = analysis::JsonValue::object();
  engine_stats.set("cold", core::engine_stats_json(cold.stats, cold.workers));
  engine_stats.set("warm", core::engine_stats_json(warm.stats, warm.workers));
  const auto doc =
      tools::bench_document("store_latency", protocol, cases, &engine_stats);
  if (!tools::write_bench_json(out_path, doc)) {
    std::fprintf(stderr, "fig_store_latency: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
